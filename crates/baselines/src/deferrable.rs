//! DEF — deferrable update scheduling, after Xiong, Han & Lam ("A
//! deferrable scheduling algorithm for real-time transactions maintaining
//! data freshness", RTSS 2005), which the UNIT paper cites as the other
//! principled way to cut update workload (§5).
//!
//! Instead of applying versions on their periodic schedule (IMU), on demand
//! when a query already waits (ODU), or at controller-modulated rates
//! (UNIT), DEF *defers* each pending version until just before the item is
//! predicted to be read again: freshness is produced exactly when it is
//! about to be consumed. Next-access times are predicted per item with an
//! exponentially weighted moving average of observed access intervals.
//!
//! Trade-offs this exposes against the other policies:
//!
//! * vs **ODU**: the refresh lands *before* the reader arrives, so the
//!   reader doesn't spend its deadline waiting behind a 96-second update —
//!   but a mispredicted access reads stale data (DSF), which ODU never does.
//! * vs **UNIT**: no feedback control and no admission control; DEF spends
//!   update CPU proportional to *access* traffic, like ODU.

use unit_core::freshness::max_tolerable_udrop;
use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QuerySpec, UpdateSpec};

/// Tuning for [`DeferrablePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeferrableConfig {
    /// EWMA factor for access-interval estimation (weight of the newest
    /// observation).
    pub ewma_alpha: f64,
    /// Refresh when the predicted next access is within this many seconds
    /// (should cover the update execution time plus one tick).
    pub lead_time_secs: f64,
    /// Also refresh on demand when a mispredicted access finds stale data
    /// (ODU-style safety net). Disable to measure pure prediction.
    pub demand_fallback: bool,
}

impl Default for DeferrableConfig {
    fn default() -> Self {
        DeferrableConfig {
            ewma_alpha: 0.3,
            lead_time_secs: 150.0,
            demand_fallback: true,
        }
    }
}

/// The deferrable-update policy.
#[derive(Debug)]
pub struct DeferrablePolicy {
    cfg: DeferrableConfig,
    last_access: Vec<Option<SimTime>>,
    /// EWMA of per-item access intervals, seconds (`None` until two
    /// accesses have been seen).
    interval_ewma: Vec<Option<f64>>,
    refreshes_scheduled: u64,
}

impl Default for DeferrablePolicy {
    fn default() -> Self {
        DeferrablePolicy::new(DeferrableConfig::default())
    }
}

impl DeferrablePolicy {
    /// Build with explicit tuning.
    pub fn new(cfg: DeferrableConfig) -> Self {
        DeferrablePolicy {
            cfg,
            last_access: Vec::new(),
            interval_ewma: Vec::new(),
            refreshes_scheduled: 0,
        }
    }

    /// Refreshes scheduled ahead of predicted accesses so far.
    pub fn refreshes_scheduled(&self) -> u64 {
        self.refreshes_scheduled
    }

    /// Predicted next access instant for `item`, if predictable.
    fn predicted_next_access(&self, item: usize) -> Option<SimTime> {
        let last = self.last_access[item]?;
        let interval = self.interval_ewma[item]?;
        Some(last + SimDuration::from_secs_f64(interval))
    }
}

impl Policy for DeferrablePolicy {
    fn name(&self) -> &str {
        "DEF"
    }

    fn init(&mut self, n_items: usize, _updates: &[UpdateSpec]) {
        self.last_access = vec![None; n_items];
        self.interval_ewma = vec![None; n_items];
    }

    fn on_query_arrival(&mut self, _q: &QuerySpec, _sys: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }

    fn on_version_arrival(
        &mut self,
        _item: DataId,
        _now: SimTime,
        _sys: &SnapshotView<'_>,
    ) -> UpdateAction {
        // Never apply on the source's schedule: defer.
        UpdateAction::Skip
    }

    fn on_query_dispatch(&mut self, q: &QuerySpec, _freshness: f64) {
        // Learn per-item access intervals.
        for &d in &q.items {
            let i = d.index();
            // The engine dispatches at lock-grant time; we only need
            // relative spacing, so arrival time is a fine proxy.
            let now = q.arrival;
            if let Some(last) = self.last_access[i] {
                let observed = now.saturating_since(last).as_secs_f64();
                let a = self.cfg.ewma_alpha;
                self.interval_ewma[i] = Some(match self.interval_ewma[i] {
                    Some(prev) => (1.0 - a) * prev + a * observed,
                    None => observed,
                });
            }
            self.last_access[i] = Some(now);
        }
    }

    fn tick_refreshes(&mut self, now: SimTime, udrop: &dyn Fn(DataId) -> u64) -> Vec<DataId> {
        let lead = SimDuration::from_secs_f64(self.cfg.lead_time_secs);
        let mut out = Vec::new();
        for i in 0..self.last_access.len() {
            let d = DataId(i as u32);
            if udrop(d) == 0 {
                continue; // already fresh
            }
            if let Some(next) = self.predicted_next_access(i) {
                if next <= now + lead {
                    out.push(d);
                    self.refreshes_scheduled += 1;
                }
            }
        }
        out
    }

    fn demand_refresh(&mut self, q: &QuerySpec, udrop: &dyn Fn(DataId) -> u64) -> Vec<DataId> {
        if !self.cfg.demand_fallback {
            return Vec::new();
        }
        let tolerable = max_tolerable_udrop(q.freshness_req);
        q.items
            .iter()
            .copied()
            .filter(|&d| udrop(d) > tolerable)
            .collect()
    }

    fn checkpoint_state(&self, enc: &mut unit_core::checkpoint::Enc) {
        enc.put_usize(self.last_access.len());
        for t in &self.last_access {
            enc.put_opt_u64(t.map(|t| t.0));
        }
        for e in &self.interval_ewma {
            enc.put_opt_f64(*e);
        }
        enc.put_u64(self.refreshes_scheduled);
    }

    fn restore_state(
        &mut self,
        dec: &mut unit_core::checkpoint::Dec<'_>,
    ) -> Result<(), unit_core::checkpoint::CheckpointError> {
        let n = dec.take_usize()?;
        if n != self.last_access.len() {
            return Err(unit_core::checkpoint::CheckpointError::Mismatch {
                what: "DEF table size",
            });
        }
        for t in &mut self.last_access {
            *t = dec.take_opt_u64()?.map(SimTime);
        }
        for e in &mut self.interval_ewma {
            *e = dec.take_opt_f64()?;
        }
        self.refreshes_scheduled = dec.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::types::QueryId;

    fn query(arrival_s: u64, item: u32) -> QuerySpec {
        QuerySpec {
            id: QueryId(0),
            arrival: SimTime::from_secs(arrival_s),
            items: vec![DataId(item)],
            exec_time: SimDuration::from_secs(1),
            relative_deadline: SimDuration::from_secs(30),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn policy() -> DeferrablePolicy {
        let mut p = DeferrablePolicy::default();
        p.init(4, &[]);
        p
    }

    #[test]
    fn versions_are_never_applied_at_arrival() {
        let mut p = policy();
        let snap = unit_core::snapshot::SystemSnapshot::empty(SimTime::ZERO);
        let sys = snap.view();
        assert!(!p
            .on_version_arrival(DataId(0), SimTime::from_secs(1), &sys)
            .is_apply());
    }

    #[test]
    fn learns_access_intervals_and_predicts() {
        let mut p = policy();
        // Accesses to item 0 every 100 s.
        for k in 0..5 {
            p.on_query_dispatch(&query(100 * k, 0), 1.0);
        }
        // Stale item, predicted access at ~t=500: not yet due at t=300.
        let refreshes = p.tick_refreshes(SimTime::from_secs(300), &|_| 1);
        assert!(refreshes.is_empty());
        // Due within the 150 s lead at t=360 (500 - 150 = 350).
        let refreshes = p.tick_refreshes(SimTime::from_secs(360), &|_| 1);
        assert_eq!(refreshes, vec![DataId(0)]);
        assert_eq!(p.refreshes_scheduled(), 1);
    }

    #[test]
    fn fresh_items_are_never_refreshed() {
        let mut p = policy();
        for k in 0..5 {
            p.on_query_dispatch(&query(100 * k, 0), 1.0);
        }
        let refreshes = p.tick_refreshes(SimTime::from_secs(480), &|_| 0);
        assert!(refreshes.is_empty(), "no pending version, nothing to do");
    }

    #[test]
    fn unobserved_items_are_not_predicted() {
        let mut p = policy();
        // One access is not enough to estimate an interval.
        p.on_query_dispatch(&query(100, 2), 1.0);
        let refreshes = p.tick_refreshes(SimTime::from_secs(1_000), &|_| 3);
        assert!(refreshes.is_empty());
    }

    #[test]
    fn demand_fallback_mirrors_odu() {
        let mut p = policy();
        let stale = p.demand_refresh(&query(10, 1), &|d| if d.0 == 1 { 2 } else { 0 });
        assert_eq!(stale, vec![DataId(1)]);

        let mut strict = DeferrablePolicy::new(DeferrableConfig {
            demand_fallback: false,
            ..DeferrableConfig::default()
        });
        strict.init(4, &[]);
        assert!(strict.demand_refresh(&query(10, 1), &|_| 5).is_empty());
    }

    #[test]
    fn ewma_tracks_changing_rates() {
        let mut p = policy();
        // 100 s spacing, then 10 s spacing: the estimate must move down.
        for k in 0..4 {
            p.on_query_dispatch(&query(100 * k, 0), 1.0);
        }
        let before = p.interval_ewma[0].unwrap();
        for k in 0..10 {
            p.on_query_dispatch(&query(400 + 10 * k, 0), 1.0);
        }
        let after = p.interval_ewma[0].unwrap();
        assert!(after < before * 0.5, "EWMA {before} -> {after}");
    }
}
