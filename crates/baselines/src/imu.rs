//! IMU — Immediate Update (§4.1).
//!
//! Every version is applied the moment it arrives and every query is
//! admitted; there is no control loop at all. IMU delivers 100% freshness
//! by construction, but under heavy update volumes the update class (which
//! outranks queries) starves the foreground work: queries pile up, miss
//! deadlines, and get evicted by the 2PL-HP write storms — the failure mode
//! Fig. 4 exposes at the `high` volumes.

use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::SimTime;
use unit_core::types::{DataId, QuerySpec, UpdateSpec};

/// The Immediate-Update baseline policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct ImuPolicy;

impl ImuPolicy {
    /// Construct the (stateless) policy.
    pub fn new() -> Self {
        ImuPolicy
    }
}

impl Policy for ImuPolicy {
    fn name(&self) -> &str {
        "IMU"
    }

    fn init(&mut self, _n_items: usize, _updates: &[UpdateSpec]) {}

    fn on_query_arrival(&mut self, _q: &QuerySpec, _sys: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }

    fn on_version_arrival(
        &mut self,
        _item: DataId,
        _now: SimTime,
        _sys: &SnapshotView<'_>,
    ) -> UpdateAction {
        UpdateAction::Apply
    }

    /// IMU is open-loop: every control tick is a no-op, so the engine may
    /// always take its idle-tick fast path.
    fn tick_idle_until(&self) -> SimTime {
        SimTime::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::SimDuration;
    use unit_core::types::QueryId;

    #[test]
    fn admits_everything_applies_everything() {
        let mut p = ImuPolicy::new();
        p.init(8, &[]);
        assert_eq!(p.name(), "IMU");
        let q = QuerySpec {
            id: QueryId(0),
            arrival: SimTime::ZERO,
            items: vec![DataId(0)],
            exec_time: SimDuration::from_secs(100),
            relative_deadline: SimDuration::from_secs(1), // hopeless
            freshness_req: 0.9,
            pref_class: 0,
        };
        let snap = unit_core::snapshot::SystemSnapshot::empty(SimTime::ZERO);
        let sys = snap.view();
        assert!(p.on_query_arrival(&q, &sys).is_admit());
        assert!(p
            .on_version_arrival(DataId(3), SimTime::from_secs(5), &sys)
            .is_apply());
        assert!(p.on_tick(SimTime::from_secs(10), &sys).is_empty());
        assert!(p.demand_refresh(&q, &|_| 10).is_empty());
    }
}
