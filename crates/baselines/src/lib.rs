//! # unit-baselines — comparison policies from the UNIT evaluation
//!
//! The three policies §4.1 compares UNIT against, each implemented behind
//! the same [`unit_core::policy::Policy`] interface:
//!
//! * [`ImuPolicy`] — Immediate Update: apply every version, admit every
//!   query, no control. 100% freshness, but updates starve queries under
//!   load.
//! * [`OduPolicy`] — On-Demand Update: apply nothing in the background,
//!   refresh stale items right before each query runs. 100% freshness, but
//!   the refresh cost lands in front of the deadline.
//! * [`QmfPolicy`] — Kang et al.'s feedback controller over deadline miss
//!   ratio and perceived freshness (the state of the art the paper measures
//!   against), reimplemented from its published description.
//! * [`DeferrablePolicy`] — deferrable update scheduling (Xiong et al.,
//!   RTSS'05, from the paper's related work §5): defer each pending version
//!   until just before the item's predicted next access.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod deferrable;
pub mod imu;
pub mod odu;
pub mod qmf;

pub use deferrable::{DeferrableConfig, DeferrablePolicy};
pub use imu::ImuPolicy;
pub use odu::OduPolicy;
pub use qmf::{QmfConfig, QmfPolicy};
