//! ODU — On-Demand Update (§4.1).
//!
//! No background update is ever applied; instead, when an admitted query is
//! about to run, the items of its read set that violate its freshness
//! requirement are refreshed first (the server issues on-demand update
//! transactions, which, being update-class, execute before the query). Like
//! IMU there is no admission control.
//!
//! ODU achieves 100% freshness — every query reads data refreshed just
//! before its execution — but the refresh work is charged right in front of
//! the deadline, so queries with tight slack miss (the DMF cost the paper's
//! Fig. 5 exposes under high `C_fm`). Under negatively correlated updates
//! ODU shines: most background updates would have been wasted anyway
//! (Fig. 4(c)).

use unit_core::freshness::max_tolerable_udrop;
use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::SimTime;
use unit_core::types::{DataId, QuerySpec, UpdateSpec};

/// The On-Demand-Update baseline policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct OduPolicy {
    refreshes_requested: u64,
}

impl OduPolicy {
    /// Construct the policy.
    pub fn new() -> Self {
        OduPolicy::default()
    }

    /// Number of item refreshes this policy has requested.
    pub fn refreshes_requested(&self) -> u64 {
        self.refreshes_requested
    }
}

impl Policy for OduPolicy {
    fn name(&self) -> &str {
        "ODU"
    }

    fn init(&mut self, _n_items: usize, _updates: &[UpdateSpec]) {}

    fn on_query_arrival(&mut self, _q: &QuerySpec, _sys: &SnapshotView<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }

    fn on_version_arrival(
        &mut self,
        _item: DataId,
        _now: SimTime,
        _sys: &SnapshotView<'_>,
    ) -> UpdateAction {
        UpdateAction::Skip
    }

    fn refresh_at_admission(&self) -> bool {
        true
    }

    fn demand_refresh(&mut self, q: &QuerySpec, udrop: &dyn Fn(DataId) -> u64) -> Vec<DataId> {
        let tolerable = max_tolerable_udrop(q.freshness_req);
        let stale: Vec<DataId> = q
            .items
            .iter()
            .copied()
            .filter(|&d| udrop(d) > tolerable)
            .collect();
        self.refreshes_requested += stale.len() as u64;
        stale
    }

    /// ODU refreshes on demand, never on the tick: every control tick is a
    /// no-op, so the engine may always take its idle-tick fast path.
    fn tick_idle_until(&self) -> SimTime {
        SimTime::MAX
    }

    fn checkpoint_state(&self, enc: &mut unit_core::checkpoint::Enc) {
        enc.put_u64(self.refreshes_requested);
    }

    fn restore_state(
        &mut self,
        dec: &mut unit_core::checkpoint::Dec<'_>,
    ) -> Result<(), unit_core::checkpoint::CheckpointError> {
        self.refreshes_requested = dec.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::SimDuration;
    use unit_core::types::QueryId;

    fn query(items: &[u32]) -> QuerySpec {
        QuerySpec {
            id: QueryId(0),
            arrival: SimTime::ZERO,
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs(1),
            relative_deadline: SimDuration::from_secs(10),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    #[test]
    fn never_applies_background_versions() {
        let mut p = OduPolicy::new();
        p.init(4, &[]);
        let snap = unit_core::snapshot::SystemSnapshot::empty(SimTime::ZERO);
        let sys = snap.view();
        assert!(!p
            .on_version_arrival(DataId(0), SimTime::from_secs(1), &sys)
            .is_apply());
        assert!(p.on_query_arrival(&query(&[0]), &sys).is_admit());
    }

    #[test]
    fn demands_refresh_only_for_stale_items() {
        let mut p = OduPolicy::new();
        p.init(4, &[]);
        let q = query(&[0, 1, 2]);
        let stale = p.demand_refresh(&q, &|d| if d.0 == 1 { 3 } else { 0 });
        assert_eq!(stale, vec![DataId(1)]);
        assert_eq!(p.refreshes_requested(), 1);
        // Fully fresh read set: nothing demanded.
        assert!(p.demand_refresh(&q, &|_| 0).is_empty());
    }

    #[test]
    fn respects_looser_freshness_requirements() {
        let mut p = OduPolicy::new();
        let mut q = query(&[0]);
        q.freshness_req = 0.5; // tolerates one pending version
        assert!(p.demand_refresh(&q, &|_| 1).is_empty());
        assert_eq!(p.demand_refresh(&q, &|_| 2), vec![DataId(0)]);
    }
}
