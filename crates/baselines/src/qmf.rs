//! QMF — the state-of-the-art comparison (§4.1): Kang, Son & Stankovic,
//! "Managing Deadline Miss Ratio and Sensor Data Freshness in Real-Time
//! Databases" (TKDE 16(10), 2004).
//!
//! The original code was obtained privately by the UNIT authors, so this is
//! a reimplementation from the published description (substitution recorded
//! in DESIGN.md). QMF runs a feedback loop over two measured signals — the
//! **deadline miss ratio** of admitted transactions and the **perceived
//! freshness** of the data queries actually read — against fixed targets:
//!
//! * **CPU overloaded** (utilization saturated or miss ratio above target):
//!   if current freshness exceeds the target, degrade QoD (drop updates,
//!   preferring items with a low access/update ratio); otherwise tighten
//!   admission — drop incoming transactions until the system recovers.
//! * **CPU underutilized**: if freshness is below target, upgrade QoD
//!   (restore update streams); otherwise admit more transactions.
//!
//! Admission control is a backlog cap steered by a proportional-integral
//! controller on the miss-ratio error: incoming queries are rejected while
//! the server's outstanding work exceeds the cap. This is what makes QMF
//! "conservative — drops many queries to guarantee the admitted
//! transactions" (§4.5), the behaviour behind its high rejection ratio in
//! Fig. 6 and its weakness under high `C_r` in Fig. 5.
//!
//! Key contrast with UNIT: QMF optimizes *miss ratio among admitted*
//! transactions and a *fixed* freshness target; it is blind to the user's
//! relative pricing of rejections vs. misses vs. staleness.

use unit_core::policy::{AdmissionDecision, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QuerySpec, UpdateSpec};

/// QMF tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QmfConfig {
    /// Deadline miss-ratio target among admitted transactions (Kang's
    /// default experiments use 1%).
    pub miss_ratio_target: f64,
    /// Perceived-freshness target (fraction of dispatches reading data that
    /// meets the query's freshness requirement).
    pub freshness_target: f64,
    /// Interval between controller adaptations.
    pub adaptation_period: SimDuration,
    /// Utilization above which the CPU counts as overloaded.
    pub overload_utilization: f64,
    /// Items moved per QoD degrade/upgrade step.
    pub qod_step: usize,
    /// Proportional gain of the backlog-cap controller (seconds of backlog
    /// per unit miss-ratio error).
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Initial backlog cap, seconds of outstanding work.
    pub initial_backlog_cap: f64,
    /// Bounds on the backlog cap.
    pub backlog_cap_range: (f64, f64),
}

impl Default for QmfConfig {
    fn default() -> Self {
        QmfConfig {
            miss_ratio_target: 0.01,
            freshness_target: 0.98,
            adaptation_period: SimDuration::from_secs(500),
            overload_utilization: 0.95,
            qod_step: 32,
            kp: 2_000.0,
            ki: 200.0,
            initial_backlog_cap: 500.0,
            backlog_cap_range: (50.0, 20_000.0),
        }
    }
}

/// The QMF policy.
#[derive(Debug)]
pub struct QmfPolicy {
    cfg: QmfConfig,
    // Measurement windows (reset each adaptation).
    window_admitted_done: u64,
    window_misses: u64,
    window_dispatches: u64,
    window_fresh_dispatches: u64,
    // Adaptive update policy state.
    access_counts: Vec<u64>,
    update_counts: Vec<u64>,
    dropped: Vec<bool>,
    qod_level: usize,
    // Admission controller.
    backlog_cap_secs: f64,
    integral: f64,
    last_adaptation: SimTime,
    adaptations: u64,
    rejected: u64,
}

impl Default for QmfPolicy {
    fn default() -> Self {
        QmfPolicy::new(QmfConfig::default())
    }
}

impl QmfPolicy {
    /// Build a QMF policy with the given tuning.
    pub fn new(cfg: QmfConfig) -> Self {
        QmfPolicy {
            backlog_cap_secs: cfg.initial_backlog_cap,
            cfg,
            window_admitted_done: 0,
            window_misses: 0,
            window_dispatches: 0,
            window_fresh_dispatches: 0,
            access_counts: Vec::new(),
            update_counts: Vec::new(),
            dropped: Vec::new(),
            qod_level: 0,
            integral: 0.0,
            last_adaptation: SimTime::ZERO,
            adaptations: 0,
            rejected: 0,
        }
    }

    /// Current backlog cap (seconds of outstanding work admitted).
    pub fn backlog_cap_secs(&self) -> f64 {
        self.backlog_cap_secs
    }

    /// Number of items whose update streams are currently dropped.
    pub fn qod_level(&self) -> usize {
        self.qod_level
    }

    /// Number of controller adaptations so far.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    fn window_miss_ratio(&self) -> f64 {
        if self.window_admitted_done == 0 {
            0.0
        } else {
            self.window_misses as f64 / self.window_admitted_done as f64
        }
    }

    fn window_perceived_freshness(&self) -> f64 {
        if self.window_dispatches == 0 {
            1.0
        } else {
            self.window_fresh_dispatches as f64 / self.window_dispatches as f64
        }
    }

    /// Rebuild the dropped-item set: the `qod_level` items with the lowest
    /// access/update ratio lose their update streams (Kang's adaptive update
    /// policy: shed updates nobody reads).
    fn rebuild_dropped_set(&mut self) {
        for d in &mut self.dropped {
            *d = false;
        }
        if self.qod_level == 0 {
            return;
        }
        let mut ratio: Vec<(usize, f64)> = (0..self.dropped.len())
            .filter(|&i| self.update_counts[i] > 0)
            .map(|i| {
                (
                    i,
                    self.access_counts[i] as f64 / self.update_counts[i] as f64,
                )
            })
            .collect();
        ratio.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        for &(i, _) in ratio.iter().take(self.qod_level) {
            self.dropped[i] = true;
        }
    }

    fn adapt(&mut self, now: SimTime, sys: &SnapshotView<'_>) {
        self.adaptations += 1;
        self.last_adaptation = now;

        let miss_ratio = self.window_miss_ratio();
        let freshness = self.window_perceived_freshness();
        let overloaded = sys.recent_utilization >= self.cfg.overload_utilization
            || miss_ratio > self.cfg.miss_ratio_target;

        // Kang's controller treats the miss-ratio target as the *primary*
        // goal: the PI loop on the miss-ratio error always drives the
        // admission budget, regardless of what QoD adaptation does. This is
        // exactly the behaviour the UNIT paper criticizes — "QMF is being
        // conservative and drops many queries to guarantee the admitted
        // transactions ... although within those admitted transactions the
        // miss ratio is minimized, the overall success ratio is low" (§4.5).
        let error = self.cfg.miss_ratio_target - miss_ratio; // < 0 over target
                                                             // Leaky, tightly clamped integral: without anti-windup a single
                                                             // saturated-overload window leaves the integral so negative that
                                                             // admission stays shut long after the system recovers.
        self.integral = (0.9 * self.integral + error).clamp(-2.0, 2.0);
        self.backlog_cap_secs += self.cfg.kp * error + self.cfg.ki * self.integral;

        // QoD adaptation: spend spare capacity on freshness, shed update
        // load when overloaded and freshness has slack.
        if overloaded {
            if freshness > self.cfg.freshness_target {
                self.qod_level = (self.qod_level + self.cfg.qod_step).min(self.dropped.len());
            }
        } else if freshness < self.cfg.freshness_target {
            self.qod_level = self.qod_level.saturating_sub(self.cfg.qod_step);
        }
        let (lo, hi) = self.cfg.backlog_cap_range;
        self.backlog_cap_secs = self.backlog_cap_secs.clamp(lo, hi);
        self.rebuild_dropped_set();

        // Reset measurement windows.
        self.window_admitted_done = 0;
        self.window_misses = 0;
        self.window_dispatches = 0;
        self.window_fresh_dispatches = 0;
    }
}

impl Policy for QmfPolicy {
    fn name(&self) -> &str {
        "QMF"
    }

    fn init(&mut self, n_items: usize, _updates: &[UpdateSpec]) {
        self.access_counts = vec![0; n_items];
        self.update_counts = vec![0; n_items];
        self.dropped = vec![false; n_items];
    }

    fn on_query_arrival(&mut self, q: &QuerySpec, sys: &SnapshotView<'_>) -> AdmissionDecision {
        let backlog = sys.update_backlog.as_secs_f64() + sys.query_backlog().as_secs_f64();
        if backlog + q.exec_time.as_secs_f64() > self.backlog_cap_secs {
            self.rejected += 1;
            AdmissionDecision::Reject
        } else {
            AdmissionDecision::Admit
        }
    }

    fn on_version_arrival(
        &mut self,
        item: DataId,
        _now: SimTime,
        _sys: &SnapshotView<'_>,
    ) -> UpdateAction {
        self.update_counts[item.index()] += 1;
        if self.dropped[item.index()] {
            UpdateAction::Skip
        } else {
            UpdateAction::Apply
        }
    }

    fn on_query_dispatch(&mut self, q: &QuerySpec, freshness: f64) {
        for d in &q.items {
            self.access_counts[d.index()] += 1;
        }
        self.window_dispatches += 1;
        if freshness >= q.freshness_req {
            self.window_fresh_dispatches += 1;
        }
    }

    fn on_query_outcome(&mut self, _q: &QuerySpec, outcome: Outcome) {
        match outcome {
            Outcome::Rejected => {}
            Outcome::DeadlineMiss => {
                self.window_admitted_done += 1;
                self.window_misses += 1;
            }
            Outcome::Success | Outcome::DataStale => {
                self.window_admitted_done += 1;
            }
        }
    }

    fn on_tick(
        &mut self,
        now: SimTime,
        sys: &SnapshotView<'_>,
    ) -> Vec<unit_core::policy::ControlSignal> {
        if now.saturating_since(self.last_adaptation) >= self.cfg.adaptation_period {
            self.adapt(now, sys);
        }
        Vec::new()
    }

    fn checkpoint_state(&self, enc: &mut unit_core::checkpoint::Enc) {
        enc.put_u64(self.window_admitted_done);
        enc.put_u64(self.window_misses);
        enc.put_u64(self.window_dispatches);
        enc.put_u64(self.window_fresh_dispatches);
        enc.put_u64_slice(&self.access_counts);
        enc.put_u64_slice(&self.update_counts);
        enc.put_usize(self.dropped.len());
        for &d in &self.dropped {
            enc.put_bool(d);
        }
        enc.put_usize(self.qod_level);
        enc.put_f64(self.backlog_cap_secs);
        enc.put_f64(self.integral);
        enc.put_u64(self.last_adaptation.0);
        enc.put_u64(self.adaptations);
        enc.put_u64(self.rejected);
    }

    fn restore_state(
        &mut self,
        dec: &mut unit_core::checkpoint::Dec<'_>,
    ) -> Result<(), unit_core::checkpoint::CheckpointError> {
        use unit_core::checkpoint::CheckpointError;
        self.window_admitted_done = dec.take_u64()?;
        self.window_misses = dec.take_u64()?;
        self.window_dispatches = dec.take_u64()?;
        self.window_fresh_dispatches = dec.take_u64()?;
        let access = dec.take_u64_vec()?;
        let update = dec.take_u64_vec()?;
        let n_dropped = dec.take_usize()?;
        if access.len() != self.access_counts.len()
            || update.len() != self.update_counts.len()
            || n_dropped != self.dropped.len()
        {
            return Err(CheckpointError::Mismatch {
                what: "QMF table size",
            });
        }
        self.access_counts = access;
        self.update_counts = update;
        for d in &mut self.dropped {
            *d = dec.take_bool()?;
        }
        self.qod_level = dec.take_usize()?;
        self.backlog_cap_secs = dec.take_f64()?;
        self.integral = dec.take_f64()?;
        self.last_adaptation = SimTime(dec.take_u64()?);
        self.adaptations = dec.take_u64()?;
        self.rejected = dec.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::snapshot::SystemSnapshot;
    use unit_core::time::SimDuration;
    use unit_core::types::QueryId;

    fn query(exec_s: u64) -> QuerySpec {
        QuerySpec {
            id: QueryId(0),
            arrival: SimTime::ZERO,
            items: vec![DataId(0)],
            exec_time: SimDuration::from_secs(exec_s),
            relative_deadline: SimDuration::from_secs(60),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn policy() -> QmfPolicy {
        let mut p = QmfPolicy::default();
        p.init(8, &[]);
        p
    }

    #[test]
    fn admits_under_the_backlog_cap_rejects_above() {
        let mut p = policy();
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        assert!(p.on_query_arrival(&query(2), &sys.view()).is_admit());
        // Pile 800s of update backlog: over the 500s default cap.
        sys.update_backlog = SimDuration::from_secs(800);
        assert!(!p.on_query_arrival(&query(2), &sys.view()).is_admit());
    }

    #[test]
    fn applies_versions_until_qod_degrades() {
        let mut p = policy();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        assert!(p
            .on_version_arrival(DataId(1), SimTime::from_secs(1), &sys.view())
            .is_apply());

        // Window: misses above target, freshness perfect -> overloaded path
        // degrades QoD.
        for _ in 0..10 {
            p.on_query_dispatch(&query(1), 1.0);
            p.on_query_outcome(&query(1), Outcome::DeadlineMiss);
        }
        let mut busy = SystemSnapshot::empty(SimTime::from_secs(10));
        busy.recent_utilization = 1.0;
        p.adapt(SimTime::from_secs(10), &busy.view());
        assert_eq!(p.qod_level(), 8); // step clamped to n_items
                                      // All items' streams are now dropped.
        assert!(!p
            .on_version_arrival(DataId(1), SimTime::from_secs(11), &sys.view())
            .is_apply());
    }

    #[test]
    fn low_freshness_under_overload_tightens_admission_instead() {
        let mut p = policy();
        for _ in 0..10 {
            p.on_query_dispatch(&query(1), 0.0); // everything stale
            p.on_query_outcome(&query(1), Outcome::DeadlineMiss);
        }
        let cap_before = p.backlog_cap_secs();
        let mut busy = SystemSnapshot::empty(SimTime::from_secs(10));
        busy.recent_utilization = 1.0;
        p.adapt(SimTime::from_secs(10), &busy.view());
        assert!(p.backlog_cap_secs() < cap_before);
        assert_eq!(p.qod_level(), 0, "freshness at the floor: do not degrade");
    }

    #[test]
    fn underutilized_low_freshness_restores_updates() {
        let mut p = policy();
        // First degrade.
        for _ in 0..10 {
            p.on_query_dispatch(&query(1), 1.0);
            p.on_query_outcome(&query(1), Outcome::DeadlineMiss);
        }
        let mut busy = SystemSnapshot::empty(SimTime::from_secs(10));
        busy.recent_utilization = 1.0;
        p.adapt(SimTime::from_secs(10), &busy.view());
        assert!(p.qod_level() > 0);
        // Then: idle CPU, stale dispatches -> upgrade.
        for _ in 0..10 {
            p.on_query_dispatch(&query(1), 0.0);
            p.on_query_outcome(&query(1), Outcome::Success);
        }
        let idle = SystemSnapshot::empty(SimTime::from_secs(20));
        p.adapt(SimTime::from_secs(20), &idle.view());
        assert_eq!(p.qod_level(), 0);
    }

    #[test]
    fn healthy_windows_raise_the_admission_cap() {
        let mut p = policy();
        for _ in 0..20 {
            p.on_query_dispatch(&query(1), 1.0);
            p.on_query_outcome(&query(1), Outcome::Success);
        }
        let cap_before = p.backlog_cap_secs();
        let idle = SystemSnapshot::empty(SimTime::from_secs(10));
        p.adapt(SimTime::from_secs(10), &idle.view());
        assert!(p.backlog_cap_secs() >= cap_before);
    }

    #[test]
    fn dropped_set_prefers_low_access_update_ratio() {
        let mut p = policy();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        // Item 0: heavily updated, never read. Item 1: updated and read.
        for _ in 0..20 {
            let _ = p.on_version_arrival(DataId(0), SimTime::from_secs(1), &sys.view());
            let _ = p.on_version_arrival(DataId(1), SimTime::from_secs(1), &sys.view());
        }
        let mut q = query(1);
        q.items = vec![DataId(1)];
        for _ in 0..20 {
            p.on_query_dispatch(&q, 1.0);
        }
        let cfg = QmfConfig {
            qod_step: 1,
            ..QmfConfig::default()
        };
        let mut p2 = QmfPolicy::new(cfg);
        p2.init(8, &[]);
        p2.access_counts = p.access_counts.clone();
        p2.update_counts = p.update_counts.clone();
        p2.qod_level = 1;
        p2.rebuild_dropped_set();
        assert!(p2.dropped[0], "never-read hot-updated item dropped first");
        assert!(!p2.dropped[1]);
    }

    #[test]
    fn tick_adapts_once_per_period() {
        let mut p = policy();
        let sys = SystemSnapshot::empty(SimTime::from_secs(100));
        let _ = p.on_tick(SimTime::from_secs(100), &sys.view());
        assert_eq!(p.adaptations(), 0, "period not elapsed yet");
        let sys = SystemSnapshot::empty(SimTime::from_secs(500));
        let _ = p.on_tick(SimTime::from_secs(500), &sys.view());
        assert_eq!(p.adaptations(), 1);
        let sys = SystemSnapshot::empty(SimTime::from_secs(600));
        let _ = p.on_tick(SimTime::from_secs(600), &sys.view());
        assert_eq!(p.adaptations(), 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use unit_core::snapshot::SystemSnapshot;
    use unit_core::types::{DataId, Outcome, QueryId};

    fn query(exec_s: u64) -> QuerySpec {
        QuerySpec {
            id: QueryId(0),
            arrival: SimTime::ZERO,
            items: vec![DataId(0)],
            exec_time: SimDuration::from_secs(exec_s),
            relative_deadline: SimDuration::from_secs(60),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    #[test]
    fn chronic_misses_drive_the_cap_to_its_floor() {
        let mut p = QmfPolicy::default();
        p.init(8, &[]);
        // Ten adaptation rounds of 100% miss ratio with fine freshness.
        for round in 0..10 {
            for _ in 0..20 {
                p.on_query_dispatch(&query(1), 1.0);
                p.on_query_outcome(&query(1), Outcome::DeadlineMiss);
            }
            let mut sys = SystemSnapshot::empty(SimTime::from_secs(100 * (round + 1)));
            sys.recent_utilization = 1.0;
            p.adapt(SimTime::from_secs(100 * (round + 1)), &sys.view());
        }
        let (floor, _) = QmfConfig::default().backlog_cap_range;
        assert!(
            (p.backlog_cap_secs() - floor).abs() < 1e-9,
            "cap {} should hit the floor {floor}",
            p.backlog_cap_secs()
        );
        // At the floor, QMF rejects essentially everything with backlog.
        let mut sys = SystemSnapshot::empty(SimTime::from_secs(2_000));
        sys.update_backlog = SimDuration::from_secs(200);
        assert!(!p.on_query_arrival(&query(1), &sys.view()).is_admit());
    }

    #[test]
    fn recovery_reopens_admission() {
        let mut p = QmfPolicy::default();
        p.init(8, &[]);
        // Crash the cap...
        for _ in 0..20 {
            p.on_query_outcome(&query(1), Outcome::DeadlineMiss);
        }
        let mut busy = SystemSnapshot::empty(SimTime::from_secs(100));
        busy.recent_utilization = 1.0;
        p.adapt(SimTime::from_secs(100), &busy.view());
        let crashed = p.backlog_cap_secs();
        // ...then feed clean windows: the PI loop must raise it again.
        for round in 0..20 {
            for _ in 0..20 {
                p.on_query_outcome(&query(1), Outcome::Success);
            }
            let idle = SystemSnapshot::empty(SimTime::from_secs(200 + 100 * round));
            p.adapt(SimTime::from_secs(200 + 100 * round), &idle.view());
        }
        assert!(
            p.backlog_cap_secs() > crashed,
            "cap must recover: {} -> {}",
            crashed,
            p.backlog_cap_secs()
        );
    }

    #[test]
    fn rebuild_with_no_update_history_drops_nothing() {
        let mut p = QmfPolicy::default();
        p.init(4, &[]);
        p.qod_level = 4;
        p.rebuild_dropped_set();
        // No item has recorded updates -> nothing qualifies for dropping.
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        for i in 0..4 {
            assert!(p
                .on_version_arrival(DataId(i), SimTime::from_secs(1), &sys.view())
                .is_apply());
        }
    }

    #[test]
    fn empty_windows_adapt_without_panicking() {
        let mut p = QmfPolicy::default();
        p.init(4, &[]);
        let sys = SystemSnapshot::empty(SimTime::from_secs(500));
        p.adapt(SimTime::from_secs(500), &sys.view());
        assert_eq!(p.adaptations(), 1);
        // Miss ratio of an empty window reads as 0 (meeting the target).
        assert!(p.backlog_cap_secs() >= QmfConfig::default().initial_backlog_cap);
    }
}
