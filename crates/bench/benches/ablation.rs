//! Runtime cost of the UNIT design variants DESIGN.md calls out (the
//! *quality* comparison lives in `cargo run -p unit-bench --bin ablation`;
//! this bench shows none of the variants changes the simulator's speed
//! class).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use unit_bench::default_workload_plan;
use unit_core::config::{UnitConfig, VictimWeighting};
use unit_core::modulation::UpgradeRule;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::run_simulation;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn variants() -> Vec<(&'static str, UnitConfig)> {
    let base = UnitConfig::default();
    vec![
        ("default", base.clone()),
        (
            "shift_min_weights",
            UnitConfig {
                victim_weighting: VictimWeighting::ShiftMin,
                ..base.clone()
            },
        ),
        (
            "linear_upgrade",
            UnitConfig {
                upgrade_rule: UpgradeRule::LinearIdealStep,
                ..base.clone()
            },
        ),
        (
            "paper_literal_tickets",
            UnitConfig {
                access_ticket_scale: Some(1.0),
                ..base.clone()
            },
        ),
        (
            "no_admission_control",
            UnitConfig {
                admission_enabled: false,
                ..base.clone()
            },
        ),
    ]
}

fn ablation_runtime(c: &mut Criterion) {
    let plan = default_workload_plan(32);
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let cfg = plan.sim_config(UsmWeights::naive());

    let mut group = c.benchmark_group("unit_variant_runtime");
    group.sample_size(15);
    for (name, ucfg) in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ucfg, |b, ucfg| {
            b.iter(|| {
                black_box(run_simulation(
                    &bundle.trace,
                    UnitPolicy::new(ucfg.clone()),
                    cfg,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_runtime);
criterion_main!(benches);
