//! Microbenchmarks for the core data structures: the operations the
//! admission-control and modulation paths execute per event.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unit_core::admission::AdmissionControl;
use unit_core::controller::{Lbc, LbcConfig};
use unit_core::freshness::FreshnessTable;
use unit_core::lottery::WeightedSampler;
use unit_core::snapshot::{QueueEntryView, SystemSnapshot};
use unit_core::tickets::TicketTable;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QueryId, QuerySpec};
use unit_core::usm::UsmWeights;

fn lottery(c: &mut Criterion) {
    let mut group = c.benchmark_group("lottery");
    for n in [256usize, 1024, 16384] {
        let weights: Vec<f64> = (0..n).map(|i| ((i * 37) % 100) as f64 + 1.0).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| WeightedSampler::from_weights(black_box(&weights)));
        });
        let sampler = WeightedSampler::from_weights(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::new("sample", n), &n, |b, _| {
            b.iter(|| sampler.sample(&mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("set", n), &n, |b, _| {
            let mut s = WeightedSampler::from_weights(&weights);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 17) % n;
                s.set(i, (i % 50) as f64 + 0.5);
            });
        });
    }
    group.finish();
}

fn tickets(c: &mut Criterion) {
    let mut group = c.benchmark_group("tickets");
    let n = 1024;
    group.bench_function("on_query_access", |b| {
        let mut t = TicketTable::new(n, 0.9, 96.0);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 13) % n;
            t.on_query_access(i, 0.02);
        });
    });
    group.bench_function("on_update", |b| {
        let mut t = TicketTable::with_scale(n, 0.9, 96.0, 28.0);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 13) % n;
            t.on_update(i, 100.0);
        });
    });
    group.bench_function("shifted_weights_1024", |b| {
        let mut t = TicketTable::new(n, 0.9, 96.0);
        for i in 0..n {
            t.on_update(i, (i % 150) as f64);
        }
        b.iter(|| black_box(t.shifted_weights()));
    });
    group.bench_function("clamped_weights_1024", |b| {
        let mut t = TicketTable::new(n, 0.9, 96.0);
        for i in 0..n {
            t.on_update(i, (i % 150) as f64);
        }
        b.iter(|| black_box(t.clamped_weights()));
    });
    group.finish();
}

fn freshness(c: &mut Criterion) {
    let mut group = c.benchmark_group("freshness");
    let mut table = FreshnessTable::new(1024);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..5_000 {
        table.record_arrival(DataId(rng.gen_range(0..1024)), SimTime::from_secs(1));
    }
    let read_set: Vec<DataId> = (0..4).map(|i| DataId(i * 100)).collect();
    group.bench_function("record_arrival", |b| {
        b.iter(|| table.record_arrival(black_box(DataId(512)), SimTime::from_secs(2)));
    });
    group.bench_function("read_set_freshness_4", |b| {
        b.iter(|| black_box(table.read_set_freshness(&read_set)));
    });
    group.bench_function("stale_items_4", |b| {
        b.iter(|| black_box(table.stale_items(&read_set, 0.9)));
    });
    group.finish();
}

fn admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission");
    let weights = UsmWeights::low_high_cfm();
    let ac = AdmissionControl::default();
    let query = QuerySpec {
        id: QueryId(1),
        arrival: SimTime::from_secs(1_000),
        items: vec![DataId(0)],
        exec_time: SimDuration::from_secs(1),
        relative_deadline: SimDuration::from_secs(50),
        freshness_req: 0.9,
        pref_class: 0,
    };
    for queue_len in [4usize, 32, 256] {
        let snapshot = SystemSnapshot {
            now: SimTime::from_secs(1_000),
            queries: (0..queue_len)
                .map(|i| QueueEntryView {
                    id: QueryId(i as u64),
                    deadline: SimTime::from_secs(1_000 + 10 * i as u64),
                    remaining: SimDuration::from_secs(1),
                    pref_class: 0,
                })
                .collect(),
            update_backlog: SimDuration::from_secs(10),
            recent_utilization: 0.8,
        };
        group.bench_with_input(
            BenchmarkId::new("evaluate", queue_len),
            &queue_len,
            |b, _| {
                b.iter(|| black_box(ac.evaluate(&query, &snapshot.view(), &weights)));
            },
        );
    }
    group.finish();
}

fn controller(c: &mut Criterion) {
    c.bench_function("lbc_record_and_activate", |b| {
        let mut lbc = Lbc::new(UsmWeights::low_high_cfm(), LbcConfig::default(), 5);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            lbc.record(match i % 4 {
                0 => Outcome::Success,
                1 => Outcome::Rejected,
                2 => Outcome::DeadlineMiss,
                _ => Outcome::DataStale,
            });
            if i % 32 == 0 {
                black_box(lbc.activate(SimTime::from_secs(i), 0.9));
            }
        });
    });
}

criterion_group!(benches, lottery, tickets, freshness, admission, controller);
criterion_main!(benches);
