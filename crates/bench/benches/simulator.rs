//! End-to-end simulator throughput: how fast the server replays a scaled
//! Table 1 workload under each policy, plus workload-generation cost.
//! These are the numbers that justify running every paper figure at full
//! scale (3.85M simulated seconds in under a second per run).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_bench::default_workload_plan;
use unit_core::config::UnitConfig;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::run_simulation;
use unit_workload::{generate_queries, UpdateDistribution, UpdateVolume};

fn simulation_throughput(c: &mut Criterion) {
    let plan = default_workload_plan(32); // ~3.4k queries, ~940 updates
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let cfg = plan.sim_config(UsmWeights::naive());

    let mut group = c.benchmark_group("simulate_med_unif_scale32");
    group.sample_size(20);
    group.bench_function("imu", |b| {
        b.iter(|| black_box(run_simulation(&bundle.trace, ImuPolicy::new(), cfg)));
    });
    group.bench_function("odu", |b| {
        b.iter(|| black_box(run_simulation(&bundle.trace, OduPolicy::new(), cfg)));
    });
    group.bench_function("qmf", |b| {
        b.iter(|| black_box(run_simulation(&bundle.trace, QmfPolicy::default(), cfg)));
    });
    group.bench_function("unit", |b| {
        b.iter(|| {
            black_box(run_simulation(
                &bundle.trace,
                UnitPolicy::new(UnitConfig::default()),
                cfg,
            ))
        });
    });
    group.finish();
}

fn volume_scaling(c: &mut Criterion) {
    // Simulator cost as the update volume grows (event count scales).
    let plan = default_workload_plan(32);
    let mut group = c.benchmark_group("simulate_unit_by_volume");
    group.sample_size(20);
    for volume in UpdateVolume::ALL {
        let bundle = plan.bundle(volume, UpdateDistribution::Uniform);
        let cfg = plan.sim_config(UsmWeights::naive());
        group.bench_with_input(
            BenchmarkId::from_parameter(volume.short_name()),
            &volume,
            |b, _| {
                b.iter(|| {
                    black_box(run_simulation(
                        &bundle.trace,
                        UnitPolicy::new(UnitConfig::default()),
                        cfg,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let plan = default_workload_plan(8);
    let mut group = c.benchmark_group("workload");
    group.sample_size(20);
    group.bench_function("generate_queries_13k", |b| {
        b.iter(|| black_box(generate_queries(&plan.query_cfg)));
    });
    group.bench_function("generate_bundle_med_unif", |b| {
        b.iter(|| black_box(plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform)));
    });
    group.finish();
}

criterion_group!(
    benches,
    simulation_throughput,
    volume_scaling,
    workload_generation
);
criterion_main!(benches);
