//! Ablation study: how much each UNIT design choice contributes, and how
//! the documented deviations from the paper's literal text behave.
//!
//! Runs UNIT variants over `med-unif` (the Fig. 5/6 workload) and reports
//! the resulting USM and outcome decomposition. Backs the design decisions
//! recorded in DESIGN.md with data.

use unit_baselines::DeferrablePolicy;
use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, f, fs, text_table};
use unit_bench::row;
use unit_bench::{default_workload_plan, PolicyKind};
use unit_core::config::{UnitConfig, VictimWeighting};
use unit_core::modulation::UpgradeRule;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::{run_simulation, SchedulingDiscipline};
use unit_workload::{UpdateDistribution, UpdateVolume};

fn variants(base: UnitConfig) -> Vec<(&'static str, UnitConfig)> {
    vec![
        ("default", base.clone()),
        (
            "no admission control",
            UnitConfig {
                admission_enabled: false,
                ..base.clone()
            },
        ),
        (
            "no modulation (degrade cap 1x)",
            UnitConfig {
                max_degradation_factor: 1.0,
                ..base.clone()
            },
        ),
        (
            "shift-min victim weights (paper literal)",
            UnitConfig {
                victim_weighting: VictimWeighting::ShiftMin,
                ..base.clone()
            },
        ),
        (
            "raw qe/qt access tickets (paper literal)",
            UnitConfig {
                access_ticket_scale: Some(1.0),
                ..base.clone()
            },
        ),
        (
            "linear upgrade rule (Eq. 10 as printed)",
            UnitConfig {
                upgrade_rule: UpgradeRule::LinearIdealStep,
                ..base.clone()
            },
        ),
        (
            "unbudgeted halving upgrades",
            UnitConfig {
                upgrade_step_util: 1.0, // effectively no budget
                ..base.clone()
            },
        ),
        (
            "small degrade budget (1%)",
            UnitConfig {
                modulation_step_util: 0.01,
                ..base.clone()
            },
        ),
        (
            "sharp lottery (weights^2)",
            UnitConfig {
                lottery_sharpness: 2.0,
                ..base.clone()
            },
        ),
        ("sluggish controller (grace 500s)", {
            let mut c = base.clone();
            c.lbc.grace_period = unit_core::time::SimDuration::from_secs(500);
            c
        }),
    ]
}

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::naive();
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    println!(
        "Ablation study: UNIT variants on med-unif, scale 1/{} (naive USM)\n",
        args.scale
    );

    let header = row!["variant", "USM", "Rs", "Rr", "Rfm", "Rfs", "applied%"];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (name, cfg) in variants(plan.unit_config(weights)) {
        let report = run_simulation(
            &bundle.trace,
            UnitPolicy::new(cfg),
            plan.sim_config(weights),
        );
        let [rs, rr, rfm, rfs] = report.ratios();
        rows.push(row![
            name,
            fs(report.average_usm(), 3),
            f(rs, 3),
            f(rr, 3),
            f(rfm, 3),
            f(rfs, 3),
            format!("{:.1}", 100.0 * report.applied_ratio()),
        ]);
        csv_rows.push(row![
            name,
            f(report.average_usm(), 4),
            f(rs, 4),
            f(rr, 4),
            f(rfm, 4),
            f(rfs, 4),
            f(report.applied_ratio(), 4),
        ]);
    }

    // Substrate ablation: the scheduling discipline §3.1 fixes.
    rows.push(row![
        "--- scheduling discipline ---",
        "",
        "",
        "",
        "",
        "",
        ""
    ]);
    for (name, discipline) in [
        ("global EDF across classes", SchedulingDiscipline::GlobalEdf),
        ("queries always first", SchedulingDiscipline::QueryFirst),
    ] {
        let report = run_simulation(
            &bundle.trace,
            UnitPolicy::new(plan.unit_config(weights)),
            plan.sim_config(weights).with_discipline(discipline),
        );
        let [rs, rr, rfm, rfs] = report.ratios();
        rows.push(row![
            name,
            fs(report.average_usm(), 3),
            f(rs, 3),
            f(rr, 3),
            f(rfm, 3),
            f(rfs, 3),
            format!("{:.1}", 100.0 * report.applied_ratio()),
        ]);
        csv_rows.push(row![
            name,
            f(report.average_usm(), 4),
            f(rs, 4),
            f(rr, 4),
            f(rfm, 4),
            f(rfs, 4),
            f(report.applied_ratio(), 4),
        ]);
    }

    // Related-work policy: deferrable update scheduling (Xiong et al.).
    rows.push(row![
        "--- related-work policies ---",
        "",
        "",
        "",
        "",
        "",
        ""
    ]);
    {
        let report = run_simulation(
            &bundle.trace,
            DeferrablePolicy::default(),
            plan.sim_config(weights),
        );
        let [rs, rr, rfm, rfs] = report.ratios();
        rows.push(row![
            "DEF: deferrable updates (RTSS'05)",
            fs(report.average_usm(), 3),
            f(rs, 3),
            f(rr, 3),
            f(rfm, 3),
            f(rfs, 3),
            format!("{:.1}", 100.0 * report.applied_ratio()),
        ]);
    }

    // Reference line: the strongest baseline on this workload.
    let qmf = unit_bench::run_policy(&plan, &bundle, PolicyKind::Qmf, weights);
    rows.push(row![
        "(QMF reference)",
        fs(qmf.report.average_usm(), 3),
        f(qmf.report.ratios()[0], 3),
        f(qmf.report.ratios()[1], 3),
        f(qmf.report.ratios()[2], 3),
        f(qmf.report.ratios()[3], 3),
        format!("{:.1}", 100.0 * qmf.report.applied_ratio()),
    ]);

    println!("{}", text_table(&header, &rows));

    if let Some(path) = args.write_csv(
        "ablation.csv",
        &csv(
            &row!["variant", "usm", "rs", "rr", "rfm", "rfs", "applied"],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
