//! Seeded chaos sweep: random fault plans vs the invariant oracles, with
//! greedy shrinking of every failure to a minimal JSON reproducer.
//!
//! Each plan is drawn from `split_seed(seed, index)`, so any failure line
//! printed by a sweep reproduces from the sweep seed and the plan index
//! alone. Failures are shrunk (empty shards → drop components → bisect
//! windows) and written as [`ChaosFixture`] JSON under the output
//! directory; commit one to `crates/bench/tests/fixtures/chaos/` to turn
//! it into a permanent regression test.
//!
//! `--fixture-broken` plants a deliberately false oracle (no shard ever
//! recovers) and exits 0 only if the harness finds and shrinks the
//! planted violation — an end-to-end self test of the find+shrink
//! machinery.
//!
//! Usage: `chaos [--plans N] [--seed S] [--scale N] [--shards N]
//! [--fixture-broken] [--out DIR | --no-out]`.

use unit_bench::chaos::{sweep, ChaosFixture, ChaosWorkload, Oracle};
use unit_bench::cli::Flags;

struct Args {
    plans: u64,
    seed: u64,
    scale: u64,
    shards: usize,
    fixture_broken: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        plans: 50,
        seed: 0xC4A0_5EED,
        scale: 24,
        shards: 4,
        fixture_broken: false,
        out: Some("results/chaos".to_string()),
    };
    let mut fl = Flags::from_env(
        "usage: chaos [--plans N] [--seed S] [--scale N] [--shards N] \
         [--fixture-broken] [--out DIR | --no-out]",
    );
    while let Some(arg) = fl.next_flag() {
        match arg.as_str() {
            "--plans" => args.plans = fl.parse(&arg),
            "--seed" => args.seed = fl.parse(&arg),
            "--scale" => args.scale = fl.parse(&arg),
            "--shards" => args.shards = fl.parse(&arg),
            "--fixture-broken" => args.fixture_broken = true,
            "--out" => args.out = Some(fl.value(&arg)),
            "--no-out" => args.out = None,
            other => fl.unknown(other),
        }
    }
    if args.scale == 0 {
        fl.fail("--scale must be >= 1");
    }
    if args.shards == 0 {
        fl.fail("--shards must be >= 1");
    }
    args
}

fn write_fixture(dir: &str, fixture: &ChaosFixture, index: u64) -> Option<String> {
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create output directory {dir}");
        return None;
    }
    let path = format!("{dir}/{}-plan{index}.json", fixture.oracle);
    match std::fs::write(&path, fixture.to_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {path}: {e}");
            None
        }
    }
}

fn main() {
    let args = parse_args();
    let w = ChaosWorkload::new(args.scale, args.shards, args.seed);
    let oracles: Vec<Oracle> = if args.fixture_broken {
        let mut o = Oracle::REAL.to_vec();
        o.push(Oracle::PlantedNoRecoveries);
        o
    } else {
        Oracle::REAL.to_vec()
    };

    println!(
        "chaos: {} plans, seed {:#x}, scale 1/{}, {} shards, {} queries, horizon {}s{}",
        args.plans,
        args.seed,
        args.scale,
        args.shards,
        w.n_queries(),
        w.horizon().0 / 1_000,
        if args.fixture_broken {
            " [planted broken oracle]"
        } else {
            ""
        }
    );
    println!(
        "  oracles: {}\n",
        oracles
            .iter()
            .map(|o| o.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let report = sweep(&w, args.seed, args.plans, &oracles, true);

    println!(
        "\n  {} plans, {} oracle evaluations, {} failure(s)",
        report.plans,
        report.oracle_runs,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "\n  FAIL plan {} (seed {:#018x}) oracle {}:",
            f.plan_index,
            f.plan_seed,
            f.oracle.name()
        );
        println!("    original: {}", f.message);
        println!(
            "    shrunk to {:?} components in {} runs: {}",
            unit_bench::chaos::plan_components(&f.shrunk.plan),
            f.shrunk.oracle_runs,
            f.shrunk.message
        );
        let fixture = ChaosFixture {
            description: format!(
                "shrunk reproducer: oracle '{}' on sweep seed {:#x} plan {}",
                f.oracle.name(),
                args.seed,
                f.plan_index
            ),
            seed: args.seed,
            scale: args.scale,
            n_shards: args.shards,
            oracle: f.oracle.name().to_string(),
            plan: f.shrunk.plan.clone(),
        };
        if let Some(dir) = &args.out {
            if let Some(path) = write_fixture(dir, &fixture, f.plan_index) {
                println!("    fixture written to {path}");
            }
        }
    }

    if args.fixture_broken {
        // Success means the harness *found* the planted violation — and
        // nothing else broke.
        let planted: Vec<_> = report
            .failures
            .iter()
            .filter(|f| f.oracle == Oracle::PlantedNoRecoveries)
            .collect();
        let real_failures = report.failures.len() - planted.len();
        if real_failures > 0 {
            eprintln!("\n  {real_failures} REAL failure(s) alongside the planted oracle");
            std::process::exit(1);
        }
        match planted.first() {
            Some(f) => {
                let (crashes, lose_state, streams, bursts) =
                    unit_bench::chaos::plan_components(&f.shrunk.plan);
                println!(
                    "\n  planted oracle found and shrunk: {crashes} crash ({lose_state} \
                     lose-state), {streams} stream, {bursts} burst"
                );
                if crashes + streams + bursts != 1 || lose_state != 1 {
                    eprintln!("  shrink did not reach a single lose-state window");
                    std::process::exit(1);
                }
                println!("  ok: find+shrink machinery verified");
            }
            None => {
                eprintln!("\n  planted broken oracle was NOT found — harness is blind");
                std::process::exit(1);
            }
        }
    } else if !report.failures.is_empty() {
        std::process::exit(1);
    } else {
        println!("  ok: every oracle held on every plan");
    }
}
