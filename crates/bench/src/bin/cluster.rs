//! Cluster scaling experiment: the fig3 workload (UNIT policy, med-unif
//! bundle) on a sharded cluster at 1/2/4/8 shards under every routing
//! policy, reporting cluster USM and wall-clock per cell and writing
//! `BENCH_cluster.json` at the repo root.
//!
//! Usage: `cluster [--scale N] [--seed S] [--runs R] [--epoch-secs E]
//! [--workers W] [--out FILE | --no-out] [--trace-out FILE]
//! [--assert-scaling]`.
//!
//! Each cell is timed twice — on the [`WholeShard`] path (one thread runs a
//! shard start to finish) and on the [`EpochParallel`] path (all shards step
//! the same virtual-time epoch in lockstep) — with best-of-`R` walls, and
//! the two USMs are cross-checked (the full bit-level identity lives in
//! `crates/cluster/tests/epoch_differential.rs`). Cells also record
//! per-shard serial wall times (each shard slice re-run alone, so skew is
//! visible) and the update-stream fan-out that demand filtering would keep
//! per shard.
//!
//! `--assert-scaling` exits non-zero unless, for every routing policy, the
//! 8-shard epoch-parallel *critical path* — the slowest shard's own
//! build + stepping wall, i.e. the wall-clock a host with one core per
//! shard would see — is no worse than the 1-shard shard wall on the
//! filtered feature path. This is the scaling smoke used by CI; the
//! per-shard walls behind it live in every cell's
//! `shard_wall_secs_filtered`. (The *aggregate* 8-shard wall is also
//! recorded, but on a host with fewer cores than shards it serializes the
//! shards' extra admitted work — 8 shards admit far more than 1 — so it is
//! not the scalability signal.)
//!
//! The 1-shard rows double as a smoke check of the differential identity:
//! their USM must equal the plain single-server engine's USM on the same
//! bundle (the full bit-level digest check lives in
//! `crates/cluster/tests/differential.rs`).
//!
//! [`WholeShard`]: unit_cluster::ExecutionMode::WholeShard
//! [`EpochParallel`]: unit_cluster::ExecutionMode::EpochParallel

use std::time::Instant;
use unit_bench::cli::Flags;
use unit_bench::render::render_event_timeline;
use unit_bench::{default_workload_plan, ExperimentPlan};
use unit_cluster::{ClusterConfig, ClusterReport, RoutingPolicy};
use unit_core::split_seed;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_obs::RingRecorder;
use unit_sim::{run_simulation, SimConfig};
use unit_workload::{
    slice_trace, slice_trace_filtered, ItemPartition, TraceBundle, UpdateDistribution,
    UpdateFanout, UpdateVolume,
};

struct Args {
    scale: u64,
    seed: u64,
    runs: usize,
    epoch_secs: u64,
    workers: usize,
    out: Option<String>,
    trace_out: Option<String>,
    assert_scaling: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 8,
        seed: 0x5EED_0001,
        runs: 3,
        epoch_secs: 0, // 0 = horizon / 64
        workers: 0,    // 0 = one per shard
        out: Some("BENCH_cluster.json".to_string()),
        trace_out: None,
        assert_scaling: false,
    };
    let mut fl = Flags::from_env(
        "usage: cluster [--scale N] [--seed S] [--runs R] [--epoch-secs E] \
         [--workers W] [--out FILE | --no-out] [--trace-out FILE] \
         [--assert-scaling]",
    );
    while let Some(arg) = fl.next_flag() {
        match arg.as_str() {
            "--scale" => args.scale = fl.parse(&arg),
            "--seed" => args.seed = fl.parse(&arg),
            "--runs" => args.runs = fl.parse(&arg),
            "--epoch-secs" => args.epoch_secs = fl.parse(&arg),
            "--workers" => args.workers = fl.parse(&arg),
            "--out" => args.out = Some(fl.value(&arg)),
            "--no-out" => args.out = None,
            "--trace-out" => args.trace_out = Some(fl.value(&arg)),
            "--assert-scaling" => args.assert_scaling = true,
            other => fl.unknown(other),
        }
    }
    args
}

/// Write the recorded stream to `path` (`.csv` → CSV, else JSONL).
fn write_trace(path: &str, events: &[unit_obs::ObsEvent]) {
    let result = if std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e == "csv")
    {
        unit_obs::write_csv(path, events)
    } else {
        unit_obs::write_jsonl(path, events)
    };
    match result {
        Ok(()) => println!("\n  event trace written to {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

fn run_cluster(
    cluster: ClusterConfig,
    bundle: &TraceBundle,
    sim: SimConfig,
    unit: &unit_core::config::UnitConfig,
) -> ClusterReport {
    cluster
        .build()
        .run_unit(&bundle.trace, sim, unit)
        .expect("valid cluster config")
        .into_plain()
        .expect("fault-free run")
}

/// Best-of-`runs` wall-clock for one cluster configuration; returns the
/// report of the first run (all runs are bit-identical), the best
/// aggregate wall, and the best critical path (slowest shard's own wall —
/// what the run costs on a host with one core per shard).
fn timed_cluster(
    cluster: ClusterConfig,
    bundle: &TraceBundle,
    sim: SimConfig,
    unit: &unit_core::config::UnitConfig,
    runs: usize,
) -> (ClusterReport, f64, f64) {
    let mut best = f64::INFINITY;
    let mut best_crit = f64::INFINITY;
    let mut report = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let r = run_cluster(cluster, bundle, sim, unit);
        best = best.min(start.elapsed().as_secs_f64());
        best_crit = best_crit.min(r.critical_path_secs().expect("shards ran"));
        report.get_or_insert(r);
    }
    (report.expect("at least one run"), best, best_crit)
}

/// Serially re-run each shard slice alone and time it, exactly as the
/// cluster executes it (same slicing, same split seed), so per-shard cost
/// skew is visible without any thread-scheduling noise.
fn shard_walls(
    plan: &ExperimentPlan,
    bundle: &TraceBundle,
    assignment: &[usize],
    n_shards: usize,
    seed: u64,
    sim: SimConfig,
    weights: UsmWeights,
) -> Vec<f64> {
    let shards = slice_trace(&bundle.trace, assignment, &ItemPartition::new(n_shards))
        .expect("cluster assignment");
    shards
        .iter()
        .enumerate()
        .map(|(s, shard_trace)| {
            let policy = UnitPolicy::new(
                plan.unit_config(weights)
                    .with_seed(split_seed(seed, s as u64)),
            );
            let start = Instant::now();
            let _ = run_simulation(shard_trace, policy, sim);
            start.elapsed().as_secs_f64()
        })
        .collect()
}

fn json_list<T: std::fmt::Display>(xs: impl IntoIterator<Item = T>) -> String {
    xs.into_iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let args = parse_args();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::low_high_cfm();
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let sim = plan.sim_config(weights);
    let unit = plan.unit_config(weights);
    let epoch = if args.epoch_secs == 0 {
        SimDuration::from_secs_f64((bundle.horizon.as_secs_f64() / 64.0).max(1.0))
    } else {
        SimDuration::from_secs(args.epoch_secs)
    };

    println!(
        "cluster: fig3 med-unif (UNIT per shard), scale 1/{}, {} queries, seed {:#x}",
        args.scale,
        bundle.trace.queries.len(),
        args.seed
    );
    println!(
        "  epoch {:.0} s, {} workers, best of {} runs per path\n",
        epoch.as_secs_f64(),
        if args.workers == 0 {
            "per-shard".to_string()
        } else {
            args.workers.to_string()
        },
        args.runs
    );
    println!(
        "  {:<16} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "routing", "shards", "usm", "whole_s", "epoch_s", "filt_s", "crit_s", "events/s", "events"
    );

    let mut rows = Vec::new();
    // (routing name, n_shards) -> filtered epoch-parallel critical path
    // (slowest shard's own wall), for --assert-scaling (the feature path
    // the scaling smoke gates).
    let mut epoch_wall_table = Vec::new();
    for routing in RoutingPolicy::ALL {
        for n_shards in [1usize, 2, 4, 8] {
            let base = ClusterConfig::new(n_shards)
                .with_routing(routing)
                .with_seed(args.seed);
            let (report, whole_wall, _) = timed_cluster(base, &bundle, sim, &unit, args.runs);
            let (epoch_report, epoch_wall, _) = timed_cluster(
                base.with_workers(args.workers).with_epoch(epoch),
                &bundle,
                sim,
                &unit,
                args.runs,
            );
            // The feature path: epoch-parallel stepping plus demand-filtered
            // update slicing (digests legitimately differ from the unfiltered
            // rows — see `ClusterConfig::filter_updates`). This is the cell
            // the scaling smoke gates.
            let (filtered_report, filtered_wall, filtered_crit) = timed_cluster(
                base.with_workers(args.workers)
                    .with_epoch(epoch)
                    .with_filtered_updates(),
                &bundle,
                sim,
                &unit,
                args.runs,
            );
            let usm = report.average_usm();
            assert_eq!(
                usm.to_bits(),
                epoch_report.average_usm().to_bits(),
                "epoch-parallel path diverged from whole-shard at {} x{n_shards}",
                routing.name()
            );
            let usm_filtered = filtered_report.average_usm();

            // The 4-shard least-load cell doubles as the --trace-out
            // subject (observation is digest-neutral, so the recorded
            // stream matches the table rows).
            if args.trace_out.is_some() && routing == RoutingPolicy::LeastLoad && n_shards == 4 {
                let mut rec = RingRecorder::unbounded();
                let observed = base
                    .build()
                    .with_observer(&mut rec)
                    .run_unit(&bundle.trace, sim, &unit)
                    .expect("valid cluster config")
                    .into_plain()
                    .expect("fault-free run");
                assert_eq!(observed.average_usm().to_bits(), usm.to_bits());
                let events = rec.into_events();
                println!("\n  event timeline (4 shards, least-load):");
                print!("{}", render_event_timeline(&events, 64));
                if let Some(path) = &args.trace_out {
                    write_trace(path, &events);
                }
                println!();
            }

            let events: u64 = report
                .shard_reports
                .iter()
                .map(|r| r.events_processed)
                .sum();
            let eps_whole = events as f64 / whole_wall;
            let eps_epoch = events as f64 / epoch_wall;
            let per_shard = report.queries_per_shard();
            let walls = shard_walls(
                &plan,
                &bundle,
                &report.assignment,
                n_shards,
                args.seed,
                sim,
                weights,
            );
            let partition = ItemPartition::new(n_shards);
            let (_, fanout): (_, UpdateFanout) =
                slice_trace_filtered(&bundle.trace, &report.assignment, &partition)
                    .expect("cluster assignment");
            println!(
                "  {:<16} {n_shards:>7} {usm:>10.4} {whole_wall:>10.3} {epoch_wall:>10.3} {filtered_wall:>10.3} {filtered_crit:>10.3} {eps_epoch:>12.0} {events:>9}",
                routing.name()
            );
            rows.push(format!(
                "    {{\"routing\": \"{}\", \"n_shards\": {n_shards}, \"usm\": {usm:.6}, \
                 \"usm_filtered\": {usm_filtered:.6}, \
                 \"wall_secs\": {whole_wall:.6}, \"wall_secs_epoch\": {epoch_wall:.6}, \
                 \"wall_secs_epoch_filtered\": {filtered_wall:.6}, \
                 \"critical_path_secs_filtered\": {filtered_crit:.6}, \
                 \"events\": {events}, \"events_per_sec\": {eps_whole:.1}, \
                 \"events_per_sec_epoch\": {eps_epoch:.1}, \
                 \"queries_per_shard\": [{}], \
                 \"shard_wall_secs\": [{}], \
                 \"shard_wall_secs_filtered\": [{}], \
                 \"update_streams_kept\": [{}], \"update_streams_dropped\": {}}}",
                routing.name(),
                json_list(&per_shard),
                json_list(walls.iter().map(|w| format!("{w:.6}"))),
                json_list(
                    filtered_report
                        .shard_walls
                        .iter()
                        .map(|w| format!("{w:.6}"))
                ),
                json_list(&fanout.kept_per_shard),
                fanout.dropped_streams,
            ));
            epoch_wall_table.push((routing.name(), n_shards, filtered_crit));
        }
    }

    if let Some(path) = args.out {
        let json = format!(
            "{{\n  \"bench\": \"cluster\",\n  \"workload\": \"fig3 med-unif\",\n  \"policy\": \"UNIT per shard\",\n  \"scale\": {},\n  \"seed\": {},\n  \"runs\": {},\n  \"epoch_secs\": {:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.seed,
            args.runs,
            epoch.as_secs_f64(),
            rows.join(",\n")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\n  wrote {path}");
    }

    if args.assert_scaling {
        let wall_at = |name: &str, shards: usize| {
            epoch_wall_table
                .iter()
                .find(|(n, s, _)| *n == name && *s == shards)
                .map(|(_, _, w)| *w)
                .expect("cell was measured")
        };
        let mut failed = false;
        for routing in RoutingPolicy::ALL {
            let one = wall_at(routing.name(), 1);
            let eight = wall_at(routing.name(), 8);
            let verdict = if eight <= one { "ok" } else { "FAIL" };
            println!(
                "  scaling {:<16} 8-shard critical path {eight:.3} s vs 1-shard {one:.3} s (epoch+filtered, slowest shard's wall)  [{verdict}]",
                routing.name()
            );
            failed |= eight > one;
        }
        if failed {
            eprintln!(
                "SCALING REGRESSION: an 8-shard epoch+filtered critical path (slowest shard's \
                 wall) exceeds the 1-shard shard wall"
            );
            std::process::exit(1);
        }
    }
}
