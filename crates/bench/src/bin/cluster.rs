//! Cluster scaling experiment: the fig3 workload (UNIT policy, med-unif
//! bundle) on a sharded cluster at 1/2/4/8 shards under every routing
//! policy, reporting cluster USM and wall-clock per cell and writing
//! `BENCH_cluster.json` at the repo root.
//!
//! Usage: `cluster [--scale N] [--seed S] [--out FILE | --no-out]
//! [--trace-out FILE]`.
//!
//! The 1-shard rows double as a smoke check of the differential identity:
//! their USM must equal the plain single-server engine's USM on the same
//! bundle (the full bit-level digest check lives in
//! `crates/cluster/tests/differential.rs`).

use std::time::Instant;
use unit_bench::default_workload_plan;
use unit_bench::render::render_event_timeline;
use unit_cluster::{ClusterConfig, RoutingPolicy};
use unit_core::usm::UsmWeights;
use unit_obs::RingRecorder;
use unit_workload::{UpdateDistribution, UpdateVolume};

struct Args {
    scale: u64,
    seed: u64,
    out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 8,
        seed: 0x5EED_0001,
        out: Some("BENCH_cluster.json".to_string()),
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale requires a value");
                args.scale = v.parse().expect("bad --scale");
            }
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                args.seed = v.parse().expect("bad --seed");
            }
            "--out" => args.out = Some(it.next().expect("--out requires a path")),
            "--no-out" => args.out = None,
            "--trace-out" => {
                args.trace_out = Some(it.next().expect("--trace-out requires a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: cluster [--scale N] [--seed S] [--out FILE | --no-out] \
                     [--trace-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Write the recorded stream to `path` (`.csv` → CSV, else JSONL).
fn write_trace(path: &str, events: &[unit_obs::ObsEvent]) {
    let result = if std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e == "csv")
    {
        unit_obs::write_csv(path, events)
    } else {
        unit_obs::write_jsonl(path, events)
    };
    match result {
        Ok(()) => println!("\n  event trace written to {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

fn main() {
    let args = parse_args();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::low_high_cfm();
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let sim = plan.sim_config(weights);
    let unit = plan.unit_config(weights);

    println!(
        "cluster: fig3 med-unif (UNIT per shard), scale 1/{}, {} queries, seed {:#x}\n",
        args.scale,
        bundle.trace.queries.len(),
        args.seed
    );
    println!(
        "  {:<16} {:>7} {:>10} {:>10} {:>9}  per-shard queries",
        "routing", "shards", "usm", "wall_s", "events"
    );

    let mut rows = Vec::new();
    for routing in RoutingPolicy::ALL {
        for n_shards in [1usize, 2, 4, 8] {
            let cluster = ClusterConfig::new(n_shards)
                .with_routing(routing)
                .with_seed(args.seed);
            // The 4-shard least-load cell doubles as the --trace-out
            // subject (observation is digest-neutral, so the observed
            // report serves the table too).
            let record =
                args.trace_out.is_some() && routing == RoutingPolicy::LeastLoad && n_shards == 4;
            let mut rec = RingRecorder::unbounded();
            let start = Instant::now();
            let run = cluster.build();
            let run = if record {
                run.with_observer(&mut rec)
            } else {
                run
            };
            let report = run
                .run_unit(&bundle.trace, sim, &unit)
                .expect("valid cluster config")
                .into_plain()
                .expect("fault-free run");
            let wall = start.elapsed().as_secs_f64();
            if record {
                let events = rec.into_events();
                println!("\n  event timeline (4 shards, least-load):");
                print!("{}", render_event_timeline(&events, 64));
                if let Some(path) = &args.trace_out {
                    write_trace(path, &events);
                }
                println!();
            }
            let usm = report.average_usm();
            let events: u64 = report
                .shard_reports
                .iter()
                .map(|r| r.events_processed)
                .sum();
            let per_shard = report.queries_per_shard();
            println!(
                "  {:<16} {n_shards:>7} {usm:>10.4} {wall:>10.3} {events:>9}  {per_shard:?}",
                routing.name()
            );
            let per_shard_json: Vec<String> = per_shard
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            rows.push(format!(
                "    {{\"routing\": \"{}\", \"n_shards\": {n_shards}, \"usm\": {usm:.6}, \
                 \"wall_secs\": {wall:.6}, \"events\": {events}, \
                 \"queries_per_shard\": [{}]}}",
                routing.name(),
                per_shard_json.join(", ")
            ));
        }
    }

    if let Some(path) = args.out {
        let json = format!(
            "{{\n  \"bench\": \"cluster\",\n  \"workload\": \"fig3 med-unif\",\n  \"policy\": \"UNIT per shard\",\n  \"scale\": {},\n  \"seed\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.seed,
            rows.join(",\n")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\n  wrote {path}");
    }
}
