//! Multi-CPU scaling (substrate generalization — the paper's server has a
//! single CPU): does UNIT's advantage persist when the server gets more
//! cores, or does raw capacity wash the policies out?
//!
//! Expected shape: extra CPUs rescue IMU (its problem is pure capacity),
//! narrow everyone's gaps at med volume, and leave the orderings intact at
//! high volume where even several CPUs cannot absorb every update.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_bench::cli::HarnessArgs;
use unit_bench::default_workload_plan;
use unit_bench::render::{csv, f, text_table};
use unit_bench::row;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::run_simulation;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    println!(
        "Multi-CPU scaling: success ratio by CPU count (scale 1/{})\n",
        args.scale
    );

    let mut csv_rows = Vec::new();
    for volume in [UpdateVolume::Med, UpdateVolume::High] {
        let bundle = plan.bundle(volume, UpdateDistribution::Uniform);
        let header = row!["cpus", "IMU", "ODU", "QMF", "UNIT"];
        let mut rows = Vec::new();
        for cpus in [1usize, 2, 4] {
            let cfg = plan.sim_config(UsmWeights::naive()).with_cpus(cpus);
            let s = [
                run_simulation(&bundle.trace, ImuPolicy::new(), cfg).success_ratio(),
                run_simulation(&bundle.trace, OduPolicy::new(), cfg).success_ratio(),
                run_simulation(&bundle.trace, QmfPolicy::default(), cfg).success_ratio(),
                run_simulation(
                    &bundle.trace,
                    UnitPolicy::new(plan.unit_config(UsmWeights::naive())),
                    cfg,
                )
                .success_ratio(),
            ];
            rows.push(row![cpus, f(s[0], 3), f(s[1], 3), f(s[2], 3), f(s[3], 3)]);
            csv_rows.push(row![
                bundle.name,
                cpus,
                f(s[0], 4),
                f(s[1], 4),
                f(s[2], 4),
                f(s[3], 4)
            ]);
        }
        println!("({})\n{}", bundle.name, text_table(&header, &rows));
    }
    println!(
        "Extra capacity rescues IMU (its failure is saturation, not policy), while\n\
         the managed policies converge toward the workload's burst-and-staleness\n\
         floor; the orderings persist wherever updates still contend with queries."
    );

    if let Some(path) = args.write_csv(
        "cpus.csv",
        &csv(
            &row!["trace", "cpus", "imu", "odu", "qmf", "unit"],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
