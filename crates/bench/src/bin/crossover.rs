//! Update-volume sweep: success ratio as the offered update utilization
//! climbs from idle to double the CPU — locating the crossover points
//! between policies that Table 1's three volumes only sample.
//!
//! Expected shape: IMU tracks the others while updates fit (≤ ~25%), then
//! collapses as they saturate; ODU degrades gracefully (its refresh cost
//! follows query demand, not update volume); QMF and UNIT shed load and
//! stay flat, with UNIT on top throughout.

use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, f, text_table};
use unit_bench::row;
use unit_bench::{default_workload_plan, run_matrix, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume};

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    println!(
        "Crossover sweep: success ratio vs offered update utilization\n\
         (uniform distribution, scale 1/{})\n",
        args.scale
    );

    // Utilization points: ~10% .. ~200% of the CPU. At full scale, 30,000
    // updates = 75%, so N% needs N/75 * 30,000 updates.
    let utilizations = [0.10, 0.25, 0.50, 0.75, 1.00, 1.25, 1.50, 2.00];
    let bundles: Vec<TraceBundle> = utilizations
        .iter()
        .map(|u| {
            let total = ((u / 0.75) * 30_000.0 / args.scale as f64).round().max(1.0) as u64;
            let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
                .with_total(total);
            TraceBundle::generate(&plan.query_cfg, &ucfg)
        })
        .collect();

    let outcomes = run_matrix(&plan, &bundles, &PolicyKind::ALL, UsmWeights::naive());

    let header = row!["offered util", "IMU", "ODU", "QMF", "UNIT", "leader"];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut prev_imu_leads = true;
    let mut imu_collapse_at: Option<f64> = None;
    for (bi, &u) in utilizations.iter().enumerate() {
        let s: Vec<f64> = (0..4)
            .map(|pi| outcomes[bi * 4 + pi].report.success_ratio())
            .collect();
        let leader = PolicyKind::ALL
            .iter()
            .enumerate()
            .max_by(|a, b| s[a.0].partial_cmp(&s[b.0]).unwrap())
            .map(|(_, k)| k.name())
            .unwrap();
        // Track where IMU stops being competitive (drops >10pp below UNIT).
        let imu_leads = s[0] >= s[3] - 0.10;
        if prev_imu_leads && !imu_leads && imu_collapse_at.is_none() {
            imu_collapse_at = Some(u);
        }
        prev_imu_leads = imu_leads;

        rows.push(row![
            format!("{:.0}%", 100.0 * u),
            f(s[0], 3),
            f(s[1], 3),
            f(s[2], 3),
            f(s[3], 3),
            leader
        ]);
        csv_rows.push(row![
            f(u, 2),
            f(s[0], 4),
            f(s[1], 4),
            f(s[2], 4),
            f(s[3], 4)
        ]);
    }
    println!("{}", text_table(&header, &rows));
    if let Some(u) = imu_collapse_at {
        println!(
            "IMU falls more than 10pp behind UNIT at ≈{:.0}% offered update utilization\n\
             (the crossover Table 1's low/med sampling brackets).",
            100.0 * u
        );
    }

    if let Some(path) = args.write_csv(
        "crossover.csv",
        &csv(&row!["utilization", "imu", "odu", "qmf", "unit"], &csv_rows),
    ) {
        println!("CSV written to {path}");
    }
}
