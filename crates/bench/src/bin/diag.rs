//! Diagnostic deep-dive on a single (trace, policy) run: controller
//! activity, admission behaviour, shedding levels. Not a paper figure —
//! a debugging/калибration aid for the harness itself.

use unit_bench::cli::HarnessArgs;
use unit_bench::{default_workload_plan, PolicyKind};
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::Simulator;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::naive();

    for (volume, dist) in [
        (UpdateVolume::Med, UpdateDistribution::Uniform),
        (UpdateVolume::High, UpdateDistribution::Uniform),
        (UpdateVolume::Med, UpdateDistribution::NegativeCorrelation),
    ] {
        let bundle = plan.bundle(volume, dist);
        println!(
            "=== {} (offered load {:.2}) ===",
            bundle.name,
            bundle.offered_load()
        );

        let policy = UnitPolicy::new(plan.unit_config(weights));
        let sim = Simulator::new(&bundle.trace, policy, plan.sim_config(weights));
        let (report, policy) = sim.run_with_policy();
        let stats = policy.stats();
        println!("{}", report.summary());
        println!(
            "  signals: LAC={} TAC={} DEG={} UPG={}  lbc_activations={}",
            report.signals.loosen_admission,
            report.signals.tighten_admission,
            report.signals.degrade_updates,
            report.signals.upgrade_updates,
            policy.lbc_activations()
        );
        println!(
            "  c_flex={:.3}  degraded_items={}  degrade_draws={}  versions applied/skipped={}/{}",
            policy.c_flex(),
            policy.degraded_count(),
            stats.degrade_draws,
            stats.versions_applied,
            stats.versions_skipped
        );
        println!(
            "  rejections: not_promising={} endangering={}  hp_aborts={} restarts={} preempt={}",
            stats.rejected_not_promising,
            stats.rejected_endangering,
            report.hp_aborts,
            report.query_restarts,
            report.preemptions
        );
        println!(
            "  mean dispatch freshness={:.3}  cpu util={:.2}\n",
            report.mean_dispatch_freshness,
            report.utilization()
        );

        // Comparison lines for the baselines on the same bundle.
        let odu = unit_bench::run_policy(&plan, &bundle, PolicyKind::Odu, weights);
        println!("{}", odu.report.summary());
        let qmf = unit_bench::run_policy(&plan, &bundle, PolicyKind::Qmf, weights);
        println!("{}\n", qmf.report.summary());
    }
}
