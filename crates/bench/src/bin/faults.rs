//! Fault-tolerance experiment: the fig3 workload (UNIT policy, med-unif
//! bundle) on a 4-shard cluster under seeded crash schedules of rising
//! severity, comparing three dispatcher strategies per crash rate:
//!
//! * `no-retry`      — naive routing, crashes pause the shard (full DMF);
//! * `backoff`       — failover with exponential backoff, crashes pause;
//! * `backoff+degraded` — failover plus graceful degradation: recovering
//!   shards keep serving reads from last-applied versions (honest DSF
//!   instead of DMF).
//!
//! Writes `BENCH_faults.json` at the repo root: one USM-vs-crash-rate curve
//! per strategy. Under the paper's low-C_fs/high-C_fm weights the
//! failover+degradation curve must dominate naive no-retry at every
//! non-zero crash rate, and all three must agree exactly at rate zero (the
//! quiet plan is inert; the bit-level proof lives in
//! `crates/cluster/tests/fault_differential.rs`).
//!
//! Usage: `faults [--scale N] [--seed S] [--out FILE | --no-out]
//! [--trace-out FILE]`.

use std::time::Instant;
use unit_bench::cli::Flags;
use unit_bench::default_workload_plan;
use unit_bench::render::render_event_timeline;
use unit_cluster::{BackoffConfig, ClusterConfig, FailoverPolicy, RoutingPolicy};
use unit_core::time::SimDuration;
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_obs::RingRecorder;
use unit_workload::{UpdateDistribution, UpdateVolume};

const N_SHARDS: usize = 4;
const CRASH_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];

struct Args {
    scale: u64,
    seed: u64,
    out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 8,
        seed: 0x5EED_0001,
        out: Some("BENCH_faults.json".to_string()),
        trace_out: None,
    };
    let mut fl = Flags::from_env(
        "usage: faults [--scale N] [--seed S] [--out FILE | --no-out] \
         [--trace-out FILE]",
    );
    while let Some(arg) = fl.next_flag() {
        match arg.as_str() {
            "--scale" => args.scale = fl.parse(&arg),
            "--seed" => args.seed = fl.parse(&arg),
            "--out" => args.out = Some(fl.value(&arg)),
            "--no-out" => args.out = None,
            "--trace-out" => args.trace_out = Some(fl.value(&arg)),
            other => fl.unknown(other),
        }
    }
    args
}

/// Write the recorded stream to `path` (`.csv` → CSV, else JSONL).
fn write_trace(path: &str, events: &[unit_obs::ObsEvent]) {
    let result = if std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e == "csv")
    {
        unit_obs::write_csv(path, events)
    } else {
        unit_obs::write_jsonl(path, events)
    };
    match result {
        Ok(()) => println!("\n  event trace written to {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

struct Strategy {
    name: &'static str,
    mode: FaultMode,
    failover: FailoverPolicy,
}

fn strategies() -> [Strategy; 3] {
    [
        Strategy {
            name: "no-retry",
            mode: FaultMode::Pause,
            failover: FailoverPolicy::NoRetry,
        },
        Strategy {
            name: "backoff",
            mode: FaultMode::Pause,
            failover: FailoverPolicy::Backoff(BackoffConfig::default()),
        },
        Strategy {
            name: "backoff+degraded",
            mode: FaultMode::DegradedReads,
            failover: FailoverPolicy::Backoff(BackoffConfig::default()),
        },
    ]
}

fn main() {
    let args = parse_args();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::low_high_cfm();
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let sim = plan.sim_config(weights);
    let unit = plan.unit_config(weights);
    let fault_seed = args.seed ^ 0xFA17;

    println!(
        "faults: fig3 med-unif (UNIT per shard), {N_SHARDS} shards, scale 1/{}, {} queries, seed {:#x}\n",
        args.scale,
        bundle.trace.queries.len(),
        args.seed
    );
    println!(
        "  {:<18} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "strategy", "rate", "usm", "ok", "rej", "dmf", "dsf", "retries"
    );

    let mut rows = Vec::new();
    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
    for strat in strategies() {
        let mut curve = Vec::new();
        for rate in CRASH_RATES {
            let fcfg = FaultConfig::quiet(bundle.horizon, bundle.trace.n_items).with_crashes(
                rate,
                SimDuration::from_secs(600),
                strat.mode,
            );
            let fplan = FaultPlan::generate(fault_seed, N_SHARDS, &fcfg);
            let cluster = ClusterConfig::new(N_SHARDS)
                .with_routing(RoutingPolicy::LeastLoad)
                .with_seed(args.seed);
            // The backoff+degraded cell at crash rate 0.2 doubles as the
            // --trace-out subject (observation is digest-neutral, so the
            // observed report serves the table too).
            let record =
                args.trace_out.is_some() && strat.name == "backoff+degraded" && rate == 0.2;
            let mut rec = RingRecorder::unbounded();
            let start = Instant::now();
            let run = cluster.build().with_faults(&fplan, strat.failover);
            let run = if record {
                run.with_observer(&mut rec)
            } else {
                run
            };
            let report = run
                .run_unit(&bundle.trace, sim, &unit)
                .expect("valid fault cluster config")
                .into_faulty()
                .expect("fault run");
            let wall = start.elapsed().as_secs_f64();
            if record {
                let events = rec.into_events();
                println!("\n  event timeline (backoff+degraded, crash rate 0.2):");
                print!("{}", render_event_timeline(&events, 64));
                if let Some(path) = &args.trace_out {
                    write_trace(path, &events);
                }
                println!();
            }
            let usm = report.average_usm();
            let c = report.counts;
            println!(
                "  {:<18} {rate:>6.2} {usm:>10.4} {:>8} {:>8} {:>8} {:>8} {:>8}",
                strat.name,
                c.success,
                c.rejected,
                c.deadline_miss,
                c.data_stale,
                report.total_retries()
            );
            curve.push(usm);
            rows.push(format!(
                "    {{\"strategy\": \"{}\", \"crash_rate\": {rate}, \"usm\": {usm:.6}, \
                 \"success\": {}, \"rejected\": {}, \"deadline_miss\": {}, \
                 \"data_stale\": {}, \"retries\": {}, \"dispatcher_rejections\": {}, \
                 \"wall_secs\": {wall:.6}}}",
                strat.name,
                c.success,
                c.rejected,
                c.deadline_miss,
                c.data_stale,
                report.total_retries(),
                report.dispatcher_rejections()
            ));
        }
        curves.push((strat.name.to_string(), curve));
        println!();
    }

    // Sanity: at crash rate 0 every strategy reduces to the plain cluster,
    // so all three USM values must agree to the bit.
    let baseline = curves[0].1[0];
    for (name, curve) in &curves {
        assert!(
            curve[0].to_bits() == baseline.to_bits(),
            "{name}: quiet-plan USM {} diverged from {baseline}",
            curve[0]
        );
    }
    // The headline claim: failover + graceful degradation beats the naive
    // dispatcher at every non-zero crash rate.
    let naive = &curves[0].1;
    let degraded = &curves[2].1;
    for (i, rate) in CRASH_RATES.iter().enumerate().skip(1) {
        assert!(
            degraded[i] > naive[i],
            "backoff+degraded ({}) does not beat no-retry ({}) at rate {rate}",
            degraded[i],
            naive[i]
        );
    }
    println!("  check: curves agree at rate 0; backoff+degraded > no-retry at every other rate");

    if let Some(path) = args.out {
        let json = format!(
            "{{\n  \"bench\": \"faults\",\n  \"workload\": \"fig3 med-unif\",\n  \"policy\": \"UNIT per shard\",\n  \"n_shards\": {N_SHARDS},\n  \"routing\": \"least-load\",\n  \"scale\": {},\n  \"seed\": {},\n  \"fault_seed\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.seed,
            fault_seed,
            rows.join(",\n")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\n  wrote {path}");
    }
}
