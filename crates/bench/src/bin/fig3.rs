//! Figure 3 — distribution of accesses and updates over the data items,
//! original versus UNIT-degraded.
//!
//! Three panels, as in the paper:
//!
//! * (a) query accesses per item — the skewed reference distribution;
//! * (b) `med-unif`: versions emitted (grey) vs updates UNIT applied
//!   (black) — the survivors should follow the query distribution;
//! * (c) `med-neg`: same — the hot-updated/cold-accessed mass should be
//!   shed almost entirely (the paper reports >95% dropped).
//!
//! Terminal output renders 64-bucket sparklines; the CSV carries the full
//! per-item histograms for external plotting.

use unit_bench::cli::HarnessArgs;
use unit_bench::render::{bucketize, csv, f, render_event_timeline, spark};
use unit_bench::row;
use unit_bench::{default_workload_plan, run_policy, run_policy_observed, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::dist::pearson;
use unit_workload::{UpdateDistribution, UpdateVolume};

/// Indices of all items, sorted by query-access count descending: the
/// "access rank" view that makes the paper's shapes visible (item ids are
/// randomly permuted, so id-ordered buckets mix hot and cold items).
fn access_rank_order(accesses: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..accesses.len()).collect();
    order.sort_by(|&a, &b| accesses[b].cmp(&accesses[a]).then(a.cmp(&b)));
    order
}

/// Reorder `values` by the given item order.
fn reordered(values: &[u64], order: &[usize]) -> Vec<u64> {
    order.iter().map(|&i| values[i]).collect()
}

/// Fraction of updates kept (applied/arrived) over a slice of items.
fn keep_rate(items: &[usize], applied: &[u64], arrived: &[u64]) -> f64 {
    let a: u64 = items.iter().map(|&i| applied[i]).sum();
    let v: u64 = items.iter().map(|&i| arrived[i]).sum();
    if v == 0 {
        1.0
    } else {
        a as f64 / v as f64
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::naive();

    println!(
        "Figure 3: access/update distributions over data, scale 1/{}\n",
        args.scale
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut first_access_hist: Option<Vec<u64>> = None;

    for (panel, dist) in [
        ("(b) med-unif", UpdateDistribution::Uniform),
        ("(c) med-neg", UpdateDistribution::NegativeCorrelation),
    ] {
        let bundle = plan.bundle(UpdateVolume::Med, dist);
        // The med-unif panel doubles as the --trace-out subject: recording
        // is digest-neutral, so the observed report serves the figure too.
        let record = args.trace_out.is_some() && dist == UpdateDistribution::Uniform;
        let out = if record {
            let mut rec = unit_obs::RingRecorder::unbounded();
            let out = run_policy_observed(&plan, &bundle, PolicyKind::Unit, weights, &mut rec);
            let events = rec.into_events();
            println!("event timeline (UNIT, med-unif):");
            print!("{}", render_event_timeline(&events, 64));
            if let Some(path) = args.write_trace(&events) {
                println!("event trace written to {path}");
            }
            println!();
            out
        } else {
            run_policy(&plan, &bundle, PolicyKind::Unit, weights)
        };
        let r = &out.report;

        if first_access_hist.is_none() {
            println!("(a) query distribution over data (accesses per item):");
            println!(
                "    by item id:     {}",
                spark(&bucketize(&r.query_accesses, 64))
            );
            let order = access_rank_order(&r.query_accesses);
            println!(
                "    by access rank: {}\n",
                spark(&bucketize(&reordered(&r.query_accesses, &order), 64))
            );
            first_access_hist = Some(r.query_accesses.clone());
        }

        let arrived: u64 = r.versions_arrived.iter().sum();
        let applied: u64 = r.updates_applied.iter().sum();
        let dropped_pct = 100.0 * (1.0 - applied as f64 / arrived.max(1) as f64);

        let accesses_f: Vec<f64> = r.query_accesses.iter().map(|&x| x as f64).collect();
        let applied_f: Vec<f64> = r.updates_applied.iter().map(|&x| x as f64).collect();
        let arrived_f: Vec<f64> = r.versions_arrived.iter().map(|&x| x as f64).collect();
        let rho_applied = pearson(&applied_f, &accesses_f);
        let rho_arrived = pearson(&arrived_f, &accesses_f);

        let order = access_rank_order(&r.query_accesses);
        println!("{panel}: update distribution over data (items sorted hot -> cold)");
        println!(
            "    original {} ({} versions, corr to queries {:+.2})",
            spark(&bucketize(&reordered(&r.versions_arrived, &order), 64)),
            arrived,
            rho_arrived
        );
        println!(
            "    degraded {} ({} applied, {:.1}% dropped, corr to queries {:+.2})",
            spark(&bucketize(&reordered(&r.updates_applied, &order), 64)),
            applied,
            dropped_pct,
            rho_applied
        );
        // Keep rates by access decile: the quantified version of "the
        // surviving updates follow the query distribution".
        let n = order.len();
        let top10 = &order[..n / 10];
        let mid = &order[n / 10..n / 2];
        let bottom = &order[n / 2..];
        println!(
            "    kept updates: top-10%-accessed items {:.0}%, middle {:.0}%, bottom-half {:.0}%\n",
            100.0 * keep_rate(top10, &r.updates_applied, &r.versions_arrived),
            100.0 * keep_rate(mid, &r.updates_applied, &r.versions_arrived),
            100.0 * keep_rate(bottom, &r.updates_applied, &r.versions_arrived),
        );

        for i in 0..bundle.trace.n_items {
            csv_rows.push(row![
                bundle.name,
                i,
                r.query_accesses[i],
                r.versions_arrived[i],
                r.updates_applied[i],
            ]);
        }
        let _ = f(0.0, 1); // keep helper linked for the csv module
    }

    println!(
        "Shape checks (paper §4.2): the degraded med-unif distribution should follow\n\
         the query distribution (positive correlation above), and med-neg should shed\n\
         the hot-updated/cold-accessed mass (paper: >95% of updates dropped)."
    );

    if let Some(path) = args.write_csv(
        "fig3.csv",
        &csv(
            &row![
                "trace",
                "item",
                "query_accesses",
                "versions_arrived",
                "updates_applied"
            ],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
