//! Figure 4 — naive USM (success ratio): IMU / ODU / QMF / UNIT over the
//! nine Table 1 update traces.
//!
//! All weights are zero in this experiment, so USM degenerates to the
//! success ratio (§4.3). Shapes to look for, per the paper:
//!
//! * UNIT wins everywhere (≥30% / ≥50% / ≥10% minimum relative improvement
//!   under unif / pos / neg);
//! * QMF can fall below ODU under uniform updates (over-aggressive
//!   rejection to protect its miss ratio);
//! * IMU ≈ ODU under positive correlation;
//! * ODU approaches UNIT under negative correlation (background updates are
//!   mostly irrelevant there).

use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, f, text_table};
use unit_bench::row;
use unit_bench::{default_workload_plan, run_matrix, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    println!(
        "Figure 4: naive USM (success ratio), scale 1/{} ({} queries / {}s horizon)\n",
        args.scale,
        plan.query_cfg.n_queries,
        plan.query_cfg.horizon.as_secs_f64()
    );

    let mut csv_rows = Vec::new();
    for dist in [
        UpdateDistribution::Uniform,
        UpdateDistribution::PositiveCorrelation,
        UpdateDistribution::NegativeCorrelation,
    ] {
        let bundles: Vec<_> = UpdateVolume::ALL
            .iter()
            .map(|&v| plan.bundle(v, dist))
            .collect();
        let outcomes = run_matrix(&plan, &bundles, &PolicyKind::ALL, UsmWeights::naive());

        let header = row!["trace", "IMU", "ODU", "QMF", "UNIT", "UNIT vs best"];
        let mut rows = Vec::new();
        for (bi, bundle) in bundles.iter().enumerate() {
            let per_policy: Vec<f64> = (0..4)
                .map(|pi| outcomes[bi * 4 + pi].report.success_ratio())
                .collect();
            let unit = per_policy[3];
            let best_other = per_policy[..3].iter().copied().fold(0.0_f64, f64::max);
            let rel = if best_other > 0.0 {
                format!("{:+.0}%", 100.0 * (unit - best_other) / best_other)
            } else {
                "inf".to_string()
            };
            rows.push(row![
                bundle.name,
                f(per_policy[0], 3),
                f(per_policy[1], 3),
                f(per_policy[2], 3),
                f(unit, 3),
                rel
            ]);
            csv_rows.push(row![
                bundle.name,
                f(per_policy[0], 4),
                f(per_policy[1], 4),
                f(per_policy[2], 4),
                f(unit, 4)
            ]);
        }
        println!(
            "(update distribution: {})\n{}",
            dist.short_name(),
            text_table(&header, &rows)
        );
    }

    if let Some(path) = args.write_csv(
        "fig4.csv",
        &csv(&row!["trace", "imu", "odu", "qmf", "unit"], &csv_rows),
    ) {
        println!("CSV written to {path}");
    }
}
