//! Figure 5 — USM under non-zero penalty costs (the Table 2 weightings),
//! on the `med-unif` workload.
//!
//! UNIT is re-run per weighting (its controller reacts to the weights); the
//! baselines are weight-insensitive (§4.5), so each is run once and its
//! outcome counts re-priced under every weighting.
//!
//! Paper shapes: UNIT best and roughly stable across weightings; QMF is
//! hurt most by high `C_r` (it rejects a lot); IMU and ODU are hurt most by
//! high `C_fm` (they miss a lot of deadlines).

use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, fs, text_table};
use unit_bench::row;
use unit_bench::{default_workload_plan, run_policy, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    println!(
        "Figure 5: USM under Table 2 weightings (med-unif, scale 1/{})\n",
        args.scale
    );

    // One run per weight-insensitive baseline; re-priced per weighting.
    let baselines: Vec<_> = [PolicyKind::Imu, PolicyKind::Odu, PolicyKind::Qmf]
        .iter()
        .map(|&p| run_policy(&plan, &bundle, p, UsmWeights::naive()))
        .collect();

    let mut csv_rows = Vec::new();
    for (title, configs) in [
        (
            "(a) penalties < 1",
            [
                ("high C_r", UsmWeights::low_high_cr()),
                ("high C_fm", UsmWeights::low_high_cfm()),
                ("high C_fs", UsmWeights::low_high_cfs()),
            ],
        ),
        (
            "(b) penalties > 1",
            [
                ("high C_r", UsmWeights::high_high_cr()),
                ("high C_fm", UsmWeights::high_high_cfm()),
                ("high C_fs", UsmWeights::high_high_cfs()),
            ],
        ),
    ] {
        let header = row!["setup", "IMU", "ODU", "QMF", "UNIT"];
        let mut rows = Vec::new();
        for (setup, weights) in configs {
            let unit = run_policy(&plan, &bundle, PolicyKind::Unit, weights);
            let mut cells = vec![setup.to_string()];
            for b in &baselines {
                cells.push(fs(b.report.usm_under(&weights), 3));
            }
            cells.push(fs(unit.report.average_usm(), 3));
            rows.push(cells);
            csv_rows.push(row![
                title,
                setup,
                fs(baselines[0].report.usm_under(&weights), 4),
                fs(baselines[1].report.usm_under(&weights), 4),
                fs(baselines[2].report.usm_under(&weights), 4),
                fs(unit.report.average_usm(), 4),
            ]);
        }
        println!("{title}\n{}", text_table(&header, &rows));
    }

    if let Some(path) = args.write_csv(
        "fig5.csv",
        &csv(
            &row!["panel", "setup", "imu", "odu", "qmf", "unit"],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
