//! Figure 6 — outcome-ratio decomposition (Success / Rejection / DMF / DSF)
//! on `med-unif`.
//!
//! * (a) IMU, ODU, QMF — weight-insensitive, one bar each;
//! * (b) UNIT under the three Figure 5(a) weightings — the controller
//!   reshapes the outcome mix to shrink whichever failure is priciest
//!   (smallest rejection share under high `C_r`, smallest DMF share under
//!   high `C_fm`, ...).

use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, f, text_table};
use unit_bench::row;
use unit_bench::{default_workload_plan, run_policy, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn ratio_row(label: &str, ratios: [f64; 4]) -> Vec<String> {
    row![
        label,
        f(ratios[0], 3),
        f(ratios[1], 3),
        f(ratios[2], 3),
        f(ratios[3], 3)
    ]
}

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    println!(
        "Figure 6: outcome-ratio decomposition (med-unif, scale 1/{})\n",
        args.scale
    );

    let header = row!["policy/setup", "Rs", "Rr", "Rfm", "Rfs"];
    let mut csv_rows = Vec::new();

    // (a) the weight-insensitive baselines.
    let mut rows = Vec::new();
    for p in [PolicyKind::Imu, PolicyKind::Odu, PolicyKind::Qmf] {
        let out = run_policy(&plan, &bundle, p, UsmWeights::naive());
        let ratios = out.report.ratios();
        rows.push(ratio_row(p.name(), ratios));
        csv_rows.push(row![
            p.name(),
            "any",
            f(ratios[0], 4),
            f(ratios[1], 4),
            f(ratios[2], 4),
            f(ratios[3], 4)
        ]);
    }
    println!(
        "(a) IMU / ODU / QMF (insensitive to weights)\n{}",
        text_table(&header, &rows)
    );

    // (b) UNIT across the Figure 5(a) weightings.
    let mut rows = Vec::new();
    for (setup, weights) in [
        ("UNIT, high C_r", UsmWeights::low_high_cr()),
        ("UNIT, high C_fm", UsmWeights::low_high_cfm()),
        ("UNIT, high C_fs", UsmWeights::low_high_cfs()),
    ] {
        let out = run_policy(&plan, &bundle, PolicyKind::Unit, weights);
        let ratios = out.report.ratios();
        rows.push(ratio_row(setup, ratios));
        csv_rows.push(row![
            "UNIT",
            setup,
            f(ratios[0], 4),
            f(ratios[1], 4),
            f(ratios[2], 4),
            f(ratios[3], 4)
        ]);
    }
    println!(
        "(b) UNIT under the Figure 5(a) weightings\n{}",
        text_table(&header, &rows)
    );
    println!(
        "Shape checks (paper §4.5): UNIT's success ratio tops every baseline; its\n\
         outcome mix shifts with the weights (cheapest failure class absorbs the\n\
         load); QMF shows a conspicuously high rejection ratio."
    );

    if let Some(path) = args.write_csv(
        "fig6.csv",
        &csv(
            &row!["policy", "setup", "rs", "rr", "rfm", "rfs"],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
