//! Time-resolved probe of the UNIT policy internals (calibration aid).

use unit_bench::cli::HarnessArgs;
use unit_bench::default_workload_plan;
use unit_core::policy::{AdmissionDecision, ControlSignal, Policy, UpdateAction};
use unit_core::snapshot::SnapshotView;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QuerySpec, UpdateSpec};
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::Simulator;
use unit_workload::{UpdateDistribution, UpdateVolume};

struct Probe {
    inner: UnitPolicy,
    next_print: SimTime,
    every: SimDuration,
}

impl Policy for Probe {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn init(&mut self, n: usize, u: &[UpdateSpec]) {
        self.inner.init(n, u);
    }
    fn on_query_arrival(&mut self, q: &QuerySpec, s: &SnapshotView<'_>) -> AdmissionDecision {
        self.inner.on_query_arrival(q, s)
    }
    fn on_version_arrival(&mut self, d: DataId, t: SimTime, s: &SnapshotView<'_>) -> UpdateAction {
        self.inner.on_version_arrival(d, t, s)
    }
    fn on_query_dispatch(&mut self, q: &QuerySpec, f: f64) {
        self.inner.on_query_dispatch(q, f);
    }
    fn on_update_commit(&mut self, d: DataId, e: SimDuration) {
        self.inner.on_update_commit(d, e);
    }
    fn on_query_outcome(&mut self, q: &QuerySpec, o: Outcome) {
        self.inner.on_query_outcome(q, o);
    }
    fn on_tick(&mut self, now: SimTime, s: &SnapshotView<'_>) -> Vec<ControlSignal> {
        let r = self.inner.on_tick(now, s);
        if now >= self.next_print {
            self.next_print = now + self.every;
            let st = self.inner.stats();
            println!(
                "t={:>6.0}s degraded={} applied={} skipped={} draws={} c_flex={:.3} queue={} backlog={:.0}s",
                now.as_secs_f64(),
                self.inner.degraded_count(),
                st.versions_applied,
                st.versions_skipped,
                st.degrade_draws,
                self.inner.c_flex(),
                s.ready_queue_len(),
                s.update_backlog.as_secs_f64(),
            );
        }
        r
    }
    fn current_period(&self, d: DataId) -> Option<SimDuration> {
        self.inner.current_period(d)
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::naive();
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let mut cfg = plan.unit_config(weights);
    if let Ok(v) = std::env::var("UNIT_CUU") {
        cfg.c_uu = v.parse().expect("UNIT_CUU must be a float");
    }
    if let Ok(v) = std::env::var("UNIT_VICTIMS") {
        cfg.degrade_victims_per_signal = v.parse().expect("UNIT_VICTIMS must be an integer");
    }
    if let Ok(v) = std::env::var("UNIT_SHARP") {
        cfg.lottery_sharpness = v.parse().expect("UNIT_SHARP must be a float");
    }
    if std::env::var("UNIT_NOAC").is_ok() {
        cfg.admission_enabled = false;
    }
    if let Ok(v) = std::env::var("UNIT_BAL") {
        cfg.access_update_balance = v.parse().expect("UNIT_BAL must be a float");
    }
    if let Ok(v) = std::env::var("UNIT_UPG") {
        cfg.upgrade_step_util = v.parse().expect("UNIT_UPG must be a float");
    }
    let probe = Probe {
        inner: UnitPolicy::new(cfg),
        next_print: SimTime::ZERO,
        every: SimDuration::from_secs_f64(plan.query_cfg.horizon.as_secs_f64() / 16.0),
    };
    let sim = Simulator::new(&bundle.trace, probe, plan.sim_config(weights));
    let (report, probe) = sim.run_with_policy();
    println!("{}", report.summary());

    // Final degradation-factor distribution.
    let mut factors: Vec<f64> = (0..bundle.trace.n_items)
        .map(|i| {
            let cur = probe.inner.current_period(DataId(i as u32)).unwrap();
            if cur == SimDuration::MAX {
                1.0
            } else {
                let ideal = bundle
                    .trace
                    .updates
                    .iter()
                    .find(|u| u.item.index() == i)
                    .map_or(cur, |u| u.period);
                cur.as_secs_f64() / ideal.as_secs_f64()
            }
        })
        .collect();
    factors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "degradation factors: p10={:.2} p50={:.2} p90={:.2} max={:.2}",
        factors[factors.len() / 10],
        factors[factors.len() / 2],
        factors[factors.len() * 9 / 10],
        factors[factors.len() - 1]
    );
}
