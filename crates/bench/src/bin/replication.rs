//! Replication experiment: the fig3 workload (UNIT policy, med-unif
//! bundle) on a 4-shard cluster swept over replication factor ×
//! propagation lag × routing policy, reporting cluster USM, follower-read
//! and propagation volume, and wall-clock per cell, and writing
//! `BENCH_replication.json` at the repo root.
//!
//! Usage: `replication [--scale N] [--seed S] [--shards N] [--runs R]
//! [--out FILE | --no-out]`.
//!
//! The factor-1 rows double as a live identity smoke: whatever the lag
//! schedule says, one replica per item *is* the partition-only cluster,
//! so their USM must equal the plain (replication-free) run's USM to the
//! bit — the same contract `crates/cluster/tests/replication_differential.rs`
//! pins at digest level, re-checked here on the bench workload. With the
//! default scale/seed/shards, those rows are bit-equal to the
//! `n_shards = 4` cells of `BENCH_cluster.json`.
//!
//! The interesting curves are the others: more replicas widen the
//! dispatcher's candidate pools (more load spreading), while longer
//! propagation lag shrinks the set of followers whose `Qu` bound clears
//! each query's freshness requirement — so USM responds to the *ratio* of
//! lag to the workload's tolerable staleness, which is exactly the
//! trade-off the UNIT paper's freshness machinery quantifies.

use std::time::Instant;
use unit_bench::cli::Flags;
use unit_bench::default_workload_plan;
use unit_cluster::{
    ClusterConfig, ClusterReport, PropagationLag, ReplicationConfig, RoutingPolicy,
};
use unit_core::time::SimDuration;
use unit_core::usm::UsmWeights;
use unit_sim::SimConfig;
use unit_workload::{TraceBundle, UpdateDistribution, UpdateVolume};

struct Args {
    scale: u64,
    seed: u64,
    shards: usize,
    runs: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 8,
        seed: 0x5EED_0001,
        shards: 4,
        runs: 1,
        out: Some("BENCH_replication.json".to_string()),
    };
    let mut fl = Flags::from_env(
        "usage: replication [--scale N] [--seed S] [--shards N] [--runs R] \
         [--out FILE | --no-out]",
    );
    while let Some(arg) = fl.next_flag() {
        match arg.as_str() {
            "--scale" => args.scale = fl.parse(&arg),
            "--seed" => args.seed = fl.parse(&arg),
            "--shards" => args.shards = fl.parse(&arg),
            "--runs" => args.runs = fl.parse(&arg),
            "--out" => args.out = Some(fl.value(&arg)),
            "--no-out" => args.out = None,
            other => fl.unknown(other),
        }
    }
    args
}

/// The lag schedules swept per factor: zero, a fixed delay, and a
/// windowed jittered schedule whose worst case is four times the base.
fn lag_points() -> [(&'static str, PropagationLag); 3] {
    [
        ("zero", PropagationLag::none()),
        (
            "fixed-60s",
            PropagationLag::fixed(SimDuration::from_secs(60)),
        ),
        (
            "jitter-60s+180s",
            PropagationLag::jittered(SimDuration::from_secs(60), SimDuration::from_secs(180), 8),
        ),
    ]
}

fn run_cell(
    cluster: ClusterConfig,
    bundle: &TraceBundle,
    sim: SimConfig,
    unit: &unit_core::config::UnitConfig,
    runs: usize,
) -> (ClusterReport, f64) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let r = cluster
            .build()
            .run_unit(&bundle.trace, sim, unit)
            .expect("valid cluster config")
            .into_plain()
            .expect("fault-free run");
        best = best.min(start.elapsed().as_secs_f64());
        report.get_or_insert(r);
    }
    (report.expect("at least one run"), best)
}

fn main() {
    let args = parse_args();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::low_high_cfm();
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let sim = plan.sim_config(weights);
    let unit = plan.unit_config(weights);
    let factors: Vec<usize> = (1..=3.min(args.shards)).collect();

    println!(
        "replication: fig3 med-unif (UNIT per shard), {} shards, scale 1/{}, {} queries, seed {:#x}\n",
        args.shards,
        args.scale,
        bundle.trace.queries.len(),
        args.seed
    );
    println!(
        "  {:<16} {:>6} {:>16} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "routing", "factor", "lag", "usm", "d_usm", "follower_q", "propagated", "wall_s"
    );

    let mut rows = Vec::new();
    for routing in RoutingPolicy::ALL {
        // The replication-free anchor every factor-1 row must reproduce.
        let (plain, _) = run_cell(
            ClusterConfig::new(args.shards)
                .with_routing(routing)
                .with_seed(args.seed),
            &bundle,
            sim,
            &unit,
            args.runs,
        );
        let plain_usm = plain.average_usm();
        for &factor in &factors {
            for (lag_name, lag) in lag_points() {
                let rep = ReplicationConfig::new(factor).with_lag(lag);
                let cluster = ClusterConfig::new(args.shards)
                    .with_routing(routing)
                    .with_seed(args.seed)
                    .with_replication(rep);
                let (report, wall) = run_cell(cluster, &bundle, sim, &unit, args.runs);
                let usm = report.average_usm();
                let rep_report = report.replication.as_ref().expect("replication report");
                if factor == 1 {
                    assert_eq!(
                        usm.to_bits(),
                        plain_usm.to_bits(),
                        "factor-1 diverged from the plain cluster at {}/{}",
                        routing.name(),
                        lag_name
                    );
                    assert!(rep_report.propagation.is_empty());
                    assert!(rep_report.routes.is_empty());
                }
                let follower_q = rep_report.routes.len();
                let propagated = rep_report.propagation.len();
                let d_usm = usm - plain_usm;
                println!(
                    "  {:<16} {factor:>6} {lag_name:>16} {usm:>10.4} {d_usm:>+10.4} {follower_q:>12} {propagated:>12} {wall:>8.3}",
                    routing.name()
                );
                rows.push(format!(
                    "    {{\"routing\": \"{}\", \"factor\": {factor}, \"lag\": \"{lag_name}\", \
                     \"lag_base_secs\": {}, \"lag_jitter_secs\": {}, \"lag_windows\": {}, \
                     \"usm\": {usm:.6}, \"usm_plain\": {plain_usm:.6}, \
                     \"follower_routed_queries\": {follower_q}, \
                     \"propagated_versions\": {propagated}, \
                     \"wall_secs\": {wall:.6}}}",
                    routing.name(),
                    lag.base.as_secs_f64(),
                    lag.jitter.as_secs_f64(),
                    lag.windows,
                ));
            }
        }
    }

    if let Some(path) = args.out {
        let json = format!(
            "{{\n  \"bench\": \"replication\",\n  \"workload\": \"fig3 med-unif\",\n  \"policy\": \"UNIT per shard\",\n  \"scale\": {},\n  \"seed\": {},\n  \"n_shards\": {},\n  \"runs\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.seed,
            args.shards,
            args.runs,
            rows.join(",\n")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\n  wrote {path}");
    }
}
