//! One-shot reproduction report: runs every table and figure and writes a
//! single self-contained markdown file with the measured numbers.
//!
//! ```sh
//! cargo run --release -p unit-bench --bin report -- --full
//! # -> results/REPORT.md
//! ```

use std::fmt::Write as _;
use unit_bench::cli::HarnessArgs;
use unit_bench::{default_workload_plan, run_matrix, run_policy, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{TraceStats, UpdateDistribution, UpdateVolume};

fn md_table(out: &mut String, header: &[&str], rows: &[Vec<String>]) {
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    let _ = writeln!(out);
}

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let mut md = String::new();

    let _ = writeln!(md, "# UNIT reproduction report\n");
    let _ = writeln!(
        md,
        "Workload scale 1/{} ({} queries over {:.0} simulated seconds). All runs\n\
         deterministic; regenerate with `cargo run --release -p unit-bench --bin\n\
         report -- --scale {}`.\n",
        args.scale,
        plan.query_cfg.n_queries,
        plan.query_cfg.horizon.as_secs_f64(),
        args.scale
    );

    // --- Table 1 ---------------------------------------------------------
    let _ = writeln!(md, "## Table 1 — update traces\n");
    let mut rows = Vec::new();
    let mut bundles_by_dist = Vec::new();
    for dist in [
        UpdateDistribution::Uniform,
        UpdateDistribution::PositiveCorrelation,
        UpdateDistribution::NegativeCorrelation,
    ] {
        let bundles: Vec<_> = UpdateVolume::ALL
            .iter()
            .map(|&v| plan.bundle(v, dist))
            .collect();
        for b in &bundles {
            rows.push(vec![
                b.name.clone(),
                format!("{:.1}%", 100.0 * b.update_utilization),
                format!("{:+.3}", b.achieved_rho),
            ]);
        }
        bundles_by_dist.push((dist, bundles));
    }
    md_table(&mut md, &["trace", "update util", "rho vs queries"], &rows);

    // --- workload character -----------------------------------------------
    let b = &bundles_by_dist[0].1[1]; // med-unif
    let stats = TraceStats::of(&b.trace, b.horizon);
    let _ = writeln!(md, "## Workload character (med-unif)\n");
    let _ = writeln!(
        md,
        "- access skew: Gini {:.2}, top decile {:.0}% of accesses\n\
         - burstiness: interarrival CV {:.2}\n\
         - mean query {:.2}s against mean deadline {:.1}s\n\
         - mean update {:.1}s — one update spans a typical deadline\n",
        stats.access_gini,
        100.0 * stats.top_decile_access_share,
        stats.interarrival_cv,
        stats.mean_exec_secs,
        stats.mean_deadline_secs,
        stats.mean_update_exec_secs,
    );

    // --- Figure 4 ----------------------------------------------------------
    let _ = writeln!(md, "## Figure 4 — naive USM (success ratio)\n");
    let mut rows = Vec::new();
    for (_, bundles) in &bundles_by_dist {
        let out = run_matrix(&plan, bundles, &PolicyKind::ALL, UsmWeights::naive());
        for (bi, b) in bundles.iter().enumerate() {
            let s: Vec<String> = (0..4)
                .map(|pi| format!("{:.3}", out[bi * 4 + pi].report.success_ratio()))
                .collect();
            rows.push(vec![
                b.name.clone(),
                s[0].clone(),
                s[1].clone(),
                s[2].clone(),
                s[3].clone(),
            ]);
        }
    }
    md_table(&mut md, &["trace", "IMU", "ODU", "QMF", "UNIT"], &rows);

    // --- Figure 5 ----------------------------------------------------------
    let _ = writeln!(
        md,
        "## Figure 5 — USM under Table 2 weightings (med-unif)\n"
    );
    let med_unif = &bundles_by_dist[0].1[1];
    let baselines: Vec<_> = [PolicyKind::Imu, PolicyKind::Odu, PolicyKind::Qmf]
        .iter()
        .map(|&p| run_policy(&plan, med_unif, p, UsmWeights::naive()))
        .collect();
    let mut rows = Vec::new();
    for (setup, w) in [
        ("high C_r (<1)", UsmWeights::low_high_cr()),
        ("high C_fm (<1)", UsmWeights::low_high_cfm()),
        ("high C_fs (<1)", UsmWeights::low_high_cfs()),
        ("high C_r (>1)", UsmWeights::high_high_cr()),
        ("high C_fm (>1)", UsmWeights::high_high_cfm()),
        ("high C_fs (>1)", UsmWeights::high_high_cfs()),
    ] {
        let unit = run_policy(&plan, med_unif, PolicyKind::Unit, w);
        rows.push(vec![
            setup.to_string(),
            format!("{:+.3}", baselines[0].report.usm_under(&w)),
            format!("{:+.3}", baselines[1].report.usm_under(&w)),
            format!("{:+.3}", baselines[2].report.usm_under(&w)),
            format!("{:+.3}", unit.report.average_usm()),
        ]);
    }
    md_table(&mut md, &["setup", "IMU", "ODU", "QMF", "UNIT"], &rows);

    // --- Figure 6 ----------------------------------------------------------
    let _ = writeln!(md, "## Figure 6 — outcome decomposition (med-unif)\n");
    let mut rows = Vec::new();
    for (label, out) in [
        ("IMU", &baselines[0]),
        ("ODU", &baselines[1]),
        ("QMF", &baselines[2]),
    ] {
        let [rs, rr, rfm, rfs] = out.report.ratios();
        rows.push(vec![
            label.to_string(),
            format!("{rs:.3}"),
            format!("{rr:.3}"),
            format!("{rfm:.3}"),
            format!("{rfs:.3}"),
        ]);
    }
    for (setup, w) in [
        ("UNIT, high C_r", UsmWeights::low_high_cr()),
        ("UNIT, high C_fm", UsmWeights::low_high_cfm()),
        ("UNIT, high C_fs", UsmWeights::low_high_cfs()),
    ] {
        let out = run_policy(&plan, med_unif, PolicyKind::Unit, w);
        let [rs, rr, rfm, rfs] = out.report.ratios();
        rows.push(vec![
            setup.to_string(),
            format!("{rs:.3}"),
            format!("{rr:.3}"),
            format!("{rfm:.3}"),
            format!("{rfs:.3}"),
        ]);
    }
    md_table(&mut md, &["policy", "Rs", "Rr", "Rfm", "Rfs"], &rows);

    // --- Figure 3 summary ---------------------------------------------------
    let _ = writeln!(md, "## Figure 3 — update shedding (UNIT)\n");
    let mut rows = Vec::new();
    for dist in [
        UpdateDistribution::Uniform,
        UpdateDistribution::NegativeCorrelation,
    ] {
        let bundle = plan.bundle(UpdateVolume::Med, dist);
        let out = run_policy(&plan, &bundle, PolicyKind::Unit, UsmWeights::naive());
        let r = &out.report;
        let mut order: Vec<usize> = (0..bundle.trace.n_items).collect();
        order.sort_by(|&a, &b| r.query_accesses[b].cmp(&r.query_accesses[a]));
        let keep = |items: &[usize]| -> f64 {
            let a: u64 = items.iter().map(|&i| r.updates_applied[i]).sum();
            let v: u64 = items.iter().map(|&i| r.versions_arrived[i]).sum();
            a as f64 / v.max(1) as f64
        };
        let n = order.len();
        rows.push(vec![
            bundle.name.clone(),
            format!("{:.1}%", 100.0 * (1.0 - r.applied_ratio())),
            format!("{:.0}%", 100.0 * keep(&order[..n / 10])),
            format!("{:.0}%", 100.0 * keep(&order[n / 2..])),
        ]);
    }
    md_table(
        &mut md,
        &[
            "trace",
            "dropped overall",
            "kept (hot decile)",
            "kept (cold half)",
        ],
        &rows,
    );

    match &args.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).ok();
            let file = format!("{dir}/REPORT.md");
            std::fs::write(&file, &md).expect("write report");
            println!("report written to {file}");
        }
        // --no-csv: print the report instead of writing files.
        None => print!("{md}"),
    }
}
