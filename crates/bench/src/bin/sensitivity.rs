//! Parameter-sensitivity study (the analysis the paper defers to its
//! technical report \[17\]).
//!
//! §3.4 claims "sensitivity analysis … has shown that the exact value of
//! C_du does not have a significant effect on the average USM" and sets
//! `C_forget = 0.9` "following current practice". This binary sweeps the
//! paper's constants one at a time on `med-unif` and reports the USM so the
//! claim can be checked against this reproduction.

use unit_bench::cli::HarnessArgs;
use unit_bench::default_workload_plan;
use unit_bench::render::{csv, f, fs, text_table};
use unit_bench::row;
use unit_core::config::UnitConfig;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::run_simulation;
use unit_workload::{UpdateDistribution, UpdateVolume};

struct Sweep {
    name: &'static str,
    paper_value: &'static str,
    configs: Vec<(String, UnitConfig)>,
}

fn sweeps(base: &UnitConfig) -> Vec<Sweep> {
    let mut out = Vec::new();

    out.push(Sweep {
        name: "C_du (degrade step)",
        paper_value: "0.1",
        configs: [0.05, 0.1, 0.2, 0.4]
            .iter()
            .map(|&v| {
                let mut c = base.clone();
                c.c_du = v;
                (format!("{v}"), c)
            })
            .collect(),
    });

    out.push(Sweep {
        name: "C_forget (ticket forgetting)",
        paper_value: "0.9",
        configs: [0.5, 0.7, 0.9, 0.99, 1.0]
            .iter()
            .map(|&v| {
                let mut c = base.clone();
                c.c_forget = v;
                (format!("{v}"), c)
            })
            .collect(),
    });

    out.push(Sweep {
        name: "C_uu (upgrade step)",
        paper_value: "0.5",
        configs: [0.1, 0.25, 0.5, 1.0]
            .iter()
            .map(|&v| {
                let mut c = base.clone();
                c.c_uu = v;
                (format!("{v}"), c)
            })
            .collect(),
    });

    out.push(Sweep {
        name: "LBC grace period (s)",
        paper_value: "unspecified",
        configs: [25u64, 50, 100, 200, 400]
            .iter()
            .map(|&v| {
                let mut c = base.clone();
                c.lbc.grace_period = SimDuration::from_secs(v);
                (format!("{v}"), c)
            })
            .collect(),
    });

    out.push(Sweep {
        name: "C_flex step (TAC/LAC)",
        paper_value: "0.10",
        configs: [0.05, 0.10, 0.20, 0.40]
            .iter()
            .map(|&v| {
                let mut c = base.clone();
                c.c_flex_step = v;
                (format!("{v}"), c)
            })
            .collect(),
    });

    out.push(Sweep {
        name: "degradation cap (x ideal)",
        paper_value: "unbounded",
        configs: [8.0, 16.0, 64.0, 256.0]
            .iter()
            .map(|&v| {
                let mut c = base.clone();
                c.max_degradation_factor = v;
                (format!("{v}"), c)
            })
            .collect(),
    });

    out
}

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::naive();
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    println!(
        "Sensitivity study on med-unif, scale 1/{} (naive USM).\n\
         Paper claim (§3.4): the exact C_du value does not significantly\n\
         affect the average USM.\n",
        args.scale
    );

    let mut csv_rows = Vec::new();
    for sweep in sweeps(&plan.unit_config(weights)) {
        let header = row!["value", "USM", "Rs", "Rr", "Rfm", "Rfs", "applied%"];
        let mut rows = Vec::new();
        let mut usms: Vec<f64> = Vec::new();
        for (label, cfg) in sweep.configs {
            let report = run_simulation(
                &bundle.trace,
                UnitPolicy::new(cfg),
                plan.sim_config(weights),
            );
            let [rs, rr, rfm, rfs] = report.ratios();
            usms.push(report.average_usm());
            rows.push(row![
                label.clone(),
                fs(report.average_usm(), 3),
                f(rs, 3),
                f(rr, 3),
                f(rfm, 3),
                f(rfs, 3),
                format!("{:.1}", 100.0 * report.applied_ratio()),
            ]);
            csv_rows.push(row![
                sweep.name,
                label,
                f(report.average_usm(), 4),
                f(rs, 4),
                f(report.applied_ratio(), 4)
            ]);
        }
        let spread = usms.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - usms.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{} (paper: {})\n{}USM spread across the sweep: {:.3}\n",
            sweep.name,
            sweep.paper_value,
            text_table(&header, &rows),
            spread
        );
    }

    if let Some(path) = args.write_csv(
        "sensitivity.csv",
        &csv(
            &row!["parameter", "value", "usm", "rs", "applied"],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
