//! Live-serving throughput gate: run the fig3 med-unif workload through
//! the wall-clock server (`unit_server::serve`) over a sweep of worker
//! counts and write `BENCH_serve.json` at the repo root, so the serving
//! trajectory accumulates across PRs alongside `BENCH_simspeed.json`.
//!
//! Each row pushes every query of the trace through the full serving
//! pipeline — bounded ingress channel, per-worker UNIT admission,
//! `MemBackend` reads/commits against the sharded store, and a live
//! update stream — and tallies ops/s, the deadline-miss rate, and the
//! outcome split under the run's USM pricing. Conservation (every
//! submitted query reaches exactly one outcome) is asserted per row.
//!
//! The trace's virtual timeline maps onto the wall clock via
//! `--time-scale` (virtual µs per wall µs). The default `1000000` makes a
//! 1 s virtual service demand a ~1 µs spin, so throughput measures the
//! serving pipeline's own overhead (admission, locking, channel hops)
//! rather than the spin floor; drop to `100000` for the physical regime
//! where 10 µs–1 ms deadlines make queueing visible in the miss column as
//! the worker count shrinks. The default mode is flat-out (inject as fast
//! as the channel admits); `--paced` replays arrivals on the scaled
//! timeline instead, which takes `horizon / time_scale` wall time.
//!
//! `--assert-throughput OPS` exits non-zero when no swept worker count
//! sustains `OPS` operations per second — the CI serving gate.
//!
//! Usage: `serve [--scale N] [--workers W[,W...]] [--time-scale S]
//! [--paced] [--shards K] [--seed S] [--policy unit|imu|odu|qmf]
//! [--assert-throughput OPS] [--out FILE | --no-out]`.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_bench::cli::Flags;
use unit_bench::{default_workload_plan, ExperimentPlan, PolicyKind};
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_server::{serve, MemBackend, ServeConfig, ServeReport, WallClock};
use unit_workload::{TraceBundle, UpdateDistribution, UpdateVolume};

struct Args {
    scale: u64,
    workers: Vec<usize>,
    time_scale: u64,
    paced: bool,
    shards: usize,
    seed: u64,
    policy: PolicyKind,
    assert_throughput: Option<f64>,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 4,
        workers: vec![1, 2, 4, 8],
        time_scale: 1_000_000,
        paced: false,
        shards: 16,
        seed: 0x5EED_0012,
        policy: PolicyKind::Unit,
        assert_throughput: None,
        out: Some("BENCH_serve.json".to_string()),
    };
    let mut fl = Flags::from_env(
        "usage: serve [--scale N] [--workers W[,W...]] [--time-scale S] \
         [--paced] [--shards K] [--seed S] [--policy unit|imu|odu|qmf] \
         [--assert-throughput OPS] [--out FILE | --no-out]",
    );
    while let Some(arg) = fl.next_flag() {
        match arg.as_str() {
            "--scale" => args.scale = fl.parse(&arg),
            "--workers" => {
                let v = fl.value(&arg);
                let parsed: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                match parsed {
                    Ok(list) => args.workers = list,
                    Err(_) => fl.fail(&format!("bad --workers value: {v}")),
                }
            }
            "--time-scale" => args.time_scale = fl.parse(&arg),
            "--paced" => args.paced = true,
            "--shards" => args.shards = fl.parse(&arg),
            "--seed" => args.seed = fl.parse(&arg),
            "--policy" => {
                let v = fl.value(&arg);
                args.policy = match v.as_str() {
                    "unit" => PolicyKind::Unit,
                    "imu" => PolicyKind::Imu,
                    "odu" => PolicyKind::Odu,
                    "qmf" => PolicyKind::Qmf,
                    _ => fl.fail(&format!("bad --policy value: {v}")),
                };
            }
            "--assert-throughput" => args.assert_throughput = Some(fl.parse(&arg)),
            "--out" => args.out = Some(fl.value(&arg)),
            "--no-out" => args.out = None,
            other => fl.unknown(other),
        }
    }
    if args.scale == 0 {
        fl.fail("--scale must be >= 1");
    }
    if args.workers.is_empty() || args.workers.contains(&0) {
        fl.fail("--workers needs a comma-separated list of counts >= 1");
    }
    args
}

/// Serve the whole trace once with `workers` worker threads; fresh
/// backend and clock per cell so rows are independent.
fn run_cell(
    args: &Args,
    plan: &ExperimentPlan,
    bundle: &TraceBundle,
    workers: usize,
    weights: UsmWeights,
) -> ServeReport {
    let mut cfg = ServeConfig::new(workers, args.time_scale).with_weights(weights);
    if !args.paced {
        cfg = cfg.flat_out();
    }
    let clock = WallClock::new();
    let backend = MemBackend::new(bundle.trace.n_items, args.shards);
    let trace = &bundle.trace;
    let horizon = bundle.horizon;
    match args.policy {
        PolicyKind::Unit => serve(&cfg, &clock, &backend, trace, horizon, |i| {
            UnitPolicy::new(plan.unit_config(weights).with_seed(args.seed + i as u64))
        }),
        PolicyKind::Imu => serve(&cfg, &clock, &backend, trace, horizon, |_| ImuPolicy::new()),
        PolicyKind::Odu => serve(&cfg, &clock, &backend, trace, horizon, |_| OduPolicy::new()),
        PolicyKind::Qmf => serve(&cfg, &clock, &backend, trace, horizon, |_| {
            QmfPolicy::default()
        }),
    }
}

fn main() {
    let args = parse_args();
    let plan = default_workload_plan(args.scale);
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let weights = UsmWeights::low_high_cfm();
    let queries = bundle.trace.queries.len();
    let mode = if args.paced { "paced" } else { "flat-out" };

    println!(
        "serve: fig3 med-unif, scale 1/{}, {} queries, time-scale {} ({mode})\n",
        args.scale, queries, args.time_scale
    );

    let mut rows = Vec::new();
    let mut peak_ops = 0.0f64;
    let mut policy_name = String::new();
    for &workers in &args.workers {
        let report = run_cell(&args, &plan, &bundle, workers, weights);
        assert!(
            report.conserves(),
            "conservation violated at {workers} workers: {} submitted, {} resolved",
            report.submitted,
            report.counts.total()
        );
        let wall_secs = report.elapsed.0 as f64 / 1_000_000.0;
        let ops = report.ops_per_sec();
        let miss = report.deadline_miss_rate();
        let usm = report.total_usm();
        peak_ops = peak_ops.max(ops);
        policy_name = report.policy.clone();
        println!(
            "  {workers:>3} workers  {wall_secs:>8.3} s  {ops:>12.0} ops/s  \
             miss {:>6.2}%  USM {usm:+.1}",
            100.0 * miss
        );
        rows.push(format!(
            "    {{\"workers\": {workers}, \"wall_secs\": {wall_secs:.6}, \
             \"ops_per_sec\": {ops:.1}, \"deadline_miss_rate\": {miss:.6}, \
             \"success\": {}, \"rejected\": {}, \"deadline_miss\": {}, \
             \"data_stale\": {}, \"updates_arrived\": {}, \
             \"updates_applied\": {}, \"usm\": {usm:.3}}}",
            report.counts.success,
            report.counts.rejected,
            report.counts.deadline_miss,
            report.counts.data_stale,
            report.updates_arrived,
            report.updates_applied,
        ));
    }
    println!("\n  peak {peak_ops:.0} ops/s ({policy_name})");

    if let Some(path) = &args.out {
        let json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"workload\": \"fig3 med-unif\",\n  \
             \"policy\": \"{policy_name}\",\n  \"scale\": {},\n  \
             \"queries\": {queries},\n  \"mode\": \"{mode}\",\n  \
             \"time_scale\": {},\n  \"shards\": {},\n  \
             \"peak_ops_per_sec\": {peak_ops:.1},\n  \"rows\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.time_scale,
            args.shards,
            rows.join(",\n")
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  wrote {path}");
    }

    if let Some(gate) = args.assert_throughput {
        if peak_ops < gate {
            eprintln!(
                "SERVING REGRESSION: peak {peak_ops:.0} ops/s below the \
                 {gate:.0} ops/s gate"
            );
            std::process::exit(1);
        }
        println!("  throughput gate: peak {peak_ops:.0} ops/s >= {gate:.0} ops/s");
    }
}
