//! Perf gate: times the fig3 workload (UNIT policy, med-unif and
//! med-neg bundles) at `--scale 8` and writes `BENCH_simspeed.json` at
//! the repo root so the bench trajectory accumulates across PRs.
//!
//! Usage: `simspeed [--scale N] [--out FILE] [--runs K] [--baseline SECS]
//! [--max-regression R] [--scale-up M] [--stream-demo M] [--chunk C]`.
//!
//! `--baseline` takes a reference total wall-clock (the seed engine's time on
//! the same machine) and records the resulting speedup in the JSON.
//! `--max-regression R` (requires `--baseline`) exits non-zero when the timed
//! total exceeds `R × baseline` — the CI perf gate.
//!
//! `--scale-up M` adds a throughput-stress entry: the plan's query count is
//! multiplied by `M` at a fixed horizon and the med-unif cell is run twice,
//! end to end — once through the materialized pipeline (eager query `Vec`,
//! batch engine) and once through the streaming pipeline (lazy generation
//! fed straight into the chunked engine, the query `Vec` never exists). The
//! two reports are asserted bit-identical before the speedup is recorded.
//!
//! `--stream-demo M` times generation-only streaming at `M×` query load:
//! specs are drained one at a time into a checksum, so peak memory stays at
//! the generator's fixed per-query tape (arrival + exec time) instead of the
//! full spec `Vec`. This is the scale-1000 "no materialization" receipt.

use std::time::Instant;
use unit_bench::cli::Flags;
use unit_bench::{default_workload_plan, run_policy, ExperimentPlan, PolicyKind};
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::{report_digest, Simulator};
use unit_workload::{generate_updates, stream_queries, UpdateDistribution, UpdateVolume};

struct Args {
    scale: u64,
    out: Option<String>,
    runs: usize,
    baseline_secs: Option<f64>,
    max_regression: Option<f64>,
    scale_up: Option<u64>,
    stream_demo: Option<u64>,
    chunk: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 8,
        out: Some("BENCH_simspeed.json".to_string()),
        runs: 3,
        baseline_secs: None,
        max_regression: None,
        scale_up: None,
        stream_demo: None,
        chunk: 1024,
    };
    let mut fl = Flags::from_env(
        "usage: simspeed [--scale N] [--runs K] [--baseline SECS] \
         [--max-regression R] [--scale-up M] [--stream-demo M] \
         [--chunk C] [--out FILE | --no-out]",
    );
    while let Some(arg) = fl.next_flag() {
        match arg.as_str() {
            "--scale" => args.scale = fl.parse(&arg),
            "--runs" => args.runs = fl.parse(&arg),
            "--baseline" => args.baseline_secs = Some(fl.parse(&arg)),
            "--max-regression" => args.max_regression = Some(fl.parse(&arg)),
            "--scale-up" => args.scale_up = Some(fl.parse(&arg)),
            "--stream-demo" => args.stream_demo = Some(fl.parse(&arg)),
            "--chunk" => args.chunk = fl.parse(&arg),
            "--out" => args.out = Some(fl.value(&arg)),
            "--no-out" => args.out = None,
            other => fl.unknown(other),
        }
    }
    if args.max_regression.is_some() && args.baseline_secs.is_none() {
        fl.fail("--max-regression needs --baseline to compare against");
    }
    args
}

/// Time the med-unif cell at `m×` query load through both pipelines,
/// assert the reports bit-identical, and return the JSON fragment plus a
/// human-readable summary line.
fn scale_up_entry(plan: &ExperimentPlan, m: u64, chunk: usize, weights: UsmWeights) -> String {
    let plan_up = plan.scaled_up(m);
    let n_queries = plan_up.query_cfg.n_queries;
    println!("\n  scale-up x{m} (med-unif, {n_queries} queries, fixed horizon):");

    // Streamed pipeline first (the materialized side then runs with a warm
    // allocator, which is the conservative ordering for the speedup claim):
    // lazy generation feeds the chunked engine, the update streams are
    // derived from the generator's popularity profile, and the full query
    // `Vec` never exists.
    let ucfg = plan_up.update_config(UpdateVolume::Med, UpdateDistribution::Uniform);
    let start = Instant::now();
    let stream = stream_queries(&plan_up.query_cfg);
    let updates = generate_updates(&ucfg, stream.item_weights(), plan_up.query_cfg.horizon);
    let streamed_report = Simulator::new_streaming(
        plan_up.query_cfg.n_items,
        &updates.updates,
        UnitPolicy::new(plan_up.unit_config(weights)),
        plan_up.sim_config(weights),
    )
    .run_streamed(stream, chunk);
    let streamed_secs = start.elapsed().as_secs_f64();
    drop(updates);

    // Materialized pipeline: eager query Vec + bundle, then the batch engine.
    let start = Instant::now();
    let bundle = plan_up.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    let mat = run_policy(&plan_up, &bundle, PolicyKind::Unit, weights);
    let mat_secs = start.elapsed().as_secs_f64();

    assert_eq!(
        report_digest(&streamed_report),
        report_digest(&mat.report),
        "streamed pipeline diverged from the materialized pipeline at x{m}"
    );
    let events = mat.report.events_processed;
    let mat_eps = events as f64 / mat_secs;
    let streamed_eps = events as f64 / streamed_secs;
    let speedup = mat_secs / streamed_secs;
    println!("    materialized {mat_secs:>8.3} s  {mat_eps:>12.0} events/s");
    println!(
        "    streamed     {streamed_secs:>8.3} s  {streamed_eps:>12.0} events/s  ({speedup:.2}x)"
    );
    format!(
        ",\n  \"scale_up\": {{\"multiplier\": {m}, \"trace\": \"med-unif\", \
         \"queries\": {n_queries}, \"events\": {events}, \"chunk\": {chunk}, \
         \"materialized\": {{\"wall_secs\": {mat_secs:.6}, \"events_per_sec\": {mat_eps:.1}}}, \
         \"streamed\": {{\"wall_secs\": {streamed_secs:.6}, \"events_per_sec\": {streamed_eps:.1}}}, \
         \"streamed_speedup\": {speedup:.3}}}"
    )
}

/// Drain generation-only streaming at `m×` load without collecting the
/// specs; the checksum keeps the work observable.
fn stream_demo_entry(plan: &ExperimentPlan, m: u64) -> String {
    let qcfg = plan.query_cfg.scaled_up(m);
    let start = Instant::now();
    let stream = stream_queries(&qcfg);
    let expected = stream.len();
    let mut checksum = 0u64;
    let mut count = 0usize;
    for spec in stream {
        checksum = checksum
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(spec.items.len() as u64);
        count += 1;
    }
    assert_eq!(count, expected, "stream terminated early");
    let secs = start.elapsed().as_secs_f64();
    let qps = count as f64 / secs;
    println!(
        "\n  stream-demo x{m}: generated {count} specs in {secs:.3} s \
         ({qps:.0} specs/s, checksum {checksum:#x}) without materializing the Vec"
    );
    format!(
        ",\n  \"stream_generation\": {{\"multiplier\": {m}, \"queries\": {count}, \
         \"wall_secs\": {secs:.6}, \"queries_per_sec\": {qps:.1}, \
         \"materialized_vec\": false}}"
    )
}

fn main() {
    let args = parse_args();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::naive();
    let cells = [
        ("med-unif", UpdateDistribution::Uniform),
        ("med-neg", UpdateDistribution::NegativeCorrelation),
    ];

    println!(
        "simspeed: fig3 workload (UNIT), scale 1/{}, best of {} runs\n",
        args.scale, args.runs
    );

    let mut total_secs = 0.0f64;
    let mut total_events = 0u64;
    let mut peak_events_per_sec = 0.0f64;
    let mut rows = Vec::new();
    for (name, dist) in cells {
        let bundle = plan.bundle(UpdateVolume::Med, dist);
        // One warm-up run, then best-of-K timed runs.
        let mut best_secs = f64::INFINITY;
        let mut events = 0u64;
        let mut usm = 0.0f64;
        for run in 0..=args.runs {
            let start = Instant::now();
            let out = run_policy(&plan, &bundle, PolicyKind::Unit, weights);
            let secs = start.elapsed().as_secs_f64();
            events = out.report.events_processed;
            usm = out.report.average_usm();
            if run > 0 && secs < best_secs {
                best_secs = secs;
            }
        }
        let events_per_sec = events as f64 / best_secs;
        peak_events_per_sec = peak_events_per_sec.max(events_per_sec);
        total_secs += best_secs;
        total_events += events;
        println!(
            "  {name:<10} {best_secs:>8.3} s  {events:>9} events  {events_per_sec:>12.0} events/s  USM {usm:+.4}"
        );
        rows.push(format!(
            "    {{\"trace\": \"{name}\", \"wall_secs\": {best_secs:.6}, \
             \"events\": {events}, \"events_per_sec\": {events_per_sec:.1}, \
             \"usm\": {usm:.6}}}"
        ));
    }

    println!(
        "\n  total     {total_secs:>8.3} s  {total_events:>9} events  peak {peak_events_per_sec:.0} events/s"
    );
    let baseline_json = match args.baseline_secs {
        Some(base) => {
            let speedup = base / total_secs;
            println!("  speedup   {speedup:>8.2}x vs seed baseline {base:.3} s");
            format!(
                "\n  \"seed_baseline_wall_secs_total\": {base:.6},\n  \"speedup_vs_seed\": {speedup:.2},"
            )
        }
        None => String::new(),
    };

    let scale_up_json = args
        .scale_up
        .map(|m| scale_up_entry(&plan, m, args.chunk, weights))
        .unwrap_or_default();
    let demo_json = args
        .stream_demo
        .map(|m| stream_demo_entry(&plan, m))
        .unwrap_or_default();

    if let Some(path) = args.out {
        let json = format!
            (
            "{{\n  \"bench\": \"simspeed\",\n  \"workload\": \"fig3\",\n  \"scale\": {},\n  \"runs\": {},\n  \"wall_secs_total\": {:.6},\n  \"events_total\": {},\n  \"peak_events_per_sec\": {:.1},{}\n  \"cells\": [\n{}\n  ]{}{}\n}}\n",
            args.scale,
            args.runs,
            total_secs,
            total_events,
            peak_events_per_sec,
            baseline_json,
            rows.join(",\n"),
            scale_up_json,
            demo_json
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  wrote {path}");
    }

    if let (Some(base), Some(ratio)) = (args.baseline_secs, args.max_regression) {
        let limit = base * ratio;
        if total_secs > limit {
            eprintln!(
                "PERF REGRESSION: total {total_secs:.3} s exceeds {ratio:.2}x \
                 baseline {base:.3} s (limit {limit:.3} s)"
            );
            std::process::exit(1);
        }
        println!("  perf gate: total {total_secs:.3} s within {ratio:.2}x of baseline {base:.3} s");
    }
}
