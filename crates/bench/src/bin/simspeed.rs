//! Perf gate: times the fig3 workload (UNIT policy, med-unif and
//! med-neg bundles) at `--scale 8` and writes `BENCH_simspeed.json` at
//! the repo root so the bench trajectory accumulates across PRs.
//!
//! Usage: `simspeed [--scale N] [--out FILE] [--runs K] [--baseline SECS]`.
//!
//! `--baseline` takes a reference total wall-clock (the seed engine's time on
//! the same machine) and records the resulting speedup in the JSON.

use std::time::Instant;
use unit_bench::{default_workload_plan, run_policy, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_workload::{UpdateDistribution, UpdateVolume};

struct Args {
    scale: u64,
    out: Option<String>,
    runs: usize,
    baseline_secs: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 8,
        out: Some("BENCH_simspeed.json".to_string()),
        runs: 3,
        baseline_secs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale requires a value");
                args.scale = v.parse().expect("bad --scale");
            }
            "--runs" => {
                let v = it.next().expect("--runs requires a value");
                args.runs = v.parse().expect("bad --runs");
            }
            "--baseline" => {
                let v = it.next().expect("--baseline requires seconds");
                args.baseline_secs = Some(v.parse().expect("bad --baseline"));
            }
            "--out" => args.out = Some(it.next().expect("--out requires a path")),
            "--no-out" => args.out = None,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: simspeed [--scale N] [--runs K] [--baseline SECS] [--out FILE | --no-out]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let plan = default_workload_plan(args.scale);
    let weights = UsmWeights::naive();
    let cells = [
        ("med-unif", UpdateDistribution::Uniform),
        ("med-neg", UpdateDistribution::NegativeCorrelation),
    ];

    println!(
        "simspeed: fig3 workload (UNIT), scale 1/{}, best of {} runs\n",
        args.scale, args.runs
    );

    let mut total_secs = 0.0f64;
    let mut total_events = 0u64;
    let mut peak_events_per_sec = 0.0f64;
    let mut rows = Vec::new();
    for (name, dist) in cells {
        let bundle = plan.bundle(UpdateVolume::Med, dist);
        // One warm-up run, then best-of-K timed runs.
        let mut best_secs = f64::INFINITY;
        let mut events = 0u64;
        let mut usm = 0.0f64;
        for run in 0..=args.runs {
            let start = Instant::now();
            let out = run_policy(&plan, &bundle, PolicyKind::Unit, weights);
            let secs = start.elapsed().as_secs_f64();
            events = out.report.events_processed;
            usm = out.report.average_usm();
            if run > 0 && secs < best_secs {
                best_secs = secs;
            }
        }
        let events_per_sec = events as f64 / best_secs;
        peak_events_per_sec = peak_events_per_sec.max(events_per_sec);
        total_secs += best_secs;
        total_events += events;
        println!(
            "  {name:<10} {best_secs:>8.3} s  {events:>9} events  {events_per_sec:>12.0} events/s  USM {usm:+.4}"
        );
        rows.push(format!(
            "    {{\"trace\": \"{name}\", \"wall_secs\": {best_secs:.6}, \
             \"events\": {events}, \"events_per_sec\": {events_per_sec:.1}, \
             \"usm\": {usm:.6}}}"
        ));
    }

    println!(
        "\n  total     {total_secs:>8.3} s  {total_events:>9} events  peak {peak_events_per_sec:.0} events/s"
    );
    let baseline_json = match args.baseline_secs {
        Some(base) => {
            let speedup = base / total_secs;
            println!("  speedup   {speedup:>8.2}x vs seed baseline {base:.3} s");
            format!(
                "\n  \"seed_baseline_wall_secs_total\": {base:.6},\n  \"speedup_vs_seed\": {speedup:.2},"
            )
        }
        None => String::new(),
    };

    if let Some(path) = args.out {
        let json = format!
            (
            "{{\n  \"bench\": \"simspeed\",\n  \"workload\": \"fig3\",\n  \"scale\": {},\n  \"runs\": {},\n  \"wall_secs_total\": {:.6},\n  \"events_total\": {},\n  \"peak_events_per_sec\": {:.1},{}\n  \"cells\": [\n{}\n  ]\n}}\n",
            args.scale,
            args.runs,
            total_secs,
            total_events,
            peak_events_per_sec,
            baseline_json,
            rows.join(",\n")
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  wrote {path}");
    }
}
