//! Table 1 — the nine update traces: volumes, spatial distributions, and
//! the statistics they actually achieve under this reproduction's generator.

use unit_bench::cli::HarnessArgs;
use unit_bench::default_workload_plan;
use unit_bench::render::{csv, f, text_table};
use unit_bench::row;
use unit_workload::{UpdateDistribution, UpdateVolume};

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    println!(
        "Table 1: update traces, scale 1/{} (horizon {:.0}s, {} queries)\n",
        args.scale,
        plan.query_cfg.horizon.as_secs_f64(),
        plan.query_cfg.n_queries
    );

    let header = row![
        "trace",
        "updates",
        "distribution",
        "target rho",
        "achieved rho",
        "update util",
        "query util",
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for volume in UpdateVolume::ALL {
        for dist in [
            UpdateDistribution::Uniform,
            UpdateDistribution::PositiveCorrelation,
            UpdateDistribution::NegativeCorrelation,
        ] {
            let b = plan.bundle(volume, dist);
            let total: u64 = b
                .trace
                .updates
                .iter()
                .map(|u| {
                    let h = b.horizon.0;
                    if u.first_arrival.0 > h {
                        0
                    } else {
                        1 + (h - u.first_arrival.0) / u.period.0.max(1)
                    }
                })
                .sum();
            let target = match dist {
                UpdateDistribution::Uniform => "0".to_string(),
                UpdateDistribution::PositiveCorrelation => "+0.8".to_string(),
                UpdateDistribution::NegativeCorrelation => "-0.8".to_string(),
            };
            rows.push(row![
                b.name,
                total,
                dist.short_name(),
                target,
                format!("{:+.3}", b.achieved_rho),
                format!("{:.1}%", 100.0 * b.update_utilization),
                format!("{:.1}%", 100.0 * b.query_utilization),
            ]);
            csv_rows.push(row![
                b.name,
                total,
                dist.short_name(),
                f(b.achieved_rho, 4),
                f(b.update_utilization, 4),
                f(b.query_utilization, 4),
            ]);
        }
    }
    println!("{}", text_table(&header, &rows));
    println!(
        "(paper: low = 6,144 ≈ 15% cpu, med = 30,000 ≈ 75% cpu, high = 61,440 ≈ 150% cpu,\n\
         correlated traces at coefficient ±0.8 against the query distribution)"
    );

    if let Some(path) = args.write_csv(
        "table1.csv",
        &csv(
            &row![
                "trace",
                "updates",
                "distribution",
                "rho",
                "update_util",
                "query_util"
            ],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
