//! Table 2 — the USM weight configurations used by the sensitivity
//! experiments (Fig. 5 and Fig. 6).

use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, f, text_table};
use unit_bench::row;
use unit_core::usm::UsmWeights;

fn main() {
    let args = HarnessArgs::from_env();

    let configs: [(&str, &str, UsmWeights); 6] = [
        ("penalties < 1", "high C_r", UsmWeights::low_high_cr()),
        ("penalties < 1", "high C_fm", UsmWeights::low_high_cfm()),
        ("penalties < 1", "high C_fs", UsmWeights::low_high_cfs()),
        ("penalties > 1", "high C_r", UsmWeights::high_high_cr()),
        ("penalties > 1", "high C_fm", UsmWeights::high_high_cfm()),
        ("penalties > 1", "high C_fs", UsmWeights::high_high_cfs()),
    ];

    let header = row!["regime", "setup", "C_s", "C_r", "C_fm", "C_fs", "USM range"];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (regime, setup, w) in configs {
        let (lo, hi) = w.range();
        rows.push(row![
            regime,
            setup,
            w.gain,
            w.c_r,
            w.c_fm,
            w.c_fs,
            format!("[{lo}, {hi}]"),
        ]);
        csv_rows.push(row![
            regime,
            setup,
            f(w.gain, 1),
            f(w.c_r, 1),
            f(w.c_fm, 1),
            f(w.c_fs, 1)
        ]);
    }
    println!("Table 2: USM weights for the Figure 5 sensitivity experiments\n");
    println!("{}", text_table(&header, &rows));

    if let Some(path) = args.write_csv(
        "table2.csv",
        &csv(
            &row!["regime", "setup", "cs", "cr", "cfm", "cfs"],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
