//! Controller-convergence timeline (companion to Fig. 1's feedback story):
//! cumulative USM, backlog, and utilization over time for each policy on
//! one workload — showing UNIT's warm-up and steady state.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, f, render_event_timeline};
use unit_bench::row;
use unit_bench::{default_workload_plan, PolicyKind};
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_obs::{Observer, RingRecorder};
use unit_sim::{run_simulation, SimConfig, SimReport, SimRun, TimelineSample};
use unit_workload::{UpdateDistribution, UpdateVolume};

fn downsample(timeline: &[TimelineSample], points: usize) -> Vec<&TimelineSample> {
    if timeline.is_empty() {
        return Vec::new();
    }
    let step = (timeline.len() / points).max(1);
    timeline.iter().step_by(step).collect()
}

fn run(
    plan: &unit_bench::ExperimentPlan,
    bundle: &unit_workload::TraceBundle,
    kind: PolicyKind,
    observer: Option<&mut dyn Observer>,
) -> SimReport {
    let cfg = SimConfig::new(bundle.horizon)
        .with_weights(UsmWeights::naive())
        .with_tick_period(plan.tick_period)
        .with_timeline();
    match (kind, observer) {
        (PolicyKind::Imu, None) => run_simulation(&bundle.trace, ImuPolicy::new(), cfg),
        (PolicyKind::Odu, None) => run_simulation(&bundle.trace, OduPolicy::new(), cfg),
        (PolicyKind::Qmf, None) => run_simulation(&bundle.trace, QmfPolicy::default(), cfg),
        (PolicyKind::Unit, None) => run_simulation(
            &bundle.trace,
            UnitPolicy::new(plan.unit_config(UsmWeights::naive())),
            cfg,
        ),
        (PolicyKind::Imu, Some(o)) => SimRun::trace(&bundle.trace, ImuPolicy::new(), cfg)
            .with_observer(o)
            .run(),
        (PolicyKind::Odu, Some(o)) => SimRun::trace(&bundle.trace, OduPolicy::new(), cfg)
            .with_observer(o)
            .run(),
        (PolicyKind::Qmf, Some(o)) => SimRun::trace(&bundle.trace, QmfPolicy::default(), cfg)
            .with_observer(o)
            .run(),
        (PolicyKind::Unit, Some(o)) => SimRun::trace(
            &bundle.trace,
            UnitPolicy::new(plan.unit_config(UsmWeights::naive())),
            cfg,
        )
        .with_observer(o)
        .run(),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    let plan = default_workload_plan(args.scale);
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    println!(
        "Timeline: cumulative success ratio over time (med-unif, scale 1/{})\n",
        args.scale
    );

    let mut csv_rows = Vec::new();
    for kind in PolicyKind::ALL {
        // The UNIT run doubles as the --trace-out subject (observation is
        // digest-neutral, so the observed report serves the table too).
        let record = args.trace_out.is_some() && kind == PolicyKind::Unit;
        let mut rec = RingRecorder::unbounded();
        let report = if record {
            run(&plan, &bundle, kind, Some(&mut rec))
        } else {
            run(&plan, &bundle, kind, None)
        };
        if record {
            let events = rec.into_events();
            println!("\nevent timeline (UNIT, med-unif):");
            print!("{}", render_event_timeline(&events, 64));
            if let Some(path) = args.write_trace(&events) {
                println!("event trace written to {path}");
            }
            println!();
        }
        let samples = downsample(&report.timeline, 12);
        print!("{:<5}", kind.name());
        for s in &samples {
            print!(" {:>5.2}", s.usm);
        }
        println!("   (final {:.3})", report.success_ratio());
        // CSV keeps ~500 evenly spaced samples per policy (per-tick rows at
        // full scale would be hundreds of thousands of lines).
        let step = (report.timeline.len() / 500).max(1);
        for s in report.timeline.iter().step_by(step) {
            csv_rows.push(row![
                kind.name(),
                f(s.time.as_secs_f64(), 0),
                f(s.usm, 4),
                s.ready_queries,
                f(s.update_backlog_secs, 1),
                f(s.utilization, 3),
            ]);
        }
    }
    println!("\n(columns are evenly spaced samples across the run; UNIT's early dip is the\n controller warm-up while the ticket table learns the access pattern)");

    if let Some(path) = args.write_csv(
        "timeline.csv",
        &csv(
            &row![
                "policy",
                "time_s",
                "usm",
                "ready_queries",
                "update_backlog_s",
                "utilization"
            ],
            &csv_rows,
        ),
    ) {
        println!("CSV written to {path}");
    }
}
