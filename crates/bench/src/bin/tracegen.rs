//! Workload generation CLI: build any Table 1 workload (or a custom-sized
//! one), inspect its statistics, and save it as JSON for reuse.
//!
//! ```sh
//! # Generate the paper's med-unif workload and save it:
//! cargo run --release -p unit-bench --bin tracegen -- \
//!     --volume med --dist unif --out-file workload.json
//!
//! # Inspect a saved workload:
//! cargo run --release -p unit-bench --bin tracegen -- --inspect workload.json
//! ```

use std::path::Path;
use unit_bench::cli::Flags;
use unit_bench::default_workload_plan;
use unit_bench::render::{bucketize, spark};
use unit_workload::{TraceBundle, TraceStats, UpdateDistribution, UpdateVolume};

struct Args {
    scale: u64,
    volume: UpdateVolume,
    dist: UpdateDistribution,
    out_file: Option<String>,
    inspect: Option<String>,
}

const USAGE: &str = "usage: tracegen [--scale N | --full] [--volume low|med|high]\n\
    \x20               [--dist unif|pos|neg] [--out-file PATH]\n\
    \x20               [--inspect PATH]\n\
    \n\
    Without --inspect, generates the selected Table 1 workload (default\n\
    med-unif at 1/4 scale), prints its statistics, and optionally saves\n\
    it as JSON. With --inspect, loads a saved workload and prints its\n\
    statistics instead.";

fn parse_args() -> Args {
    let mut out = Args {
        scale: 4,
        volume: UpdateVolume::Med,
        dist: UpdateDistribution::Uniform,
        out_file: None,
        inspect: None,
    };
    let mut fl = Flags::from_env(USAGE);
    while let Some(arg) = fl.next_flag() {
        match arg.as_str() {
            "--scale" => out.scale = fl.parse(&arg),
            "--full" => out.scale = 1,
            "--volume" => {
                let v = fl.value(&arg);
                out.volume = match v.as_str() {
                    "low" => UpdateVolume::Low,
                    "med" => UpdateVolume::Med,
                    "high" => UpdateVolume::High,
                    _ => fl.fail(&format!("bad --volume value: {v}")),
                }
            }
            "--dist" => {
                let v = fl.value(&arg);
                out.dist = match v.as_str() {
                    "unif" => UpdateDistribution::Uniform,
                    "pos" => UpdateDistribution::PositiveCorrelation,
                    "neg" => UpdateDistribution::NegativeCorrelation,
                    _ => fl.fail(&format!("bad --dist value: {v}")),
                }
            }
            "--out-file" => out.out_file = Some(fl.value(&arg)),
            "--inspect" => out.inspect = Some(fl.value(&arg)),
            other => fl.unknown(other),
        }
    }
    if out.scale == 0 {
        fl.fail("--scale must be >= 1");
    }
    out
}

fn describe(bundle: &TraceBundle) {
    let t = &bundle.trace;
    println!("workload `{}`", bundle.name);
    println!("  items:            {}", t.n_items);
    println!("  queries:          {}", t.queries.len());
    println!("  update streams:   {}", t.updates.len());
    println!("  horizon:          {:.0}s", bundle.horizon.as_secs_f64());
    println!(
        "  offered load:     {:.1}% query + {:.1}% update = {:.1}%",
        100.0 * bundle.query_utilization,
        100.0 * bundle.update_utilization,
        100.0 * bundle.offered_load()
    );
    println!("  update/query rho: {:+.3}", bundle.achieved_rho);

    let access = t.query_access_histogram();
    println!("  access histogram: {}", spark(&bucketize(&access, 64)));
    let volume = t.update_volume_histogram(bundle.horizon);
    println!("  update histogram: {}", spark(&bucketize(&volume, 64)));

    let execs: Vec<f64> = t
        .queries
        .iter()
        .map(|q| q.exec_time.as_secs_f64())
        .collect();
    let deadlines: Vec<f64> = t
        .queries
        .iter()
        .map(|q| q.relative_deadline.as_secs_f64())
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "  query exec:       mean {:.2}s, max {:.2}s",
        mean(&execs),
        execs.iter().copied().fold(0.0, f64::max)
    );
    println!(
        "  query deadline:   mean {:.1}s, max {:.1}s",
        mean(&deadlines),
        deadlines.iter().copied().fold(0.0, f64::max)
    );
    let classes = t.queries.iter().map(|q| q.pref_class).max().unwrap_or(0) + 1;
    println!("  preference classes: {classes}");

    let stats = TraceStats::of(t, bundle.horizon);
    println!(
        "  access skew:      gini {:.2}, top-decile share {:.0}%",
        stats.access_gini,
        100.0 * stats.top_decile_access_share
    );
    println!(
        "  burstiness:       interarrival CV {:.2} (1 = Poisson)",
        stats.interarrival_cv
    );
    println!(
        "  slack:            mean deadline/exec {:.1}x",
        stats.mean_slack_factor
    );
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.inspect {
        match TraceBundle::load(Path::new(path)) {
            Ok(bundle) => {
                if let Err(e) = bundle.trace.validate() {
                    eprintln!("warning: trace fails validation: {e}");
                }
                describe(&bundle);
            }
            Err(e) => {
                eprintln!("cannot load {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let plan = default_workload_plan(args.scale);
    let bundle = plan.bundle(args.volume, args.dist);
    describe(&bundle);

    if let Some(path) = &args.out_file {
        match bundle.save(Path::new(path)) {
            Ok(()) => println!("\nsaved to {path}"),
            Err(e) => {
                eprintln!("cannot save {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
