//! Seed-robustness study: do the headline conclusions survive workload
//! resampling, or are they an artifact of one trace draw?
//!
//! Regenerates `med-unif` under several independent workload seeds and
//! reports mean ± population std-dev of each policy's success ratio, plus
//! how often UNIT wins.

use unit_bench::cli::HarnessArgs;
use unit_bench::render::{csv, f, text_table};
use unit_bench::row;
use unit_bench::{run_matrix, ExperimentPlan, PolicyKind};
use unit_core::time::SimDuration;
use unit_core::usm::UsmWeights;
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SEEDS: [u64; 8] = [11, 23, 37, 59, 71, 97, 113, 131];

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let args = HarnessArgs::from_env();
    println!(
        "Seed-robustness: med-unif regenerated under {} workload seeds (scale 1/{})\n",
        SEEDS.len(),
        args.scale
    );

    // One bundle per seed: reseed both the query trace and the update trace.
    let base = QueryTraceConfig::default().scaled_down(args.scale);
    let bundles: Vec<TraceBundle> = SEEDS
        .iter()
        .map(|&seed| {
            let qcfg = QueryTraceConfig { seed, ..base };
            let mut ucfg =
                UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
                    .with_total((30_000 / args.scale).max(1));
            ucfg.seed = seed.wrapping_mul(0x9e37_79b9);
            TraceBundle::generate(&qcfg, &ucfg)
        })
        .collect();

    let plan = ExperimentPlan {
        query_cfg: base,
        scale: args.scale,
        tick_period: SimDuration::from_secs(10),
    };
    let out = run_matrix(&plan, &bundles, &PolicyKind::ALL, UsmWeights::naive());

    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut unit_wins = 0usize;
    for bi in 0..bundles.len() {
        let s: Vec<f64> = (0..4)
            .map(|pi| out[bi * 4 + pi].report.success_ratio())
            .collect();
        let best = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if (s[3] - best).abs() < 1e-12 {
            unit_wins += 1;
        }
        for (pi, v) in s.iter().enumerate() {
            per_policy[pi].push(*v);
        }
    }

    let header = row!["policy", "mean", "std", "min", "max"];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (pi, kind) in PolicyKind::ALL.iter().enumerate() {
        let (mean, std) = mean_std(&per_policy[pi]);
        let min = per_policy[pi].iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_policy[pi]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        rows.push(row![
            kind.name(),
            f(mean, 3),
            f(std, 3),
            f(min, 3),
            f(max, 3)
        ]);
        csv_rows.push(row![
            kind.name(),
            f(mean, 4),
            f(std, 4),
            f(min, 4),
            f(max, 4)
        ]);
    }
    println!("{}", text_table(&header, &rows));
    println!(
        "UNIT is the top policy in {unit_wins} of {} resampled workloads.",
        bundles.len()
    );

    if let Some(path) = args.write_csv(
        "variance.csv",
        &csv(&row!["policy", "mean", "std", "min", "max"], &csv_rows),
    ) {
        println!("CSV written to {path}");
    }
}
