//! Seeded chaos harness: random fault plans, invariant oracles, and a
//! greedy plan shrinker.
//!
//! The harness generates valid-by-construction [`FaultPlan`]s from a seed,
//! runs each against the golden med-unif workload on a fault-aware
//! cluster, and checks a set of *oracles* — cross-cutting invariants that
//! must hold for every plan, not just the hand-picked ones in the
//! differential suites:
//!
//! * **conservation** — every query is accounted for exactly once, and
//!   lose-state recoveries tally one-for-one with the plan's crash
//!   windows;
//! * **health-consistency** — no shard outcome lands strictly inside a
//!   pause window, retry budgets are respected
//!   ([`check_health_consistency`]);
//! * **worker-determinism** — worker count and epoch slicing are pure
//!   wall-clock knobs: reports are bit-identical across them;
//! * **recovery-identity** — stripping every
//!   [`FaultMode::CrashLoseState`] window changes no behavioural field:
//!   crash recovery is invisible in virtual time (`end_time`,
//!   `events_processed`, and the fault tallies — tape bookkeeping, not
//!   behaviour — are legitimately excluded; see the comparison helper's
//!   doc comment for why).
//!
//! A failing plan is *shrunk* before it is reported: whole shards are
//! emptied, then individual fault components dropped, then the surviving
//! windows bisected — greedily, to a local fixpoint, re-checking the
//! failed oracle at every step. The minimal reproducer is emitted as a
//! JSON [`ChaosFixture`] so it can be committed as a regression test
//! (see `tests/chaos_fixtures.rs`).
//!
//! `--fixture-broken` mode plants a deliberately false oracle
//! ([`Oracle::PlantedNoRecoveries`]) to prove end-to-end that the harness
//! can find a violation and shrink it to a single fault component.

use serde::{Deserialize, Serialize};
use unit_cluster::{
    check_health_consistency, BackoffConfig, ClusterConfig, FailoverPolicy, FaultClusterReport,
};
use unit_core::config::UnitConfig;
use unit_core::seed::split_seed;
use unit_core::time::{SimDuration, SimTime};
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan, FaultSchedule};
use unit_sim::{report_digest, SimConfig};
use unit_workload::{TraceBundle, UpdateDistribution, UpdateVolume};

/// Counter-mode SplitMix64 draws, the same stateless construction the
/// fault-schedule generator uses: draw `k` is `split_seed(seed, k)`.
struct Draws {
    seed: u64,
    n: u64,
}

impl Draws {
    fn new(seed: u64) -> Draws {
        Draws { seed, n: 0 }
    }

    fn next(&mut self) -> u64 {
        let v = split_seed(self.seed, self.n);
        self.n += 1;
        v
    }

    /// A draw in `[0, n)`; 0 when `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    /// A draw in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The fixed cluster-side failover policy every chaos run uses.
pub fn chaos_failover() -> FailoverPolicy {
    FailoverPolicy::Backoff(BackoffConfig::default())
}

/// The workload every chaos plan runs against: the golden fig3 med-unif
/// bundle (UNIT policy per shard) at a configurable scale, plus the
/// cluster shape. Built once per sweep; plans vary, the workload doesn't.
pub struct ChaosWorkload {
    bundle: TraceBundle,
    sim: SimConfig,
    unit: UnitConfig,
    n_shards: usize,
    seed: u64,
}

impl ChaosWorkload {
    /// Build the workload at `1/scale` of paper size with `n_shards`
    /// shards; `seed` seeds the per-shard policies (not the fault plans).
    pub fn new(scale: u64, n_shards: usize, seed: u64) -> ChaosWorkload {
        let plan = crate::default_workload_plan(scale);
        let weights = UsmWeights::low_high_cfm();
        ChaosWorkload {
            bundle: plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform),
            sim: plan.sim_config(weights),
            unit: plan.unit_config(weights),
            n_shards,
            seed,
        }
    }

    /// The workload horizon fault plans must fit inside.
    pub fn horizon(&self) -> SimDuration {
        self.bundle.horizon
    }

    /// Number of database items (stream faults target these).
    pub fn n_items(&self) -> usize {
        self.bundle.trace.n_items
    }

    /// Number of queries in the trace.
    pub fn n_queries(&self) -> usize {
        self.bundle.trace.queries.len()
    }

    /// Cluster width.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Execute one fault-aware cluster run of `plan` with `workers`
    /// executor threads (0 = in-line) and optional epoch slicing.
    pub fn run(
        &self,
        plan: &FaultPlan,
        workers: usize,
        epoch: Option<SimDuration>,
    ) -> FaultClusterReport {
        let mut cluster = ClusterConfig::new(self.n_shards)
            .with_seed(self.seed)
            .with_workers(workers);
        if let Some(e) = epoch {
            cluster = cluster.with_epoch(e);
        }
        cluster
            .build()
            .with_faults(plan, chaos_failover())
            .run_unit(&self.bundle.trace, self.sim, &self.unit)
            .expect("chaos plans are valid by construction") // lint: allow(panic) — every plan is validated before the run
            .into_faulty()
            .expect("fault plan installed") // lint: allow(panic) — with_faults was called two lines up
    }
}

/// Generate a random, valid-by-construction fault plan. Each shard
/// independently draws a profile from `split_seed(seed, shard)`: a mode
/// (pause, degraded reads, or lose-state crash — biased toward
/// lose-state, the chaos focus), a crash rate, and optional stream
/// faults and load bursts. Roughly a quarter of shards stay quiet.
pub fn generate_plan(
    seed: u64,
    horizon: SimDuration,
    n_items: usize,
    n_shards: usize,
) -> FaultPlan {
    let shards = (0..n_shards)
        .map(|s| {
            let shard_seed = split_seed(seed, s as u64);
            let mut d = Draws::new(shard_seed);
            if d.f64() < 0.25 {
                return FaultSchedule::empty();
            }
            let mode = match d.below(4) {
                0 => FaultMode::Pause,
                1 => FaultMode::DegradedReads,
                _ => FaultMode::CrashLoseState,
            };
            let crash_rate = 0.02 + d.f64() * 0.2;
            let mean_window = SimDuration::from_secs(60 + d.below(600));
            let stream_faults = d.below(4) as usize;
            let stream_len = SimDuration::from_secs(30 + d.below(300));
            let stream_delay = if d.f64() < 0.5 {
                SimDuration::ZERO // drop faults
            } else {
                SimDuration::from_secs(1 + d.below(60))
            };
            let bursts = d.below(3) as usize;
            let burst_loads = 1 + d.below(8) as u32;
            let burst_exec = SimDuration::from_secs(1 + d.below(10));
            let cfg = FaultConfig::quiet(horizon, n_items)
                .with_crashes(crash_rate, mean_window, mode)
                .with_stream_faults(stream_faults, stream_len, stream_delay)
                .with_bursts(bursts, burst_loads, burst_exec);
            FaultSchedule::generate(shard_seed, &cfg)
        })
        .collect();
    FaultPlan { shards }
}

/// Component tally of a plan: `(crash windows, of which lose-state,
/// stream faults, bursts)`.
pub fn plan_components(plan: &FaultPlan) -> (usize, usize, usize, usize) {
    let mut crashes = 0;
    let mut lose_state = 0;
    let mut streams = 0;
    let mut bursts = 0;
    for s in &plan.shards {
        crashes += s.crashes.len();
        lose_state += s
            .crashes
            .iter()
            .filter(|w| w.mode == FaultMode::CrashLoseState)
            .count();
        streams += s.stream_faults.len();
        bursts += s.bursts.len();
    }
    (crashes, lose_state, streams, bursts)
}

/// Expected lose-state recoveries per shard: one per crash window.
fn expected_recoveries(schedule: &FaultSchedule) -> u64 {
    schedule
        .crashes
        .iter()
        .filter(|w| w.mode == FaultMode::CrashLoseState)
        .count() as u64
}

/// A copy of `plan` with every lose-state crash window removed — the
/// reference side of the recovery-identity oracle. Dropping windows
/// preserves validity (order and disjointness are unaffected).
pub fn strip_lose_state(plan: &FaultPlan) -> FaultPlan {
    let shards = plan
        .shards
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.crashes.retain(|w| w.mode != FaultMode::CrashLoseState);
            s
        })
        .collect();
    FaultPlan { shards }
}

fn assert_identical(
    a: &FaultClusterReport,
    b: &FaultClusterReport,
    what: &str,
) -> Result<(), String> {
    if a.cluster.assignment != b.cluster.assignment {
        return Err(format!("{what}: assignment diverged"));
    }
    if a.counts != b.counts {
        return Err(format!(
            "{what}: outcome tally diverged ({:?} vs {:?})",
            a.counts, b.counts
        ));
    }
    if a.log != b.log {
        return Err(format!("{what}: merged outcome log diverged"));
    }
    if a.decisions != b.decisions {
        return Err(format!("{what}: routing decisions diverged"));
    }
    for (s, (ra, rb)) in a
        .cluster
        .shard_reports
        .iter()
        .zip(&b.cluster.shard_reports)
        .enumerate()
    {
        if report_digest(ra) != report_digest(rb) {
            return Err(format!("{what}: shard {s} digest diverged"));
        }
    }
    Ok(())
}

/// Per-shard behavioural equality: every report field except the ones
/// that legitimately depend on the *event tape* rather than on observable
/// behaviour. A lose-state crash schedules a wakeup the stripped plan
/// lacks; if that wakeup lands past the run's last real event it becomes
/// the new `end_time` without changing a single outcome — the chaos
/// harness found exactly this boundary case. Excluded: `end_time` (tape
/// bookkeeping), `events_processed` (already digest-excluded), `faults`
/// (recoveries differ by definition). Everything else — outcomes,
/// histograms, signals, CPU accounting, the full per-query outcome log —
/// must match bit for bit.
fn behaviourally_identical(
    a: &FaultClusterReport,
    b: &FaultClusterReport,
    what: &str,
) -> Result<(), String> {
    if a.cluster.assignment != b.cluster.assignment {
        return Err(format!("{what}: assignment diverged"));
    }
    if a.counts != b.counts {
        return Err(format!("{what}: outcome tally diverged"));
    }
    if a.log != b.log {
        return Err(format!("{what}: merged outcome log diverged"));
    }
    if a.decisions != b.decisions {
        return Err(format!("{what}: routing decisions diverged"));
    }
    for (s, (ra, rb)) in a
        .cluster
        .shard_reports
        .iter()
        .zip(&b.cluster.shard_reports)
        .enumerate()
    {
        macro_rules! check {
            ($f:ident) => {
                if ra.$f != rb.$f {
                    return Err(format!("{what}: shard {s} diverged in {}", stringify!($f)));
                }
            };
        }
        check!(policy);
        check!(weights);
        check!(counts);
        check!(class_counts);
        check!(query_accesses);
        check!(versions_arrived);
        check!(updates_applied);
        check!(hp_aborts);
        check!(query_restarts);
        check!(preemptions);
        check!(demand_refreshes);
        check!(cpu_busy);
        check!(horizon);
        check!(n_cpus);
        check!(signals);
        check!(mean_dispatch_freshness);
        check!(timeline);
        check!(outcome_records);
        // Deliberately NOT checked: `end_time`, `events_processed`,
        // `faults` — the tape-bookkeeping trio described above.
    }
    Ok(())
}

/// An invariant the harness checks against every generated plan. Each
/// oracle is self-contained — it performs the cluster runs it needs — so
/// the shrinker can re-evaluate a single failed oracle on candidate
/// plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Oracle {
    /// Every query is accounted for exactly once; lose-state recoveries
    /// tally one-for-one with the plan's crash windows.
    Conservation,
    /// [`check_health_consistency`]: outcomes respect pause windows and
    /// retry budgets.
    HealthConsistency,
    /// Worker count and epoch slicing must not change the report.
    WorkerDeterminism,
    /// Lose-state crashes must be invisible: the plan and its
    /// [`strip_lose_state`] twin produce behaviourally identical reports
    /// (every field except the tape-bookkeeping trio `end_time`,
    /// `events_processed`, and `faults`).
    RecoveryIdentity,
    /// **Deliberately false** (`--fixture-broken`): claims no shard ever
    /// recovers. Fails on any plan whose lose-state windows fire —
    /// proving the harness finds violations and shrinks them.
    PlantedNoRecoveries,
}

impl Oracle {
    /// The real invariants, checked in every sweep.
    pub const REAL: [Oracle; 4] = [
        Oracle::Conservation,
        Oracle::HealthConsistency,
        Oracle::WorkerDeterminism,
        Oracle::RecoveryIdentity,
    ];

    /// Stable lowercase name (used in fixtures and reports).
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Conservation => "conservation",
            Oracle::HealthConsistency => "health-consistency",
            Oracle::WorkerDeterminism => "worker-determinism",
            Oracle::RecoveryIdentity => "recovery-identity",
            Oracle::PlantedNoRecoveries => "planted-no-recoveries",
        }
    }

    /// Look an oracle up by its [`Oracle::name`].
    pub fn from_name(name: &str) -> Option<Oracle> {
        [
            Oracle::Conservation,
            Oracle::HealthConsistency,
            Oracle::WorkerDeterminism,
            Oracle::RecoveryIdentity,
            Oracle::PlantedNoRecoveries,
        ]
        .into_iter()
        .find(|o| o.name() == name)
    }

    /// Check the oracle against `plan` on `w`. `Err` carries a
    /// human-readable description of the violation.
    pub fn check(self, w: &ChaosWorkload, plan: &FaultPlan) -> Result<(), String> {
        match self {
            Oracle::Conservation => {
                let r = w.run(plan, 0, None);
                let total = r.counts.total() as usize;
                if total != w.n_queries() {
                    return Err(format!(
                        "conservation: {} outcomes for {} queries",
                        total,
                        w.n_queries()
                    ));
                }
                if r.log.len() != total {
                    return Err(format!(
                        "conservation: merged log has {} entries for {} outcomes",
                        r.log.len(),
                        total
                    ));
                }
                for (s, (report, sched)) in
                    r.cluster.shard_reports.iter().zip(&plan.shards).enumerate()
                {
                    let want = expected_recoveries(sched);
                    if report.faults.recoveries != want {
                        return Err(format!(
                            "conservation: shard {s} recovered {} times for {} lose-state windows",
                            report.faults.recoveries, want
                        ));
                    }
                }
                Ok(())
            }
            Oracle::HealthConsistency => {
                let r = w.run(plan, 0, None);
                check_health_consistency(&r, plan, &chaos_failover())
                    .map_err(|e| format!("health-consistency: {e}"))
            }
            Oracle::WorkerDeterminism => {
                let whole = w.run(plan, 0, None);
                let epoch = w.run(plan, 2, Some(SimDuration::from_secs(500)));
                assert_identical(
                    &whole,
                    &epoch,
                    "worker-determinism: whole/0 vs epoch-500s/2",
                )
            }
            Oracle::RecoveryIdentity => {
                let stripped = strip_lose_state(plan);
                if stripped == *plan {
                    return Ok(()); // vacuous: nothing to strip
                }
                let crashed = w.run(plan, 0, None);
                let reference = w.run(&stripped, 0, None);
                behaviourally_identical(
                    &crashed,
                    &reference,
                    "recovery-identity: plan vs lose-state-stripped plan",
                )
            }
            Oracle::PlantedNoRecoveries => {
                let r = w.run(plan, 0, None);
                let recoveries: u64 = r
                    .cluster
                    .shard_reports
                    .iter()
                    .map(|s| s.faults.recoveries)
                    .sum();
                if recoveries != 0 {
                    return Err(format!(
                        "planted-no-recoveries: {recoveries} recoveries (the planted \
                         claim is wrong by design)"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Result of shrinking a failing plan: the minimal plan the greedy passes
/// converge to, the violation message it still produces, and the number
/// of oracle evaluations spent.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal failing plan.
    pub plan: FaultPlan,
    /// The oracle's violation message on the minimal plan.
    pub message: String,
    /// Oracle evaluations performed while shrinking.
    pub oracle_runs: u64,
}

/// Upper bound on oracle evaluations per shrink, so a pathological plan
/// cannot wedge the sweep.
const SHRINK_RUN_BUDGET: u64 = 400;

/// Greedily shrink a plan that fails `oracle`, to a local fixpoint:
/// first try emptying whole shards, then dropping individual crash
/// windows / stream faults / bursts, then bisecting the surviving window
/// lengths. Every kept step still fails the oracle, so the result is a
/// genuine minimal reproducer, not a guess.
pub fn shrink(w: &ChaosWorkload, oracle: Oracle, plan: &FaultPlan, message: String) -> Shrunk {
    let mut current = plan.clone();
    let mut message = message;
    let mut runs = 0u64;

    // Returns the failure message if `candidate` still fails.
    let still_fails = |candidate: &FaultPlan, runs: &mut u64| -> Option<String> {
        if *runs >= SHRINK_RUN_BUDGET {
            return None;
        }
        *runs += 1;
        oracle.check(w, candidate).err()
    };

    loop {
        let mut changed = false;

        // Pass 1: empty whole shards (coarsest cut first).
        for s in 0..current.shards.len() {
            // lint: allow(D6) — s < shards.len() by the loop bound
            if current.shards[s].is_empty() {
                continue;
            }
            let mut candidate = current.clone();
            // lint: allow(D6) — same bound
            candidate.shards[s] = FaultSchedule::empty();
            if let Some(msg) = still_fails(&candidate, &mut runs) {
                current = candidate;
                message = msg;
                changed = true;
            }
        }

        // Pass 2: drop individual components, highest index first so
        // removal does not disturb the positions still to visit.
        for s in 0..current.shards.len() {
            // lint: allow(D6) — s < shards.len() by the loop bound
            for i in (0..current.shards[s].crashes.len()).rev() {
                let mut candidate = current.clone();
                // lint: allow(D6) — i < crashes.len() by the loop bound
                candidate.shards[s].crashes.remove(i);
                if let Some(msg) = still_fails(&candidate, &mut runs) {
                    current = candidate;
                    message = msg;
                    changed = true;
                }
            }
            // lint: allow(D6) — s < shards.len() by the loop bound
            for i in (0..current.shards[s].stream_faults.len()).rev() {
                let mut candidate = current.clone();
                // lint: allow(D6) — i < stream_faults.len() by the loop bound
                candidate.shards[s].stream_faults.remove(i);
                if let Some(msg) = still_fails(&candidate, &mut runs) {
                    current = candidate;
                    message = msg;
                    changed = true;
                }
            }
            // lint: allow(D6) — s < shards.len() by the loop bound
            for i in (0..current.shards[s].bursts.len()).rev() {
                let mut candidate = current.clone();
                // lint: allow(D6) — i < bursts.len() by the loop bound
                candidate.shards[s].bursts.remove(i);
                if let Some(msg) = still_fails(&candidate, &mut runs) {
                    current = candidate;
                    message = msg;
                    changed = true;
                }
            }
        }

        // Pass 3: bisect surviving windows (halve each length, floor 1).
        for s in 0..current.shards.len() {
            // lint: allow(D6) — s < shards.len() by the loop bound
            for i in 0..current.shards[s].crashes.len() {
                // lint: allow(D6) — i < crashes.len() by the loop bound
                let win = current.shards[s].crashes[i];
                let len = win.end.saturating_since(win.start);
                if len.0 <= 1 {
                    continue;
                }
                let mut candidate = current.clone();
                // lint: allow(D6) — same bounds as above
                candidate.shards[s].crashes[i].end = SimTime(win.start.0 + (len.0 / 2).max(1));
                if let Some(msg) = still_fails(&candidate, &mut runs) {
                    current = candidate;
                    message = msg;
                    changed = true;
                }
            }
            // lint: allow(D6) — s < shards.len() by the loop bound
            for i in 0..current.shards[s].stream_faults.len() {
                // lint: allow(D6) — i < stream_faults.len() by the loop bound
                let f = current.shards[s].stream_faults[i];
                let len = f.end.saturating_since(f.start);
                if len.0 <= 1 {
                    continue;
                }
                let mut candidate = current.clone();
                // lint: allow(D6) — same bounds as above
                candidate.shards[s].stream_faults[i].end = SimTime(f.start.0 + (len.0 / 2).max(1));
                if let Some(msg) = still_fails(&candidate, &mut runs) {
                    current = candidate;
                    message = msg;
                    changed = true;
                }
            }
        }

        if !changed || runs >= SHRINK_RUN_BUDGET {
            break;
        }
    }

    debug_assert!(
        current.validate().is_ok(),
        "shrinking must preserve validity"
    );
    Shrunk {
        plan: current,
        message,
        oracle_runs: runs,
    }
}

/// A shrunk reproducer, serializable as a regression fixture. Committed
/// fixtures live in `tests/fixtures/chaos/` and are replayed against the
/// real oracles by `tests/chaos_fixtures.rs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosFixture {
    /// What this fixture reproduces (free text).
    pub description: String,
    /// Policy seed of the cluster run.
    pub seed: u64,
    /// Workload divisor the plan's instants were placed against.
    pub scale: u64,
    /// Cluster width the plan addresses.
    pub n_shards: usize,
    /// [`Oracle::name`] of the oracle the original plan violated.
    pub oracle: String,
    /// The (shrunk) fault plan.
    pub plan: FaultPlan,
}

impl ChaosFixture {
    /// Serialize as pretty JSON (stable field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fixture is plain data") // lint: allow(panic) — no maps or non-string keys, serialization is total
    }

    /// Parse a fixture from JSON.
    pub fn from_json(s: &str) -> Result<ChaosFixture, String> {
        serde_json::from_str(s).map_err(|e| format!("bad chaos fixture: {e}"))
    }
}

/// One sweep failure: the plan that violated an oracle and its shrunk
/// reproducer.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Index of the plan within the sweep.
    pub plan_index: u64,
    /// The per-plan seed (`split_seed(sweep_seed, plan_index)`).
    pub plan_seed: u64,
    /// The violated oracle.
    pub oracle: Oracle,
    /// Violation message of the *original* plan.
    pub message: String,
    /// The shrunk reproducer.
    pub shrunk: Shrunk,
}

/// Outcome of a sweep: how many plans ran, per-oracle evaluation counts,
/// and every (shrunk) failure.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Plans generated and checked.
    pub plans: u64,
    /// Total oracle evaluations (including shrinking).
    pub oracle_runs: u64,
    /// All failures, in plan order.
    pub failures: Vec<ChaosFailure>,
}

/// Run `n_plans` seeded plans through `oracles`, shrinking every failure.
/// Plan `i` draws from `split_seed(seed, i)`, so any failure reproduces
/// from `(seed, i)` alone. With `verbose`, prints one line per plan.
pub fn sweep(
    w: &ChaosWorkload,
    seed: u64,
    n_plans: u64,
    oracles: &[Oracle],
    verbose: bool,
) -> SweepReport {
    let mut report = SweepReport::default();
    for i in 0..n_plans {
        let plan_seed = split_seed(seed, i);
        let plan = generate_plan(plan_seed, w.horizon(), w.n_items(), w.n_shards());
        debug_assert!(plan.validate().is_ok(), "generated plans are valid");
        report.plans += 1;
        let (crashes, lose_state, streams, bursts) = plan_components(&plan);
        let mut verdicts = Vec::new();
        for &oracle in oracles {
            report.oracle_runs += 1;
            match oracle.check(w, &plan) {
                Ok(()) => verdicts.push(format!("{} ok", oracle.name())),
                Err(message) => {
                    verdicts.push(format!("{} FAIL", oracle.name()));
                    let shrunk = shrink(w, oracle, &plan, message.clone());
                    report.oracle_runs += shrunk.oracle_runs;
                    report.failures.push(ChaosFailure {
                        plan_index: i,
                        plan_seed,
                        oracle,
                        message,
                        shrunk,
                    });
                }
            }
        }
        if verbose {
            println!(
                "  plan {i:>3} seed {plan_seed:#018x}: {crashes} crash ({lose_state} lose-state), \
                 {streams} stream, {bursts} burst -> {}",
                verdicts.join(", ")
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_valid_and_diverse() {
        let horizon = SimDuration::from_secs(100_000);
        let mut any_lose_state = false;
        let mut any_quiet_shard = false;
        for i in 0..16 {
            let plan = generate_plan(split_seed(0xC4A0, i), horizon, 64, 4);
            plan.validate().expect("valid by construction");
            plan.validate_against_horizon(SimTime(horizon.0))
                .expect("every generated fault is reachable");
            let (_, lose_state, _, _) = plan_components(&plan);
            any_lose_state |= lose_state > 0;
            any_quiet_shard |= plan.shards.iter().any(FaultSchedule::is_empty);
        }
        assert!(any_lose_state, "the generator must exercise crash recovery");
        assert!(
            any_quiet_shard,
            "the generator must leave some shards quiet"
        );
    }

    #[test]
    fn strip_lose_state_removes_exactly_the_crash_mode() {
        let horizon = SimDuration::from_secs(100_000);
        let plan = (0..64)
            .map(|i| generate_plan(split_seed(0xC4A1, i), horizon, 64, 4))
            .find(|p| {
                let (crashes, lose_state, _, _) = plan_components(p);
                lose_state > 0 && crashes > lose_state
            })
            .expect("some plan mixes lose-state with other modes");
        let stripped = strip_lose_state(&plan);
        stripped.validate().expect("stripping preserves validity");
        let (crashes, lose_state, streams, bursts) = plan_components(&plan);
        let (sc, sl, ss, sb) = plan_components(&stripped);
        assert_eq!(sl, 0, "no lose-state windows survive");
        assert_eq!(sc, crashes - lose_state, "other windows untouched");
        assert_eq!((ss, sb), (streams, bursts), "streams and bursts untouched");
    }

    #[test]
    fn fixture_json_round_trips() {
        let horizon = SimDuration::from_secs(100_000);
        let fixture = ChaosFixture {
            description: "round-trip probe".to_string(),
            seed: 0x5EED,
            scale: 32,
            n_shards: 4,
            oracle: Oracle::RecoveryIdentity.name().to_string(),
            plan: generate_plan(0xC4A2, horizon, 64, 4),
        };
        let json = fixture.to_json();
        let back = ChaosFixture::from_json(&json).expect("own JSON parses");
        assert_eq!(back, fixture);
        assert_eq!(
            Oracle::from_name(&back.oracle),
            Some(Oracle::RecoveryIdentity)
        );
    }
}
