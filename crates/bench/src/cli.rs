//! Minimal argument parsing shared by the harness binaries (no external
//! dependency needed for two flags).

/// Options common to all figure/table binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Workload divisor (1 = paper scale).
    pub scale: u64,
    /// Directory for CSV output (created if missing); `None` disables CSV.
    pub out_dir: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 4,
            out_dir: Some("results".to_string()),
        }
    }
}

impl HarnessArgs {
    /// Parse `--scale N`, `--full`, `--out DIR`, `--no-csv` from an iterator
    /// of arguments (exclusive of the program name).
    ///
    /// Returns `Err` with a usage string on unknown flags or bad values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale requires a value")?;
                    let n: u64 = v.parse().map_err(|_| format!("bad --scale value: {v}"))?;
                    if n == 0 {
                        return Err("--scale must be >= 1".to_string());
                    }
                    out.scale = n;
                }
                "--full" => out.scale = 1,
                "--out" => {
                    out.out_dir = Some(it.next().ok_or("--out requires a directory")?);
                }
                "--no-csv" => out.out_dir = None,
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown argument: {other}\n{}", Self::usage())),
            }
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with usage on error.
    pub fn from_env() -> HarnessArgs {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Usage text.
    pub fn usage() -> String {
        "usage: <bin> [--scale N | --full] [--out DIR | --no-csv]\n\
         --scale N   divide the paper-scale workload by N (default 4)\n\
         --full      run at paper scale (110,035 queries / 3,848,104 s)\n\
         --out DIR   write CSV outputs into DIR (default: results/)\n\
         --no-csv    skip CSV output"
            .to_string()
    }

    /// Write a CSV artifact if output is enabled; returns the path written.
    pub fn write_csv(&self, name: &str, contents: &str) -> Option<String> {
        let dir = self.out_dir.as_ref()?;
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("warning: cannot create output directory {dir}");
            return None;
        }
        let path = format!("{dir}/{name}");
        match std::fs::write(&path, contents) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {path}: {e}");
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|&s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 4);
        assert_eq!(a.out_dir.as_deref(), Some("results"));
    }

    #[test]
    fn scale_and_full() {
        assert_eq!(parse(&["--scale", "8"]).unwrap().scale, 8);
        assert_eq!(parse(&["--full"]).unwrap().scale, 1);
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
    }

    #[test]
    fn output_flags() {
        assert_eq!(parse(&["--no-csv"]).unwrap().out_dir, None);
        assert_eq!(
            parse(&["--out", "/tmp/x"]).unwrap().out_dir.as_deref(),
            Some("/tmp/x")
        );
    }

    #[test]
    fn unknown_flags_error_with_usage() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("unknown argument"));
        assert!(err.contains("usage:"));
    }

    #[test]
    fn write_csv_creates_the_directory_and_file() {
        let dir = std::env::temp_dir().join(format!("unit-cli-test-{}", std::process::id()));
        let args = HarnessArgs {
            scale: 1,
            out_dir: Some(dir.to_string_lossy().into_owned()),
        };
        let path = args.write_csv("probe.csv", "a,b\n1,2\n").expect("written");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_csv_is_disabled_without_an_out_dir() {
        let args = HarnessArgs {
            scale: 1,
            out_dir: None,
        };
        assert!(args.write_csv("x.csv", "data").is_none());
    }
}
