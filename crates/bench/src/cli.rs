//! Minimal argument parsing shared by the harness binaries (no external
//! dependency needed for two flags).
//!
//! Two layers:
//!
//! * [`HarnessArgs`] — the fixed flag set of the figure/table binaries
//!   (`--scale`, `--out`, `--trace-out`).
//! * [`Flags`] — the shared skeleton of the knob-heavy binaries (`chaos`,
//!   `cluster`, `faults`, `replication`, `simspeed`, `tracegen`, `serve`),
//!   each of which used to carry a private copy of the same
//!   `while let Some(arg)` / `it.next().expect(..)` loop. The binary keeps
//!   its own `Args` struct and match arms; `Flags` owns the cursor, the
//!   value/parse error paths, and the usage-and-exit convention (exit
//!   code 2, usage on stderr).

/// Options common to all figure/table binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Workload divisor (1 = paper scale).
    pub scale: u64,
    /// Directory for CSV output (created if missing); `None` disables CSV.
    pub out_dir: Option<String>,
    /// Event-trace output file (`--trace-out`); `None` disables recording.
    /// A `.csv` extension selects the CSV exporter, anything else JSONL.
    pub trace_out: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 4,
            out_dir: Some("results".to_string()),
            trace_out: None,
        }
    }
}

impl HarnessArgs {
    /// Parse `--scale N`, `--full`, `--out DIR`, `--no-csv` from an iterator
    /// of arguments (exclusive of the program name).
    ///
    /// Returns `Err` with a usage string on unknown flags or bad values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale requires a value")?;
                    let n: u64 = v.parse().map_err(|_| format!("bad --scale value: {v}"))?;
                    if n == 0 {
                        return Err("--scale must be >= 1".to_string());
                    }
                    out.scale = n;
                }
                "--full" => out.scale = 1,
                "--out" => {
                    out.out_dir = Some(it.next().ok_or("--out requires a directory")?);
                }
                "--no-csv" => out.out_dir = None,
                "--trace-out" => {
                    out.trace_out = Some(it.next().ok_or("--trace-out requires a file name")?);
                }
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown argument: {other}\n{}", Self::usage())),
            }
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with usage on error.
    pub fn from_env() -> HarnessArgs {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Usage text.
    pub fn usage() -> String {
        "usage: <bin> [--scale N | --full] [--out DIR | --no-csv] [--trace-out FILE]\n\
         --scale N        divide the paper-scale workload by N (default 4)\n\
         --full           run at paper scale (110,035 queries / 3,848,104 s)\n\
         --out DIR        write CSV outputs into DIR (default: results/)\n\
         --no-csv         skip CSV output\n\
         --trace-out FILE record the observability event stream into\n\
         \u{20}                FILE under the output directory (.csv selects\n\
         \u{20}                the CSV exporter, anything else JSONL)"
            .to_string()
    }

    /// Write the recorded event stream if `--trace-out` was given; returns
    /// the path written. A relative file name lands under the output
    /// directory (default `results/`); the `.csv` extension selects the
    /// CSV exporter, anything else JSONL.
    pub fn write_trace(&self, events: &[unit_obs::ObsEvent]) -> Option<String> {
        let name = self.trace_out.as_ref()?;
        let path = match &self.out_dir {
            Some(dir) if !name.starts_with('/') => format!("{dir}/{name}"),
            _ => name.clone(),
        };
        let result = if std::path::Path::new(&path)
            .extension()
            .is_some_and(|e| e == "csv")
        {
            unit_obs::write_csv(std::path::Path::new(&path), events)
        } else {
            unit_obs::write_jsonl(std::path::Path::new(&path), events)
        };
        match result {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {path}: {e}");
                None
            }
        }
    }

    /// Write a CSV artifact if output is enabled; returns the path written.
    pub fn write_csv(&self, name: &str, contents: &str) -> Option<String> {
        let dir = self.out_dir.as_ref()?;
        if std::fs::create_dir_all(dir).is_err() {
            eprintln!("warning: cannot create output directory {dir}");
            return None;
        }
        let path = format!("{dir}/{name}");
        match std::fs::write(&path, contents) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {path}: {e}");
                None
            }
        }
    }
}

/// Cursor over command-line flags for binaries with bespoke knobs.
///
/// The binary drives the loop and keeps its own `Args` struct; `Flags`
/// supplies the shared plumbing: pulling flag values, parsing them with a
/// uniform error message, and the exit-2-with-usage convention for unknown
/// flags and bad values.
///
/// ```no_run
/// use unit_bench::cli::Flags;
/// let mut fl = Flags::from_env("usage: demo [--runs N] [--out FILE]");
/// let (mut runs, mut out) = (3usize, None);
/// while let Some(arg) = fl.next_flag() {
///     match arg.as_str() {
///         "--runs" => runs = fl.parse(&arg),
///         "--out" => out = Some(fl.value(&arg)),
///         other => fl.unknown(other),
///     }
/// }
/// ```
pub struct Flags {
    args: std::vec::IntoIter<String>,
    usage: String,
}

impl Flags {
    /// A cursor over the process arguments (program name excluded).
    #[must_use]
    pub fn from_env(usage: &str) -> Flags {
        Self::from_args(std::env::args().skip(1).collect(), usage)
    }

    /// A cursor over an explicit argument list (for tests).
    #[must_use]
    pub fn from_args(args: Vec<String>, usage: &str) -> Flags {
        Flags {
            args: args.into_iter(),
            usage: usage.to_string(),
        }
    }

    /// Pull the next flag, or `None` when the arguments are exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        self.args.next()
    }

    /// Pull `flag`'s value argument.
    ///
    /// # Errors
    /// Fails when the argument list is exhausted.
    pub fn try_value(&mut self, flag: &str) -> Result<String, String> {
        self.args.next().ok_or(format!("{flag} requires a value"))
    }

    /// Pull and parse `flag`'s value argument.
    ///
    /// # Errors
    /// Fails when the value is missing or does not parse as `T`.
    pub fn try_parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let v = self.try_value(flag)?;
        v.parse().map_err(|_| format!("bad {flag} value: {v}"))
    }

    /// Pull `flag`'s value argument, exiting with usage when missing.
    pub fn value(&mut self, flag: &str) -> String {
        match self.try_value(flag) {
            Ok(v) => v,
            Err(msg) => self.fail(&msg),
        }
    }

    /// Pull and parse `flag`'s value argument, exiting with usage on a
    /// missing or malformed value.
    pub fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        match self.try_parse(flag) {
            Ok(v) => v,
            Err(msg) => self.fail(&msg),
        }
    }

    /// Report an unknown flag and exit with usage.
    pub fn unknown(&self, arg: &str) -> ! {
        self.fail(&format!("unknown argument: {arg}"))
    }

    /// Report `msg` (a bad value or a cross-flag constraint violation),
    /// print the usage text, and exit 2.
    pub fn fail(&self, msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!("{}", self.usage);
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|&s| s.to_string()))
    }

    fn flags(args: &[&str]) -> Flags {
        Flags::from_args(args.iter().map(|&s| s.to_string()).collect(), "usage: t")
    }

    #[test]
    fn flags_cursor_walks_values_and_parses() {
        let mut fl = flags(&["--runs", "7", "--out", "x.json", "--fast"]);
        assert_eq!(fl.next_flag().as_deref(), Some("--runs"));
        assert_eq!(fl.try_parse::<usize>("--runs"), Ok(7));
        assert_eq!(fl.next_flag().as_deref(), Some("--out"));
        assert_eq!(fl.try_value("--out").as_deref(), Ok("x.json"));
        assert_eq!(fl.next_flag().as_deref(), Some("--fast"));
        assert_eq!(fl.next_flag(), None);
    }

    #[test]
    fn flags_errors_name_the_flag_and_value() {
        let mut fl = flags(&["--runs", "seven"]);
        fl.next_flag();
        assert_eq!(
            fl.try_parse::<usize>("--runs").unwrap_err(),
            "bad --runs value: seven"
        );
        assert_eq!(
            fl.try_value("--runs").unwrap_err(),
            "--runs requires a value"
        );
        assert_eq!(
            flags(&[]).try_parse::<u64>("--seed").unwrap_err(),
            "--seed requires a value"
        );
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 4);
        assert_eq!(a.out_dir.as_deref(), Some("results"));
    }

    #[test]
    fn scale_and_full() {
        assert_eq!(parse(&["--scale", "8"]).unwrap().scale, 8);
        assert_eq!(parse(&["--full"]).unwrap().scale, 1);
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
    }

    #[test]
    fn output_flags() {
        assert_eq!(parse(&["--no-csv"]).unwrap().out_dir, None);
        assert_eq!(
            parse(&["--out", "/tmp/x"]).unwrap().out_dir.as_deref(),
            Some("/tmp/x")
        );
    }

    #[test]
    fn unknown_flags_error_with_usage() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("unknown argument"));
        assert!(err.contains("usage:"));
    }

    #[test]
    fn write_csv_creates_the_directory_and_file() {
        let dir = std::env::temp_dir().join(format!("unit-cli-test-{}", std::process::id()));
        let args = HarnessArgs {
            scale: 1,
            out_dir: Some(dir.to_string_lossy().into_owned()),
            trace_out: None,
        };
        let path = args.write_csv("probe.csv", "a,b\n1,2\n").expect("written");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_out_flag() {
        assert_eq!(parse(&[]).unwrap().trace_out, None);
        assert_eq!(
            parse(&["--trace-out", "t.jsonl"])
                .unwrap()
                .trace_out
                .as_deref(),
            Some("t.jsonl")
        );
        assert!(parse(&["--trace-out"]).is_err());
    }

    #[test]
    fn write_trace_places_files_under_the_out_dir() {
        use unit_core::time::SimTime;
        use unit_core::types::{Outcome, QueryId};
        let events = vec![unit_obs::ObsEvent::QueryOutcome {
            time: SimTime::from_secs(1),
            query: QueryId(0),
            outcome: Outcome::Success,
        }];
        let dir = std::env::temp_dir().join(format!("unit-trace-test-{}", std::process::id()));
        let args = HarnessArgs {
            scale: 1,
            out_dir: Some(dir.to_string_lossy().into_owned()),
            trace_out: Some("events.jsonl".to_string()),
        };
        let path = args.write_trace(&events).expect("written");
        assert!(path.ends_with("events.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\":\"outcome\""));
        let csv_args = HarnessArgs {
            trace_out: Some("events.csv".to_string()),
            ..args
        };
        let path = csv_args.write_trace(&events).expect("written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("kind,time"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_trace_is_disabled_without_the_flag() {
        assert!(HarnessArgs::default().write_trace(&[]).is_none());
    }

    #[test]
    fn write_csv_is_disabled_without_an_out_dir() {
        let args = HarnessArgs {
            scale: 1,
            out_dir: None,
            trace_out: None,
        };
        assert!(args.write_csv("x.csv", "data").is_none());
    }
}
