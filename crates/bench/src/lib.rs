//! # unit-bench — the experiment harness
//!
//! Regenerates every table and figure of the UNIT paper's evaluation (§4).
//! Each figure/table has a dedicated binary (see `src/bin/`); this library
//! holds what they share: the scaled workload plans, the policy runner, and
//! plain-text table/histogram rendering.
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — the nine update traces |
//! | `table2` | Table 2 — the USM weight configurations |
//! | `fig3`   | Fig. 3 — access/update distributions, original vs degraded |
//! | `fig4`   | Fig. 4 — naive USM (success ratio) across 9 traces × 4 policies |
//! | `fig5`   | Fig. 5 — USM under non-zero penalties (Table 2 weightings) |
//! | `fig6`   | Fig. 6 — outcome-ratio decomposition |
//!
//! Every binary accepts `--scale N` (default 4) dividing the workload size,
//! and `--full` for the paper-scale run (11,000 queries over 40,000 s).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cli;
pub mod render;
pub mod runner;

pub use runner::{
    default_workload_plan, run_matrix, run_policy, run_policy_observed, run_unit_streamed,
    worker_pool_size, ExperimentPlan, PolicyKind, RunOutcome,
};
