//! Plain-text rendering: aligned tables and ASCII histograms for the
//! harness binaries (the paper's figures, as terminal output + CSV).

use std::fmt::Write as _;

/// Render an aligned text table. `header` and every row must have the same
/// arity.
pub fn text_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
            } else {
                let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
            }
        }
        out.push('\n');
    };
    line(header, &mut out);
    let rule: String = widths
        .iter()
        .enumerate()
        .map(|(i, w)| {
            if i == 0 {
                "-".repeat(*w)
            } else {
                format!("  {}", "-".repeat(*w))
            }
        })
        .collect();
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        line(row, &mut out);
    }
    out
}

/// Render rows as CSV (no quoting — harness values are numeric/simple).
pub fn csv(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Downsample per-item counts into `buckets` buckets (sums within each) for
/// terminal-width histograms.
pub fn bucketize(values: &[u64], buckets: usize) -> Vec<u64> {
    assert!(buckets > 0);
    if values.is_empty() {
        return vec![0; buckets];
    }
    let mut out = vec![0u64; buckets.min(values.len())];
    let n = out.len();
    for (i, &v) in values.iter().enumerate() {
        let b = i * n / values.len();
        out[b] += v;
    }
    out
}

/// Render a compact vertical-bar histogram (one char per bucket, 8 levels).
pub fn spark(values: &[u64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v as f64 / max as f64) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Render an ASCII timeline of a recorded event stream: one sparkline row
/// per event family (admissions, rejections, completions, misses/stale,
/// refresh-period modulations), bucketed over the stream's time span.
/// Cluster streams are flattened first ([`unit_obs::ObsEvent::Shard`]
/// wrappers contribute their inner event).
pub fn render_event_timeline(events: &[unit_obs::ObsEvent], buckets: usize) -> String {
    use unit_core::types::Outcome;
    use unit_obs::ObsEvent;
    assert!(buckets > 0);
    if events.is_empty() {
        return "  (no events recorded)\n".to_string();
    }
    let span_start = events.iter().map(|e| e.time().0).min().unwrap_or(0);
    let span_end = events.iter().map(|e| e.time().0).max().unwrap_or(0);
    let width = (span_end - span_start).max(1);
    let mut rows: Vec<(&str, Vec<u64>)> =
        ["admitted", "rejected", "success", "miss/stale", "modulated"]
            .iter()
            .map(|&name| (name, vec![0u64; buckets]))
            .collect();
    for ev in events {
        let inner = match ev {
            ObsEvent::Shard { event, .. } => event.as_ref(),
            other => other,
        };
        let row = match inner {
            ObsEvent::Admission { decision, .. } => {
                if decision.is_admit() {
                    0
                } else {
                    1
                }
            }
            ObsEvent::DispatcherReject { .. } => 1,
            ObsEvent::QueryOutcome { outcome, .. } => match outcome {
                Outcome::Success => 2,
                Outcome::DeadlineMiss | Outcome::DataStale => 3,
                Outcome::Rejected => 1,
            },
            ObsEvent::TicketMass { .. } => 4,
            _ => continue,
        };
        let b = ((inner.time().0 - span_start) * buckets as u64 / width).min(buckets as u64 - 1);
        rows[row].1[b as usize] += 1;
    }
    let mut out = String::new();
    for (name, counts) in &rows {
        let total: u64 = counts.iter().sum();
        let _ = writeln!(out, "  {name:<10} {} ({total})", spark(counts));
    }
    out
}

/// Format a float with fixed precision, for table cells.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a signed float (explicit `+`), for USM cells.
pub fn fs(v: f64, digits: usize) -> String {
    format!("{v:+.digits$}")
}

/// Build a `Vec<String>` from string-likes (table-row helper).
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        ::std::vec::Vec::from([$($cell.to_string()),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let header = row!["trace", "IMU", "UNIT"];
        let rows = vec![row!["med-unif", "0.12", "0.85"], row!["hi", "0.0", "1.0"]];
        let t = text_table(&header, &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equally wide.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(lines[0].contains("trace"));
        assert!(lines[2].contains("med-unif"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let header = row!["a", "b"];
        let rows = vec![row!["only-one"]];
        let _ = text_table(&header, &rows);
    }

    #[test]
    fn csv_joins_cells() {
        let out = csv(&row!["a", "b"], &[row!["1", "2"]]);
        assert_eq!(out, "a,b\n1,2\n");
    }

    #[test]
    fn bucketize_sums_within_buckets() {
        let v = [1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(bucketize(&v, 4), vec![3, 7, 11, 15]);
        assert_eq!(bucketize(&v, 8), v.to_vec());
        // More buckets than values degrades to one bucket per value.
        assert_eq!(bucketize(&[5, 6], 10), vec![5, 6]);
        assert_eq!(bucketize(&[], 3), vec![0, 0, 0]);
    }

    #[test]
    fn spark_scales_to_max() {
        let s = spark(&[0, 5, 10]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(spark(&[0, 0]), "▁▁");
    }

    #[test]
    fn event_timeline_buckets_by_family() {
        use unit_core::time::SimTime;
        use unit_core::types::{Outcome, QueryId};
        use unit_obs::ObsEvent;
        let events = vec![
            ObsEvent::QueryOutcome {
                time: SimTime::from_secs(1),
                query: QueryId(0),
                outcome: Outcome::Success,
            },
            ObsEvent::Shard {
                shard: 1,
                seq: 0,
                event: Box::new(ObsEvent::QueryOutcome {
                    time: SimTime::from_secs(9),
                    query: QueryId(1),
                    outcome: Outcome::DeadlineMiss,
                }),
            },
        ];
        let out = render_event_timeline(&events, 8);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(out.contains("success"));
        assert!(out.contains("miss/stale"));
        // One success, one miss — counts rendered per family.
        assert!(lines
            .iter()
            .any(|l| l.contains("success") && l.contains("(1)")));
        assert_eq!(render_event_timeline(&[], 8), "  (no events recorded)\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.123456, 3), "0.123");
        assert_eq!(fs(0.5, 2), "+0.50");
        assert_eq!(fs(-0.5, 2), "-0.50");
    }
}
