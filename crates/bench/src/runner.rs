//! Shared experiment plumbing: workload plans, policy construction, and
//! parallel run execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_core::config::UnitConfig;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::{run_simulation, SimConfig, SimReport};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

/// The four policies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Immediate Update.
    Imu,
    /// On-Demand Update.
    Odu,
    /// Kang et al.'s QMF.
    Qmf,
    /// The paper's contribution.
    Unit,
}

impl PolicyKind {
    /// All four, in the paper's plotting order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Imu,
        PolicyKind::Odu,
        PolicyKind::Qmf,
        PolicyKind::Unit,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Imu => "IMU",
            PolicyKind::Odu => "ODU",
            PolicyKind::Qmf => "QMF",
            PolicyKind::Unit => "UNIT",
        }
    }

    /// Whether the policy's *outcomes* depend on the USM weights. Only UNIT
    /// reacts to weights; the baselines can be run once and repriced
    /// (§4.5: "IMU, ODU and QMF are insensitive to weight variations").
    pub fn weight_sensitive(self) -> bool {
        matches!(self, PolicyKind::Unit)
    }
}

/// A scaled experiment plan: workload sizing shared by all harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentPlan {
    /// Query-trace configuration.
    pub query_cfg: QueryTraceConfig,
    /// Divisor applied to the Table 1 update totals.
    pub scale: u64,
    /// Control-tick period for the simulator.
    pub tick_period: SimDuration,
}

/// The paper-scale workload plan divided by `scale` (1 = full scale:
/// 110,035 queries over 3,848,104 s, Table 1 update totals).
pub fn default_workload_plan(scale: u64) -> ExperimentPlan {
    assert!(scale >= 1, "scale must be >= 1");
    ExperimentPlan {
        query_cfg: QueryTraceConfig::default().scaled_down(scale),
        scale,
        tick_period: SimDuration::from_secs(10),
    }
}

impl ExperimentPlan {
    /// Multiply the plan's query count by `k` at a fixed horizon (via
    /// [`QueryTraceConfig::scaled_up`]): update volumes stay put, offered
    /// query load rises `k`-fold. The throughput-stress complement of the
    /// divisor in [`default_workload_plan`].
    #[must_use]
    pub fn scaled_up(mut self, k: u64) -> ExperimentPlan {
        self.query_cfg = self.query_cfg.scaled_up(k);
        self
    }

    /// The update-trace configuration for one Table 1 cell at this plan's
    /// scale. Exposed so streaming callers can regenerate the update streams
    /// (which need only the popularity profile) without materializing a
    /// whole [`TraceBundle`].
    pub fn update_config(
        &self,
        volume: UpdateVolume,
        dist: UpdateDistribution,
    ) -> UpdateTraceConfig {
        let total = volume.total_updates() / self.scale;
        UpdateTraceConfig::table1(volume, dist).with_total(total.max(1))
    }

    /// Generate the workload bundle for one Table 1 cell.
    pub fn bundle(&self, volume: UpdateVolume, dist: UpdateDistribution) -> TraceBundle {
        TraceBundle::generate(&self.query_cfg, &self.update_config(volume, dist))
    }

    /// Simulator configuration for this plan.
    pub fn sim_config(&self, weights: UsmWeights) -> SimConfig {
        SimConfig::new(self.query_cfg.horizon)
            .with_weights(weights)
            .with_tick_period(self.tick_period)
    }

    /// The UNIT configuration used by the harness: paper constants with the
    /// default 50 s grace period. The query arrival *rate* is
    /// scale-invariant (queries and horizon shrink together), so the
    /// controller sees comparable window populations at every scale.
    pub fn unit_config(&self, weights: UsmWeights) -> UnitConfig {
        UnitConfig::with_weights(weights)
    }
}

/// One labelled run result.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The trace the run executed ("med-unif", ...).
    pub trace_name: String,
    /// Which policy ran.
    pub policy: PolicyKind,
    /// Full simulator report.
    pub report: SimReport,
}

/// Run one policy over one bundle under the given weights.
pub fn run_policy(
    plan: &ExperimentPlan,
    bundle: &TraceBundle,
    policy: PolicyKind,
    weights: UsmWeights,
) -> RunOutcome {
    let cfg = plan.sim_config(weights);
    let report = match policy {
        PolicyKind::Imu => run_simulation(&bundle.trace, ImuPolicy::new(), cfg),
        PolicyKind::Odu => run_simulation(&bundle.trace, OduPolicy::new(), cfg),
        PolicyKind::Qmf => run_simulation(&bundle.trace, QmfPolicy::default(), cfg),
        PolicyKind::Unit => run_simulation(
            &bundle.trace,
            UnitPolicy::new(plan.unit_config(weights)),
            cfg,
        ),
    };
    RunOutcome {
        trace_name: bundle.name.clone(),
        policy,
        report,
    }
}

/// Run UNIT over one bundle through the streaming feed: queries are
/// regenerated lazily from the plan's [`QueryTraceConfig`] (bit-identical
/// to `bundle.trace.queries` — the stream-identity property suite pins
/// this) and fed in `chunk`-sized lookahead windows, so the engine's peak
/// spec residency is O(in-flight + chunk) instead of O(N_q). The report is
/// bit-identical to [`run_policy`] with [`PolicyKind::Unit`]; only the
/// wall-clock and memory profiles differ.
pub fn run_unit_streamed(
    plan: &ExperimentPlan,
    bundle: &TraceBundle,
    weights: UsmWeights,
    chunk: usize,
) -> RunOutcome {
    let cfg = plan.sim_config(weights);
    let report = unit_sim::Simulator::new_streaming(
        bundle.trace.n_items,
        &bundle.trace.updates,
        UnitPolicy::new(plan.unit_config(weights)),
        cfg,
    )
    .run_streamed(unit_workload::stream_queries(&plan.query_cfg), chunk);
    RunOutcome {
        trace_name: bundle.name.clone(),
        policy: PolicyKind::Unit,
        report,
    }
}

/// Run one policy over one bundle with an observer installed (the
/// `--trace-out` path). The report is bit-identical to [`run_policy`]'s —
/// observation is digest-neutral by construction; the obs differential
/// suite pins this — so binaries can record without re-running quiet.
pub fn run_policy_observed(
    plan: &ExperimentPlan,
    bundle: &TraceBundle,
    policy: PolicyKind,
    weights: UsmWeights,
    observer: &mut dyn unit_obs::Observer,
) -> RunOutcome {
    use unit_sim::SimRun;
    let cfg = plan.sim_config(weights);
    let report = match policy {
        PolicyKind::Imu => SimRun::trace(&bundle.trace, ImuPolicy::new(), cfg)
            .with_observer(observer)
            .run(),
        PolicyKind::Odu => SimRun::trace(&bundle.trace, OduPolicy::new(), cfg)
            .with_observer(observer)
            .run(),
        PolicyKind::Qmf => SimRun::trace(&bundle.trace, QmfPolicy::default(), cfg)
            .with_observer(observer)
            .run(),
        PolicyKind::Unit => SimRun::trace(
            &bundle.trace,
            UnitPolicy::new(plan.unit_config(weights)),
            cfg,
        )
        .with_observer(observer)
        .run(),
    };
    RunOutcome {
        trace_name: bundle.name.clone(),
        policy,
        report,
    }
}

/// Size a worker pool: `min(jobs, parallelism)`, but always at least one
/// thread. `parallelism` is the raw host value — callers pass `0` (or `1`)
/// when `available_parallelism()` errored, and the floor absorbs it. Pure so
/// the clamping is testable without observing live thread counts: a 2-job
/// matrix gets at most 2 workers no matter how wide the host is.
pub fn worker_pool_size(parallelism: usize, jobs: usize) -> usize {
    parallelism.min(jobs).max(1)
}

/// Run a matrix of (bundle × policy) pairs in parallel on a bounded worker
/// pool (runs are independent and deterministic; results keep matrix order).
///
/// The pool holds [`worker_pool_size`] = `min(n_cells,
/// available_parallelism)` OS threads pulling cells from a shared counter —
/// large sweeps do not spawn one thread per cell and oversubscribe the
/// host, and small matrices do not spawn idle workers.
pub fn run_matrix(
    plan: &ExperimentPlan,
    bundles: &[TraceBundle],
    policies: &[PolicyKind],
    weights: UsmWeights,
) -> Vec<RunOutcome> {
    let cells: Vec<(&TraceBundle, PolicyKind)> = bundles
        .iter()
        .flat_map(|b| policies.iter().map(move |&p| (b, p)))
        .collect();
    let n_workers = worker_pool_size(
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        cells.len(),
    );
    let results: Vec<Mutex<Option<RunOutcome>>> =
        (0..cells.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(bundle, policy)) = cells.get(idx) else {
                    return;
                };
                let outcome = run_policy(plan, bundle, policy, weights);
                *results[idx].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell must have run")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> ExperimentPlan {
        default_workload_plan(40) // 2750 queries over ~96,000 s
    }

    #[test]
    fn plan_scales_consistently() {
        let p = tiny_plan();
        assert_eq!(p.query_cfg.n_queries, 2_750);
        assert_eq!(
            p.query_cfg.horizon.0,
            SimDuration::from_secs(3_848_104).0 / 40
        );
        let b = p.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
        assert_eq!(b.name, "med-unif");
        // 30_000 / 40 = 750 updates x ~96s over ~96,000 s ≈ 75% utilization.
        assert!(
            (b.update_utilization - 0.75).abs() < 0.15,
            "{}",
            b.update_utilization
        );
    }

    #[test]
    fn all_four_policies_complete_a_run() {
        let p = tiny_plan();
        let b = p.bundle(UpdateVolume::Low, UpdateDistribution::Uniform);
        for kind in PolicyKind::ALL {
            let out = run_policy(&p, &b, kind, UsmWeights::naive());
            assert_eq!(out.report.counts.total() as usize, b.trace.queries.len());
            assert_eq!(out.report.policy, kind.name());
        }
    }

    #[test]
    fn matrix_preserves_ordering() {
        let p = tiny_plan();
        let bundles = vec![
            p.bundle(UpdateVolume::Low, UpdateDistribution::Uniform),
            p.bundle(UpdateVolume::Low, UpdateDistribution::PositiveCorrelation),
        ];
        let policies = [PolicyKind::Imu, PolicyKind::Unit];
        let out = run_matrix(&p, &bundles, &policies, UsmWeights::naive());
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].trace_name, "low-unif");
        assert_eq!(out[0].policy, PolicyKind::Imu);
        assert_eq!(out[1].policy, PolicyKind::Unit);
        assert_eq!(out[2].trace_name, "low-pos");
    }

    #[test]
    fn pool_never_exceeds_the_job_count() {
        // Regression: a 2-job matrix must never get more than 2 workers,
        // regardless of how many cores the host reports.
        for parallelism in [1, 2, 3, 4, 8, 64, 512] {
            assert!(worker_pool_size(parallelism, 2) <= 2, "p={parallelism}");
        }
        assert_eq!(worker_pool_size(8, 2), 2);
        assert_eq!(worker_pool_size(2, 8), 2);
    }

    #[test]
    fn pool_always_has_at_least_one_worker() {
        // available_parallelism() errors surface as parallelism 0/1; an
        // empty matrix must still not produce a zero-size pool.
        assert_eq!(worker_pool_size(0, 5), 1);
        assert_eq!(worker_pool_size(4, 0), 1);
        assert_eq!(worker_pool_size(0, 0), 1);
        assert_eq!(worker_pool_size(1, 1), 1);
    }

    #[test]
    fn run_matrix_handles_a_two_job_matrix() {
        // End-to-end: the clamped pool still runs every cell exactly once
        // and keeps matrix order.
        let p = tiny_plan();
        let bundles = vec![p.bundle(UpdateVolume::Low, UpdateDistribution::Uniform)];
        let policies = [PolicyKind::Imu, PolicyKind::Odu];
        let out = run_matrix(&p, &bundles, &policies, UsmWeights::naive());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].policy, PolicyKind::Imu);
        assert_eq!(out[1].policy, PolicyKind::Odu);
    }

    #[test]
    fn weight_sensitivity_flags() {
        assert!(PolicyKind::Unit.weight_sensitive());
        assert!(!PolicyKind::Imu.weight_sensitive());
        assert!(!PolicyKind::Odu.weight_sensitive());
        assert!(!PolicyKind::Qmf.weight_sensitive());
    }
}
