//! Replays every committed chaos fixture (`tests/fixtures/chaos/*.json`).
//!
//! A fixture is a shrunk minimal fault plan the chaos harness once
//! reported. Replaying one asserts two things:
//!
//! * every **real** oracle holds on the plan — once the underlying issue
//!   is fixed, the fixture pins it fixed forever;
//! * a fixture recorded against the **planted** oracle must still *fail*
//!   that oracle — the planted claim is false by design, so a pass would
//!   mean the harness has gone blind to firing crashes.

use unit_bench::chaos::{ChaosFixture, ChaosWorkload, Oracle};

fn fixtures_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("chaos")
}

fn load_fixtures() -> Vec<(String, ChaosFixture)> {
    let dir = fixtures_dir();
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures directory exists") {
        let path = entry.expect("readable directory entry").path();
        if path.extension().map_or(true, |e| e != "json") {
            continue;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let fixture = ChaosFixture::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        out.push((name, fixture));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn committed_fixtures_replay_green() {
    let fixtures = load_fixtures();
    assert!(!fixtures.is_empty(), "no committed chaos fixtures found");
    for (name, fixture) in fixtures {
        fixture
            .plan
            .validate()
            .unwrap_or_else(|e| panic!("{name}: invalid plan: {e}"));
        assert_eq!(
            fixture.plan.shards.len(),
            fixture.n_shards,
            "{name}: plan width disagrees with n_shards"
        );
        let recorded = Oracle::from_name(&fixture.oracle)
            .unwrap_or_else(|| panic!("{name}: unknown oracle '{}'", fixture.oracle));
        let w = ChaosWorkload::new(fixture.scale, fixture.n_shards, fixture.seed);
        if recorded == Oracle::PlantedNoRecoveries {
            // The planted claim is false by design: the harness must
            // still be able to see the crash fire.
            assert!(
                recorded.check(&w, &fixture.plan).is_err(),
                "{name}: the planted oracle passed — the harness is blind"
            );
        }
        for oracle in Oracle::REAL {
            if let Err(e) = oracle.check(&w, &fixture.plan) {
                panic!("{name}: oracle {} regressed: {e}", oracle.name());
            }
        }
    }
}
