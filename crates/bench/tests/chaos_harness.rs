//! End-to-end tests of the chaos harness itself: the sweep holds on
//! seeded plans, and the find+shrink machinery provably detects a
//! planted-broken oracle and reduces it to a single fault component.

use unit_bench::chaos::{plan_components, shrink, strip_lose_state, sweep, ChaosWorkload, Oracle};
use unit_core::time::{SimDuration, SimTime};
use unit_faults::{
    Burst, CrashWindow, FaultMode, FaultPlan, FaultSchedule, StreamFault, StreamFaultKind,
};

const SCALE: u64 = 64;
const SEED: u64 = 0xC4A0_5EED;

fn secs(s: u64) -> SimTime {
    SimTime(SimDuration::from_secs(s).0)
}

#[test]
fn seeded_sweep_holds_every_real_oracle() {
    let w = ChaosWorkload::new(SCALE, 4, SEED);
    let report = sweep(&w, SEED, 3, &Oracle::REAL, false);
    assert_eq!(report.plans, 3);
    assert!(
        report.failures.is_empty(),
        "real oracle failed: {}",
        report
            .failures
            .iter()
            .map(|f| f.message.as_str())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn planted_oracle_is_found_and_shrunk_to_one_component() {
    let w = ChaosWorkload::new(SCALE, 4, SEED);
    // A hand-built plan with fault noise across shards: two lose-state
    // crashes, a pause window, a stream fault, and a burst. Only the
    // lose-state windows matter to the planted oracle; the shrinker has
    // to discover that.
    let mut plan = FaultPlan::quiet(4);
    plan.shards[0] = FaultSchedule {
        crashes: vec![
            CrashWindow {
                start: secs(200),
                end: secs(260),
                mode: FaultMode::CrashLoseState,
            },
            CrashWindow {
                start: secs(700),
                end: secs(730),
                mode: FaultMode::Pause,
            },
        ],
        bursts: vec![Burst {
            at: secs(400),
            loads: 3,
            exec: SimDuration::from_secs(2),
        }],
        ..FaultSchedule::default()
    };
    plan.shards[2] = FaultSchedule {
        crashes: vec![CrashWindow {
            start: secs(900),
            end: secs(960),
            mode: FaultMode::CrashLoseState,
        }],
        stream_faults: vec![StreamFault {
            item: unit_core::types::DataId(0),
            start: secs(100),
            end: secs(500),
            kind: StreamFaultKind::Drop,
        }],
        ..FaultSchedule::default()
    };
    plan.validate().expect("hand-built plan is valid");

    let message = Oracle::PlantedNoRecoveries
        .check(&w, &plan)
        .expect_err("the planted claim must fail on a firing crash");
    let shrunk = shrink(&w, Oracle::PlantedNoRecoveries, &plan, message);

    // The minimal reproducer is exactly one lose-state window; all the
    // noise (pause window, burst, stream fault, second crash) is gone.
    assert_eq!(
        plan_components(&shrunk.plan),
        (1, 1, 0, 0),
        "shrink must reduce to a single lose-state window"
    );
    assert!(shrunk.oracle_runs > 0, "shrinking evaluates candidates");
    assert!(
        Oracle::PlantedNoRecoveries.check(&w, &shrunk.plan).is_err(),
        "the minimal plan still fails the planted oracle"
    );
    // And the minimal plan is clean by every real invariant — the
    // planted failure is the oracle's fault, not the engine's.
    for oracle in Oracle::REAL {
        oracle
            .check(&w, &shrunk.plan)
            .unwrap_or_else(|e| panic!("real oracle {} failed: {e}", oracle.name()));
    }
    // Stripping the one lose-state window empties the plan entirely.
    assert!(strip_lose_state(&shrunk.plan).is_empty());
}
