//! Golden fixed-seed regression test for the engine→policy hot path.
//!
//! Pins the complete `SimReport` — outcome counts, USM bits, per-item
//! histograms, scheduler accounting, and the recorded timeline — for a
//! `scale=40` med-unif workload across all four policies and all three
//! scheduling disciplines. The values were captured from the eager
//! `SystemSnapshot` implementation; the lazy `SnapshotView` / Fenwick
//! admission path must reproduce every run bit-for-bit.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -p unit-bench --test golden_snapshot -- --nocapture
//! ```

use unit_bench::{default_workload_plan, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_sim::{report_digest, SchedulingDiscipline, SimReport};
use unit_workload::{UpdateDistribution, UpdateVolume};

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// Golden digests captured from the eager-snapshot engine
/// (policy, discipline, USM bits, digest).
const GOLDEN: [(&str, &str, u64, u64); 12] = [
    ("IMU", "dual", 0xbfcfb02a4cee29f0, 0xf38f7adce7bba9e6),
    ("IMU", "global", 0x3fefb8819521b2ec, 0x627a29b192aaa272),
    ("IMU", "qfirst", 0x3fefb8819521b2ec, 0x627a29b192aaa272),
    ("ODU", "dual", 0x3fe76eed58368398, 0xa05fc31eb75e286d),
    ("ODU", "global", 0x3fe76eed58368398, 0xa05fc31eb75e286d),
    ("ODU", "qfirst", 0x3fedff08279e96f4, 0x779aaba10860b7f8),
    ("QMF", "dual", 0x3fbdca01dca01dca, 0xee3586e7d2d722bd),
    ("QMF", "global", 0x3fefb8819521b2ec, 0x6ffcfe501967cabf),
    ("QMF", "qfirst", 0x3fefb8819521b2ec, 0x6ffcfe501967cabf),
    ("UNIT", "dual", 0x3fb77a3f3a334fcc, 0xccb57ab3399f6f69),
    ("UNIT", "global", 0x3fd8e6dd8e6dd8e7, 0x79ce101b55902c76),
    ("UNIT", "qfirst", 0x3fd8e6dd8e6dd8e7, 0x79ce101b55902c76),
];

fn run_cell(policy: PolicyKind, discipline: SchedulingDiscipline) -> SimReport {
    let mut plan = default_workload_plan(40);
    // The runner's sim_config has no timeline; rebuild with it on so the
    // digest also pins the control-tick sampling path.
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    plan.tick_period = unit_core::time::SimDuration::from_secs(10);
    let weights = UsmWeights::low_high_cfm();
    let cfg = plan
        .sim_config(weights)
        .with_timeline()
        .with_discipline(discipline);
    run_policy_with_config(&plan, &bundle, policy, weights, cfg)
}

/// `run_policy` with an explicit `SimConfig` (the runner builds its own).
fn run_policy_with_config(
    plan: &unit_bench::ExperimentPlan,
    bundle: &unit_workload::TraceBundle,
    policy: PolicyKind,
    weights: UsmWeights,
    cfg: unit_sim::SimConfig,
) -> SimReport {
    use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
    use unit_core::unit_policy::UnitPolicy;
    use unit_sim::run_simulation;
    match policy {
        PolicyKind::Imu => run_simulation(&bundle.trace, ImuPolicy::new(), cfg),
        PolicyKind::Odu => run_simulation(&bundle.trace, OduPolicy::new(), cfg),
        PolicyKind::Qmf => run_simulation(&bundle.trace, QmfPolicy::default(), cfg),
        PolicyKind::Unit => run_simulation(
            &bundle.trace,
            UnitPolicy::new(plan.unit_config(weights)),
            cfg,
        ),
    }
}

#[test]
fn reports_match_golden_digests() {
    let print_mode = std::env::var_os("GOLDEN_PRINT").is_some();
    let mut failures = Vec::new();
    for kind in PolicyKind::ALL {
        for (discipline, dname) in DISCIPLINES {
            let report = run_cell(kind, discipline);
            let digest = report_digest(&report);
            let usm_bits = report.average_usm().to_bits();
            if print_mode {
                println!(
                    "    (\"{}\", \"{}\", 0x{usm_bits:016x}, 0x{digest:016x}),",
                    kind.name(),
                    dname
                );
                continue;
            }
            let expected = GOLDEN
                .iter()
                .find(|(p, d, _, _)| *p == kind.name() && *d == dname)
                .unwrap_or_else(|| panic!("no golden entry for {}/{dname}", kind.name()));
            if digest != expected.3 || usm_bits != expected.2 {
                failures.push(format!(
                    "{}/{}: usm {:+.6} (bits 0x{usm_bits:016x}, want 0x{:016x}), \
                     digest 0x{digest:016x} (want 0x{:016x}), counts {:?}",
                    kind.name(),
                    dname,
                    report.average_usm(),
                    expected.2,
                    expected.3,
                    report.counts,
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "SimReport diverged from the golden seed capture:\n{}",
        failures.join("\n")
    );
}
