//! Golden fixed-seed regression test for the engine→policy hot path.
//!
//! Pins the complete `SimReport` — outcome counts, USM bits, per-item
//! histograms, scheduler accounting, and the recorded timeline — for a
//! `scale=40` med-unif workload across all four policies and all three
//! scheduling disciplines. The values were captured from the eager
//! `SystemSnapshot` implementation; the lazy `SnapshotView` / Fenwick
//! admission path must reproduce every run bit-for-bit.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -p unit-bench --test golden_snapshot -- --nocapture
//! ```

use unit_bench::{default_workload_plan, PolicyKind};
use unit_core::usm::UsmWeights;
use unit_sim::{SchedulingDiscipline, SimReport};
use unit_workload::{UpdateDistribution, UpdateVolume};

/// FNV-1a over a little-endian byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Bit-exact digest of everything in a [`SimReport`].
fn report_digest(r: &SimReport) -> u64 {
    let mut h = Fnv::new();
    h.bytes(r.policy.as_bytes());
    for w in [
        r.weights.gain,
        r.weights.c_r,
        r.weights.c_fm,
        r.weights.c_fs,
    ] {
        h.f64(w);
    }
    for c in [
        r.counts.success,
        r.counts.rejected,
        r.counts.deadline_miss,
        r.counts.data_stale,
    ] {
        h.u64(c);
    }
    h.u64(r.class_counts.len() as u64);
    for c in &r.class_counts {
        for v in [c.success, c.rejected, c.deadline_miss, c.data_stale] {
            h.u64(v);
        }
    }
    for hist in [&r.query_accesses, &r.versions_arrived, &r.updates_applied] {
        h.u64(hist.len() as u64);
        for &v in hist {
            h.u64(v);
        }
    }
    h.u64(r.hp_aborts);
    h.u64(r.query_restarts);
    h.u64(r.preemptions);
    h.u64(r.demand_refreshes);
    h.u64(r.cpu_busy.0);
    h.u64(r.end_time.0);
    h.u64(r.horizon.0);
    h.u64(r.n_cpus as u64);
    for s in [
        r.signals.loosen_admission,
        r.signals.tighten_admission,
        r.signals.degrade_updates,
        r.signals.upgrade_updates,
    ] {
        h.u64(s);
    }
    h.f64(r.mean_dispatch_freshness);
    h.u64(r.timeline.len() as u64);
    for s in &r.timeline {
        h.u64(s.time.0);
        h.f64(s.usm);
        h.u64(s.ready_queries as u64);
        h.f64(s.update_backlog_secs);
        h.f64(s.utilization);
    }
    h.0
}

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// Golden digests captured from the eager-snapshot engine
/// (policy, discipline, USM bits, digest).
const GOLDEN: [(&str, &str, u64, u64); 12] = [
    ("IMU", "dual", 0xbfcfb02a4cee29f0, 0xf38f7adce7bba9e6),
    ("IMU", "global", 0x3fefb8819521b2ec, 0x627a29b192aaa272),
    ("IMU", "qfirst", 0x3fefb8819521b2ec, 0x627a29b192aaa272),
    ("ODU", "dual", 0x3fe76eed58368398, 0xa05fc31eb75e286d),
    ("ODU", "global", 0x3fe76eed58368398, 0xa05fc31eb75e286d),
    ("ODU", "qfirst", 0x3fedff08279e96f4, 0x779aaba10860b7f8),
    ("QMF", "dual", 0x3fbdca01dca01dca, 0xee3586e7d2d722bd),
    ("QMF", "global", 0x3fefb8819521b2ec, 0x6ffcfe501967cabf),
    ("QMF", "qfirst", 0x3fefb8819521b2ec, 0x6ffcfe501967cabf),
    ("UNIT", "dual", 0x3fb77a3f3a334fcc, 0xccb57ab3399f6f69),
    ("UNIT", "global", 0x3fd8e6dd8e6dd8e7, 0x79ce101b55902c76),
    ("UNIT", "qfirst", 0x3fd8e6dd8e6dd8e7, 0x79ce101b55902c76),
];

fn run_cell(policy: PolicyKind, discipline: SchedulingDiscipline) -> SimReport {
    let mut plan = default_workload_plan(40);
    // The runner's sim_config has no timeline; rebuild with it on so the
    // digest also pins the control-tick sampling path.
    let bundle = plan.bundle(UpdateVolume::Med, UpdateDistribution::Uniform);
    plan.tick_period = unit_core::time::SimDuration::from_secs(10);
    let weights = UsmWeights::low_high_cfm();
    let cfg = plan
        .sim_config(weights)
        .with_timeline()
        .with_discipline(discipline);
    run_policy_with_config(&plan, &bundle, policy, weights, cfg)
}

/// `run_policy` with an explicit `SimConfig` (the runner builds its own).
fn run_policy_with_config(
    plan: &unit_bench::ExperimentPlan,
    bundle: &unit_workload::TraceBundle,
    policy: PolicyKind,
    weights: UsmWeights,
    cfg: unit_sim::SimConfig,
) -> SimReport {
    use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
    use unit_core::unit_policy::UnitPolicy;
    use unit_sim::run_simulation;
    match policy {
        PolicyKind::Imu => run_simulation(&bundle.trace, ImuPolicy::new(), cfg),
        PolicyKind::Odu => run_simulation(&bundle.trace, OduPolicy::new(), cfg),
        PolicyKind::Qmf => run_simulation(&bundle.trace, QmfPolicy::default(), cfg),
        PolicyKind::Unit => run_simulation(
            &bundle.trace,
            UnitPolicy::new(plan.unit_config(weights)),
            cfg,
        ),
    }
}

#[test]
fn reports_match_golden_digests() {
    let print_mode = std::env::var_os("GOLDEN_PRINT").is_some();
    let mut failures = Vec::new();
    for kind in PolicyKind::ALL {
        for (discipline, dname) in DISCIPLINES {
            let report = run_cell(kind, discipline);
            let digest = report_digest(&report);
            let usm_bits = report.average_usm().to_bits();
            if print_mode {
                println!(
                    "    (\"{}\", \"{}\", 0x{usm_bits:016x}, 0x{digest:016x}),",
                    kind.name(),
                    dname
                );
                continue;
            }
            let expected = GOLDEN
                .iter()
                .find(|(p, d, _, _)| *p == kind.name() && *d == dname)
                .unwrap_or_else(|| panic!("no golden entry for {}/{dname}", kind.name()));
            if digest != expected.3 || usm_bits != expected.2 {
                failures.push(format!(
                    "{}/{}: usm {:+.6} (bits 0x{usm_bits:016x}, want 0x{:016x}), \
                     digest 0x{digest:016x} (want 0x{:016x}), counts {:?}",
                    kind.name(),
                    dname,
                    report.average_usm(),
                    expected.2,
                    expected.3,
                    report.counts,
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "SimReport diverged from the golden seed capture:\n{}",
        failures.join("\n")
    );
}
