//! Fault-aware dispatching: failover routing with deterministic
//! retry/backoff and USM-honest dispatcher rejections.
//!
//! With a [`FaultPlan`] in force, some shards are
//! down ([`FaultMode::Pause`]) or serving
//! degraded reads
//! ([`FaultMode::DegradedReads`])
//! over known virtual-time windows. Because the schedule is declarative —
//! fixed before the first event fires — the dispatcher can stay a
//! **sequential prologue** (DESIGN.md §3) and still react to faults: it
//! consults the plan, not shard execution, so the routing decision for
//! every query remains a pure function of
//! `(trace, plan, routing policy, failover policy)`.
//!
//! Per query, [`route_with_faults`] proceeds in preference order:
//!
//! 1. route among the **fully-up** eligible shards, by the underlying
//!    [`RoutingPolicy`] (same ledgers, same tie-breaks as fault-free
//!    [`assign`](crate::routing::assign));
//! 2. none up → route among **degraded** eligible shards (graceful
//!    degradation: reads on last-applied versions, honest DSF);
//! 3. all paused → wait out an exponential-backoff step *in virtual time*
//!    and retry, up to [`BackoffConfig::max_retries`] attempts and never
//!    past the query's firm deadline;
//! 4. budget or deadline exhausted → the dispatcher rejects the query,
//!    which is scored as a real `C_r` rejection in the cluster USM.
//!
//! A query routed after `k > 0` backoff steps reaches its shard at the
//! retry instant: its arrival moves forward and its relative deadline
//! shrinks by the waited time, preserving the original **absolute**
//! deadline. [`FailoverPolicy::NoRetry`] is the naive baseline: route by
//! the underlying policy as if every shard were healthy, letting queries
//! stall into crash windows — the thing the fault bench compares against.
//!
//! ## Virtual-time arithmetic at the ceiling
//!
//! Every sum in this module is overflow-hardened, and the regression tests
//! pin the behaviour with `u64::MAX`-adjacent inputs:
//!
//! * backoff delays saturate ([`BackoffConfig::delay`] uses
//!   `saturating_pow`/`saturating_mul`),
//! * retry instants use `checked_add`: a step that would pass
//!   [`SimTime::MAX`] rejects the query instead of wrapping to the far
//!   past (the aborted step still counts against the budget, so the loop
//!   stays bounded even at the ceiling),
//! * absolute deadlines saturate (`arrival + relative_deadline` clamps to
//!   [`SimTime::MAX`], meaning "infinitely patient" — the retry budget is
//!   then the only bound), and
//! * delayed re-dispatch shrinks the relative deadline with
//!   `saturating_since`, never underflowing past zero.

use crate::merge::{ClusterReport, MergedOutcome, PromotionRecord, ReplicaRouteRecord};
use crate::replication::ReplicaSets;
use crate::routing::{replica_route_record, RouterState, RoutingPolicy};
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{Outcome, QuerySpec, Trace};
use unit_core::usm::OutcomeCounts;
use unit_faults::{FaultMode, FaultPlan};
use unit_sim::HealthState;
use unit_workload::ItemPartition;

/// Deterministic exponential backoff, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Factor applied per further retry (`delay_k = base · multiplier^k`).
    pub multiplier: u64,
    /// Retry budget: attempts beyond the initial one.
    pub max_retries: u32,
}

impl BackoffConfig {
    /// Delay before retry `attempt` (0-based), saturating on overflow.
    /// O(1).
    pub fn delay(&self, attempt: u32) -> SimDuration {
        SimDuration(
            self.base
                .0
                .saturating_mul(self.multiplier.saturating_pow(attempt)),
        )
    }
}

impl Default for BackoffConfig {
    /// 1 s base, doubling, 5 retries — total patience 31 s, enough to ride
    /// out the ~10 s crash windows the fault bench injects.
    fn default() -> BackoffConfig {
        BackoffConfig {
            base: SimDuration::from_secs(1),
            multiplier: 2,
            max_retries: 5,
        }
    }
}

/// How the dispatcher reacts to shards the fault plan marks unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// Ignore health entirely: route as if every shard were up. Queries
    /// sent into a crash window stall until recovery (usually a DMF). The
    /// naive baseline.
    NoRetry,
    /// Prefer up shards, fall back to degraded ones, and back off in
    /// virtual time when every eligible shard is paused.
    Backoff(BackoffConfig),
}

impl FailoverPolicy {
    /// The retry budget this policy allows per query. O(1).
    pub fn retry_budget(&self) -> u32 {
        match self {
            FailoverPolicy::NoRetry => 0,
            FailoverPolicy::Backoff(cfg) => cfg.max_retries,
        }
    }
}

/// The dispatcher's verdict for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Routed to `shard`, reaching it at `at` (`at > ` original arrival
    /// when the dispatcher backed off first).
    Routed {
        /// Target shard.
        shard: usize,
        /// Effective arrival at the shard.
        at: SimTime,
        /// Backoff steps taken before routing.
        retries: u32,
    },
    /// Rejected by the dispatcher at `at` after `retries` backoff steps:
    /// every eligible shard stayed paused until the budget or the query's
    /// deadline ran out. Scored as `C_r`.
    Rejected {
        /// Virtual instant the dispatcher gave up.
        at: SimTime,
        /// Backoff steps taken before giving up.
        retries: u32,
    },
}

impl RouteDecision {
    /// Backoff steps this decision consumed. O(1).
    pub fn retries(&self) -> u32 {
        match *self {
            RouteDecision::Routed { retries, .. } | RouteDecision::Rejected { retries, .. } => {
                retries
            }
        }
    }
}

/// Compute the fault-aware routing decision for every query in `trace`.
///
/// Sequential and pure: one walk over the queries in arrival order,
/// O(N_q · (A + S log W)) for read sets of size A, S eligible shards and W
/// crash windows per shard. `plan.shards` must have one schedule per
/// shard. With an empty plan (or `NoRetry`), the routed shards are
/// identical to [`assign`](crate::routing::assign) and every effective
/// arrival equals the trace arrival — the inertness the fault
/// differential suite pins.
pub fn route_with_faults(
    trace: &Trace,
    partition: &ItemPartition,
    routing: RoutingPolicy,
    plan: &FaultPlan,
    failover: &FailoverPolicy,
) -> Vec<RouteDecision> {
    let mut router = RouterState::new(routing, trace, partition.n_shards());
    trace
        .queries
        .iter()
        .map(|q| {
            let eligible = partition.eligible_shards(&q.items);
            let cfg = match failover {
                FailoverPolicy::NoRetry => {
                    let shard = router.pick(q, &eligible, q.arrival, partition);
                    router.commit(q, shard, q.arrival, partition);
                    return RouteDecision::Routed {
                        shard,
                        at: q.arrival,
                        retries: 0,
                    };
                }
                FailoverPolicy::Backoff(cfg) => cfg,
            };
            let deadline = q.deadline();
            let mut now = q.arrival;
            let mut retries = 0u32;
            loop {
                let up: Vec<usize> = eligible
                    .iter()
                    .copied()
                    // lint: allow(D6) — plan length == n_shards, checked by the caller
                    .filter(|&s| plan.shards[s].health_at(now) == HealthState::Up)
                    .collect();
                // Prefer fully-up shards; fall back to degraded ones (their
                // read path is still serving). Both pools stay ascending, so
                // tie-breaks match the fault-free assigners.
                let pool = if up.is_empty() {
                    eligible
                        .iter()
                        .copied()
                        // lint: allow(D6) — plan length == n_shards, checked by the caller
                        .filter(|&s| !plan.shards[s].health_at(now).queries_paused())
                        .collect()
                } else {
                    up
                };
                if !pool.is_empty() {
                    let shard = router.pick(q, &pool, now, partition);
                    router.commit(q, shard, now, partition);
                    return RouteDecision::Routed {
                        shard,
                        at: now,
                        retries,
                    };
                }
                if retries >= cfg.max_retries {
                    return RouteDecision::Rejected { at: now, retries };
                }
                let delay = cfg.delay(retries);
                retries += 1;
                let Some(next) = now.0.checked_add(delay.0) else {
                    return RouteDecision::Rejected { at: now, retries };
                };
                now = SimTime(next);
                if now >= deadline {
                    return RouteDecision::Rejected {
                        at: deadline,
                        retries,
                    };
                }
            }
        })
        .collect()
}

/// The replicated dispatcher's output: per-query decisions plus the
/// replica-layer bookkeeping the [`crate::ReplicationReport`] carries.
pub(crate) struct ReplicatedDecisions {
    /// Per-query routing decisions, in original trace order.
    pub(crate) decisions: Vec<RouteDecision>,
    /// Routes that landed on a follower, in dispatch order.
    pub(crate) routes: Vec<ReplicaRouteRecord>,
    /// Leader promotions, deduplicated to target changes per item.
    pub(crate) promotions: Vec<PromotionRecord>,
}

/// [`route_with_faults`] under replication: candidate pools come from
/// [`ReplicaSets`] (leaders plus `Qu`-admissible followers, with crashed
/// leaders deterministically promoting their freshest live follower)
/// instead of the eligible-owner sets, and the replica-layer routes and
/// promotions are recorded alongside the decisions.
///
/// Same sequential-prologue purity as [`route_with_faults`], and with
/// `factor == 1` the pools — and therefore the decisions — are
/// bit-identical to it. A promotion is recorded only when an item's
/// promoted target *changes* (and the slate is wiped when its leader is
/// healthy again at a later dispatch), so the promotion log is a compact,
/// deterministic function of `(placement, lag schedule, plan, trace)`.
pub(crate) fn route_with_faults_replicated(
    trace: &Trace,
    sets: &ReplicaSets,
    routing: RoutingPolicy,
    plan: &FaultPlan,
    failover: &FailoverPolicy,
) -> ReplicatedDecisions {
    let mut router = RouterState::new(routing, trace, sets.map().n_shards());
    let mut routes = Vec::new();
    let mut promotions = Vec::new();
    let mut last_promo: Vec<Option<usize>> = vec![None; trace.n_items];
    let decisions = trace
        .queries
        .iter()
        .map(|q| {
            let cfg = match failover {
                FailoverPolicy::NoRetry => {
                    // Health-blind, like the plain NoRetry baseline: the Qu
                    // gate still applies, promotions never happen.
                    let pool = sets.candidate_pool(q, q.arrival);
                    let shard = router.pick(q, &pool, q.arrival, sets);
                    router.commit(q, shard, q.arrival, sets);
                    if let Some(r) = replica_route_record(sets, q, shard, q.arrival) {
                        routes.push(r);
                    }
                    return RouteDecision::Routed {
                        shard,
                        at: q.arrival,
                        retries: 0,
                    };
                }
                FailoverPolicy::Backoff(cfg) => cfg,
            };
            let deadline = q.deadline();
            let mut now = q.arrival;
            let mut retries = 0u32;
            loop {
                let (pool, promos) =
                    sets.pool_with_health(q, now, |s| plan.shards[s].health_at(now));
                if !pool.is_empty() {
                    let shard = router.pick(q, &pool, now, sets);
                    router.commit(q, shard, now, sets);
                    for p in promos {
                        if last_promo[p.item.index()] != Some(p.to) {
                            last_promo[p.item.index()] = Some(p.to);
                            promotions.push(p);
                        }
                    }
                    for &d in &q.items {
                        if !plan.shards[sets.map().leader(d)]
                            .health_at(now)
                            .queries_paused()
                        {
                            last_promo[d.index()] = None;
                        }
                    }
                    if let Some(r) = replica_route_record(sets, q, shard, now) {
                        routes.push(r);
                    }
                    return RouteDecision::Routed {
                        shard,
                        at: now,
                        retries,
                    };
                }
                if retries >= cfg.max_retries {
                    return RouteDecision::Rejected { at: now, retries };
                }
                let delay = cfg.delay(retries);
                retries += 1;
                let Some(next) = now.0.checked_add(delay.0) else {
                    return RouteDecision::Rejected { at: now, retries };
                };
                now = SimTime(next);
                if now >= deadline {
                    return RouteDecision::Rejected {
                        at: deadline,
                        retries,
                    };
                }
            }
        })
        .collect();
    ReplicatedDecisions {
        decisions,
        routes,
        promotions,
    }
}

/// Routed queries with their effective specs, plus the assignment aligned
/// to the returned trace's query order.
///
/// Rejected queries are excluded (the dispatcher already decided them);
/// routed queries whose dispatch was delayed get `arrival = at` and
/// `relative_deadline` shrunk to preserve the absolute deadline. Queries
/// are stably re-sorted by the effective arrival so the result is a valid
/// trace; fault-free this is the identity. O(N_q log N_q).
pub(crate) fn routed_trace(trace: &Trace, decisions: &[RouteDecision]) -> (Trace, Vec<usize>) {
    let mut routed: Vec<(QuerySpec, usize)> = Vec::with_capacity(trace.queries.len());
    for (q, d) in trace.queries.iter().zip(decisions) {
        if let RouteDecision::Routed { shard, at, .. } = *d {
            let mut spec = q.clone();
            if at > spec.arrival {
                spec.relative_deadline = spec.deadline().saturating_since(at);
                spec.arrival = at;
            }
            routed.push((spec, shard));
        }
    }
    // Stable: same-arrival queries keep their trace order, exactly like
    // the original (sorted) trace.
    routed.sort_by_key(|(q, _)| q.arrival);
    let assignment = routed.iter().map(|&(_, s)| s).collect();
    let queries = routed.into_iter().map(|(q, _)| q).collect();
    (
        Trace {
            n_items: trace.n_items,
            queries,
            updates: trace.updates.clone(),
        },
        assignment,
    )
}

/// The result of one fault-injected cluster run.
///
/// Wraps the shard-level [`ClusterReport`] (whose counts, log and
/// assignment cover only the *routed* queries, so its own identity checks
/// still hold) and folds dispatcher rejections back in: they appear in
/// [`FaultClusterReport::counts`] as `C_r` and in the combined
/// [`FaultClusterReport::log`] under the pseudo-shard id
/// [`FaultClusterReport::dispatcher_shard`].
#[derive(Debug, Clone)]
pub struct FaultClusterReport {
    /// The shard-level report over routed queries.
    pub cluster: ClusterReport,
    /// Per-query routing decisions, in original trace order.
    pub decisions: Vec<RouteDecision>,
    /// Cluster tallies *including* dispatcher rejections.
    pub counts: OutcomeCounts,
    /// Shard outcomes and dispatcher rejections, merged by
    /// `(time, shard, seq)`; dispatcher entries carry the pseudo-shard id.
    pub log: Vec<MergedOutcome>,
}

impl FaultClusterReport {
    /// Fold dispatcher rejections into the shard-level report. O(N log N)
    /// for the re-sorted combined log.
    pub fn assemble(
        trace: &Trace,
        cluster: ClusterReport,
        decisions: Vec<RouteDecision>,
    ) -> FaultClusterReport {
        let pseudo = cluster.n_shards;
        let mut counts = cluster.counts;
        let mut log = cluster.log.clone();
        let mut seq = 0u64;
        for (q, d) in trace.queries.iter().zip(&decisions) {
            if let RouteDecision::Rejected { at, .. } = *d {
                counts.rejected += 1;
                log.push(MergedOutcome {
                    time: at,
                    shard: pseudo,
                    seq,
                    query: q.id,
                    outcome: Outcome::Rejected,
                });
                seq += 1;
            }
        }
        log.sort_unstable_by_key(|r| (r.time, r.shard, r.seq));
        FaultClusterReport {
            cluster,
            decisions,
            counts,
            log,
        }
    }

    /// The pseudo-shard id dispatcher rejections are logged under (one
    /// past the last real shard). O(1).
    pub fn dispatcher_shard(&self) -> usize {
        self.cluster.n_shards
    }

    /// Queries the dispatcher rejected without routing. O(1).
    pub fn dispatcher_rejections(&self) -> u64 {
        self.counts.rejected - self.cluster.counts.rejected
    }

    /// Cluster-average USM over *all* queries, dispatcher rejections
    /// included. O(1).
    pub fn average_usm(&self) -> f64 {
        self.counts.average_usm(&self.cluster.weights)
    }

    /// Total backoff steps the dispatcher took across all queries. O(N_q).
    pub fn total_retries(&self) -> u64 {
        self.decisions.iter().map(|d| u64::from(d.retries())).sum()
    }
}

/// The fault cluster's health-consistency invariant (validate feature;
/// DESIGN.md §4):
///
/// 1. no shard outcome is decided strictly inside one of that shard's
///    `Pause` windows (a paused shard decides nothing; boundary instants
///    are legal — recovery work completes *at* `end`),
/// 2. no decision used more backoff steps than the failover policy's
///    budget,
/// 3. every trace query is accounted exactly once: shard outcomes plus
///    dispatcher rejections total the decision count, and the combined
///    log matches the combined tally.
pub fn check_health_consistency(
    report: &FaultClusterReport,
    plan: &FaultPlan,
    failover: &FailoverPolicy,
) -> Result<(), String> {
    let n = report.cluster.n_shards;
    if plan.shards.len() != n {
        return Err(format!(
            "plan covers {} shards but the cluster has {n}",
            plan.shards.len()
        ));
    }
    for r in &report.log {
        if r.shard >= n {
            continue; // dispatcher entries are not shard outcomes
        }
        // lint: allow(D6) — r.shard < n == plan.shards.len(), both checked above
        for w in &plan.shards[r.shard].crashes {
            if w.mode == FaultMode::Pause && w.start < r.time && r.time < w.end {
                return Err(format!(
                    "shard {} decided query {:?} at t={:?}, strictly inside its pause window [{:?}, {:?})",
                    r.shard, r.query, r.time, w.start, w.end
                ));
            }
        }
    }
    let budget = failover.retry_budget();
    for (i, d) in report.decisions.iter().enumerate() {
        if d.retries() > budget {
            return Err(format!(
                "query #{i} used {} backoff steps, over the budget of {budget}",
                d.retries()
            ));
        }
    }
    if report.counts.total() != report.decisions.len() as u64 {
        return Err(format!(
            "{} outcomes for {} routing decisions",
            report.counts.total(),
            report.decisions.len()
        ));
    }
    let mut recount = OutcomeCounts::default();
    for r in &report.log {
        recount.record(r.outcome);
    }
    if recount != report.counts {
        return Err(format!(
            "combined tally {:?} != combined-log recount {recount:?}",
            report.counts
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::types::{DataId, QueryId, UpdateSpec, UpdateStreamId};
    use unit_faults::{CrashWindow, FaultSchedule};

    fn query(id: u64, arrival: u64, items: &[u32]) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs(arrival),
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs(1),
            relative_deadline: SimDuration::from_secs(20),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    /// 4 items over 2 shards; every query eligible on both shards.
    fn trace() -> Trace {
        Trace {
            n_items: 4,
            queries: vec![
                query(0, 1, &[0, 1]),
                query(1, 2, &[0, 1]),
                query(2, 3, &[2, 3]),
                query(3, 4, &[2, 3]),
            ],
            updates: vec![UpdateSpec {
                id: UpdateStreamId(0),
                item: DataId(0),
                period: SimDuration::from_secs(5),
                exec_time: SimDuration::from_secs(1),
                first_arrival: SimTime::ZERO,
            }],
        }
    }

    fn down(start: u64, end: u64, mode: FaultMode) -> FaultSchedule {
        FaultSchedule {
            crashes: vec![CrashWindow {
                start: SimTime::from_secs(start),
                end: SimTime::from_secs(end),
                mode,
            }],
            ..FaultSchedule::default()
        }
    }

    #[test]
    fn quiet_plan_reproduces_the_fault_free_assignment() {
        let t = trace();
        let p = ItemPartition::new(2);
        let plan = FaultPlan::quiet(2);
        for routing in RoutingPolicy::ALL {
            let plain = crate::routing::assign(&t, &p, routing);
            for failover in [
                FailoverPolicy::NoRetry,
                FailoverPolicy::Backoff(BackoffConfig::default()),
            ] {
                let decisions = route_with_faults(&t, &p, routing, &plan, &failover);
                for (i, d) in decisions.iter().enumerate() {
                    assert_eq!(
                        *d,
                        RouteDecision::Routed {
                            shard: plain[i],
                            at: t.queries[i].arrival,
                            retries: 0
                        },
                        "{routing:?}/{failover:?} query {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn failover_routes_around_a_down_shard() {
        let t = trace();
        let p = ItemPartition::new(2);
        // Shard 0 is down for the whole query window; shard 1 is up.
        let plan = FaultPlan {
            shards: vec![down(0, 30, FaultMode::Pause), FaultSchedule::empty()],
        };
        let decisions = route_with_faults(
            &t,
            &p,
            RoutingPolicy::RoundRobin,
            &plan,
            &FailoverPolicy::Backoff(BackoffConfig::default()),
        );
        for d in &decisions {
            assert!(
                matches!(
                    *d,
                    RouteDecision::Routed {
                        shard: 1,
                        retries: 0,
                        ..
                    }
                ),
                "expected immediate failover to shard 1, got {d:?}"
            );
        }
    }

    #[test]
    fn degraded_shards_still_take_reads() {
        let t = trace();
        let p = ItemPartition::new(2);
        // Both shards unhealthy, but shard 1 only degraded: reads go there
        // without any backoff.
        let plan = FaultPlan {
            shards: vec![
                down(0, 30, FaultMode::Pause),
                down(0, 30, FaultMode::DegradedReads),
            ],
        };
        let decisions = route_with_faults(
            &t,
            &p,
            RoutingPolicy::LeastLoad,
            &plan,
            &FailoverPolicy::Backoff(BackoffConfig::default()),
        );
        for d in &decisions {
            assert!(matches!(
                *d,
                RouteDecision::Routed {
                    shard: 1,
                    retries: 0,
                    ..
                }
            ));
        }
    }

    #[test]
    fn backoff_waits_out_a_short_outage_and_preserves_the_deadline() {
        let t = trace();
        let p = ItemPartition::new(2);
        // Both shards paused until t=6: q0 (arrival 1) retries at 2, 4, 8.
        let plan = FaultPlan {
            shards: vec![down(0, 6, FaultMode::Pause), down(0, 6, FaultMode::Pause)],
        };
        let decisions = route_with_faults(
            &t,
            &p,
            RoutingPolicy::RoundRobin,
            &plan,
            &FailoverPolicy::Backoff(BackoffConfig::default()),
        );
        assert_eq!(
            decisions[0],
            RouteDecision::Routed {
                shard: 0,
                at: SimTime::from_secs(8),
                retries: 3
            }
        );
        let (routed, assignment) = routed_trace(&t, &decisions);
        assert_eq!(routed.queries.len(), 4);
        assert_eq!(assignment.len(), 4);
        routed.validate().unwrap();
        let q0 = routed.queries.iter().find(|q| q.id == QueryId(0)).unwrap();
        assert_eq!(q0.arrival, SimTime::from_secs(8));
        // Absolute deadline 1 + 20 = 21 is preserved.
        assert_eq!(q0.deadline(), SimTime::from_secs(21));
    }

    #[test]
    fn exhausted_budget_rejects_within_the_deadline() {
        let t = trace();
        let p = ItemPartition::new(2);
        let forever = 10_000;
        let plan = FaultPlan {
            shards: vec![
                down(0, forever, FaultMode::Pause),
                down(0, forever, FaultMode::Pause),
            ],
        };
        let cfg = BackoffConfig::default();
        let decisions = route_with_faults(
            &t,
            &p,
            RoutingPolicy::FreshnessAware,
            &plan,
            &FailoverPolicy::Backoff(cfg),
        );
        for (q, d) in t.queries.iter().zip(&decisions) {
            let RouteDecision::Rejected { at, retries } = *d else {
                panic!("expected rejection, got {d:?}");
            };
            assert!(retries <= cfg.max_retries);
            assert!(at <= q.deadline());
        }
        let (routed, assignment) = routed_trace(&t, &decisions);
        assert!(routed.queries.is_empty());
        assert!(assignment.is_empty());
    }

    #[test]
    fn backoff_delays_are_exponential_and_saturating() {
        let cfg = BackoffConfig {
            base: SimDuration::from_secs(2),
            multiplier: 3,
            max_retries: 10,
        };
        assert_eq!(cfg.delay(0), SimDuration::from_secs(2));
        assert_eq!(cfg.delay(1), SimDuration::from_secs(6));
        assert_eq!(cfg.delay(2), SimDuration::from_secs(18));
        assert_eq!(cfg.delay(u32::MAX), SimDuration(u64::MAX));
        // A saturated multiplier chain saturates the product too — no wrap
        // back to a tiny delay.
        let huge = BackoffConfig {
            base: SimDuration(u64::MAX / 2),
            multiplier: u64::MAX,
            max_retries: 3,
        };
        assert_eq!(huge.delay(1), SimDuration(u64::MAX));
    }

    /// A query arriving 2 ticks shy of `SimTime::MAX` with every shard
    /// paused: the first retry instant would overflow, so the dispatcher
    /// must reject at the *current* instant instead of wrapping into the
    /// far past (where the shards would look healthy again).
    #[test]
    fn backoff_at_the_time_ceiling_rejects_instead_of_wrapping() {
        let near_max = SimTime(u64::MAX - 2);
        let t = Trace {
            n_items: 4,
            queries: vec![QuerySpec {
                id: QueryId(0),
                arrival: near_max,
                items: vec![DataId(0)],
                exec_time: SimDuration::from_secs(1),
                relative_deadline: SimDuration::from_secs(20),
                freshness_req: 0.9,
                pref_class: 0,
            }],
            updates: vec![],
        };
        // The absolute deadline saturates: "infinitely patient".
        assert_eq!(t.queries[0].deadline(), SimTime::MAX);
        let p = ItemPartition::new(2);
        let window_start = SimTime(u64::MAX - 1_000_000_000);
        let window_end = SimTime(u64::MAX - 1); // MAX itself fails validation
        let paused = FaultSchedule {
            crashes: vec![CrashWindow {
                start: window_start,
                end: window_end,
                mode: FaultMode::Pause,
            }],
            ..FaultSchedule::default()
        };
        assert!(paused.validate().is_ok());
        let plan = FaultPlan {
            shards: vec![paused.clone(), paused],
        };
        let cfg = BackoffConfig::default();
        let decisions = route_with_faults(
            &t,
            &p,
            RoutingPolicy::RoundRobin,
            &plan,
            &FailoverPolicy::Backoff(cfg),
        );
        // The overflowing step is charged against the budget (keeping the
        // loop bounded at the ceiling) but time never moves: the rejection
        // is stamped at the arrival instant.
        assert_eq!(
            decisions[0],
            RouteDecision::Rejected {
                at: near_max,
                retries: 1
            }
        );
    }

    /// Backoff instants that stay *just* under the ceiling keep stepping
    /// normally — `u64::MAX`-adjacency alone must not reject.
    #[test]
    fn backoff_just_under_the_ceiling_still_routes() {
        let base = SimDuration::from_secs(1);
        let arrival = SimTime(u64::MAX - 10 * base.0);
        let t = Trace {
            n_items: 4,
            queries: vec![QuerySpec {
                id: QueryId(0),
                arrival,
                items: vec![DataId(0)],
                exec_time: SimDuration::from_secs(1),
                relative_deadline: SimDuration::from_secs(40),
                freshness_req: 0.9,
                pref_class: 0,
            }],
            updates: vec![],
        };
        let p = ItemPartition::new(2);
        // Both shards paused until one base-delay after arrival; the first
        // retry (arrival + base) lands exactly at the recovery instant.
        let recover = SimTime(arrival.0 + base.0);
        let paused = FaultSchedule {
            crashes: vec![CrashWindow {
                start: SimTime(arrival.0 - 5),
                end: recover,
                mode: FaultMode::Pause,
            }],
            ..FaultSchedule::default()
        };
        assert!(paused.validate().is_ok());
        let plan = FaultPlan {
            shards: vec![paused.clone(), paused],
        };
        let decisions = route_with_faults(
            &t,
            &p,
            RoutingPolicy::RoundRobin,
            &plan,
            &FailoverPolicy::Backoff(BackoffConfig {
                base,
                multiplier: 2,
                max_retries: 5,
            }),
        );
        assert_eq!(
            decisions[0],
            RouteDecision::Routed {
                shard: 0,
                at: recover,
                retries: 1
            }
        );
        // The delayed re-dispatch keeps the (saturated) absolute deadline
        // without underflowing the relative one.
        let (routed, _) = routed_trace(&t, &decisions);
        assert_eq!(routed.queries[0].arrival, recover);
        assert_eq!(routed.queries[0].deadline(), t.queries[0].deadline());
    }

    /// `routed_trace` at the ceiling: a saturated absolute deadline stays
    /// saturated after a delayed re-dispatch (the relative deadline shrinks
    /// to `MAX - at`, never wrapping).
    #[test]
    fn routed_trace_preserves_a_saturated_deadline() {
        let arrival = SimTime(u64::MAX - 100);
        let at = SimTime(u64::MAX - 40);
        let t = Trace {
            n_items: 1,
            queries: vec![QuerySpec {
                id: QueryId(0),
                arrival,
                items: vec![DataId(0)],
                exec_time: SimDuration::from_secs(1),
                relative_deadline: SimDuration(200), // saturates past MAX
                freshness_req: 0.9,
                pref_class: 0,
            }],
            updates: vec![],
        };
        let decisions = vec![RouteDecision::Routed {
            shard: 0,
            at,
            retries: 2,
        }];
        let (routed, assignment) = routed_trace(&t, &decisions);
        assert_eq!(assignment, vec![0]);
        assert_eq!(routed.queries[0].arrival, at);
        assert_eq!(routed.queries[0].relative_deadline, SimDuration(40));
        assert_eq!(routed.queries[0].deadline(), SimTime::MAX);
    }
}
