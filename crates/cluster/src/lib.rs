//! # unit-cluster — sharded multi-server UNIT simulation
//!
//! The paper evaluates UNIT on one server; this crate scales the same
//! machinery to a cluster of `N` deterministic server shards behind a
//! dispatcher (DESIGN.md §3):
//!
//! * **Partitioning** — every data item has one owner shard
//!   (`item mod N`, [`unit_workload::ItemPartition`]); an item's update
//!   streams always execute on its owner.
//! * **Routing** — queries are routed among the owners of their read-set
//!   items by a pluggable [`RoutingPolicy`]: round-robin, least
//!   outstanding routed work, or freshness-aware ([`routing`]).
//! * **Execution** — each shard is a full single-server engine
//!   ([`unit_sim::Simulator`]) with its own policy instance (its own
//!   AC + UM + LBC feedback loop for UNIT) and its own RNG stream split
//!   from the run seed ([`unit_core::split_seed`]).
//! * **Merge** — per-shard outcome logs merge into one cluster history
//!   ordered by `(virtual_time, shard_id, seq)` and one exact integer
//!   outcome tally ([`merge`]).
//!
//! ## Determinism
//!
//! A cluster run is a pure function of `(trace, SimConfig, ClusterConfig)`
//! regardless of worker-thread count or scheduling: routing is a
//! sequential prologue, shards share no mutable state during execution
//! (each consumes its own trace slice and its own seed), results land in
//! slots indexed by shard id, and the merge key is unique. Running with 1
//! worker or `N` workers yields bit-identical [`ClusterReport`]s — a
//! property test pins this.
//!
//! With one shard the dispatcher has a single eligible target for every
//! query, the trace slice equals the global trace, and the shard engine
//! sees byte-identical inputs to a plain single-server run (seeded with
//! `split_seed(seed, 0)`): the differential suite checks the resulting
//! reports digest-identically under every routing policy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod failover;
pub mod merge;
pub mod replication;
pub mod routing;
pub mod run;

use unit_faults::ScheduleError;

pub use failover::{
    check_health_consistency, route_with_faults, BackoffConfig, FailoverPolicy, FaultClusterReport,
    RouteDecision,
};
pub use merge::{
    check_cluster_identity, ClusterLane, ClusterReport, MergedOutcome, PromotionRecord,
    PropagationRecord, ReplicaRouteRecord, ReplicationReport,
};
pub use replication::{
    check_replication_consistency, PropagationLag, ReplicaPlacement, ReplicaSets, ReplicationConfig,
};
pub use routing::{assign, RoutingPolicy};
pub use run::{ClusterRun, ClusterRunReport};

/// Upper bound on the worker-thread knob; values past this are a typo, not
/// a throughput request.
pub const MAX_WORKERS: usize = 4096;

/// How the worker pool drives the shard engines. Purely a wall-clock knob:
/// both modes produce bit-identical reports (shards share no mutable
/// state, and pausing an engine at a virtual-time boundary reorders
/// nothing — see [`unit_sim::Simulator::step_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Each worker runs a claimed shard start-to-finish before claiming the
    /// next. Minimal synchronization; a straggler shard serializes its
    /// worker for the whole run.
    WholeShard,
    /// All shards advance in lockstep through virtual-time epochs: every
    /// worker steps its statically owned shards (`shard % workers`) to the
    /// epoch boundary, a barrier closes the round, and the cluster repeats
    /// until every shard drains. Bounds per-round skew and keeps every
    /// worker busy while any shard is live.
    EpochParallel {
        /// Virtual-time length of one stepping round (must be non-zero).
        epoch: unit_core::time::SimDuration,
    },
}

/// A malformed cluster or fault configuration, rejected before any shard
/// runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// `n_shards == 0`: a cluster needs at least one shard.
    ZeroShards,
    /// `workers` exceeds [`MAX_WORKERS`].
    TooManyWorkers {
        /// The requested worker count.
        workers: usize,
        /// The cap.
        max: usize,
    },
    /// [`ExecutionMode::EpochParallel`] with a zero-length epoch: the
    /// stepping rounds would never advance virtual time.
    ZeroEpoch,
    /// The fault plan does not cover exactly one schedule per shard.
    PlanShardMismatch {
        /// Schedules in the plan.
        plan_shards: usize,
        /// Shards in the cluster.
        n_shards: usize,
    },
    /// A shard's fault schedule failed structural validation.
    FaultSchedule {
        /// The shard whose schedule is malformed.
        shard: usize,
        /// The underlying schedule error.
        error: ScheduleError,
    },
    /// `replication.factor == 0`: every item needs at least its leader.
    ZeroReplicationFactor,
    /// More replicas per item than shards to place them on.
    ReplicationFactorExceedsShards {
        /// The requested replication factor.
        factor: usize,
        /// Shards in the cluster.
        n_shards: usize,
    },
    /// The strided placement revisits a shard within one item's replica
    /// set, so two replicas of the item would share a shard.
    ReplicaPlacementCollision {
        /// The first follower slot (`1..factor`) that collides.
        slot: usize,
        /// The stride that produced the collision.
        stride: usize,
        /// Shards in the cluster.
        n_shards: usize,
    },
    /// `replication.lag.windows == 0`: the propagation schedule needs at
    /// least one jitter window.
    ZeroPropagationWindows,
    /// A user fault plan injects a stream fault for an item on a shard
    /// that *follows* the item: the propagation schedule already owns that
    /// item's delay intervals there, and the two schedules cannot be
    /// merged without changing one of them.
    ReplicationFaultConflict {
        /// The shard whose user schedule collides.
        shard: usize,
        /// The contested item id.
        item: u32,
    },
}

impl std::fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterConfigError::ZeroShards => write!(f, "a cluster needs at least one shard"),
            ClusterConfigError::TooManyWorkers { workers, max } => {
                write!(f, "{workers} worker threads requested, the cap is {max}")
            }
            ClusterConfigError::ZeroEpoch => {
                write!(f, "epoch-parallel stepping needs a non-zero epoch")
            }
            ClusterConfigError::PlanShardMismatch {
                plan_shards,
                n_shards,
            } => write!(
                f,
                "fault plan covers {plan_shards} shards but the cluster has {n_shards}"
            ),
            ClusterConfigError::FaultSchedule { shard, error } => {
                write!(f, "shard {shard} fault schedule: {error}")
            }
            ClusterConfigError::ZeroReplicationFactor => {
                write!(f, "replication factor must be at least 1 (the leader)")
            }
            ClusterConfigError::ReplicationFactorExceedsShards { factor, n_shards } => {
                write!(
                    f,
                    "replication factor {factor} exceeds the {n_shards}-shard cluster"
                )
            }
            ClusterConfigError::ReplicaPlacementCollision {
                slot,
                stride,
                n_shards,
            } => write!(
                f,
                "replica placement collides at follower slot {slot}: stride {stride} \
                 revisits a shard on a {n_shards}-shard ring"
            ),
            ClusterConfigError::ZeroPropagationWindows => {
                write!(f, "propagation lag needs at least one jitter window")
            }
            ClusterConfigError::ReplicationFaultConflict { shard, item } => write!(
                f,
                "shard {shard} follows item {item} but the fault plan also injects a \
                 stream fault for it there; propagation owns followed items' schedules"
            ),
        }
    }
}

impl std::error::Error for ClusterConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterConfigError::FaultSchedule { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Cluster shape and determinism knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of server shards (≥ 1).
    pub n_shards: usize,
    /// How the dispatcher routes queries.
    pub routing: RoutingPolicy,
    /// Run seed; shard `i`'s policy seed is `split_seed(seed, i)`.
    pub seed: u64,
    /// Worker threads driving the shards; `0` means auto — one thread per
    /// shard, capped at the host's available parallelism. Purely a
    /// throughput knob — results are bit-identical for any value.
    pub workers: usize,
    /// How the worker pool schedules shard execution. Also purely a
    /// wall-clock knob; see [`ExecutionMode`].
    pub mode: ExecutionMode,
    /// Demand-filter update streams during slicing
    /// ([`unit_workload::slice_trace_filtered`]): streams whose owner shard
    /// serves no reader of the item are dropped. **Changes per-shard
    /// digests** (dropped streams no longer contend for CPU) — off by
    /// default; the differential suites pin the unfiltered slicing.
    pub filter_updates: bool,
    /// Leader/follower replication of data items (see [`replication`]).
    /// `None` — and, bit-for-bit, `Some` with `factor == 1` — is today's
    /// partition-only cluster.
    pub replication: Option<ReplicationConfig>,
}

impl ClusterConfig {
    /// A cluster of `n_shards` round-robin-routed shards with the default
    /// seed and the auto worker count.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> ClusterConfig {
        assert!(n_shards > 0, "a cluster needs at least one shard");
        ClusterConfig {
            n_shards,
            routing: RoutingPolicy::RoundRobin,
            seed: unit_core::config::DEFAULT_SEED,
            workers: 0,
            mode: ExecutionMode::WholeShard,
            filter_updates: false,
            replication: None,
        }
    }

    /// Set the routing policy.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingPolicy) -> ClusterConfig {
        self.routing = routing;
        self
    }

    /// Set the execution mode (see [`ExecutionMode`]).
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> ClusterConfig {
        self.mode = mode;
        self
    }

    /// Shorthand for [`ExecutionMode::EpochParallel`] with the given epoch.
    #[must_use]
    pub fn with_epoch(mut self, epoch: unit_core::time::SimDuration) -> ClusterConfig {
        self.mode = ExecutionMode::EpochParallel { epoch };
        self
    }

    /// Enable demand filtering of update streams (see
    /// [`ClusterConfig::filter_updates`] for the digest caveat).
    #[must_use]
    pub fn with_filtered_updates(mut self) -> ClusterConfig {
        self.filter_updates = true;
        self
    }

    /// Set the run seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ClusterConfig {
        self.seed = seed;
        self
    }

    /// Cap the worker threads (`0` = auto: one per shard, capped at the
    /// host's available parallelism).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ClusterConfig {
        self.workers = workers;
        self
    }

    /// Replicate every item onto `replication.factor` shards with
    /// freshness-aware read routing (see [`replication`]).
    #[must_use]
    pub fn with_replication(mut self, replication: ReplicationConfig) -> ClusterConfig {
        self.replication = Some(replication);
        self
    }

    /// Like [`ClusterConfig::new`], returning the error instead of
    /// panicking.
    pub fn try_new(n_shards: usize) -> Result<ClusterConfig, ClusterConfigError> {
        if n_shards == 0 {
            return Err(ClusterConfigError::ZeroShards);
        }
        Ok(ClusterConfig {
            n_shards,
            routing: RoutingPolicy::RoundRobin,
            seed: unit_core::config::DEFAULT_SEED,
            workers: 0,
            mode: ExecutionMode::WholeShard,
            filter_updates: false,
            replication: None,
        })
    }

    /// Check the run-entry invariants. [`ClusterRun::run`] calls this
    /// first, so a malformed config is a typed error, not a panic deep in
    /// a worker thread.
    pub fn validate(&self) -> Result<(), ClusterConfigError> {
        if self.n_shards == 0 {
            return Err(ClusterConfigError::ZeroShards);
        }
        if self.workers > MAX_WORKERS {
            return Err(ClusterConfigError::TooManyWorkers {
                workers: self.workers,
                max: MAX_WORKERS,
            });
        }
        if let ExecutionMode::EpochParallel { epoch } = self.mode {
            if epoch.is_zero() {
                return Err(ClusterConfigError::ZeroEpoch);
            }
        }
        if let Some(rep) = &self.replication {
            rep.validate(self.n_shards)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::{SimDuration, SimTime};
    use unit_core::types::{DataId, QueryId, QuerySpec, Trace, UpdateSpec, UpdateStreamId};
    use unit_core::usm::UsmWeights;
    use unit_core::UnitConfig;
    use unit_faults::FaultPlan;
    use unit_sim::SimConfig;

    fn tiny_trace() -> Trace {
        let mut queries = Vec::new();
        for i in 0..40u64 {
            queries.push(QuerySpec {
                id: QueryId(i),
                arrival: SimTime::from_secs(1 + i),
                items: vec![DataId((i % 8) as u32), DataId(((i + 3) % 8) as u32)],
                exec_time: SimDuration::from_secs(1),
                relative_deadline: SimDuration::from_secs(8),
                freshness_req: 0.9,
                pref_class: 0,
            });
        }
        let updates = (0..8u32)
            .map(|i| UpdateSpec {
                id: UpdateStreamId(i),
                item: DataId(i),
                period: SimDuration::from_secs(7 + u64::from(i)),
                exec_time: SimDuration::from_secs(1),
                first_arrival: SimTime::from_secs(u64::from(i % 3)),
            })
            .collect();
        Trace {
            n_items: 8,
            queries,
            updates,
        }
    }

    fn sim_cfg() -> SimConfig {
        SimConfig::new(SimDuration::from_secs(60))
            .with_weights(UsmWeights::low_high_cfm())
            .with_tick_period(SimDuration::from_secs(5))
    }

    fn run_plain(trace: &Trace, cluster: ClusterConfig) -> ClusterReport {
        cluster
            .build()
            .run_unit(trace, sim_cfg(), &UnitConfig::default())
            .unwrap()
            .into_plain()
            .unwrap()
    }

    #[test]
    fn cluster_runs_and_accounts_for_every_query() {
        let trace = tiny_trace();
        for n in [1, 2, 4] {
            let cluster = ClusterConfig::new(n).with_seed(7);
            let report = run_plain(&trace, cluster);
            assert_eq!(report.n_shards, n);
            assert_eq!(report.counts.total(), 40, "n={n}");
            assert_eq!(report.log.len(), 40, "n={n}");
            assert_eq!(report.assignment.len(), 40);
            check_cluster_identity(&report).unwrap();
        }
    }

    #[test]
    fn worker_count_does_not_change_the_merge() {
        let trace = tiny_trace();
        for routing in RoutingPolicy::ALL {
            let base = ClusterConfig::new(4).with_seed(11).with_routing(routing);
            let a = run_plain(&trace, base);
            let b = run_plain(&trace, base.with_workers(1));
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.log, b.log);
            assert_eq!(a.counts, b.counts);
        }
    }

    #[test]
    fn malformed_configs_are_typed_errors() {
        let trace = tiny_trace();
        assert_eq!(
            ClusterConfig::try_new(0).unwrap_err(),
            ClusterConfigError::ZeroShards
        );
        let mut zero = ClusterConfig::new(2);
        zero.n_shards = 0;
        assert_eq!(
            zero.build()
                .run_unit(&trace, sim_cfg(), &UnitConfig::default())
                .unwrap_err(),
            ClusterConfigError::ZeroShards
        );
        let greedy = ClusterConfig::new(2).with_workers(MAX_WORKERS + 1);
        assert_eq!(
            greedy
                .build()
                .run_unit(&trace, sim_cfg(), &UnitConfig::default())
                .unwrap_err(),
            ClusterConfigError::TooManyWorkers {
                workers: MAX_WORKERS + 1,
                max: MAX_WORKERS
            }
        );
        // A capped-but-legal worker count is fine.
        let ok = ClusterConfig::try_new(2).unwrap().with_workers(MAX_WORKERS);
        assert!(ok
            .build()
            .run_unit(&trace, sim_cfg(), &UnitConfig::default())
            .is_ok());
    }

    #[test]
    fn malformed_replication_configs_are_typed_errors() {
        let trace = tiny_trace();
        let run = |cluster: ClusterConfig| {
            cluster
                .build()
                .run_unit(&trace, sim_cfg(), &UnitConfig::default())
        };
        assert_eq!(
            run(ClusterConfig::new(2).with_replication(ReplicationConfig::new(0))).unwrap_err(),
            ClusterConfigError::ZeroReplicationFactor
        );
        assert_eq!(
            run(ClusterConfig::new(2).with_replication(ReplicationConfig::new(3))).unwrap_err(),
            ClusterConfigError::ReplicationFactorExceedsShards {
                factor: 3,
                n_shards: 2
            }
        );
        // Stride 2 on a 4-shard ring revisits the leader at slot 2.
        let colliding =
            ReplicationConfig::new(3).with_placement(ReplicaPlacement::Strided { stride: 2 });
        assert_eq!(
            run(ClusterConfig::new(4).with_replication(colliding)).unwrap_err(),
            ClusterConfigError::ReplicaPlacementCollision {
                slot: 2,
                stride: 2,
                n_shards: 4
            }
        );
        let windowless = ReplicationConfig::new(2).with_lag(PropagationLag::jittered(
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            0,
        ));
        assert_eq!(
            run(ClusterConfig::new(2).with_replication(windowless)).unwrap_err(),
            ClusterConfigError::ZeroPropagationWindows
        );
        // The same checks fire through validate() without running anything.
        assert_eq!(
            ClusterConfig::new(2)
                .with_replication(ReplicationConfig::new(0))
                .validate()
                .unwrap_err(),
            ClusterConfigError::ZeroReplicationFactor
        );
        // And a well-formed replicated config passes.
        assert!(run(ClusterConfig::new(2).with_replication(ReplicationConfig::new(2))).is_ok());
    }

    #[test]
    fn replication_fault_conflicts_are_typed_errors() {
        // Item 0's leader is shard 0; its ring follower is shard 1. A user
        // stream fault for item 0 on shard 1 collides with the propagation
        // schedule that owns followed items there.
        let trace = tiny_trace();
        let mut plan = FaultPlan::quiet(2);
        plan.shards[1].stream_faults.push(unit_faults::StreamFault {
            item: DataId(0),
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(10),
            kind: unit_faults::StreamFaultKind::Drop,
        });
        let rep =
            ReplicationConfig::new(2).with_lag(PropagationLag::fixed(SimDuration::from_secs(3)));
        assert_eq!(
            ClusterConfig::new(2)
                .with_seed(7)
                .with_replication(rep)
                .build()
                .with_faults(&plan, FailoverPolicy::NoRetry)
                .run_unit(&trace, sim_cfg(), &UnitConfig::default())
                .unwrap_err(),
            ClusterConfigError::ReplicationFaultConflict { shard: 1, item: 0 }
        );
        // The same fault on the item's *leader* shard is legal: only
        // follower-side schedules belong to the propagation layer.
        let mut leader_side = FaultPlan::quiet(2);
        leader_side.shards[0]
            .stream_faults
            .push(unit_faults::StreamFault {
                item: DataId(0),
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(10),
                kind: unit_faults::StreamFaultKind::Drop,
            });
        assert!(ClusterConfig::new(2)
            .with_seed(7)
            .with_replication(rep)
            .build()
            .with_faults(&leader_side, FailoverPolicy::NoRetry)
            .run_unit(&trace, sim_cfg(), &UnitConfig::default())
            .is_ok());
    }

    #[test]
    fn fault_cluster_rejects_bad_plans() {
        let trace = tiny_trace();
        let cluster = ClusterConfig::new(2).with_seed(7);
        let short = FaultPlan::quiet(1);
        assert_eq!(
            cluster
                .build()
                .with_faults(&short, FailoverPolicy::NoRetry)
                .run_unit(&trace, sim_cfg(), &UnitConfig::default())
                .unwrap_err(),
            ClusterConfigError::PlanShardMismatch {
                plan_shards: 1,
                n_shards: 2
            }
        );
        let mut bad = FaultPlan::quiet(2);
        bad.shards[1].crashes.push(unit_faults::CrashWindow {
            start: unit_core::time::SimTime::from_secs(5),
            end: unit_core::time::SimTime::from_secs(5),
            mode: unit_faults::FaultMode::Pause,
        });
        let err = cluster
            .build()
            .with_faults(&bad, FailoverPolicy::NoRetry)
            .run_unit(&trace, sim_cfg(), &UnitConfig::default())
            .unwrap_err();
        assert!(matches!(
            err,
            ClusterConfigError::FaultSchedule { shard: 1, .. }
        ));
    }

    #[test]
    fn quiet_fault_cluster_matches_the_plain_cluster() {
        let trace = tiny_trace();
        let quiet = FaultPlan::quiet(4);
        for routing in RoutingPolicy::ALL {
            let cluster = ClusterConfig::new(4).with_seed(11).with_routing(routing);
            let plain = run_plain(&trace, cluster);
            for failover in [
                FailoverPolicy::NoRetry,
                FailoverPolicy::Backoff(BackoffConfig::default()),
            ] {
                let faulty = cluster
                    .build()
                    .with_faults(&quiet, failover)
                    .run_unit(&trace, sim_cfg(), &UnitConfig::default())
                    .unwrap()
                    .into_faulty()
                    .unwrap();
                assert_eq!(faulty.cluster.assignment, plain.assignment);
                assert_eq!(faulty.cluster.log, plain.log);
                assert_eq!(faulty.counts, plain.counts);
                assert_eq!(faulty.dispatcher_rejections(), 0);
                assert_eq!(faulty.total_retries(), 0);
                check_health_consistency(&faulty, &FaultPlan::quiet(4), &failover).unwrap();
            }
        }
    }

    #[test]
    fn faulty_cluster_conserves_queries_and_stays_consistent() {
        use unit_core::time::SimDuration;
        use unit_faults::{FaultConfig, FaultMode};
        let trace = tiny_trace();
        let cfg = FaultConfig::quiet(SimDuration::from_secs(60), 8).with_crashes(
            0.25,
            SimDuration::from_secs(8),
            FaultMode::Pause,
        );
        let plan = FaultPlan::generate(0xFA_17, 2, &cfg);
        assert!(!plan.is_empty());
        let cluster = ClusterConfig::new(2).with_seed(7);
        let failover = FailoverPolicy::Backoff(BackoffConfig::default());
        let report = cluster
            .build()
            .with_faults(&plan, failover)
            .run_unit(&trace, sim_cfg(), &UnitConfig::default())
            .unwrap()
            .into_faulty()
            .unwrap();
        // Every query decided exactly once, dispatcher rejections included.
        assert_eq!(report.counts.total(), 40);
        assert_eq!(report.log.len(), 40);
        check_health_consistency(&report, &plan, &failover).unwrap();
        // Bit-reproducible, for any worker count.
        let again = cluster
            .with_workers(1)
            .build()
            .with_faults(&plan, failover)
            .run_unit(&trace, sim_cfg(), &UnitConfig::default())
            .unwrap()
            .into_faulty()
            .unwrap();
        assert_eq!(report.log, again.log);
        assert_eq!(report.counts, again.counts);
        assert_eq!(report.decisions, again.decisions);
    }
}
