//! # unit-cluster — sharded multi-server UNIT simulation
//!
//! The paper evaluates UNIT on one server; this crate scales the same
//! machinery to a cluster of `N` deterministic server shards behind a
//! dispatcher (DESIGN.md §3):
//!
//! * **Partitioning** — every data item has one owner shard
//!   (`item mod N`, [`unit_workload::ItemPartition`]); an item's update
//!   streams always execute on its owner.
//! * **Routing** — queries are routed among the owners of their read-set
//!   items by a pluggable [`RoutingPolicy`]: round-robin, least
//!   outstanding routed work, or freshness-aware ([`routing`]).
//! * **Execution** — each shard is a full single-server engine
//!   ([`unit_sim::Simulator`]) with its own policy instance (its own
//!   AC + UM + LBC feedback loop for UNIT) and its own RNG stream split
//!   from the run seed ([`unit_core::split_seed`]).
//! * **Merge** — per-shard outcome logs merge into one cluster history
//!   ordered by `(virtual_time, shard_id, seq)` and one exact integer
//!   outcome tally ([`merge`]).
//!
//! ## Determinism
//!
//! A cluster run is a pure function of `(trace, SimConfig, ClusterConfig)`
//! regardless of worker-thread count or scheduling: routing is a
//! sequential prologue, shards share no mutable state during execution
//! (each consumes its own trace slice and its own seed), results land in
//! slots indexed by shard id, and the merge key is unique. Running with 1
//! worker or `N` workers yields bit-identical [`ClusterReport`]s — a
//! property test pins this.
//!
//! With one shard the dispatcher has a single eligible target for every
//! query, the trace slice equals the global trace, and the shard engine
//! sees byte-identical inputs to a plain single-server run (seeded with
//! `split_seed(seed, 0)`): the differential suite checks the resulting
//! reports digest-identically under every routing policy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod merge;
pub mod routing;

use std::sync::atomic::{AtomicUsize, Ordering};
use unit_core::policy::Policy;
use unit_core::split_seed;
use unit_core::types::Trace;
use unit_core::unit_policy::UnitPolicy;
use unit_core::UnitConfig;
use unit_sim::{SimConfig, SimReport, Simulator};
use unit_workload::{slice_trace, ItemPartition};

pub use merge::{check_cluster_identity, ClusterReport, MergedOutcome};
pub use routing::{assign, RoutingPolicy};

/// Cluster shape and determinism knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of server shards (≥ 1).
    pub n_shards: usize,
    /// How the dispatcher routes queries.
    pub routing: RoutingPolicy,
    /// Run seed; shard `i`'s policy seed is `split_seed(seed, i)`.
    pub seed: u64,
    /// Worker threads driving the shards; `0` means one thread per shard.
    /// Purely a throughput knob — results are bit-identical for any value.
    pub workers: usize,
}

impl ClusterConfig {
    /// A cluster of `n_shards` round-robin-routed shards with the default
    /// seed and one worker thread per shard.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> ClusterConfig {
        // lint: allow(assert) — documented constructor contract
        assert!(n_shards > 0, "a cluster needs at least one shard");
        ClusterConfig {
            n_shards,
            routing: RoutingPolicy::RoundRobin,
            seed: unit_core::config::DEFAULT_SEED,
            workers: 0,
        }
    }

    /// Set the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> ClusterConfig {
        self.routing = routing;
        self
    }

    /// Set the run seed.
    pub fn with_seed(mut self, seed: u64) -> ClusterConfig {
        self.seed = seed;
        self
    }

    /// Cap the worker threads (`0` = one per shard).
    pub fn with_workers(mut self, workers: usize) -> ClusterConfig {
        self.workers = workers;
        self
    }
}

/// Run a cluster: route, slice, execute every shard, merge.
///
/// `make_policy(shard_id, seed)` builds each shard's policy instance;
/// `seed` is already split from the run seed, so implementations just
/// thread it into their config (or ignore it for seedless baselines).
/// The engine-level outcome log is forced on — the merge layer needs it —
/// which does not change engine behaviour (the log is excluded from
/// [`unit_sim::report_digest`]).
///
/// # Panics
/// Panics if `trace` is malformed (same contract as
/// [`Simulator::new`]) or a worker thread panics.
pub fn run_cluster<P, F>(
    trace: &Trace,
    sim: SimConfig,
    cluster: &ClusterConfig,
    make_policy: F,
) -> ClusterReport
where
    P: Policy + Send,
    F: Fn(usize, u64) -> P + Sync,
{
    let n = cluster.n_shards;
    let partition = ItemPartition::new(n);
    let assignment = routing::assign(trace, &partition, cluster.routing);
    let shard_traces = match slice_trace(trace, &assignment, &partition) {
        Ok(t) => t,
        // lint: allow(panic) — the dispatcher produced the assignment; a bad one is a routing bug, not caller input
        Err(e) => panic!("internal routing error: {e}"),
    };
    let seeds: Vec<u64> = (0..n).map(|i| split_seed(cluster.seed, i as u64)).collect();
    let shard_cfg = sim.with_outcome_log();
    let workers = if cluster.workers == 0 {
        n
    } else {
        cluster.workers.min(n)
    };

    // Interleaving-independence: workers claim shard indices from an atomic
    // counter, run them without any shared mutable state, and return
    // (shard_id, report) pairs; results are then placed into slots keyed by
    // shard id, so neither claim order nor finish order is observable.
    let mut slots: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let next = &next;
        let shard_traces = &shard_traces;
        let seeds = &seeds;
        let make_policy = &make_policy;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut finished: Vec<(usize, SimReport)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let policy = make_policy(i, seeds[i]);
                        let report = Simulator::new(&shard_traces[i], policy, shard_cfg).run();
                        finished.push((i, report));
                    }
                    finished
                })
            })
            .collect();
        for h in handles {
            // lint: allow(panic) — a worker panic is a shard-engine bug;
            // propagate it instead of reporting a partial cluster
            let finished = match h.join() {
                Ok(f) => f,
                Err(e) => std::panic::resume_unwind(e),
            };
            for (i, report) in finished {
                slots[i] = Some(report);
            }
        }
    });
    let shard_reports: Vec<SimReport> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| match s {
            Some(r) => r,
            // lint: allow(panic) — every index < n is claimed exactly once
            None => panic!("shard {i} produced no report"),
        })
        .collect();

    let report = ClusterReport::merge(cluster.routing, sim.weights, assignment, shard_reports);
    unit_core::validate_check!(
        "cluster-usm-identity",
        merge::check_cluster_identity(&report)
    );
    report
}

/// Run a UNIT cluster: one [`UnitPolicy`] per shard, each configured from
/// `base` with its own split seed. The common case for benches.
pub fn run_unit_cluster(
    trace: &Trace,
    sim: SimConfig,
    cluster: &ClusterConfig,
    base: &UnitConfig,
) -> ClusterReport {
    run_cluster(trace, sim, cluster, |_, seed| {
        UnitPolicy::new(base.clone().with_seed(seed))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::{SimDuration, SimTime};
    use unit_core::types::{DataId, QueryId, QuerySpec, UpdateSpec, UpdateStreamId};
    use unit_core::usm::UsmWeights;

    fn tiny_trace() -> Trace {
        let mut queries = Vec::new();
        for i in 0..40u64 {
            queries.push(QuerySpec {
                id: QueryId(i),
                arrival: SimTime::from_secs(1 + i),
                items: vec![DataId((i % 8) as u32), DataId(((i + 3) % 8) as u32)],
                exec_time: SimDuration::from_secs(1),
                relative_deadline: SimDuration::from_secs(8),
                freshness_req: 0.9,
                pref_class: 0,
            });
        }
        let updates = (0..8u32)
            .map(|i| UpdateSpec {
                id: UpdateStreamId(i),
                item: DataId(i),
                period: SimDuration::from_secs(7 + u64::from(i)),
                exec_time: SimDuration::from_secs(1),
                first_arrival: SimTime::from_secs(u64::from(i % 3)),
            })
            .collect();
        Trace {
            n_items: 8,
            queries,
            updates,
        }
    }

    fn sim_cfg() -> SimConfig {
        SimConfig::new(SimDuration::from_secs(60))
            .with_weights(UsmWeights::low_high_cfm())
            .with_tick_period(SimDuration::from_secs(5))
    }

    #[test]
    fn cluster_runs_and_accounts_for_every_query() {
        let trace = tiny_trace();
        for n in [1, 2, 4] {
            let cluster = ClusterConfig::new(n).with_seed(7);
            let report = run_unit_cluster(&trace, sim_cfg(), &cluster, &UnitConfig::default());
            assert_eq!(report.n_shards, n);
            assert_eq!(report.counts.total(), 40, "n={n}");
            assert_eq!(report.log.len(), 40, "n={n}");
            assert_eq!(report.assignment.len(), 40);
            check_cluster_identity(&report).unwrap();
        }
    }

    #[test]
    fn worker_count_does_not_change_the_merge() {
        let trace = tiny_trace();
        for routing in RoutingPolicy::ALL {
            let base = ClusterConfig::new(4).with_seed(11).with_routing(routing);
            let a = run_unit_cluster(&trace, sim_cfg(), &base, &UnitConfig::default());
            let b = run_unit_cluster(
                &trace,
                sim_cfg(),
                &base.with_workers(1),
                &UnitConfig::default(),
            );
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.log, b.log);
            assert_eq!(a.counts, b.counts);
        }
    }
}
