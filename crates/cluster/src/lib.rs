//! # unit-cluster — sharded multi-server UNIT simulation
//!
//! The paper evaluates UNIT on one server; this crate scales the same
//! machinery to a cluster of `N` deterministic server shards behind a
//! dispatcher (DESIGN.md §3):
//!
//! * **Partitioning** — every data item has one owner shard
//!   (`item mod N`, [`unit_workload::ItemPartition`]); an item's update
//!   streams always execute on its owner.
//! * **Routing** — queries are routed among the owners of their read-set
//!   items by a pluggable [`RoutingPolicy`]: round-robin, least
//!   outstanding routed work, or freshness-aware ([`routing`]).
//! * **Execution** — each shard is a full single-server engine
//!   ([`unit_sim::Simulator`]) with its own policy instance (its own
//!   AC + UM + LBC feedback loop for UNIT) and its own RNG stream split
//!   from the run seed ([`unit_core::split_seed`]).
//! * **Merge** — per-shard outcome logs merge into one cluster history
//!   ordered by `(virtual_time, shard_id, seq)` and one exact integer
//!   outcome tally ([`merge`]).
//!
//! ## Determinism
//!
//! A cluster run is a pure function of `(trace, SimConfig, ClusterConfig)`
//! regardless of worker-thread count or scheduling: routing is a
//! sequential prologue, shards share no mutable state during execution
//! (each consumes its own trace slice and its own seed), results land in
//! slots indexed by shard id, and the merge key is unique. Running with 1
//! worker or `N` workers yields bit-identical [`ClusterReport`]s — a
//! property test pins this.
//!
//! With one shard the dispatcher has a single eligible target for every
//! query, the trace slice equals the global trace, and the shard engine
//! sees byte-identical inputs to a plain single-server run (seeded with
//! `split_seed(seed, 0)`): the differential suite checks the resulting
//! reports digest-identically under every routing policy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod failover;
pub mod merge;
pub mod routing;

use std::sync::atomic::{AtomicUsize, Ordering};
use unit_core::policy::Policy;
use unit_core::split_seed;
use unit_core::types::Trace;
use unit_core::unit_policy::UnitPolicy;
use unit_core::UnitConfig;
use unit_faults::{FaultPlan, ScheduleError, ShardFaults};
use unit_sim::{SimConfig, SimReport, Simulator};
use unit_workload::{slice_trace, ItemPartition};

pub use failover::{
    check_health_consistency, route_with_faults, BackoffConfig, FailoverPolicy, FaultClusterReport,
    RouteDecision,
};
pub use merge::{check_cluster_identity, ClusterReport, MergedOutcome};
pub use routing::{assign, RoutingPolicy};

/// Upper bound on the worker-thread knob; values past this are a typo, not
/// a throughput request.
pub const MAX_WORKERS: usize = 4096;

/// A malformed cluster or fault configuration, rejected before any shard
/// runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// `n_shards == 0`: a cluster needs at least one shard.
    ZeroShards,
    /// `workers` exceeds [`MAX_WORKERS`].
    TooManyWorkers {
        /// The requested worker count.
        workers: usize,
        /// The cap.
        max: usize,
    },
    /// The fault plan does not cover exactly one schedule per shard.
    PlanShardMismatch {
        /// Schedules in the plan.
        plan_shards: usize,
        /// Shards in the cluster.
        n_shards: usize,
    },
    /// A shard's fault schedule failed structural validation.
    FaultSchedule {
        /// The shard whose schedule is malformed.
        shard: usize,
        /// The underlying schedule error.
        error: ScheduleError,
    },
}

impl std::fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterConfigError::ZeroShards => write!(f, "a cluster needs at least one shard"),
            ClusterConfigError::TooManyWorkers { workers, max } => {
                write!(f, "{workers} worker threads requested, the cap is {max}")
            }
            ClusterConfigError::PlanShardMismatch {
                plan_shards,
                n_shards,
            } => write!(
                f,
                "fault plan covers {plan_shards} shards but the cluster has {n_shards}"
            ),
            ClusterConfigError::FaultSchedule { shard, error } => {
                write!(f, "shard {shard} fault schedule: {error}")
            }
        }
    }
}

impl std::error::Error for ClusterConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterConfigError::FaultSchedule { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Cluster shape and determinism knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of server shards (≥ 1).
    pub n_shards: usize,
    /// How the dispatcher routes queries.
    pub routing: RoutingPolicy,
    /// Run seed; shard `i`'s policy seed is `split_seed(seed, i)`.
    pub seed: u64,
    /// Worker threads driving the shards; `0` means one thread per shard.
    /// Purely a throughput knob — results are bit-identical for any value.
    pub workers: usize,
}

impl ClusterConfig {
    /// A cluster of `n_shards` round-robin-routed shards with the default
    /// seed and one worker thread per shard.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> ClusterConfig {
        // lint: allow(assert) — documented constructor contract
        assert!(n_shards > 0, "a cluster needs at least one shard");
        ClusterConfig {
            n_shards,
            routing: RoutingPolicy::RoundRobin,
            seed: unit_core::config::DEFAULT_SEED,
            workers: 0,
        }
    }

    /// Set the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> ClusterConfig {
        self.routing = routing;
        self
    }

    /// Set the run seed.
    pub fn with_seed(mut self, seed: u64) -> ClusterConfig {
        self.seed = seed;
        self
    }

    /// Cap the worker threads (`0` = one per shard).
    pub fn with_workers(mut self, workers: usize) -> ClusterConfig {
        self.workers = workers;
        self
    }

    /// Like [`ClusterConfig::new`], returning the error instead of
    /// panicking.
    pub fn try_new(n_shards: usize) -> Result<ClusterConfig, ClusterConfigError> {
        if n_shards == 0 {
            return Err(ClusterConfigError::ZeroShards);
        }
        Ok(ClusterConfig {
            n_shards,
            routing: RoutingPolicy::RoundRobin,
            seed: unit_core::config::DEFAULT_SEED,
            workers: 0,
        })
    }

    /// Check the run-entry invariants. Every `run_*` entry point calls
    /// this first, so a malformed config is a typed error, not a panic
    /// deep in a worker thread.
    pub fn validate(&self) -> Result<(), ClusterConfigError> {
        if self.n_shards == 0 {
            return Err(ClusterConfigError::ZeroShards);
        }
        if self.workers > MAX_WORKERS {
            return Err(ClusterConfigError::TooManyWorkers {
                workers: self.workers,
                max: MAX_WORKERS,
            });
        }
        Ok(())
    }
}

/// Execute every shard on a worker pool and return the reports indexed by
/// shard id.
///
/// Interleaving-independence: workers claim shard indices from an atomic
/// counter, run them without any shared mutable state, and return
/// (shard_id, report) pairs; results are then placed into slots keyed by
/// shard id, so neither claim order nor finish order is observable. With
/// `hooks`, shard `i` runs with `hooks[i]` installed as its fault hook.
fn execute_shards<P, F>(
    shard_traces: &[Trace],
    seeds: &[u64],
    shard_cfg: SimConfig,
    workers: usize,
    hooks: Option<&[ShardFaults]>,
    make_policy: &F,
) -> Vec<SimReport>
where
    P: Policy + Send,
    F: Fn(usize, u64) -> P + Sync,
{
    let n = shard_traces.len();
    let workers = if workers == 0 { n } else { workers.min(n) };
    let mut slots: Vec<Option<SimReport>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut finished: Vec<(usize, SimReport)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let policy = make_policy(i, seeds[i]);
                        let mut sim = Simulator::new(&shard_traces[i], policy, shard_cfg);
                        if let Some(hooks) = hooks {
                            sim = sim.with_faults(Box::new(hooks[i].clone()));
                        }
                        finished.push((i, sim.run()));
                    }
                    finished
                })
            })
            .collect();
        for h in handles {
            // lint: allow(panic) — a worker panic is a shard-engine bug;
            // propagate it instead of reporting a partial cluster
            let finished = match h.join() {
                Ok(f) => f,
                Err(e) => std::panic::resume_unwind(e),
            };
            for (i, report) in finished {
                slots[i] = Some(report);
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| match s {
            Some(r) => r,
            // lint: allow(panic) — every index < n is claimed exactly once
            None => panic!("shard {i} produced no report"),
        })
        .collect()
}

/// Run a cluster: route, slice, execute every shard, merge.
///
/// `make_policy(shard_id, seed)` builds each shard's policy instance;
/// `seed` is already split from the run seed, so implementations just
/// thread it into their config (or ignore it for seedless baselines).
/// The engine-level outcome log is forced on — the merge layer needs it —
/// which does not change engine behaviour (the log is excluded from
/// [`unit_sim::report_digest`]).
///
/// # Errors
/// Returns [`ClusterConfigError`] when `cluster` fails
/// [`ClusterConfig::validate`].
///
/// # Panics
/// Panics if `trace` is malformed (same contract as
/// [`Simulator::new`]) or a worker thread panics.
pub fn run_cluster<P, F>(
    trace: &Trace,
    sim: SimConfig,
    cluster: &ClusterConfig,
    make_policy: F,
) -> Result<ClusterReport, ClusterConfigError>
where
    P: Policy + Send,
    F: Fn(usize, u64) -> P + Sync,
{
    cluster.validate()?;
    let n = cluster.n_shards;
    let partition = ItemPartition::new(n);
    let assignment = routing::assign(trace, &partition, cluster.routing);
    let shard_traces = match slice_trace(trace, &assignment, &partition) {
        Ok(t) => t,
        // lint: allow(panic) — the dispatcher produced the assignment; a bad one is a routing bug, not caller input
        Err(e) => panic!("internal routing error: {e}"),
    };
    let seeds: Vec<u64> = (0..n).map(|i| split_seed(cluster.seed, i as u64)).collect();
    let shard_reports = execute_shards(
        &shard_traces,
        &seeds,
        sim.with_outcome_log(),
        cluster.workers,
        None,
        &make_policy,
    );

    let report = ClusterReport::merge(cluster.routing, sim.weights, assignment, shard_reports);
    unit_core::validate_check!(
        "cluster-usm-identity",
        merge::check_cluster_identity(&report)
    );
    Ok(report)
}

/// Run a UNIT cluster: one [`UnitPolicy`] per shard, each configured from
/// `base` with its own split seed. The common case for benches.
///
/// # Errors
/// Returns [`ClusterConfigError`] when `cluster` fails
/// [`ClusterConfig::validate`].
pub fn run_unit_cluster(
    trace: &Trace,
    sim: SimConfig,
    cluster: &ClusterConfig,
    base: &UnitConfig,
) -> Result<ClusterReport, ClusterConfigError> {
    run_cluster(trace, sim, cluster, |_, seed| {
        UnitPolicy::new(base.clone().with_seed(seed))
    })
}

/// Run a cluster under a fault plan: fault-aware routing, per-shard fault
/// hooks, dispatcher rejections folded into the USM.
///
/// The dispatcher runs [`route_with_faults`] (still a sequential
/// prologue — the plan is declarative), routed queries execute on shards
/// with their [`ShardFaults`] hook installed, and dispatcher rejections
/// join the merged history under a pseudo-shard id. With
/// [`FaultPlan::quiet`] schedules the report's shard-level content is
/// bit-identical to [`run_cluster`] — the fault differential suite pins
/// this digest-for-digest.
///
/// # Errors
/// Returns [`ClusterConfigError`] when `cluster` fails validation, the
/// plan does not cover every shard, or a shard schedule is malformed.
///
/// # Panics
/// Panics if `trace` is malformed (same contract as
/// [`Simulator::new`]) or a worker thread panics.
pub fn run_fault_cluster<P, F>(
    trace: &Trace,
    sim: SimConfig,
    cluster: &ClusterConfig,
    plan: &FaultPlan,
    failover: &FailoverPolicy,
    make_policy: F,
) -> Result<FaultClusterReport, ClusterConfigError>
where
    P: Policy + Send,
    F: Fn(usize, u64) -> P + Sync,
{
    cluster.validate()?;
    let n = cluster.n_shards;
    if plan.shards.len() != n {
        return Err(ClusterConfigError::PlanShardMismatch {
            plan_shards: plan.shards.len(),
            n_shards: n,
        });
    }
    let hooks: Vec<ShardFaults> = plan
        .shards
        .iter()
        .enumerate()
        .map(|(shard, s)| {
            ShardFaults::new(s.clone())
                .map_err(|error| ClusterConfigError::FaultSchedule { shard, error })
        })
        .collect::<Result<_, _>>()?;

    let partition = ItemPartition::new(n);
    let decisions = failover::route_with_faults(trace, &partition, cluster.routing, plan, failover);
    let (routed, assignment) = failover::routed_trace(trace, &decisions);
    let shard_traces = match slice_trace(&routed, &assignment, &partition) {
        Ok(t) => t,
        // lint: allow(panic) — the dispatcher produced the assignment; a bad one is a routing bug, not caller input
        Err(e) => panic!("internal routing error: {e}"),
    };
    let seeds: Vec<u64> = (0..n).map(|i| split_seed(cluster.seed, i as u64)).collect();
    let shard_reports = execute_shards(
        &shard_traces,
        &seeds,
        sim.with_outcome_log(),
        cluster.workers,
        Some(&hooks),
        &make_policy,
    );

    let cluster_report =
        ClusterReport::merge(cluster.routing, sim.weights, assignment, shard_reports);
    unit_core::validate_check!(
        "cluster-usm-identity",
        merge::check_cluster_identity(&cluster_report)
    );
    let report = FaultClusterReport::assemble(trace, cluster_report, decisions);
    unit_core::validate_check!(
        "health-consistency",
        failover::check_health_consistency(&report, plan, failover)
    );
    Ok(report)
}

/// Run a UNIT cluster under a fault plan: one [`UnitPolicy`] per shard,
/// each configured from `base` with its own split seed.
///
/// # Errors
/// Same contract as [`run_fault_cluster`].
pub fn run_unit_fault_cluster(
    trace: &Trace,
    sim: SimConfig,
    cluster: &ClusterConfig,
    plan: &FaultPlan,
    failover: &FailoverPolicy,
    base: &UnitConfig,
) -> Result<FaultClusterReport, ClusterConfigError> {
    run_fault_cluster(trace, sim, cluster, plan, failover, |_, seed| {
        UnitPolicy::new(base.clone().with_seed(seed))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::{SimDuration, SimTime};
    use unit_core::types::{DataId, QueryId, QuerySpec, UpdateSpec, UpdateStreamId};
    use unit_core::usm::UsmWeights;

    fn tiny_trace() -> Trace {
        let mut queries = Vec::new();
        for i in 0..40u64 {
            queries.push(QuerySpec {
                id: QueryId(i),
                arrival: SimTime::from_secs(1 + i),
                items: vec![DataId((i % 8) as u32), DataId(((i + 3) % 8) as u32)],
                exec_time: SimDuration::from_secs(1),
                relative_deadline: SimDuration::from_secs(8),
                freshness_req: 0.9,
                pref_class: 0,
            });
        }
        let updates = (0..8u32)
            .map(|i| UpdateSpec {
                id: UpdateStreamId(i),
                item: DataId(i),
                period: SimDuration::from_secs(7 + u64::from(i)),
                exec_time: SimDuration::from_secs(1),
                first_arrival: SimTime::from_secs(u64::from(i % 3)),
            })
            .collect();
        Trace {
            n_items: 8,
            queries,
            updates,
        }
    }

    fn sim_cfg() -> SimConfig {
        SimConfig::new(SimDuration::from_secs(60))
            .with_weights(UsmWeights::low_high_cfm())
            .with_tick_period(SimDuration::from_secs(5))
    }

    #[test]
    fn cluster_runs_and_accounts_for_every_query() {
        let trace = tiny_trace();
        for n in [1, 2, 4] {
            let cluster = ClusterConfig::new(n).with_seed(7);
            let report =
                run_unit_cluster(&trace, sim_cfg(), &cluster, &UnitConfig::default()).unwrap();
            assert_eq!(report.n_shards, n);
            assert_eq!(report.counts.total(), 40, "n={n}");
            assert_eq!(report.log.len(), 40, "n={n}");
            assert_eq!(report.assignment.len(), 40);
            check_cluster_identity(&report).unwrap();
        }
    }

    #[test]
    fn worker_count_does_not_change_the_merge() {
        let trace = tiny_trace();
        for routing in RoutingPolicy::ALL {
            let base = ClusterConfig::new(4).with_seed(11).with_routing(routing);
            let a = run_unit_cluster(&trace, sim_cfg(), &base, &UnitConfig::default()).unwrap();
            let b = run_unit_cluster(
                &trace,
                sim_cfg(),
                &base.with_workers(1),
                &UnitConfig::default(),
            )
            .unwrap();
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.log, b.log);
            assert_eq!(a.counts, b.counts);
        }
    }

    #[test]
    fn malformed_configs_are_typed_errors() {
        let trace = tiny_trace();
        assert_eq!(
            ClusterConfig::try_new(0).unwrap_err(),
            ClusterConfigError::ZeroShards
        );
        let mut zero = ClusterConfig::new(2);
        zero.n_shards = 0;
        assert_eq!(
            run_unit_cluster(&trace, sim_cfg(), &zero, &UnitConfig::default()).unwrap_err(),
            ClusterConfigError::ZeroShards
        );
        let greedy = ClusterConfig::new(2).with_workers(MAX_WORKERS + 1);
        assert_eq!(
            run_unit_cluster(&trace, sim_cfg(), &greedy, &UnitConfig::default()).unwrap_err(),
            ClusterConfigError::TooManyWorkers {
                workers: MAX_WORKERS + 1,
                max: MAX_WORKERS
            }
        );
        // A capped-but-legal worker count is fine.
        let ok = ClusterConfig::try_new(2).unwrap().with_workers(MAX_WORKERS);
        assert!(run_unit_cluster(&trace, sim_cfg(), &ok, &UnitConfig::default()).is_ok());
    }

    #[test]
    fn fault_cluster_rejects_bad_plans() {
        let trace = tiny_trace();
        let cluster = ClusterConfig::new(2).with_seed(7);
        let short = FaultPlan::quiet(1);
        assert_eq!(
            run_unit_fault_cluster(
                &trace,
                sim_cfg(),
                &cluster,
                &short,
                &FailoverPolicy::NoRetry,
                &UnitConfig::default()
            )
            .unwrap_err(),
            ClusterConfigError::PlanShardMismatch {
                plan_shards: 1,
                n_shards: 2
            }
        );
        let mut bad = FaultPlan::quiet(2);
        bad.shards[1].crashes.push(unit_faults::CrashWindow {
            start: unit_core::time::SimTime::from_secs(5),
            end: unit_core::time::SimTime::from_secs(5),
            mode: unit_faults::FaultMode::Pause,
        });
        let err = run_unit_fault_cluster(
            &trace,
            sim_cfg(),
            &cluster,
            &bad,
            &FailoverPolicy::NoRetry,
            &UnitConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ClusterConfigError::FaultSchedule { shard: 1, .. }
        ));
    }

    #[test]
    fn quiet_fault_cluster_matches_the_plain_cluster() {
        let trace = tiny_trace();
        for routing in RoutingPolicy::ALL {
            let cluster = ClusterConfig::new(4).with_seed(11).with_routing(routing);
            let plain =
                run_unit_cluster(&trace, sim_cfg(), &cluster, &UnitConfig::default()).unwrap();
            for failover in [
                FailoverPolicy::NoRetry,
                FailoverPolicy::Backoff(BackoffConfig::default()),
            ] {
                let faulty = run_unit_fault_cluster(
                    &trace,
                    sim_cfg(),
                    &cluster,
                    &FaultPlan::quiet(4),
                    &failover,
                    &UnitConfig::default(),
                )
                .unwrap();
                assert_eq!(faulty.cluster.assignment, plain.assignment);
                assert_eq!(faulty.cluster.log, plain.log);
                assert_eq!(faulty.counts, plain.counts);
                assert_eq!(faulty.dispatcher_rejections(), 0);
                assert_eq!(faulty.total_retries(), 0);
                check_health_consistency(&faulty, &FaultPlan::quiet(4), &failover).unwrap();
            }
        }
    }

    #[test]
    fn faulty_cluster_conserves_queries_and_stays_consistent() {
        use unit_core::time::SimDuration;
        use unit_faults::{FaultConfig, FaultMode};
        let trace = tiny_trace();
        let cfg = FaultConfig::quiet(SimDuration::from_secs(60), 8).with_crashes(
            0.25,
            SimDuration::from_secs(8),
            FaultMode::Pause,
        );
        let plan = FaultPlan::generate(0xFA_17, 2, &cfg);
        assert!(!plan.is_empty());
        let cluster = ClusterConfig::new(2).with_seed(7);
        let failover = FailoverPolicy::Backoff(BackoffConfig::default());
        let report = run_unit_fault_cluster(
            &trace,
            sim_cfg(),
            &cluster,
            &plan,
            &failover,
            &UnitConfig::default(),
        )
        .unwrap();
        // Every query decided exactly once, dispatcher rejections included.
        assert_eq!(report.counts.total(), 40);
        assert_eq!(report.log.len(), 40);
        check_health_consistency(&report, &plan, &failover).unwrap();
        // Bit-reproducible, for any worker count.
        let again = run_unit_fault_cluster(
            &trace,
            sim_cfg(),
            &cluster.with_workers(1),
            &plan,
            &failover,
            &UnitConfig::default(),
        )
        .unwrap();
        assert_eq!(report.log, again.log);
        assert_eq!(report.counts, again.counts);
        assert_eq!(report.decisions, again.decisions);
    }
}
