//! Merging per-shard results into one cluster-level report.
//!
//! Each shard's engine produces an outcome log ordered by its own virtual
//! time. The cluster merges all logs into one totally ordered history by
//! the key `(virtual_time, shard_id, seq)`: virtual time first (shards
//! share the same clock origin), shard id to break cross-shard ties at the
//! same instant, and the shard-local sequence number for same-instant
//! outcomes within one shard. Every key is unique, so the merged order —
//! and everything derived from it — is independent of which worker thread
//! finished first (DESIGN.md §3).
//!
//! The cluster USM is computed from the **summed integer outcome counts**,
//! which is exact: addition of `u64` tallies has no rounding, so the
//! cluster tally equals a recount over the merged log bit-for-bit, and the
//! float USM derived from it is the same bits no matter how many shards
//! contributed (the "cluster USM identity" the `validate` feature checks).

use crate::routing::RoutingPolicy;
use unit_core::time::SimTime;
use unit_core::types::{DataId, Outcome, QueryId};
use unit_core::usm::{OutcomeCounts, UsmWeights};
use unit_sim::{OutcomeRecord, SimReport};

/// One outcome in the merged cluster history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedOutcome {
    /// Virtual instant the outcome was decided (shard-local clock; all
    /// shards share the origin `t = 0`).
    pub time: SimTime,
    /// The shard that decided it.
    pub shard: usize,
    /// Its sequence number within that shard's log.
    pub seq: u64,
    /// The query.
    pub query: QueryId,
    /// How it ended.
    pub outcome: Outcome,
}

/// One lane in the cluster's totally ordered event history.
///
/// The merged order (and the obs replay built on it) keys every record by
/// `(time, lane, seq)`. Replication adds **replica pseudo-lanes**: each
/// shard gets a second lane carrying its follower-side propagation
/// deliveries, ordered after every real shard lane so replication events
/// at an instant sort after the execution events that caused them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClusterLane {
    /// The dispatcher's sequential prologue (routes, rejections, health
    /// transitions, promotions, replica-route records).
    Dispatcher,
    /// Shard `s`'s engine outcomes and events.
    Shard(usize),
    /// Shard `s`'s replica (propagation) lane: versions landing on `s` in
    /// its follower role.
    Replica(usize),
}

impl ClusterLane {
    /// The lane's position in the total order, for a cluster of
    /// `n_shards`: dispatcher 0, shard `s` at `1 + s`, replica lane of `s`
    /// at `1 + n_shards + s`. O(1).
    pub fn index(&self, n_shards: usize) -> u64 {
        match *self {
            ClusterLane::Dispatcher => 0,
            ClusterLane::Shard(s) => 1 + s as u64,
            ClusterLane::Replica(s) => 1 + n_shards as u64 + s as u64,
        }
    }
}

/// One propagated version landing on a follower replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagationRecord {
    /// Delivery instant at the follower (emission + windowed delay).
    pub time: SimTime,
    /// The replicated item.
    pub item: DataId,
    /// The item's leader shard.
    pub leader: usize,
    /// The follower shard the version landed on.
    pub follower: usize,
    /// 1-based version ordinal among the item's emissions within the
    /// horizon.
    pub version: u64,
    /// Leader-side emission instant.
    pub emitted: SimTime,
}

/// One leader promotion: a crashed leader's freshest live follower taking
/// over an item at routing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionRecord {
    /// Dispatch instant the promotion took effect.
    pub time: SimTime,
    /// The item whose leader was down.
    pub item: DataId,
    /// The paused leader.
    pub from: usize,
    /// The promoted follower (minimal claimed in-transit versions, ties to
    /// the lowest shard id).
    pub to: usize,
}

/// One query route that landed on a follower replica under a `Qu` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaRouteRecord {
    /// Effective dispatch instant.
    pub time: SimTime,
    /// The routed query.
    pub query: QueryId,
    /// The shard the query went to.
    pub shard: usize,
    /// Read-set items the shard serves as a follower.
    pub follower_items: u32,
    /// The worst claimed in-transit version count among those items — the
    /// `Udrop` bound behind the advertised `Qu`.
    pub claimed_transit: u64,
}

/// The replica layer's contribution to a cluster report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationReport {
    /// Replicas per item, leader included.
    pub factor: usize,
    /// Every propagated version delivery, ordered by
    /// `(time, follower lane, per-lane seq)`.
    pub propagation: Vec<PropagationRecord>,
    /// Routes that landed on a follower, in dispatch order.
    pub routes: Vec<ReplicaRouteRecord>,
    /// Leader promotions, deduplicated to target changes per item.
    pub promotions: Vec<PromotionRecord>,
}

/// The result of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Number of shards the cluster ran with.
    pub n_shards: usize,
    /// Routing policy the dispatcher used.
    pub routing: RoutingPolicy,
    /// Weights the run was priced under.
    pub weights: UsmWeights,
    /// Shard index every global query was routed to (trace order).
    pub assignment: Vec<usize>,
    /// Each shard's full single-server report, index = shard id.
    pub shard_reports: Vec<SimReport>,
    /// Summed outcome tallies over all shards (exact integer addition).
    pub counts: OutcomeCounts,
    /// All shard outcome logs merged by `(time, shard, seq)`.
    pub log: Vec<MergedOutcome>,
    /// Host wall-clock seconds each shard spent being built, stepped, and
    /// finished on its worker (index = shard id), excluding barrier waits.
    /// The maximum is the run's critical path — the wall-clock a host with
    /// at least one core per shard would see. Diagnostic only: timing is
    /// nondeterministic and never feeds a digest or a decision.
    /// [`ClusterReport::merge`] leaves it empty; [`crate::ClusterRun::run`]
    /// fills it in.
    pub shard_walls: Vec<f64>,
    /// Update streams each shard's slice carried (index = shard id). With
    /// plain slicing every shard replays all streams; with
    /// [`crate::ClusterConfig::with_filtered_updates`] each carries only
    /// the streams for items its queries read. Empty until
    /// [`crate::ClusterRun::run`] fills it in.
    pub update_streams_per_shard: Vec<usize>,
    /// The replica layer's records when the run was replicated
    /// ([`crate::ClusterConfig::with_replication`]). `None` from
    /// [`ClusterReport::merge`]; [`crate::ClusterRun::run`] fills it in.
    pub replication: Option<ReplicationReport>,
}

impl ClusterReport {
    /// Merge per-shard reports (index = shard id) into a cluster report.
    /// O(N log N) in the total outcome count for the ordered merge.
    pub fn merge(
        routing: RoutingPolicy,
        weights: UsmWeights,
        assignment: Vec<usize>,
        shard_reports: Vec<SimReport>,
    ) -> ClusterReport {
        let mut counts = OutcomeCounts::default();
        let mut log: Vec<MergedOutcome> = Vec::new();
        for (shard, report) in shard_reports.iter().enumerate() {
            counts.success += report.counts.success;
            counts.rejected += report.counts.rejected;
            counts.deadline_miss += report.counts.deadline_miss;
            counts.data_stale += report.counts.data_stale;
            log.extend(report.outcome_records.iter().map(
                |&OutcomeRecord {
                     seq,
                     time,
                     query,
                     outcome,
                 }| MergedOutcome {
                    time,
                    shard,
                    seq,
                    query,
                    outcome,
                },
            ));
        }
        // Keys are unique — (shard, seq) alone already is — so an unstable
        // sort yields one well-defined order.
        log.sort_unstable_by_key(|r| (r.time, r.shard, r.seq));
        ClusterReport {
            n_shards: shard_reports.len(),
            routing,
            weights,
            assignment,
            shard_reports,
            counts,
            log,
            shard_walls: Vec::new(),
            update_streams_per_shard: Vec::new(),
            replication: None,
        }
    }

    /// The run's critical path: the slowest shard's wall (see
    /// [`ClusterReport::shard_walls`]) — what the whole run would cost on a
    /// host with one core per shard. `None` until the walls are filled in.
    /// O(n_shards).
    pub fn critical_path_secs(&self) -> Option<f64> {
        self.shard_walls.iter().copied().reduce(f64::max)
    }

    /// Cluster-level average USM (Eq. 5 over the summed tallies).
    pub fn average_usm(&self) -> f64 {
        self.counts.average_usm(&self.weights)
    }

    /// Queries routed to each shard (from the assignment; includes queries
    /// the shard then rejected — every routed query gets an outcome).
    pub fn queries_per_shard(&self) -> Vec<u64> {
        let mut per = vec![0u64; self.n_shards];
        for &s in &self.assignment {
            // lint: allow(D6) — assignment entries are < n_shards (merge checks)
            per[s] += 1;
        }
        per
    }

    /// The query-count-weighted mean of the per-shard average USMs,
    /// `Σ nᵢ·USMᵢ / Σ nᵢ` in f64. Equals [`ClusterReport::average_usm`] up
    /// to float associativity (the integer-tally identity underneath is
    /// exact and is what [`check_cluster_identity`] pins bit-level).
    pub fn query_weighted_shard_usm(&self) -> f64 {
        let total: u64 = self.shard_reports.iter().map(|r| r.counts.total()).sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .shard_reports
            .iter()
            .map(|r| r.counts.total() as f64 * r.counts.average_usm(&self.weights))
            .sum();
        weighted / total as f64
    }
}

/// Recount a shard's outcome tallies from the merged log.
fn recount(log: &[MergedOutcome], shard: Option<usize>) -> OutcomeCounts {
    let mut c = OutcomeCounts::default();
    for r in log {
        if shard.map_or(true, |s| s == r.shard) {
            c.record(r.outcome);
        }
    }
    c
}

/// The cluster USM identity (validate feature; DESIGN.md §3):
///
/// 1. recounting each shard's outcomes from the *merged* log reproduces
///    that shard's report tallies exactly (integers — the merge lost and
///    invented nothing),
/// 2. the cluster tally is the exact integer sum of the shard tallies,
/// 3. the cluster USM priced from the merged-log recount is bit-identical
///    to [`ClusterReport::average_usm`] (same tallies, same pricing code),
/// 4. the float query-weighted mean of per-shard USMs agrees with the
///    cluster USM to ~1e-9 relative (float associativity bounds, not bits),
/// 5. the merged log is strictly ordered by `(time, shard, seq)`.
pub fn check_cluster_identity(report: &ClusterReport) -> Result<(), String> {
    for (shard, sr) in report.shard_reports.iter().enumerate() {
        let rc = recount(&report.log, Some(shard));
        if rc != sr.counts {
            return Err(format!(
                "shard {shard}: merged-log recount {rc:?} != shard report {:?}",
                sr.counts
            ));
        }
    }
    let total = recount(&report.log, None);
    if total != report.counts {
        return Err(format!(
            "cluster tally {:?} != merged-log recount {total:?}",
            report.counts
        ));
    }
    let from_log = total.average_usm(&report.weights);
    if from_log.to_bits() != report.average_usm().to_bits() {
        return Err(format!(
            "cluster USM {} != merged-log USM {from_log} (bit mismatch)",
            report.average_usm()
        ));
    }
    let weighted = report.query_weighted_shard_usm();
    let scale = report.average_usm().abs().max(1.0);
    if (weighted - report.average_usm()).abs() > 1e-9 * scale {
        return Err(format!(
            "query-weighted shard USM {weighted} drifted from cluster USM {}",
            report.average_usm()
        ));
    }
    for w in report.log.windows(2) {
        // lint: allow(D6) — windows(2) yields exactly-2-element slices
        if (w[0].time, w[0].shard, w[0].seq) >= (w[1].time, w[1].shard, w[1].seq) {
            let r = &w[1]; // lint: allow(D6) — same 2-element window
            return Err(format!(
                "merged log out of order at t={:?} shard={} seq={}",
                r.time, r.shard, r.seq
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_report(policy: &str, outcomes: &[(u64, u64, u64, Outcome)]) -> SimReport {
        let mut counts = OutcomeCounts::default();
        let mut records = Vec::new();
        for &(seq, secs, qid, outcome) in outcomes {
            counts.record(outcome);
            records.push(OutcomeRecord {
                seq,
                time: SimTime::from_secs(secs),
                query: QueryId(qid),
                outcome,
            });
        }
        SimReport {
            policy: policy.to_string(),
            weights: UsmWeights::naive(),
            counts,
            class_counts: Vec::new(),
            query_accesses: Vec::new(),
            versions_arrived: Vec::new(),
            updates_applied: Vec::new(),
            hp_aborts: 0,
            query_restarts: 0,
            preemptions: 0,
            demand_refreshes: 0,
            cpu_busy: unit_core::time::SimDuration::ZERO,
            end_time: SimTime::from_secs(10),
            horizon: unit_core::time::SimDuration::from_secs(10),
            n_cpus: 1,
            signals: Default::default(),
            mean_dispatch_freshness: 1.0,
            timeline: Vec::new(),
            events_processed: 0,
            outcome_records: records,
            faults: Default::default(),
        }
    }

    #[test]
    fn merge_orders_by_time_then_shard_then_seq() {
        let s0 = shard_report(
            "A",
            &[(0, 5, 0, Outcome::Success), (1, 5, 2, Outcome::Rejected)],
        );
        let s1 = shard_report(
            "A",
            &[(0, 3, 1, Outcome::Success), (1, 5, 3, Outcome::Success)],
        );
        let r = ClusterReport::merge(
            RoutingPolicy::RoundRobin,
            UsmWeights::naive(),
            vec![0, 1, 0, 1],
            vec![s0, s1],
        );
        let keys: Vec<(u64, usize, u64)> =
            r.log.iter().map(|m| (m.time.0, m.shard, m.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // t=3 shard1 first, then the two t=5 shard0 records (seq order),
        // then t=5 shard1.
        let order: Vec<u64> = r.log.iter().map(|m| m.query.0).collect();
        assert_eq!(order, vec![1, 0, 2, 3]);
        assert_eq!(r.counts.total(), 4);
        assert_eq!(r.counts.success, 3);
        check_cluster_identity(&r).unwrap();
    }

    #[test]
    fn identity_check_catches_a_dropped_record() {
        let s0 = shard_report("A", &[(0, 1, 0, Outcome::Success)]);
        let s1 = shard_report("A", &[(0, 2, 1, Outcome::DeadlineMiss)]);
        let mut r = ClusterReport::merge(
            RoutingPolicy::LeastLoad,
            UsmWeights::low_high_cfm(),
            vec![0, 1],
            vec![s0, s1],
        );
        check_cluster_identity(&r).unwrap();
        r.log.pop();
        assert!(check_cluster_identity(&r).is_err());
    }

    #[test]
    fn partial_log_merges_in_total_order() {
        // Shard 1's history ends early (it crashed mid-run and recorded
        // nothing after t=4); shard 0 keeps going. The merge must still be
        // strictly ordered by (time, shard, seq) with shard 1's records
        // interleaved where their timestamps fall, not appended.
        let s0 = shard_report(
            "A",
            &[
                (0, 2, 0, Outcome::Success),
                (1, 5, 2, Outcome::Success),
                (2, 9, 4, Outcome::DeadlineMiss),
                (3, 12, 5, Outcome::Success),
            ],
        );
        let s1 = shard_report(
            "A",
            &[(0, 3, 1, Outcome::Success), (1, 4, 3, Outcome::Rejected)],
        );
        let r = ClusterReport::merge(
            RoutingPolicy::RoundRobin,
            UsmWeights::low_high_cfm(),
            vec![0, 1, 0, 1, 0, 0],
            vec![s0, s1],
        );
        let order: Vec<(u64, usize)> = r.log.iter().map(|m| (m.time.0, m.shard)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "short log interleaves, not appends");
        let queries: Vec<u64> = r.log.iter().map(|m| m.query.0).collect();
        assert_eq!(queries, vec![0, 1, 3, 2, 4, 5]);
        // The tally is exact despite the asymmetric logs.
        assert_eq!(r.counts.total(), 6);
        assert_eq!(r.counts.success, 4);
        assert_eq!(r.counts.rejected, 1);
        assert_eq!(r.counts.deadline_miss, 1);
        check_cluster_identity(&r).unwrap();
    }

    #[test]
    fn partial_log_with_an_empty_shard_still_checks_out() {
        // Degenerate partial log: one shard recorded nothing at all (every
        // query the dispatcher would have sent it was rejected upstream).
        let s0 = shard_report(
            "A",
            &[(0, 1, 0, Outcome::Success), (1, 2, 1, Outcome::DataStale)],
        );
        let s1 = shard_report("A", &[]);
        let r = ClusterReport::merge(
            RoutingPolicy::LeastLoad,
            UsmWeights::low_high_cfm(),
            vec![0, 0],
            vec![s0, s1],
        );
        assert_eq!(r.counts.total(), 2);
        assert_eq!(r.queries_per_shard(), vec![2, 0]);
        assert!(r.log.iter().all(|m| m.shard == 0));
        check_cluster_identity(&r).unwrap();
    }

    #[test]
    fn same_instant_cross_shard_ties_break_by_shard_then_seq() {
        // All four outcomes at t=7: the merged order must be shard 0's
        // records (by seq), then shard 1's (by seq) — the unique key the
        // docs promise.
        let s0 = shard_report(
            "A",
            &[(0, 7, 2, Outcome::Success), (1, 7, 0, Outcome::Success)],
        );
        let s1 = shard_report(
            "A",
            &[(0, 7, 3, Outcome::Success), (1, 7, 1, Outcome::Success)],
        );
        let r = ClusterReport::merge(
            RoutingPolicy::FreshnessAware,
            UsmWeights::naive(),
            vec![0, 1, 0, 1],
            vec![s0, s1],
        );
        let keys: Vec<(usize, u64)> = r.log.iter().map(|m| (m.shard, m.seq)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(
            r.log.iter().map(|m| m.query.0).collect::<Vec<_>>(),
            vec![2, 0, 3, 1]
        );
        check_cluster_identity(&r).unwrap();
    }

    #[test]
    fn replica_lanes_sort_after_every_shard_lane() {
        let n = 4;
        let mut lanes = vec![ClusterLane::Dispatcher];
        lanes.extend((0..n).map(ClusterLane::Shard));
        lanes.extend((0..n).map(ClusterLane::Replica));
        let indices: Vec<u64> = lanes.iter().map(|l| l.index(n)).collect();
        // Strictly increasing: dispatcher, shards, then replica lanes — the
        // lane extension of the (time, shard, seq) merge key.
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ClusterLane::Dispatcher.index(n), 0);
        assert_eq!(ClusterLane::Shard(3).index(n), 4);
        assert_eq!(ClusterLane::Replica(0).index(n), 5);
        assert_eq!(ClusterLane::Replica(3).index(n), 8);
    }

    #[test]
    fn weighted_mean_tracks_cluster_usm() {
        let s0 = shard_report(
            "A",
            &[
                (0, 1, 0, Outcome::Success),
                (1, 2, 1, Outcome::Success),
                (2, 3, 2, Outcome::Rejected),
            ],
        );
        let s1 = shard_report("A", &[(0, 1, 3, Outcome::DataStale)]);
        let r = ClusterReport::merge(
            RoutingPolicy::FreshnessAware,
            UsmWeights::low_high_cfm(),
            vec![0, 0, 0, 1],
            vec![s0, s1],
        );
        assert!((r.query_weighted_shard_usm() - r.average_usm()).abs() < 1e-12);
        assert_eq!(r.queries_per_shard(), vec![3, 1]);
    }
}
