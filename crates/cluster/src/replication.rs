//! Per-item leader/follower replication with freshness-aware read routing
//! (DESIGN.md §3b).
//!
//! Partitioning alone (`item mod N`) means every read lands on the one
//! shard that applies the item's updates: reads always see leader-fresh
//! data and the freshness/load tradeoff the paper motivates never reaches
//! the routing layer. Replication changes that: each item gets a **leader**
//! (its modulo owner, unchanged) plus `factor - 1` **followers** on a
//! strided ring ([`unit_workload::ReplicaMap`]). Updates apply at the
//! leader and *propagate* to followers over the existing delayed
//! update-stream machinery in `unit_faults`: each follower's copy of the
//! item's update streams runs under seeded, windowed
//! [`StreamFaultKind::Delay`] intervals, so a version emitted at `e`
//! is applied on the follower only at `e + delay(window(e))` — a
//! deterministic propagation schedule in virtual time, not new plumbing.
//! The engine observes the version's *arrival* at `e` (the follower is
//! honestly stale while the version is in transit) and spawns the
//! application transaction at the delayed instant.
//!
//! ## Dispatcher-side lag bound
//!
//! The dispatcher routes sequentially, before any shard executes, so it
//! cannot see true follower state. It bounds a follower's staleness with
//! pure trace arithmetic: every per-window delay is at most
//! `lag.base + lag.jitter`, so every version emitted at or before
//! `t - max_lag` has been delivered by `t`. The **claimed in-transit
//! count** `emitted(t) - emitted(t - max_lag)` therefore upper-bounds the
//! versions still in flight, and the follower's lag-based freshness is at
//! least `Qu = 1/(1 + claimed)` ([`unit_core::freshness::lag_freshness`]).
//! A read may be served by a follower only when that bound clears the
//! query's `qf_i` — so a follower read is never staler than the bound
//! claims (the soundness property the proptest suite pins).
//!
//! ## Promotion
//!
//! When an item's leader is paused by a fault plan at routing time, the
//! **freshest live follower** — minimal claimed in-transit count, ties to
//! the lowest shard id — is promoted for the item: it joins the candidate
//! pool regardless of the `Qu` gate (it is the best available authority).
//! Promotion is a pure function of `(placement, lag schedule, plan, t)`,
//! so it is unique and reproducible across reruns and worker counts.

use crate::merge::{PromotionRecord, PropagationRecord, ReplicationReport};
use crate::routing::{FreshnessEstimate, HostView};
use crate::ClusterConfigError;
use unit_core::freshness::max_tolerable_udrop;
use unit_core::split_seed;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QuerySpec, Trace};
use unit_faults::{StreamFault, StreamFaultKind};
use unit_sim::HealthState;
use unit_workload::ReplicaMap;

/// Seed domain separating the propagation-lag draws from the per-shard
/// policy seeds (`split_seed(seed, shard)` with `shard < MAX_WORKERS`).
const LAG_SEED_DOMAIN: u64 = 0x5245_504C_5F4C_4147; // "REPL_LAG"

/// The deterministic propagation-lag model: the horizon is chopped into
/// `windows` equal spans, and each `(item, follower, window)` triple gets a
/// seeded delay in `[base, base + jitter]`. Every version emitted in that
/// window is applied on the follower after exactly that delay, so the
/// worst case over the whole run is `base + jitter` — the bound the
/// dispatcher routes against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagationLag {
    /// Minimum replication delay applied to every propagated version.
    pub base: SimDuration,
    /// Seeded extra delay, drawn per `(item, follower, window)` in
    /// `[0, jitter]`.
    pub jitter: SimDuration,
    /// Jitter windows the horizon is divided into (≥ 1).
    pub windows: usize,
}

impl PropagationLag {
    /// Zero lag: followers apply every version at its emission instant.
    pub fn none() -> PropagationLag {
        PropagationLag {
            base: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            windows: 1,
        }
    }

    /// A constant delay for every propagated version.
    pub fn fixed(base: SimDuration) -> PropagationLag {
        PropagationLag {
            base,
            jitter: SimDuration::ZERO,
            windows: 1,
        }
    }

    /// A jittered schedule: per-window delays in `[base, base + jitter]`.
    pub fn jittered(base: SimDuration, jitter: SimDuration, windows: usize) -> PropagationLag {
        PropagationLag {
            base,
            jitter,
            windows,
        }
    }

    /// The largest delay any version can experience. O(1).
    pub fn max_lag(&self) -> SimDuration {
        SimDuration(self.base.0.saturating_add(self.jitter.0))
    }

    /// True when no version is ever delayed. O(1).
    pub fn is_zero(&self) -> bool {
        self.max_lag().is_zero()
    }
}

/// How an item's followers are placed relative to its leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPlacement {
    /// Followers on the next shards around the ring (stride 1).
    Ring,
    /// Follower slot `k` at `(leader + k·stride) mod n_shards`. Strides
    /// sharing a factor with `n_shards` can revisit a shard — rejected as
    /// [`ClusterConfigError::ReplicaPlacementCollision`].
    Strided {
        /// Ring distance between consecutive replicas of one item.
        stride: usize,
    },
}

impl ReplicaPlacement {
    /// The ring stride this placement uses. O(1).
    pub fn stride(&self) -> usize {
        match *self {
            ReplicaPlacement::Ring => 1,
            ReplicaPlacement::Strided { stride } => stride,
        }
    }
}

/// Replication shape: how many replicas each item has, where the
/// followers sit, and how update propagation lags behind the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Replicas per item, leader included (≥ 1; 1 = partition-only).
    pub factor: usize,
    /// Follower placement around the ring.
    pub placement: ReplicaPlacement,
    /// The deterministic propagation-lag schedule.
    pub lag: PropagationLag,
}

impl ReplicationConfig {
    /// `factor` replicas per item, ring placement, zero propagation lag.
    pub fn new(factor: usize) -> ReplicationConfig {
        ReplicationConfig {
            factor,
            placement: ReplicaPlacement::Ring,
            lag: PropagationLag::none(),
        }
    }

    /// Set the follower placement.
    #[must_use]
    pub fn with_placement(mut self, placement: ReplicaPlacement) -> ReplicationConfig {
        self.placement = placement;
        self
    }

    /// Set the propagation-lag schedule.
    #[must_use]
    pub fn with_lag(mut self, lag: PropagationLag) -> ReplicationConfig {
        self.lag = lag;
        self
    }

    /// Check the replication parameters against a cluster of `n_shards`.
    /// O(factor).
    pub fn validate(&self, n_shards: usize) -> Result<(), ClusterConfigError> {
        if self.factor == 0 {
            return Err(ClusterConfigError::ZeroReplicationFactor);
        }
        if self.factor > n_shards {
            return Err(ClusterConfigError::ReplicationFactorExceedsShards {
                factor: self.factor,
                n_shards,
            });
        }
        let stride = self.placement.stride();
        if let Some(slot) = ReplicaMap::collision_slot(n_shards, self.factor, stride) {
            return Err(ClusterConfigError::ReplicaPlacementCollision {
                slot,
                stride,
                n_shards,
            });
        }
        if self.lag.windows == 0 {
            return Err(ClusterConfigError::ZeroPropagationWindows);
        }
        Ok(())
    }

    /// The placement map over `n_shards` shards. The config must have
    /// passed [`ReplicationConfig::validate`] for this cluster size.
    pub fn replica_map(&self, n_shards: usize) -> ReplicaMap {
        ReplicaMap::new(n_shards, self.factor, self.placement.stride())
    }
}

/// The run-scoped replication state: placement, the seeded per-window
/// delay table, and the emission arithmetic the dispatcher's lag bounds
/// are computed from. Built once per run in the sequential prologue; pure
/// function of `(trace, n_shards, config, seed, horizon)`.
pub struct ReplicaSets {
    map: ReplicaMap,
    lag: PropagationLag,
    /// Emission arithmetic over the trace's update schedules (baseline
    /// unused here — only `versions` is consulted).
    emit: FreshnessEstimate,
    /// `(first_arrival, period)` per item, for enumerating emissions.
    streams: Vec<Vec<(SimTime, SimDuration)>>,
    /// Per `(item, follower slot - 1, window)` delay, flattened.
    delays: Vec<SimDuration>,
    n_items: usize,
    /// Window length in time units; windows tile `[0, span)`.
    win_len: u64,
    /// One past the horizon instant: emissions stop at the horizon.
    span: u64,
}

impl ReplicaSets {
    /// Build the replication state for one run. O(n_items · factor ·
    /// windows + N_u).
    pub fn new(
        trace: &Trace,
        n_shards: usize,
        cfg: &ReplicationConfig,
        seed: u64,
        horizon: SimDuration,
    ) -> ReplicaSets {
        let map = cfg.replica_map(n_shards);
        let mut streams = vec![Vec::new(); trace.n_items];
        for u in &trace.updates {
            // lint: allow(D6) — trace invariant: update items index < n_items
            streams[u.item.index()].push((u.first_arrival, u.period));
        }
        let windows = cfg.lag.windows;
        let span = horizon.0.saturating_add(1);
        let win_len = span.div_ceil(windows as u64).max(1);
        let slots = cfg.factor.saturating_sub(1);
        let lag_seed = split_seed(seed, LAG_SEED_DOMAIN);
        let jitter_units = cfg.lag.jitter.0;
        let delays = (0..trace.n_items * slots * windows)
            .map(|key| {
                let extra = if jitter_units == 0 {
                    0
                } else {
                    // Draws can't overflow the delay: extra <= jitter.
                    split_seed(lag_seed, key as u64) % (jitter_units + 1)
                };
                SimDuration(cfg.lag.base.0.saturating_add(extra))
            })
            .collect();
        ReplicaSets {
            map,
            lag: cfg.lag,
            emit: FreshnessEstimate::new(trace),
            streams,
            delays,
            n_items: trace.n_items,
            win_len,
            span,
        }
    }

    /// The placement map. O(1).
    pub fn map(&self) -> &ReplicaMap {
        &self.map
    }

    /// Replicas per item. O(1).
    pub fn factor(&self) -> usize {
        self.map.factor()
    }

    /// The lag window containing instant `t`. O(1).
    fn window_of(&self, t: SimTime) -> usize {
        let windows = self.lag.windows;
        ((t.0 / self.win_len) as usize).min(windows - 1)
    }

    /// Propagation delay for versions of `d` emitted in window `w`, bound
    /// for follower slot `k` (`1 <= k < factor`). O(1).
    fn delay(&self, d: DataId, k: usize, w: usize) -> SimDuration {
        let slots = self.map.factor() - 1;
        // lint: allow(D6) — (d, k, w) stay in the n_items x slots x windows cube the table spans
        self.delays[(d.index() * slots + (k - 1)) * self.lag.windows + w]
    }

    /// Versions of `d` emitted up to and including `t` (leader-side
    /// version count). Emissions stop at the horizon: queries past it
    /// never execute, so the count saturates there. O(streams of d).
    pub fn emitted(&self, d: DataId, t: SimTime) -> u64 {
        self.emit
            .versions(d.index(), SimTime(t.0.min(self.span - 1)))
    }

    /// Versions of `d` *applied* at follower slot `k` by `t`: emissions
    /// whose windowed delay has elapsed. O(windows · streams of d).
    pub fn delivered(&self, d: DataId, k: usize, t: SimTime) -> u64 {
        let mut total = 0u64;
        for w in 0..self.lag.windows {
            let start = (w as u64).saturating_mul(self.win_len);
            if start >= self.span {
                break;
            }
            let end_incl = start
                .saturating_add(self.win_len)
                .min(self.span)
                .saturating_sub(1);
            let delay = self.delay(d, k, w);
            let Some(reach) = t.0.checked_sub(delay.0) else {
                continue; // nothing from this window has landed yet
            };
            let upper = end_incl.min(reach);
            if upper < start {
                continue;
            }
            let below = if start == 0 {
                0
            } else {
                self.emit.versions(d.index(), SimTime(start - 1))
            };
            total += self.emit.versions(d.index(), SimTime(upper)) - below;
        }
        total
    }

    /// The dispatcher's **claimed** upper bound on versions of `d` still
    /// in transit to any follower at `t`: every per-window delay is at
    /// most `max_lag`, so versions emitted at or before `t - max_lag` have
    /// landed. O(streams of d).
    pub fn claimed_transit(&self, d: DataId, t: SimTime) -> u64 {
        let max_lag = self.lag.max_lag();
        // A version emitted at `e` settles by `e + max_lag`; before
        // `max_lag` has elapsed at all, nothing can have settled.
        let settled = match t.0.checked_sub(max_lag.0) {
            Some(s) => self.emitted(d, SimTime(s)),
            None => 0,
        };
        self.emitted(d, t) - settled
    }

    /// The `Qu` freshness bound the dispatcher advertises for a follower
    /// read of `d` at `t`: `1/(1 + claimed_transit)`. O(streams of d).
    pub fn qu_bound(&self, d: DataId, t: SimTime) -> f64 {
        unit_core::freshness::lag_freshness(self.claimed_transit(d, t))
    }

    /// True when shard `s` may serve `q`'s reads at `now` under the `Qu`
    /// gate: every read-set item `s` *follows* must have a claimed
    /// in-transit count within the query's tolerable `Udrop`
    /// ([`max_tolerable_udrop`]); items `s` leads are always admissible.
    /// O(A · (factor + streams)).
    fn follower_admissible(&self, q: &QuerySpec, s: usize, now: SimTime) -> bool {
        let tolerable = max_tolerable_udrop(q.freshness_req);
        q.items
            .iter()
            .filter(|&&d| self.map.follows(s, d))
            .all(|&d| self.claimed_transit(d, now) <= tolerable)
    }

    /// The candidate pool for `q` at `now`, health-blind: leaders of
    /// read-set items (always admissible) plus followers hosting at least
    /// one read-set item whose followed items all clear the `Qu` gate.
    /// Ascending and deduplicated; with `factor == 1` this is exactly
    /// [`unit_workload::ItemPartition::eligible_shards`]. O(A · factor ·
    /// (A + streams) + n_shards).
    pub fn candidate_pool(&self, q: &QuerySpec, now: SimTime) -> Vec<usize> {
        let n = self.map.n_shards();
        let mut seen = vec![false; n];
        for &d in &q.items {
            // lint: allow(D6) — leader() < n_shards by ReplicaMap construction
            seen[self.map.leader(d)] = true;
        }
        for &d in &q.items {
            for k in 1..self.map.factor() {
                let s = self.map.follower(d, k);
                // lint: allow(D6) — follower() < n_shards by ReplicaMap construction
                if !seen[s] && self.follower_admissible(q, s, now) {
                    seen[s] = true; // lint: allow(D6) — s < n_shards as above
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(s, &hit)| hit.then_some(s))
            .collect()
    }

    /// The fault-aware candidate pool: the health-blind candidates plus
    /// **promoted** followers for read-set items whose leader is paused at
    /// `now` (freshest live follower — minimal claimed transit, ties to
    /// the lowest shard id — admitted regardless of the `Qu` gate), then
    /// the same two-tier preference as plain failover: fully-up
    /// candidates if any, otherwise the non-paused ones. Returns the pool
    /// (ascending) and the promotions that shaped it, in read-set order.
    /// O(A · factor · (A + streams) + n_shards).
    pub fn pool_with_health(
        &self,
        q: &QuerySpec,
        now: SimTime,
        health: impl Fn(usize) -> HealthState,
    ) -> (Vec<usize>, Vec<PromotionRecord>) {
        let n = self.map.n_shards();
        let mut seen = vec![false; n];
        for &d in &q.items {
            // lint: allow(D6) — leader() < n_shards by ReplicaMap construction
            seen[self.map.leader(d)] = true;
        }
        for &d in &q.items {
            for k in 1..self.map.factor() {
                let s = self.map.follower(d, k);
                // lint: allow(D6) — follower() < n_shards by ReplicaMap construction
                if !seen[s] && self.follower_admissible(q, s, now) {
                    seen[s] = true; // lint: allow(D6) — s < n_shards as above
                }
            }
        }
        let mut promotions = Vec::new();
        for &d in &q.items {
            let leader = self.map.leader(d);
            if !health(leader).queries_paused() {
                continue;
            }
            let promoted = (1..self.map.factor())
                .map(|k| self.map.follower(d, k))
                .filter(|&s| !health(s).queries_paused())
                .map(|s| (self.claimed_transit(d, now), s))
                .min();
            if let Some((_, s)) = promoted {
                seen[s] = true; // lint: allow(D6) — follower() < n_shards
                promotions.push(PromotionRecord {
                    time: now,
                    item: d,
                    from: leader,
                    to: s,
                });
            }
        }
        let candidates: Vec<usize> = seen
            .iter()
            .enumerate()
            .filter_map(|(s, &hit)| hit.then_some(s))
            .collect();
        let up: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&s| health(s) == HealthState::Up)
            .collect();
        let pool = if up.is_empty() {
            candidates
                .iter()
                .copied()
                .filter(|&s| !health(s).queries_paused())
                .collect()
        } else {
            up
        };
        (pool, promotions)
    }

    /// The propagation fault schedule for shard `s`: one
    /// [`StreamFaultKind::Delay`] interval per non-zero-delay window of
    /// every item `s` follows, sorted by `(item, start)`. Zero-delay
    /// windows are omitted entirely so a zero-lag (or factor-1) schedule
    /// is empty and the shard runs byte-identically to an unhooked one.
    /// O(n_items · factor · windows).
    pub fn propagation_faults(&self, s: usize) -> Vec<StreamFault> {
        let mut faults = Vec::new();
        for item in 0..self.n_items {
            let d = DataId(item as u32);
            let Some(k) = (1..self.map.factor()).find(|&k| self.map.follower(d, k) == s) else {
                continue;
            };
            for w in 0..self.lag.windows {
                let start = (w as u64).saturating_mul(self.win_len);
                if start >= self.span {
                    break;
                }
                let end = start.saturating_add(self.win_len).min(self.span);
                let delay = self.delay(d, k, w);
                if delay.is_zero() {
                    continue;
                }
                faults.push(StreamFault {
                    item: d,
                    start: SimTime(start),
                    end: SimTime(end),
                    kind: StreamFaultKind::Delay(delay),
                });
            }
        }
        faults
    }

    /// The merged propagation log: one record per `(item, follower,
    /// version emitted within the horizon)`, ordered by `(delivery time,
    /// follower lane, per-lane seq)` — the replica pseudo-lane total order
    /// `merge.rs` documents. Pure arithmetic; worker-count invariant by
    /// construction. O(V · factor · log V) in the total emitted-version
    /// count V.
    pub fn propagation_log(&self) -> Vec<PropagationRecord> {
        let mut lanes: Vec<Vec<PropagationRecord>> = vec![Vec::new(); self.map.n_shards()];
        for item in 0..self.n_items {
            let d = DataId(item as u32);
            // All emissions of d within the horizon, in (time, stream) order.
            let mut emissions: Vec<SimTime> = Vec::new();
            // lint: allow(D6) — item < n_items == streams.len() by construction
            for &(first, period) in &self.streams[item] {
                let mut t = first;
                while t.0 < self.span {
                    emissions.push(t);
                    let Some(next) = t.0.checked_add(period.0) else {
                        break;
                    };
                    t = SimTime(next);
                }
            }
            emissions.sort_unstable();
            let leader = self.map.leader(d);
            for k in 1..self.map.factor() {
                let s = self.map.follower(d, k);
                for (v, &e) in emissions.iter().enumerate() {
                    let delay = self.delay(d, k, self.window_of(e));
                    // lint: allow(D6) — follower() < n_shards == lanes.len()
                    lanes[s].push(PropagationRecord {
                        time: SimTime(e.0.saturating_add(delay.0)),
                        item: d,
                        leader,
                        follower: s,
                        version: v as u64 + 1,
                        emitted: e,
                    });
                }
            }
        }
        let mut log = Vec::new();
        for lane in &mut lanes {
            // Per-lane order: delivery time, then item, then version —
            // unique, so the per-lane seq below is well-defined.
            lane.sort_unstable_by_key(|r| (r.time, r.item, r.version));
            log.extend(lane.iter().copied());
        }
        // (time, follower-lane, per-lane position) — the lane extension of
        // the cluster merge key. Sorting by (time, follower, item, version)
        // reproduces it because per-lane order is time-major already.
        log.sort_by_key(|r| (r.time, r.follower, r.item, r.version));
        log
    }
}

impl HostView for ReplicaSets {
    fn staleness(&self, est: &FreshnessEstimate, d: DataId, s: usize, now: SimTime) -> Option<u64> {
        if self.map.leader(d) == s {
            Some(est.udrop(d.index(), now))
        } else if self.map.follows(s, d) {
            // A follower lags the leader estimate by what is in transit.
            Some(
                est.udrop(d.index(), now)
                    .saturating_add(self.claimed_transit(d, now)),
            )
        } else {
            None
        }
    }

    fn refreshes(&self, s: usize, d: DataId) -> bool {
        // Only a leader read refreshes the dispatcher's estimate: a
        // follower read neither updates the leader nor catches the
        // follower up beyond its propagation schedule.
        self.map.leader(d) == s
    }
}

/// The replication-consistency invariant (validate feature; DESIGN.md
/// §3b):
///
/// 1. **follower ≤ leader** — at every control tick, every follower's
///    delivered version count is at most the leader's emitted count
///    (propagation never invents versions),
/// 2. **bound soundness** — the actual in-transit count
///    (`emitted - delivered`) never exceeds the dispatcher's claimed
///    bound at that tick,
/// 3. **exact recount** — the propagation log holds exactly one record
///    per `(item, follower, version emitted within the horizon)`, each at
///    the delivery instant the windowed schedule dictates, and is
///    strictly ordered by `(time, follower lane, item, version)`.
pub fn check_replication_consistency(
    sets: &ReplicaSets,
    rep: &ReplicationReport,
    tick: SimDuration,
    horizon: SimDuration,
) -> Result<(), String> {
    let step = tick.0.max(1);
    for item in 0..sets.n_items {
        let d = DataId(item as u32);
        for k in 1..sets.map.factor() {
            let mut t = 0u64;
            loop {
                let now = SimTime(t);
                let emitted = sets.emitted(d, now);
                let delivered = sets.delivered(d, k, now);
                if delivered > emitted {
                    return Err(format!(
                        "item {item} follower slot {k} at t={t}: delivered {delivered} > emitted {emitted}"
                    ));
                }
                let claimed = sets.claimed_transit(d, now);
                if emitted - delivered > claimed {
                    return Err(format!(
                        "item {item} follower slot {k} at t={t}: in-transit {} exceeds the claimed bound {claimed}",
                        emitted - delivered
                    ));
                }
                if t >= horizon.0 {
                    break;
                }
                t = t.saturating_add(step).min(horizon.0);
            }
        }
    }
    // Exact recount of the propagation log against the schedule.
    let mut expected = 0usize;
    for item in 0..sets.n_items {
        let d = DataId(item as u32);
        let horizon_end = SimTime(sets.span - 1);
        expected += sets.emitted(d, horizon_end) as usize * (sets.map.factor() - 1);
    }
    if rep.propagation.len() != expected {
        return Err(format!(
            "propagation log holds {} records, the schedule dictates {expected}",
            rep.propagation.len()
        ));
    }
    for r in &rep.propagation {
        if sets.map.leader(r.item) != r.leader || !sets.map.follows(r.follower, r.item) {
            return Err(format!(
                "propagation record for item {} names leader {} -> follower {}, not a placement edge",
                r.item.0, r.leader, r.follower
            ));
        }
        let Some(k) = (1..sets.map.factor()).find(|&k| sets.map.follower(r.item, k) == r.follower)
        else {
            return Err(format!("no follower slot for record {r:?}"));
        };
        let delay = sets.delay(r.item, k, sets.window_of(r.emitted));
        if r.time.0 != r.emitted.0.saturating_add(delay.0) {
            return Err(format!(
                "record {r:?} delivered at {:?}, schedule dictates {:?}",
                r.time,
                SimTime(r.emitted.0.saturating_add(delay.0))
            ));
        }
    }
    for w in rep.propagation.windows(2) {
        let key = |r: &PropagationRecord| (r.time, r.follower, r.item, r.version);
        // lint: allow(D6) — windows(2) yields exactly-2-element slices
        if key(&w[0]) >= key(&w[1]) {
            let r = &w[1]; // lint: allow(D6) — same 2-element window
            return Err(format!(
                "propagation log out of order at {:?} follower {}",
                r.time, r.follower
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::types::{QueryId, UpdateSpec, UpdateStreamId};

    fn trace() -> Trace {
        Trace {
            n_items: 4,
            queries: vec![QuerySpec {
                id: QueryId(0),
                arrival: SimTime::from_secs(5),
                items: vec![DataId(1), DataId(2)],
                exec_time: SimDuration::from_secs(1),
                relative_deadline: SimDuration::from_secs(10),
                freshness_req: 0.9,
                pref_class: 0,
            }],
            updates: vec![
                UpdateSpec {
                    id: UpdateStreamId(0),
                    item: DataId(1),
                    period: SimDuration::from_secs(10),
                    exec_time: SimDuration::from_secs(1),
                    first_arrival: SimTime::ZERO,
                },
                UpdateSpec {
                    id: UpdateStreamId(1),
                    item: DataId(2),
                    period: SimDuration::from_secs(4),
                    exec_time: SimDuration::from_secs(1),
                    first_arrival: SimTime::from_secs(2),
                },
            ],
        }
    }

    fn sets(factor: usize, lag: PropagationLag) -> ReplicaSets {
        let cfg = ReplicationConfig::new(factor).with_lag(lag);
        ReplicaSets::new(&trace(), 4, &cfg, 7, SimDuration::from_secs(60))
    }

    #[test]
    fn config_validation_catches_bad_shapes() {
        assert_eq!(
            ReplicationConfig::new(0).validate(4),
            Err(ClusterConfigError::ZeroReplicationFactor)
        );
        assert_eq!(
            ReplicationConfig::new(5).validate(4),
            Err(ClusterConfigError::ReplicationFactorExceedsShards {
                factor: 5,
                n_shards: 4
            })
        );
        assert_eq!(
            ReplicationConfig::new(3)
                .with_placement(ReplicaPlacement::Strided { stride: 2 })
                .validate(4),
            Err(ClusterConfigError::ReplicaPlacementCollision {
                slot: 2,
                stride: 2,
                n_shards: 4
            })
        );
        let mut zero_windows = ReplicationConfig::new(2);
        zero_windows.lag.windows = 0;
        assert_eq!(
            zero_windows.validate(4),
            Err(ClusterConfigError::ZeroPropagationWindows)
        );
        assert_eq!(ReplicationConfig::new(3).validate(4), Ok(()));
        assert_eq!(
            ReplicationConfig::new(3)
                .with_placement(ReplicaPlacement::Strided { stride: 2 })
                .validate(5),
            Ok(())
        );
    }

    #[test]
    fn zero_lag_delivers_at_emission_and_claims_nothing() {
        let s = sets(2, PropagationLag::none());
        let d = DataId(2);
        for t in [0, 2, 6, 13, 60] {
            let now = SimTime::from_secs(t);
            assert_eq!(s.delivered(d, 1, now), s.emitted(d, now), "t={t}");
            assert_eq!(s.claimed_transit(d, now), 0);
            assert_eq!(s.qu_bound(d, now), 1.0);
        }
        // Zero-delay windows are omitted: the schedule is empty.
        for shard in 0..4 {
            assert!(s.propagation_faults(shard).is_empty());
        }
    }

    #[test]
    fn fixed_lag_bounds_are_sound_and_tight() {
        let lag = PropagationLag::fixed(SimDuration::from_secs(5));
        let s = sets(2, lag);
        let d = DataId(2); // emissions at 2, 6, 10, ...
                           // At t=7: emitted {2,6} = 2; delivered = emissions <= 2s -> 1.
        let now = SimTime::from_secs(7);
        assert_eq!(s.emitted(d, now), 2);
        assert_eq!(s.delivered(d, 1, now), 1);
        // Claimed bound: emitted(7) - emitted(2) = 1 — exactly in transit.
        assert_eq!(s.claimed_transit(d, now), 1);
        assert_eq!(s.qu_bound(d, now), 0.5);
    }

    #[test]
    fn jittered_delays_stay_in_range_and_are_deterministic() {
        let lag = PropagationLag::jittered(SimDuration::from_secs(2), SimDuration::from_secs(6), 4);
        let a = sets(3, lag);
        let b = sets(3, lag);
        for item in 0..4 {
            let d = DataId(item);
            for k in 1..3 {
                for w in 0..4 {
                    let delay = a.delay(d, k, w);
                    assert!(delay >= SimDuration::from_secs(2));
                    assert!(delay <= lag.max_lag());
                    assert_eq!(delay, b.delay(d, k, w), "same seed, same schedule");
                }
            }
        }
        // Soundness at arbitrary instants: in-transit <= claimed bound.
        let d = DataId(2);
        for t in 0..80 {
            let now = SimTime::from_secs(t);
            for k in 1..3 {
                let transit = a.emitted(d, now) - a.delivered(d, k, now);
                assert!(
                    transit <= a.claimed_transit(d, now),
                    "t={t} k={k}: {transit} > {}",
                    a.claimed_transit(d, now)
                );
            }
        }
    }

    #[test]
    fn candidate_pool_degenerates_to_eligible_shards_at_factor_one() {
        let s = sets(1, PropagationLag::none());
        let t = trace();
        let q = &t.queries[0];
        let partition = unit_workload::ItemPartition::new(4);
        assert_eq!(
            s.candidate_pool(q, q.arrival),
            partition.eligible_shards(&q.items)
        );
    }

    #[test]
    fn qu_gate_admits_fresh_followers_and_bars_stale_ones() {
        // Fixed 5 s lag, factor 2 on 4 shards: item 1 -> leader 1,
        // follower 2; item 2 -> leader 2, follower 3.
        let s = sets(2, PropagationLag::fixed(SimDuration::from_secs(5)));
        let t = trace();
        let q = &t.queries[0]; // reads {1, 2}, qf 0.9 (tolerable Udrop 0)
                               // At t=5: item 1 claims transit 1 (emitted at 0 not yet settled...
                               // emitted(5)={0}, emitted(0)={0} -> 0 in transit); item 2 claims
                               // emitted(5)={2}=1 minus emitted(0)=0 -> 1 in transit.
                               // Shard 2 follows nothing in the read set? It LEADS item 2 and
                               // follows item 1 -> transit(item1, 5) = 0 -> admissible.
                               // Shard 3 follows item 2 -> transit 1 > 0 -> barred.
        let pool = s.candidate_pool(q, q.arrival);
        assert_eq!(pool, vec![1, 2]);
        // A lenient query tolerates one in-transit version: shard 3 joins.
        let mut lenient = q.clone();
        lenient.freshness_req = 0.5;
        assert_eq!(s.candidate_pool(&lenient, q.arrival), vec![1, 2, 3]);
    }

    #[test]
    fn promotion_picks_the_freshest_live_follower_deterministically() {
        let s = sets(3, PropagationLag::fixed(SimDuration::from_secs(5)));
        let t = trace();
        let q = &t.queries[0]; // reads {1, 2}; leaders 1 and 2
        let down = |paused: &'static [usize]| {
            move |shard: usize| {
                if paused.contains(&shard) {
                    HealthState::Down {
                        until: SimTime::from_secs(100),
                    }
                } else {
                    HealthState::Up
                }
            }
        };
        // Item 1's leader (shard 1) down: followers are 2 and 3, equal
        // claimed transit -> lowest id (2) is promoted.
        let (pool, promos) = s.pool_with_health(q, q.arrival, down(&[1]));
        assert_eq!(promos.len(), 1);
        assert_eq!(promos[0].item, DataId(1));
        assert_eq!((promos[0].from, promos[0].to), (1, 2));
        assert!(pool.contains(&2));
        assert!(!pool.contains(&1));
        // Same instant, same plan -> identical promotion (uniqueness).
        let (_, again) = s.pool_with_health(q, q.arrival, down(&[1]));
        assert_eq!(promos, again);
        // If shard 2 is down too, the next follower (3) takes over.
        let (_, promos2) = s.pool_with_health(q, q.arrival, down(&[1, 2]));
        assert_eq!((promos2[0].from, promos2[0].to), (1, 3));
    }

    #[test]
    fn propagation_faults_cover_followed_items_only() {
        let lag = PropagationLag::jittered(SimDuration::from_secs(1), SimDuration::from_secs(3), 2);
        let s = sets(2, lag);
        // Shard 2 follows item 1 (leader 1) only.
        let faults = s.propagation_faults(2);
        assert!(!faults.is_empty());
        assert!(faults.iter().all(|f| f.item == DataId(1)));
        assert!(faults.iter().all(
            |f| matches!(f.kind, StreamFaultKind::Delay(d) if d >= SimDuration::from_secs(1))
        ));
        // Sorted, non-overlapping: a real FaultSchedule accepts it.
        let schedule = unit_faults::FaultSchedule {
            stream_faults: faults,
            ..unit_faults::FaultSchedule::default()
        };
        schedule.validate().unwrap();
        // Leaders get no propagation faults for items they lead.
        assert!(s.propagation_faults(1).iter().all(|f| f.item != DataId(1)));
    }

    #[test]
    fn propagation_log_recounts_exactly() {
        let lag = PropagationLag::jittered(SimDuration::from_secs(2), SimDuration::from_secs(4), 3);
        let s = sets(3, lag);
        let log = s.propagation_log();
        let rep = ReplicationReport {
            factor: 3,
            propagation: log,
            routes: Vec::new(),
            promotions: Vec::new(),
        };
        check_replication_consistency(
            &s,
            &rep,
            SimDuration::from_secs(5),
            SimDuration::from_secs(60),
        )
        .unwrap();
        // Tampering is caught: drop a record.
        let mut short = rep.propagation.clone();
        short.pop();
        let bad = ReplicationReport {
            propagation: short,
            ..rep
        };
        assert!(check_replication_consistency(
            &s,
            &bad,
            SimDuration::from_secs(5),
            SimDuration::from_secs(60)
        )
        .is_err());
    }
}
