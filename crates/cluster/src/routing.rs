//! The cluster dispatcher: deterministic query-to-shard routing.
//!
//! Routing runs as a **sequential prologue** before any shard executes:
//! the dispatcher walks the global query trace in arrival order and
//! produces one shard index per query. Updates are not routed — they
//! always follow their item to its owner shard. Because the dispatcher
//! never observes shard execution (it works from the trace and its own
//! deterministic state), the assignment is a pure function of
//! `(trace, n_shards, routing policy)` — the first half of the cluster's
//! bit-reproducibility argument (DESIGN.md §3).
//!
//! A query is only ever routed among its *eligible* shards: the owners of
//! at least one item in its read set. Routing a query to a shard that owns
//! none of its data would make the shard engine read items whose update
//! streams it never sees — legal (the items just stay at their initial
//! version) but pointless; restricting to eligible shards keeps every read
//! observable by the update traffic that invalidates it.

use crate::merge::ReplicaRouteRecord;
use crate::replication::ReplicaSets;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, QuerySpec, Trace};
use unit_workload::ItemPartition;

/// How the dispatcher spreads queries over their eligible shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Rotate through eligible shards with a global counter. Oblivious to
    /// load and freshness; the baseline.
    RoundRobin,
    /// Send each query to the eligible shard with the least outstanding
    /// routed work (sum of exec times of queries routed there whose
    /// deadlines have not yet passed), ties to the lowest shard id.
    LeastLoad,
    /// Send each query to the eligible shard whose owned read-set items
    /// have the fewest estimated unapplied versions (a dispatcher-side
    /// `Udrop` proxy — see [module docs](self) and DESIGN.md §3), ties to
    /// the lowest shard id.
    FreshnessAware,
}

impl RoutingPolicy {
    /// All routing policies, for test matrices.
    pub const ALL: [RoutingPolicy; 3] = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastLoad,
        RoutingPolicy::FreshnessAware,
    ];

    /// Short stable name (JSON output, test labels).
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLoad => "least-load",
            RoutingPolicy::FreshnessAware => "freshness-aware",
        }
    }
}

/// Compute the query-to-shard assignment for `trace` under `routing`.
///
/// Walks queries in trace (= arrival) order, O(N_q · (A + log N_q)) for
/// read sets of size A. Pure and sequential: identical inputs give an
/// identical assignment on every run and any worker-thread count, because
/// worker threads have not even been spawned yet when this runs.
pub fn assign(trace: &Trace, partition: &ItemPartition, routing: RoutingPolicy) -> Vec<usize> {
    match routing {
        RoutingPolicy::RoundRobin => assign_round_robin(trace, partition),
        RoutingPolicy::LeastLoad => assign_least_load(trace, partition),
        RoutingPolicy::FreshnessAware => assign_freshness_aware(trace, partition),
    }
}

fn assign_round_robin(trace: &Trace, partition: &ItemPartition) -> Vec<usize> {
    let mut counter = 0usize;
    trace
        .queries
        .iter()
        .map(|q| {
            let eligible = partition.eligible_shards(&q.items);
            // lint: allow(D6) — eligible is non-empty for a valid trace; the modulo keeps the cursor in range
            let shard = eligible[counter % eligible.len()];
            counter += 1;
            shard
        })
        .collect()
}

/// Per-shard outstanding-work ledger for `LeastLoad`.
///
/// Tracks the exec times of queries routed to the shard, keyed by their
/// firm deadlines; entries whose deadline has passed are lazily expired at
/// the next routing decision (a firm-deadline query is finished or dead by
/// then, either way no longer queued work).
pub(crate) struct ShardLoad {
    by_deadline: BinaryHeap<Reverse<(SimTime, SimDuration)>>,
    pub(crate) outstanding: SimDuration,
}

impl ShardLoad {
    pub(crate) fn new() -> ShardLoad {
        ShardLoad {
            by_deadline: BinaryHeap::new(),
            outstanding: SimDuration::ZERO,
        }
    }

    pub(crate) fn expire(&mut self, now: SimTime) {
        while let Some(&Reverse((deadline, exec))) = self.by_deadline.peek() {
            if deadline > now {
                break;
            }
            self.by_deadline.pop();
            self.outstanding = self.outstanding.saturating_sub(exec);
        }
    }

    pub(crate) fn admit(&mut self, deadline: SimTime, exec: SimDuration) {
        self.by_deadline.push(Reverse((deadline, exec)));
        self.outstanding += exec;
    }
}

fn assign_least_load(trace: &Trace, partition: &ItemPartition) -> Vec<usize> {
    let mut loads: Vec<ShardLoad> = (0..partition.n_shards())
        .map(|_| ShardLoad::new())
        .collect();
    trace
        .queries
        .iter()
        .map(|q| {
            let eligible = partition.eligible_shards(&q.items);
            let shard = eligible
                .iter()
                .copied()
                .map(|s| {
                    // lint: allow(D6) — eligible shard ids are < n_shards
                    loads[s].expire(q.arrival);
                    // Ties break to the lowest shard id: min_by_key keeps
                    // the first minimum and `eligible` is ascending.
                    (loads[s].outstanding, s) // lint: allow(D6) — s < n_shards
                })
                .min()
                .map_or(0, |(_, s)| s); // eligible is never empty for a valid trace
                                        // lint: allow(D6) — the picked shard came from `eligible`
            loads[shard].admit(q.deadline(), q.exec_time);
            shard
        })
        .collect()
}

/// Dispatcher-side freshness estimator for `FreshnessAware`.
///
/// The dispatcher cannot see the shards' real `Udrop` tables without
/// breaking the sequential-prologue determinism (shard state depends on
/// execution), so it keeps its own integer estimate per item: how many
/// versions the item's update streams have emitted up to `now`
/// (`Σ 1 + ⌊(now − first)/period⌋`, pure arithmetic on the trace's
/// schedules), minus a baseline that resets whenever a query reading the
/// item is routed to its owner — modelling that the owner refreshes items
/// its queries touch. An estimate, not ground truth: shards modulate
/// update periods at runtime. DESIGN.md §3 discusses the gap.
pub(crate) struct FreshnessEstimate {
    /// Per item: the `(first_arrival, period)` of each update stream on it.
    streams: Vec<Vec<(SimTime, SimDuration)>>,
    /// Per item: version count at the last routed read of the item.
    baseline: Vec<u64>,
}

impl FreshnessEstimate {
    pub(crate) fn new(trace: &Trace) -> FreshnessEstimate {
        let mut streams = vec![Vec::new(); trace.n_items];
        for u in &trace.updates {
            // lint: allow(D6) — trace invariant: update items index < n_items
            streams[u.item.index()].push((u.first_arrival, u.period));
        }
        FreshnessEstimate {
            baseline: vec![0; trace.n_items],
            streams,
        }
    }

    /// Versions emitted for `item` up to and including `now`.
    pub(crate) fn versions(&self, item: usize, now: SimTime) -> u64 {
        // lint: allow(D6) — every caller passes item indices < n_items
        self.streams[item]
            .iter()
            .map(|&(first, period)| {
                if now < first {
                    0
                } else {
                    1 + now.saturating_since(first).0 / period.0
                }
            })
            .sum()
    }

    /// Estimated unapplied versions of `item` at `now`.
    pub(crate) fn udrop(&self, item: usize, now: SimTime) -> u64 {
        // lint: allow(D6) — every caller passes item indices < n_items
        self.versions(item, now).saturating_sub(self.baseline[item])
    }

    /// A query reading `item` was routed to its owner: assume the owner
    /// refreshes it for the read.
    pub(crate) fn reset(&mut self, item: usize, now: SimTime) {
        // lint: allow(D6) — every caller passes item indices < n_items
        self.baseline[item] = self.versions(item, now);
    }
}

/// What the dispatcher knows about which shards can serve which items —
/// the one seam between partition-only and replicated routing.
///
/// `FreshnessAware` needs two capabilities from the placement: a
/// staleness estimate for "item `d` as served by shard `s`" (`None` when
/// `s` hosts no replica of `d`), and whether routing a read of `d` to `s`
/// refreshes the dispatcher's estimate. For [`ItemPartition`] the answers
/// are the classic owner checks, so [`RouterState`] backed by a partition
/// is bit-identical to the fault-free assigners; [`ReplicaSets`] widens
/// both answers to followers without touching the decision logic.
pub(crate) trait HostView {
    /// Dispatcher-side staleness estimate of `d` as served by `s`, or
    /// `None` when `s` hosts no replica of `d`.
    fn staleness(&self, est: &FreshnessEstimate, d: DataId, s: usize, now: SimTime) -> Option<u64>;

    /// True when routing a read of `d` to `s` refreshes the dispatcher's
    /// estimate for `d` (only an authoritative — leader — read does).
    fn refreshes(&self, s: usize, d: DataId) -> bool;
}

impl HostView for ItemPartition {
    fn staleness(&self, est: &FreshnessEstimate, d: DataId, s: usize, now: SimTime) -> Option<u64> {
        (self.owner(d) == s).then(|| est.udrop(d.index(), now))
    }

    fn refreshes(&self, s: usize, d: DataId) -> bool {
        self.owner(d) == s
    }
}

/// The underlying routing policy's mutable state, factored so the
/// fault-aware and replicated dispatchers reuse the exact decision logic
/// of [`assign`] — restricted to a candidate pool — and are bit-identical
/// to it when the pool equals the eligible set.
pub(crate) enum RouterState {
    RoundRobin { counter: usize },
    LeastLoad { loads: Vec<ShardLoad> },
    FreshnessAware { est: FreshnessEstimate },
}

impl RouterState {
    pub(crate) fn new(routing: RoutingPolicy, trace: &Trace, n_shards: usize) -> RouterState {
        match routing {
            RoutingPolicy::RoundRobin => RouterState::RoundRobin { counter: 0 },
            RoutingPolicy::LeastLoad => RouterState::LeastLoad {
                loads: (0..n_shards).map(|_| ShardLoad::new()).collect(),
            },
            RoutingPolicy::FreshnessAware => RouterState::FreshnessAware {
                est: FreshnessEstimate::new(trace),
            },
        }
    }

    /// Pick a shard from the non-empty `pool` (ascending shard ids) for a
    /// query being dispatched at `now`. Mirrors the fault-free assigners:
    /// same counters, same ledgers, same lowest-id tie-breaks.
    pub(crate) fn pick(
        &mut self,
        q: &QuerySpec,
        pool: &[usize],
        now: SimTime,
        view: &impl HostView,
    ) -> usize {
        match self {
            RouterState::RoundRobin { counter } => {
                // lint: allow(D6) — callers pass a non-empty pool; modulo
                let shard = pool[*counter % pool.len()];
                *counter += 1;
                shard
            }
            RouterState::LeastLoad { loads } => pool
                .iter()
                .copied()
                .map(|s| {
                    // lint: allow(D6) — pool shard ids are < n_shards
                    loads[s].expire(now);
                    (loads[s].outstanding, s) // lint: allow(D6) — s < n_shards
                })
                .min()
                .map_or(0, |(_, s)| s),
            RouterState::FreshnessAware { est } => pool
                .iter()
                .copied()
                .map(|s| {
                    let staleness: u64 = q
                        .items
                        .iter()
                        .filter_map(|&d| view.staleness(est, d, s, now))
                        .max()
                        .unwrap_or(0);
                    (staleness, s)
                })
                .min()
                .map_or(0, |(_, s)| s),
        }
    }

    /// Account for a routed query, mirroring the fault-free assigners'
    /// post-pick bookkeeping.
    pub(crate) fn commit(
        &mut self,
        q: &QuerySpec,
        shard: usize,
        now: SimTime,
        view: &impl HostView,
    ) {
        match self {
            RouterState::RoundRobin { .. } => {}
            // lint: allow(D6) — the committed shard came from the pool
            RouterState::LeastLoad { loads } => loads[shard].admit(q.deadline(), q.exec_time),
            RouterState::FreshnessAware { est } => {
                for &d in &q.items {
                    if view.refreshes(shard, d) {
                        est.reset(d.index(), now);
                    }
                }
            }
        }
    }
}

/// The [`ReplicaRouteRecord`] for routing `q` to `shard` at `now`, or
/// `None` when the shard leads every read-set item (a leader-only route
/// needs no replica bookkeeping). O(A · streams).
pub(crate) fn replica_route_record(
    sets: &ReplicaSets,
    q: &QuerySpec,
    shard: usize,
    now: SimTime,
) -> Option<ReplicaRouteRecord> {
    let followed: Vec<DataId> = q
        .items
        .iter()
        .copied()
        .filter(|&d| sets.map().follows(shard, d))
        .collect();
    if followed.is_empty() {
        return None;
    }
    Some(ReplicaRouteRecord {
        time: now,
        query: q.id,
        shard,
        follower_items: followed.len() as u32,
        claimed_transit: followed
            .iter()
            .map(|&d| sets.claimed_transit(d, now))
            .max()
            .unwrap_or(0),
    })
}

/// Compute the query-to-shard assignment under replication: like
/// [`assign`], but each query's pool is its [`ReplicaSets::candidate_pool`]
/// — leaders plus `Qu`-admissible followers — and the returned records
/// name every route that landed on a follower. With `factor == 1` the
/// pools equal the eligible sets and the assignment is bit-identical to
/// [`assign`] (the replication differential suite pins this), with no
/// records. Pure and sequential, same complexity envelope as [`assign`].
pub(crate) fn assign_replicated(
    trace: &Trace,
    sets: &ReplicaSets,
    routing: RoutingPolicy,
) -> (Vec<usize>, Vec<ReplicaRouteRecord>) {
    let mut router = RouterState::new(routing, trace, sets.map().n_shards());
    let mut routes = Vec::new();
    let assignment = trace
        .queries
        .iter()
        .map(|q| {
            let pool = sets.candidate_pool(q, q.arrival);
            let shard = router.pick(q, &pool, q.arrival, sets);
            router.commit(q, shard, q.arrival, sets);
            if let Some(r) = replica_route_record(sets, q, shard, q.arrival) {
                routes.push(r);
            }
            shard
        })
        .collect();
    (assignment, routes)
}

fn assign_freshness_aware(trace: &Trace, partition: &ItemPartition) -> Vec<usize> {
    let mut est = FreshnessEstimate::new(trace);
    trace
        .queries
        .iter()
        .map(|q| {
            let eligible = partition.eligible_shards(&q.items);
            let shard = eligible
                .iter()
                .copied()
                .map(|s| {
                    let staleness: u64 = q
                        .items
                        .iter()
                        .filter(|&&d| partition.owner(d) == s)
                        .map(|&d| est.udrop(d.index(), q.arrival))
                        .max()
                        .unwrap_or(0);
                    (staleness, s)
                })
                .min()
                .map_or(0, |(_, s)| s); // eligible is never empty for a valid trace
            for &d in &q.items {
                if partition.owner(d) == shard {
                    est.reset(d.index(), q.arrival);
                }
            }
            shard
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::types::{DataId, QueryId, QuerySpec, UpdateSpec, UpdateStreamId};

    fn query(id: u64, arrival: u64, items: &[u32]) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs(arrival),
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs(1),
            relative_deadline: SimDuration::from_secs(5),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn update(id: u32, item: u32, period: u64) -> UpdateSpec {
        UpdateSpec {
            id: UpdateStreamId(id),
            item: DataId(item),
            period: SimDuration::from_secs(period),
            exec_time: SimDuration::from_secs(1),
            first_arrival: SimTime::ZERO,
        }
    }

    /// 4 items over 2 shards: shard 0 owns {0, 2}, shard 1 owns {1, 3}.
    fn trace() -> Trace {
        Trace {
            n_items: 4,
            queries: vec![
                query(0, 1, &[0, 1]),
                query(1, 2, &[0, 1]),
                query(2, 3, &[0, 1]),
                query(3, 4, &[2]),
            ],
            updates: vec![update(0, 0, 10), update(1, 1, 2)],
        }
    }

    #[test]
    fn round_robin_rotates_over_eligible_shards() {
        let t = trace();
        let p = ItemPartition::new(2);
        // q0..q2 are eligible on both shards; q3 only on shard 0 (item 2).
        assert_eq!(assign(&t, &p, RoutingPolicy::RoundRobin), vec![0, 1, 0, 0]);
    }

    #[test]
    fn least_load_balances_and_breaks_ties_low() {
        let t = trace();
        let p = ItemPartition::new(2);
        let a = assign(&t, &p, RoutingPolicy::LeastLoad);
        // q0: both empty, tie -> 0. q1: shard 0 busy -> 1. q2: tie again -> 0.
        // q3: only shard 0 eligible.
        assert_eq!(a, vec![0, 1, 0, 0]);
    }

    #[test]
    fn least_load_expires_finished_work() {
        let mut t = trace();
        // Move q2 past q0/q1's deadlines (arrival 1,2 + rel 5 => dead by 8).
        t.queries[2].arrival = SimTime::from_secs(20);
        t.queries[3].arrival = SimTime::from_secs(21);
        let p = ItemPartition::new(2);
        let a = assign(&t, &p, RoutingPolicy::LeastLoad);
        // With both ledgers expired, q2 ties back to shard 0.
        assert_eq!(a[2], 0);
    }

    #[test]
    fn freshness_aware_avoids_the_stale_owner() {
        let t = trace();
        let p = ItemPartition::new(2);
        let a = assign(&t, &p, RoutingPolicy::FreshnessAware);
        // Item 1 (shard 1) updates every 2s, item 0 (shard 0) every 10s:
        // shard 1's owned read-set item goes stale faster, so queries
        // keep landing on shard 0 (whose item-0 estimate resets on every
        // routed read). q3 is only eligible on shard 0.
        assert_eq!(a, vec![0, 0, 0, 0]);
    }

    #[test]
    fn freshness_estimates_count_versions() {
        let t = trace();
        let est = FreshnessEstimate::new(&t);
        // Item 1: first at 0, period 2 -> versions at t=5 are 1 + 5/2 = 3.
        assert_eq!(est.versions(1, SimTime::from_secs(5)), 3);
        assert_eq!(est.versions(2, SimTime::from_secs(5)), 0);
    }

    #[test]
    fn assignments_are_reproducible() {
        let t = trace();
        let p = ItemPartition::new(2);
        for routing in RoutingPolicy::ALL {
            assert_eq!(assign(&t, &p, routing), assign(&t, &p, routing));
        }
    }
}
