//! The unified cluster entry point: [`ClusterRun`], built from a
//! [`ClusterConfig`].
//!
//! One builder replaces the former four `run_*` free functions (removed
//! after a deprecation cycle): a plain cluster is `cfg.build().run(...)`,
//! faults are layered with [`ClusterRun::with_faults`], and observability
//! with [`ClusterRun::with_observer`] — so telemetry is wired once, here,
//! instead of once per entry point. Future shard/batching features extend
//! this builder rather than growing new top-level functions.
//!
//! ## Observation model
//!
//! Each shard engine records into its own private unbounded
//! [`RingRecorder`] on its worker thread (no shared state, no locks), and
//! after the merge the streams are **replayed** to the installed observer
//! as [`ObsEvent::Shard`]-wrapped events, interleaved with the
//! cluster-level dispatcher events (routes, rejections, shard-health
//! transitions) in `(time, lane, seq)` order — lane 0 is the dispatcher,
//! lane `s + 1` is shard `s`. The replay is a pure function of the run
//! inputs, so the observed stream is bit-identical for any worker count,
//! and observation never touches the engines' decision paths: every
//! `report_digest` matches the observer-free run exactly.

use crate::failover::{self, FailoverPolicy, FaultClusterReport, RouteDecision};
use crate::merge::{ClusterReport, ReplicationReport};
use crate::replication::{ReplicaSets, ReplicationConfig};
use crate::routing;
use crate::{ClusterConfig, ClusterConfigError, ExecutionMode};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use unit_core::policy::Policy;
use unit_core::split_seed;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::Trace;
use unit_core::unit_policy::UnitPolicy;
use unit_core::UnitConfig;
use unit_faults::{FaultPlan, FaultSchedule, ShardFaults};
use unit_obs::{FaultPhase, ObsEvent, Observer, RingRecorder};
use unit_sim::{HealthState, SimConfig, SimReport, SimRun, Simulator};
use unit_workload::{slice_trace, slice_trace_filtered, slice_trace_replicated, ItemPartition};

/// A configured cluster run: faults and observation are layered onto the
/// shape described by the [`ClusterConfig`] it was built from, mirroring
/// the single-server `Simulator::with_faults`/`with_observer` builders.
pub struct ClusterRun<'a> {
    cluster: ClusterConfig,
    faults: Option<(&'a FaultPlan, FailoverPolicy)>,
    obs: Option<&'a mut dyn Observer>,
}

/// What a [`ClusterRun`] produced: the plain shard-level report, or the
/// fault-extended one when a plan was installed. The variant is decided by
/// the builder's configuration, never by what happened during the run, so
/// callers can match structurally.
#[derive(Debug, Clone)]
pub enum ClusterRunReport {
    /// A fault-free run ([`ClusterRun::with_faults`] absent).
    Plain(ClusterReport),
    /// A fault-injected run, dispatcher verdicts included.
    Faulty(FaultClusterReport),
}

impl ClusterRunReport {
    /// The shard-level report, whichever variant this is. O(1).
    pub fn cluster(&self) -> &ClusterReport {
        match self {
            ClusterRunReport::Plain(r) => r,
            ClusterRunReport::Faulty(r) => &r.cluster,
        }
    }

    /// The plain report, if this was a fault-free run. O(1).
    pub fn into_plain(self) -> Option<ClusterReport> {
        match self {
            ClusterRunReport::Plain(r) => Some(r),
            ClusterRunReport::Faulty(_) => None,
        }
    }

    /// The fault-extended report, if a plan was installed. O(1).
    pub fn into_faulty(self) -> Option<FaultClusterReport> {
        match self {
            ClusterRunReport::Plain(_) => None,
            ClusterRunReport::Faulty(r) => Some(r),
        }
    }
}

impl ClusterConfig {
    /// Start building a run from this shape. Layer options with
    /// [`ClusterRun::with_faults`] / [`ClusterRun::with_observer`], then
    /// execute with [`ClusterRun::run`] (or [`ClusterRun::run_unit`]).
    #[must_use]
    pub fn build<'a>(self) -> ClusterRun<'a> {
        ClusterRun {
            cluster: self,
            faults: None,
            obs: None,
        }
    }
}

impl<'a> ClusterRun<'a> {
    /// Install a fault plan and the dispatcher's failover policy. The run
    /// then uses fault-aware routing, executes each shard with its
    /// [`ShardFaults`] hook, and returns
    /// [`ClusterRunReport::Faulty`].
    #[must_use]
    pub fn with_faults(mut self, plan: &'a FaultPlan, failover: FailoverPolicy) -> ClusterRun<'a> {
        self.faults = Some((plan, failover));
        self
    }

    /// Install per-item leader/follower replication (equivalent to setting
    /// it on the [`ClusterConfig`] with
    /// [`ClusterConfig::with_replication`]): updates fan out to follower
    /// shards under the configured propagation lag, and reads may be
    /// served by any replica whose dispatcher-side `Qu` bound clears the
    /// query's freshness requirement. `factor == 1` is bit-identical to a
    /// non-replicated run (the replication differential suite pins this).
    #[must_use]
    pub fn with_replication(mut self, replication: ReplicationConfig) -> ClusterRun<'a> {
        self.cluster.replication = Some(replication);
        self
    }

    /// Install an observability sink. Shard event streams are recorded
    /// per-worker and replayed to `observer` after the merge (see the
    /// module docs for the deterministic interleave); dispatcher routes,
    /// rejections, and shard-health transitions are emitted at cluster
    /// level. Passive: the run's reports are bit-identical either way.
    #[must_use]
    pub fn with_observer(mut self, observer: &'a mut dyn Observer) -> ClusterRun<'a> {
        self.obs = Some(observer);
        self
    }

    /// Execute the run: route, slice, execute every shard, merge, and (with
    /// an observer installed) replay the recorded event streams.
    ///
    /// `make_policy(shard_id, seed)` builds each shard's policy instance;
    /// `seed` is already split from the run seed. The engine-level outcome
    /// log is forced on — the merge layer needs it — which does not change
    /// engine behaviour (the log is excluded from
    /// [`unit_sim::report_digest`]).
    ///
    /// # Errors
    /// Returns [`ClusterConfigError`] when the config fails
    /// [`ClusterConfig::validate`], or — with faults installed — when the
    /// plan does not cover every shard or a shard schedule is malformed.
    ///
    /// # Panics
    /// Panics if `trace` is malformed (same contract as
    /// [`Simulator::new`]) or a worker thread panics.
    pub fn run<P, F>(
        self,
        trace: &Trace,
        sim: SimConfig,
        make_policy: F,
    ) -> Result<ClusterRunReport, ClusterConfigError>
    where
        P: Policy + Send,
        F: Fn(usize, u64) -> P + Sync,
    {
        let ClusterRun {
            cluster,
            faults,
            obs,
        } = self;
        cluster.validate()?;
        let n = cluster.n_shards;
        let partition = ItemPartition::new(n);
        let sets = cluster
            .replication
            .as_ref()
            .map(|rep| ReplicaSets::new(trace, n, rep, cluster.seed, sim.horizon));

        // Dispatch prologue: fault-aware when a plan is installed, the
        // plain assigner otherwise; with replication, pools widen to
        // Qu-admissible followers. All four paths are sequential and pure.
        let mut routes = Vec::new();
        let mut promotions = Vec::new();
        let (hooks, decisions, routed_storage, assignment) = match faults {
            Some((plan, failover)) => {
                if plan.shards.len() != n {
                    return Err(ClusterConfigError::PlanShardMismatch {
                        plan_shards: plan.shards.len(),
                        n_shards: n,
                    });
                }
                if let Some(sets) = &sets {
                    // Propagation owns the full horizon of every followed
                    // item's streams; a user fault there would overlap it.
                    for (shard, sched) in plan.shards.iter().enumerate() {
                        for f in &sched.stream_faults {
                            if sets.map().follows(shard, f.item) {
                                return Err(ClusterConfigError::ReplicationFaultConflict {
                                    shard,
                                    item: f.item.0,
                                });
                            }
                        }
                    }
                }
                let hooks = build_shard_hooks(n, Some(plan), sets.as_ref())?;
                let decisions = match &sets {
                    Some(sets) => {
                        let replicated = failover::route_with_faults_replicated(
                            trace,
                            sets,
                            cluster.routing,
                            plan,
                            &failover,
                        );
                        routes = replicated.routes;
                        promotions = replicated.promotions;
                        replicated.decisions
                    }
                    None => failover::route_with_faults(
                        trace,
                        &partition,
                        cluster.routing,
                        plan,
                        &failover,
                    ),
                };
                let (routed, assignment) = failover::routed_trace(trace, &decisions);
                (hooks, Some(decisions), Some(routed), assignment)
            }
            None => {
                let assignment = match &sets {
                    Some(sets) => {
                        let (assignment, r) =
                            routing::assign_replicated(trace, sets, cluster.routing);
                        routes = r;
                        assignment
                    }
                    None => routing::assign(trace, &partition, cluster.routing),
                };
                let hooks = build_shard_hooks(n, None, sets.as_ref())?;
                (hooks, None, None, assignment)
            }
        };
        let exec_trace = routed_storage.as_ref().unwrap_or(trace);
        let sliced = match &sets {
            Some(sets) => {
                slice_trace_replicated(exec_trace, &assignment, sets.map(), cluster.filter_updates)
                    .map(|(t, _)| t)
            }
            None if cluster.filter_updates => {
                slice_trace_filtered(exec_trace, &assignment, &partition).map(|(t, _)| t)
            }
            None => slice_trace(exec_trace, &assignment, &partition),
        };
        let shard_traces = match sliced {
            Ok(t) => t,
            // lint: allow(panic) — the dispatcher produced the assignment; a bad one is a routing bug, not caller input
            Err(e) => panic!("internal routing error: {e}"),
        };
        let seeds: Vec<u64> = (0..n).map(|i| split_seed(cluster.seed, i as u64)).collect();
        let results = execute_shards(
            &shard_traces,
            &seeds,
            sim.with_outcome_log(),
            cluster.workers,
            cluster.mode,
            hooks.as_deref(),
            obs.is_some(),
            &make_policy,
        );
        let mut recorders: Vec<Option<RingRecorder>> = Vec::with_capacity(n);
        let mut shard_reports: Vec<SimReport> = Vec::with_capacity(n);
        let mut shard_walls: Vec<f64> = Vec::with_capacity(n);
        for (report, rec, wall) in results {
            shard_reports.push(report);
            recorders.push(rec);
            shard_walls.push(wall);
        }

        let mut cluster_report =
            ClusterReport::merge(cluster.routing, sim.weights, assignment, shard_reports);
        cluster_report.shard_walls = shard_walls;
        cluster_report.update_streams_per_shard =
            shard_traces.iter().map(|t| t.updates.len()).collect();
        unit_core::validate_check!(
            "cluster-usm-identity",
            crate::merge::check_cluster_identity(&cluster_report)
        );
        if let Some(sets) = &sets {
            let replication = ReplicationReport {
                factor: sets.factor(),
                propagation: sets.propagation_log(),
                routes,
                promotions,
            };
            unit_core::validate_check!(
                "replication-consistency",
                crate::replication::check_replication_consistency(
                    sets,
                    &replication,
                    sim.tick_period,
                    sim.horizon
                )
            );
            cluster_report.replication = Some(replication);
        }

        if let Some(observer) = obs {
            replay_events(
                observer,
                trace,
                recorders,
                decisions.as_deref(),
                hooks.as_deref(),
                cluster_report.assignment.as_slice(),
                exec_trace,
                cluster_report.replication.as_ref(),
            );
        }

        match decisions {
            Some(decisions) => {
                let report = FaultClusterReport::assemble(trace, cluster_report, decisions);
                #[cfg(feature = "validate")]
                if let Some((plan, failover)) = faults {
                    unit_core::validate_check!(
                        "health-consistency",
                        failover::check_health_consistency(&report, plan, &failover)
                    );
                }
                Ok(ClusterRunReport::Faulty(report))
            }
            None => Ok(ClusterRunReport::Plain(cluster_report)),
        }
    }

    /// Execute a UNIT run: one [`UnitPolicy`] per shard, each configured
    /// from `base` with its own split seed. The common case for benches.
    ///
    /// # Errors
    /// Same contract as [`ClusterRun::run`].
    pub fn run_unit(
        self,
        trace: &Trace,
        sim: SimConfig,
        base: &UnitConfig,
    ) -> Result<ClusterRunReport, ClusterConfigError> {
        self.run(trace, sim, |_, seed| {
            UnitPolicy::new(base.clone().with_seed(seed))
        })
    }
}

/// Build each shard's fault hook by merging the user plan (if any) with
/// the replication layer's propagation schedules (if any): every followed
/// item's streams run under the seeded windowed delays on that shard.
///
/// Returns `None` when there is nothing to install — no plan and every
/// propagation schedule empty (factor 1 or zero lag) — so a degenerate
/// replicated run executes its shards byte-identically to an unhooked
/// plain run. The conflict check in [`ClusterRun::run`] guarantees user
/// stream faults and propagation faults touch disjoint items per shard,
/// so the merged list stays valid (sorted, non-overlapping per item).
fn build_shard_hooks(
    n: usize,
    plan: Option<&FaultPlan>,
    sets: Option<&ReplicaSets>,
) -> Result<Option<Vec<ShardFaults>>, ClusterConfigError> {
    let mut schedules: Vec<FaultSchedule> = match plan {
        Some(p) => p.shards.clone(),
        None => vec![FaultSchedule::empty(); n],
    };
    let mut any = plan.is_some();
    if let Some(sets) = sets {
        for (s, sched) in schedules.iter_mut().enumerate() {
            let props = sets.propagation_faults(s);
            if props.is_empty() {
                continue;
            }
            any = true;
            sched.stream_faults.extend(props);
            sched.stream_faults.sort_by_key(|f| (f.item.0, f.start));
        }
    }
    if !any {
        return Ok(None);
    }
    let hooks = schedules
        .into_iter()
        .enumerate()
        .map(|(shard, s)| {
            ShardFaults::new(s).map_err(|error| ClusterConfigError::FaultSchedule { shard, error })
        })
        .collect::<Result<_, _>>()?;
    Ok(Some(hooks))
}

/// Execute every shard on a worker pool and return
/// `(report, recorder, wall_secs)` triples indexed by shard id
/// (`recorder` is `Some` iff `record`; `wall_secs` is the host time the
/// shard spent being built, stepped, and finished, excluding barrier
/// waits).
///
/// Interleaving-independence: shards share no mutable state — each
/// consumes its own trace slice, seed, and (when recording) a recorder
/// private to its worker — and results land in slots keyed by shard id, so
/// neither claim order, finish order, worker count, nor the execution
/// `mode` is observable in the output. With `hooks`, shard `i` runs with
/// `hooks[i]` installed as its fault hook.
#[allow(clippy::too_many_arguments)]
fn execute_shards<P, F>(
    shard_traces: &[Trace],
    seeds: &[u64],
    shard_cfg: SimConfig,
    workers: usize,
    mode: ExecutionMode,
    hooks: Option<&[ShardFaults]>,
    record: bool,
    make_policy: &F,
) -> Vec<(SimReport, Option<RingRecorder>, f64)>
where
    P: Policy + Send,
    F: Fn(usize, u64) -> P + Sync,
{
    let n = shard_traces.len();
    // `0` = auto: one worker per shard, capped at the host's actual
    // parallelism — extra threads on a smaller machine only add scheduling
    // and barrier overhead. Purely a wall-clock decision: results are
    // worker-count-invariant (pinned by the differential suites), so the
    // cap can never change a report.
    let workers = if workers == 0 {
        let cap = std::thread::available_parallelism().map_or(n, std::num::NonZeroUsize::get);
        n.min(cap)
    } else {
        workers.min(n)
    };
    if workers == 1 {
        // One worker: epoch lockstep and whole-shard claiming both
        // degenerate to serial execution, and the output is mode- and
        // worker-invariant (pinned by the differential suites) — so run
        // the shards inline on this thread, skipping the spawn, the
        // barriers, and the per-epoch engine round-robin entirely.
        return shard_traces
            .iter()
            .enumerate()
            .map(|(i, shard_trace)| {
                // lint: allow(D2) — diagnostic shard-wall timing, never enters sim state or digests
                let started = std::time::Instant::now();
                // lint: allow(D6) — i < n == seeds.len() (caller invariant)
                let policy = make_policy(i, seeds[i]);
                let mut rec = record.then(RingRecorder::unbounded);
                let report = {
                    let mut run = SimRun::trace(shard_trace, policy, shard_cfg);
                    if let Some(hooks) = hooks {
                        // lint: allow(D6) — hooks, when present, has n entries
                        run = run.with_faults(Box::new(hooks[i].clone()));
                    }
                    if let Some(r) = rec.as_mut() {
                        run = run.with_observer(r);
                    }
                    run.run()
                };
                (report, rec, started.elapsed().as_secs_f64())
            })
            .collect();
    }
    if let ExecutionMode::EpochParallel { epoch } = mode {
        return execute_shards_epoch(
            shard_traces,
            seeds,
            shard_cfg,
            workers,
            epoch,
            hooks,
            record,
            make_policy,
        );
    }
    let mut slots: Vec<Option<(SimReport, Option<RingRecorder>, f64)>> =
        (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut finished: Vec<(usize, SimReport, Option<RingRecorder>, f64)> =
                        Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // lint: allow(D2) — diagnostic shard-wall timing, never enters sim state or digests
                        let started = std::time::Instant::now();
                        // lint: allow(D6) — i < n == seeds.len() (caller invariant)
                        let policy = make_policy(i, seeds[i]);
                        let mut rec = record.then(RingRecorder::unbounded);
                        let report = {
                            // lint: allow(D6) — i < n == shard_traces.len()
                            let mut run = SimRun::trace(&shard_traces[i], policy, shard_cfg);
                            if let Some(hooks) = hooks {
                                // lint: allow(D6) — hooks, when present, has n entries
                                run = run.with_faults(Box::new(hooks[i].clone()));
                            }
                            if let Some(r) = rec.as_mut() {
                                run = run.with_observer(r);
                            }
                            run.run()
                        };
                        finished.push((i, report, rec, started.elapsed().as_secs_f64()));
                    }
                    finished
                })
            })
            .collect();
        for h in handles {
            // lint: allow(panic) — a worker panic is a shard-engine bug;
            // propagate it instead of reporting a partial cluster
            let finished = match h.join() {
                Ok(f) => f,
                Err(e) => std::panic::resume_unwind(e),
            };
            for (i, report, rec, wall) in finished {
                // lint: allow(D6) — workers only claim indices i < n
                slots[i] = Some((report, rec, wall));
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| match s {
            Some(r) => r,
            // lint: allow(panic) — every index < n is claimed exactly once
            None => panic!("shard {i} produced no report"),
        })
        .collect()
}

/// Epoch-parallel execution: worker `w` statically owns shards
/// `w, w + W, w + 2W, …` (each shard is built, stepped, and finished on
/// exactly one thread), and all live shards advance in lockstep through
/// virtual-time windows `(k·ε, (k+1)·ε]`. Two barriers close each round: one
/// publishes the round's drain count, one makes sure every worker has read
/// it before the next round's decrements start — the counter is monotone,
/// so all workers agree on the exit round and nobody strands a peer at a
/// barrier. Shards share no mutable state, and pausing an engine at an
/// epoch boundary reorders nothing ([`Simulator::step_until`]), so the
/// output is bit-identical to [`ExecutionMode::WholeShard`] for any worker
/// count or epoch. O(E log N_ev + R·W) for R rounds.
#[allow(clippy::too_many_arguments)]
fn execute_shards_epoch<P, F>(
    shard_traces: &[Trace],
    seeds: &[u64],
    shard_cfg: SimConfig,
    workers: usize,
    epoch: SimDuration,
    hooks: Option<&[ShardFaults]>,
    record: bool,
    make_policy: &F,
) -> Vec<(SimReport, Option<RingRecorder>, f64)>
where
    P: Policy + Send,
    F: Fn(usize, u64) -> P + Sync,
{
    let n = shard_traces.len();
    debug_assert!(workers >= 1 && workers <= n);
    debug_assert!(!epoch.is_zero(), "validate() rejects zero epochs");
    let barrier = Barrier::new(workers);
    let live_total = AtomicUsize::new(n);
    let mut slots: Vec<Option<(SimReport, Option<RingRecorder>, f64)>> =
        (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let barrier = &barrier;
        let live_total = &live_total;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let owned: Vec<usize> = (w..n).step_by(workers).collect();
                    let mut recs: Vec<Option<RingRecorder>> = owned
                        .iter()
                        .map(|_| record.then(RingRecorder::unbounded))
                        .collect();
                    // Engines borrow their recorders element-wise; `recs`
                    // stays mutably borrowed until every engine is finished.
                    // Walls accumulate each shard's build + stepping time,
                    // never the barrier waits below.
                    let (mut sims, mut walls): (Vec<Option<Simulator<'_, P>>>, Vec<f64>) = owned
                        .iter()
                        .zip(recs.iter_mut())
                        .map(|(&i, rec)| {
                            // lint: allow(D2) — diagnostic shard-wall timing, never enters sim state or digests
                            let started = std::time::Instant::now();
                            let mut run = SimRun::trace(
                                &shard_traces[i],         // lint: allow(D6) — i < n == shard_traces.len()
                                make_policy(i, seeds[i]), // lint: allow(D6) — i < n
                                shard_cfg,
                            );
                            if let Some(hooks) = hooks {
                                // Setup, not stepping: one clone per shard per run.
                                // lint: allow(D6,P2) — hooks has n entries; runs once per shard
                                run = run.with_faults(Box::new(hooks[i].clone()));
                            }
                            if let Some(r) = rec.as_mut() {
                                run = run.with_observer(r);
                            }
                            (Some(run.build()), started.elapsed().as_secs_f64())
                        })
                        .unzip();
                    let mut reports: Vec<Option<SimReport>> = owned.iter().map(|_| None).collect();
                    let mut limit = SimTime::ZERO;
                    loop {
                        limit += epoch;
                        for (j, slot) in sims.iter_mut().enumerate() {
                            let Some(sim) = slot.as_mut() else { continue };
                            // lint: allow(D2) — diagnostic shard-wall timing, never enters sim state or digests
                            let started = std::time::Instant::now();
                            if !sim.step_until(limit) {
                                // Drained: harvest now so the report is
                                // ready the moment the cluster converges.
                                if let Some(sim) = slot.take() {
                                    // lint: allow(D6) — j indexes sims, same length
                                    reports[j] = Some(sim.finish().0);
                                }
                                // Relaxed is enough: the barriers below
                                // order this store against every reader.
                                live_total.fetch_sub(1, Ordering::Relaxed);
                            }
                            // lint: allow(D6) — j indexes sims, same length
                            walls[j] += started.elapsed().as_secs_f64();
                        }
                        barrier.wait(); // round's drains are published
                        let done = live_total.load(Ordering::Relaxed) == 0;
                        barrier.wait(); // everyone has read before round k+1
                        if done {
                            break;
                        }
                    }
                    drop(sims); // ends the recorder borrows
                    owned
                        .into_iter()
                        .zip(reports)
                        .zip(recs)
                        .zip(walls)
                        .map(|(((i, report), rec), wall)| {
                            let Some(report) = report else {
                                // lint: allow(panic) — the loop only exits once every shard drained
                                panic!("shard {i} exited the epoch loop unfinished")
                            };
                            (i, report, rec, wall)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // lint: allow(panic) — a worker panic is a shard-engine bug;
            // propagate it instead of reporting a partial cluster
            let finished = match h.join() {
                Ok(f) => f,
                Err(e) => std::panic::resume_unwind(e),
            };
            for (i, report, rec, wall) in finished {
                // lint: allow(D6) — workers only claim indices i < n
                slots[i] = Some((report, rec, wall));
            }
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| match s {
            Some(r) => r,
            // lint: allow(panic) — static ownership covers every shard exactly once
            None => panic!("shard {i} produced no report"),
        })
        .collect()
}

/// Replay the run's event streams to the observer in `(time, lane, seq)`
/// order: lane 0 carries the dispatcher (shard-health transitions first,
/// then routing verdicts, then replica routes and promotions, each in
/// construction order at equal instants), lane `s + 1` carries shard `s`'s
/// own stream wrapped as [`ObsEvent::Shard`], and lane
/// `1 + n_shards + s` is shard `s`'s replica pseudo-lane carrying its
/// follower-side propagation deliveries ([`crate::ClusterLane`]). Pure
/// function of the run inputs — worker count and finish order are
/// invisible. O(E log E) in the total event count.
#[allow(clippy::too_many_arguments)]
fn replay_events(
    observer: &mut dyn Observer,
    trace: &Trace,
    recorders: Vec<Option<RingRecorder>>,
    decisions: Option<&[RouteDecision]>,
    hooks: Option<&[ShardFaults]>,
    plain_assignment: &[usize],
    exec_trace: &Trace,
    replication: Option<&ReplicationReport>,
) {
    let mut all: Vec<(SimTime, u32, u64, ObsEvent)> = Vec::new();
    let mut seq0 = 0u64;
    let mut lane0 = |all: &mut Vec<(SimTime, u32, u64, ObsEvent)>, ev: ObsEvent| {
        all.push((ev.time(), 0, seq0, ev));
        seq0 += 1;
    };

    // Shard-health transitions, as the dispatcher sees the plan.
    if let Some(hooks) = hooks {
        for (s, hook) in hooks.iter().enumerate() {
            use unit_sim::FaultHook as _;
            let mut times = hook.transition_times();
            times.sort_unstable();
            times.dedup();
            for t in times {
                let (phase, until) = match hook.health(t) {
                    HealthState::Up => (FaultPhase::Up, None),
                    HealthState::Degraded { until } => (FaultPhase::Degraded, Some(until)),
                    HealthState::Down { until } => (FaultPhase::Down, Some(until)),
                };
                lane0(
                    &mut all,
                    ObsEvent::ShardHealth {
                        time: t,
                        shard: s as u32,
                        phase,
                        until,
                    },
                );
            }
        }
    }

    // Routing verdicts: fault-aware decisions when present, otherwise the
    // plain assignment (every query routed at its arrival, zero retries).
    match decisions {
        Some(decisions) => {
            for (q, d) in trace.queries.iter().zip(decisions) {
                let ev = match *d {
                    RouteDecision::Routed { shard, at, retries } => ObsEvent::DispatcherRoute {
                        time: at,
                        query: q.id,
                        shard: shard as u32,
                        retries,
                    },
                    RouteDecision::Rejected { at, retries } => ObsEvent::DispatcherReject {
                        time: at,
                        query: q.id,
                        retries,
                    },
                };
                lane0(&mut all, ev);
            }
        }
        None => {
            for (q, &shard) in exec_trace.queries.iter().zip(plain_assignment) {
                lane0(
                    &mut all,
                    ObsEvent::DispatcherRoute {
                        time: q.arrival,
                        query: q.id,
                        shard: shard as u32,
                        retries: 0,
                    },
                );
            }
        }
    }

    // Replica-layer events: follower routes and promotions on the
    // dispatcher lane (after the verdicts, in construction order), and
    // propagation deliveries on per-shard replica pseudo-lanes ordered
    // after every real shard lane.
    let n_shards = recorders.len();
    if let Some(rep) = replication {
        for r in &rep.routes {
            lane0(
                &mut all,
                ObsEvent::ReplicaRoute {
                    time: r.time,
                    query: r.query,
                    shard: r.shard as u32,
                    follower_items: r.follower_items,
                    claimed_transit: r.claimed_transit,
                },
            );
        }
        for p in &rep.promotions {
            lane0(
                &mut all,
                ObsEvent::ReplicaPromote {
                    time: p.time,
                    item: p.item,
                    from: p.from as u32,
                    to: p.to as u32,
                },
            );
        }
        let mut seqs = vec![0u64; n_shards];
        for r in &rep.propagation {
            // lint: allow(D6) — record followers are < n_shards (placement edge)
            let seq = seqs[r.follower];
            seqs[r.follower] += 1; // lint: allow(D6) — same bound as above
            all.push((
                r.time,
                1 + (n_shards + r.follower) as u32,
                seq,
                ObsEvent::ReplicaPropagate {
                    time: r.time,
                    item: r.item,
                    leader: r.leader as u32,
                    follower: r.follower as u32,
                    version: r.version,
                    emitted: r.emitted,
                },
            ));
        }
    }

    for (s, rec) in recorders.into_iter().enumerate() {
        let Some(rec) = rec else { continue };
        for (seq, event) in rec.into_events().into_iter().enumerate() {
            all.push((
                event.time(),
                s as u32 + 1,
                seq as u64,
                ObsEvent::Shard {
                    shard: s as u32,
                    seq: seq as u64,
                    event: Box::new(event),
                },
            ));
        }
    }

    all.sort_by_key(|&(time, lane, seq, _)| (time, lane, seq));
    for (_, _, _, ev) in all {
        observer.on_event(&ev);
    }
}
