//! The deprecated `run_*` wrappers are thin: each must produce reports
//! bit-identical to the [`unit_cluster::ClusterRun`] builder it forwards
//! to. This pins the migration path — callers can switch entry points in
//! either direction without a digest moving.

#![allow(deprecated)]

use unit_cluster::{BackoffConfig, ClusterConfig, FailoverPolicy, RoutingPolicy};
use unit_core::config::UnitConfig;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_sim::{report_digest, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 16;
const SEED: u64 = 0x5EED_0005;

fn bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_cfg(horizon: SimDuration) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
}

fn unit_base() -> UnitConfig {
    UnitConfig::with_weights(UsmWeights::low_high_cfm())
}

#[test]
fn run_cluster_wrappers_match_the_builder() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    for routing in RoutingPolicy::ALL {
        let cluster = ClusterConfig::new(3).with_routing(routing).with_seed(SEED);

        let wrapped =
            unit_cluster::run_unit_cluster(&bundle.trace, cfg, &cluster, &unit_base()).unwrap();
        let built = cluster
            .build()
            .run_unit(&bundle.trace, cfg, &unit_base())
            .unwrap()
            .into_plain()
            .unwrap();
        assert_eq!(wrapped.assignment, built.assignment);
        assert_eq!(wrapped.log, built.log);
        assert_eq!(wrapped.counts, built.counts);
        for (w, b) in wrapped.shard_reports.iter().zip(&built.shard_reports) {
            assert_eq!(report_digest(w), report_digest(b));
        }

        let generic = unit_cluster::run_cluster(&bundle.trace, cfg, &cluster, |_, seed| {
            UnitPolicy::new(unit_base().with_seed(seed))
        })
        .unwrap();
        assert_eq!(generic.log, built.log);
        assert_eq!(generic.counts, built.counts);
    }
}

#[test]
fn run_fault_cluster_wrappers_match_the_builder() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    let fcfg = FaultConfig::quiet(bundle.horizon, 100).with_crashes(
        0.2,
        SimDuration::from_secs(40),
        FaultMode::Pause,
    );
    let plan = FaultPlan::generate(0xFA_17, 3, &fcfg);
    let failover = FailoverPolicy::Backoff(BackoffConfig::default());
    let cluster = ClusterConfig::new(3).with_seed(SEED);

    let wrapped = unit_cluster::run_unit_fault_cluster(
        &bundle.trace,
        cfg,
        &cluster,
        &plan,
        &failover,
        &unit_base(),
    )
    .unwrap();
    let built = cluster
        .build()
        .with_faults(&plan, failover)
        .run_unit(&bundle.trace, cfg, &unit_base())
        .unwrap()
        .into_faulty()
        .unwrap();
    assert_eq!(wrapped.decisions, built.decisions);
    assert_eq!(wrapped.log, built.log);
    assert_eq!(wrapped.counts, built.counts);
    for (w, b) in wrapped
        .cluster
        .shard_reports
        .iter()
        .zip(&built.cluster.shard_reports)
    {
        assert_eq!(report_digest(w), report_digest(b));
    }

    let generic = unit_cluster::run_fault_cluster(
        &bundle.trace,
        cfg,
        &cluster,
        &plan,
        &failover,
        |_, seed| UnitPolicy::new(unit_base().with_seed(seed)),
    )
    .unwrap();
    assert_eq!(generic.decisions, built.decisions);
    assert_eq!(generic.log, built.log);
    assert_eq!(generic.counts, built.counts);
}
