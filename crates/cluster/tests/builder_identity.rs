//! The [`unit_cluster::ClusterRun`] builder's convenience entry points are
//! thin: `run_unit(base)` must produce reports bit-identical to the
//! generic `run(|_, seed| UnitPolicy::new(base.with_seed(seed)))` it is
//! sugar for, with and without a fault plan installed. This pins the
//! equivalence the old `run_*` free functions used to witness before
//! they were removed — callers can switch between the generic and the
//! UNIT-specific entry point without a digest moving.

use unit_cluster::{BackoffConfig, ClusterConfig, FailoverPolicy, RoutingPolicy};
use unit_core::config::UnitConfig;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_sim::{report_digest, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 16;
const SEED: u64 = 0x5EED_0005;

fn bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_cfg(horizon: SimDuration) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
}

fn unit_base() -> UnitConfig {
    UnitConfig::with_weights(UsmWeights::low_high_cfm())
}

#[test]
fn run_unit_matches_the_generic_entry_point() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    for routing in RoutingPolicy::ALL {
        let cluster = ClusterConfig::new(3).with_routing(routing).with_seed(SEED);

        let sugar = cluster
            .build()
            .run_unit(&bundle.trace, cfg, &unit_base())
            .unwrap()
            .into_plain()
            .unwrap();
        let generic = cluster
            .build()
            .run(&bundle.trace, cfg, |_, seed| {
                UnitPolicy::new(unit_base().with_seed(seed))
            })
            .unwrap()
            .into_plain()
            .unwrap();
        assert_eq!(sugar.assignment, generic.assignment);
        assert_eq!(sugar.log, generic.log);
        assert_eq!(sugar.counts, generic.counts);
        for (s, g) in sugar.shard_reports.iter().zip(&generic.shard_reports) {
            assert_eq!(report_digest(s), report_digest(g));
        }
    }
}

#[test]
fn run_unit_matches_the_generic_entry_point_under_faults() {
    let bundle = bundle();
    let cfg = sim_cfg(bundle.horizon);
    let fcfg = FaultConfig::quiet(bundle.horizon, 100).with_crashes(
        0.2,
        SimDuration::from_secs(40),
        FaultMode::Pause,
    );
    let plan = FaultPlan::generate(0xFA_17, 3, &fcfg);
    let failover = FailoverPolicy::Backoff(BackoffConfig::default());
    let cluster = ClusterConfig::new(3).with_seed(SEED);

    let sugar = cluster
        .build()
        .with_faults(&plan, failover)
        .run_unit(&bundle.trace, cfg, &unit_base())
        .unwrap()
        .into_faulty()
        .unwrap();
    let generic = cluster
        .build()
        .with_faults(&plan, failover)
        .run(&bundle.trace, cfg, |_, seed| {
            UnitPolicy::new(unit_base().with_seed(seed))
        })
        .unwrap()
        .into_faulty()
        .unwrap();
    assert_eq!(sugar.decisions, generic.decisions);
    assert_eq!(sugar.log, generic.log);
    assert_eq!(sugar.counts, generic.counts);
    for (s, g) in sugar
        .cluster
        .shard_reports
        .iter()
        .zip(&generic.cluster.shard_reports)
    {
        assert_eq!(report_digest(s), report_digest(g));
    }
}
