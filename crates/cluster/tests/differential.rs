//! Differential suite: a 1-shard cluster must be the single-server engine.
//!
//! With one shard, routing has a single eligible target for every query,
//! the trace slice is the global trace, and the shard policy is seeded
//! with `split_seed(seed, 0)` — so the shard's [`unit_sim::SimReport`]
//! must be **digest-bit-identical** to a plain [`unit_sim::run_simulation`]
//! over the same trace with the same policy and seed. This pins the
//! engine's step-API refactor (the cluster drives the exact code the
//! single-server `run` drives) across all 4 policies × 3 scheduling
//! disciplines × every routing policy on the golden fig3-style workload
//! at scale=8.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_cluster::{ClusterConfig, RoutingPolicy};
use unit_core::config::UnitConfig;
use unit_core::policy::Policy;
use unit_core::split_seed;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_sim::{report_digest, run_simulation, SchedulingDiscipline, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0001;

/// The golden workload at scale=8: fig3's med-unif bundle, mirroring
/// `unit_bench::default_workload_plan(8)` (not imported — that would make
/// the cluster tests depend on the bench crate).
fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration, discipline: SchedulingDiscipline) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
        .with_discipline(discipline)
}

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// Run the differential for one policy constructor: for every discipline
/// and every routing policy, digest(1-shard cluster shard 0) ==
/// digest(single server) — where both sides build the policy through the
/// same `make` closure with the same split seed.
fn differential<P: Policy + Send>(policy_name: &str, make: impl Fn(u64) -> P + Sync) {
    let bundle = golden_bundle();
    let mut failures = Vec::new();
    for (discipline, dname) in DISCIPLINES {
        let cfg = sim_config(bundle.horizon, discipline);
        let single = run_simulation(&bundle.trace, make(split_seed(SEED, 0)), cfg);
        let single_digest = report_digest(&single);
        for routing in RoutingPolicy::ALL {
            let cluster_cfg = ClusterConfig::new(1).with_routing(routing).with_seed(SEED);
            let report = cluster_cfg
                .build()
                .run(&bundle.trace, cfg, |_, seed| make(seed))
                .expect("valid cluster config")
                .into_plain()
                .expect("fault-free run");
            let shard_digest = report_digest(&report.shard_reports[0]);
            if shard_digest != single_digest {
                failures.push(format!(
                    "{policy_name}/{dname}/{}: shard digest {shard_digest:#018x} != \
                     single-server {single_digest:#018x} (usm {} vs {})",
                    routing.name(),
                    report.shard_reports[0].average_usm(),
                    single.average_usm(),
                ));
            }
            // The cluster tally is the shard tally — same queries, same
            // outcomes — so the cluster USM matches bitwise too.
            assert_eq!(
                report.average_usm().to_bits(),
                single.average_usm().to_bits(),
                "{policy_name}/{dname}/{}: cluster USM diverged",
                routing.name()
            );
        }
    }
    assert!(
        failures.is_empty(),
        "1-shard cluster diverged from the single-server engine:\n{}",
        failures.join("\n")
    );
}

#[test]
fn one_shard_cluster_is_bit_identical_imu() {
    differential("IMU", |_| ImuPolicy::new());
}

#[test]
fn one_shard_cluster_is_bit_identical_odu() {
    differential("ODU", |_| OduPolicy::new());
}

#[test]
fn one_shard_cluster_is_bit_identical_qmf() {
    differential("QMF", |_| QmfPolicy::default());
}

#[test]
fn one_shard_cluster_is_bit_identical_unit() {
    differential("UNIT", |seed| {
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed))
    });
}

#[test]
fn eight_shard_fig3_scale_run_completes() {
    // The ISSUE's acceptance smoke: an 8-shard fig3-scale cluster run
    // completes and accounts for every query, under each routing policy.
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    for routing in RoutingPolicy::ALL {
        let cluster_cfg = ClusterConfig::new(8).with_routing(routing).with_seed(SEED);
        let report = cluster_cfg
            .build()
            .run(&bundle.trace, cfg, |_, seed| {
                UnitPolicy::new(
                    UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed),
                )
            })
            .expect("valid cluster config")
            .into_plain()
            .expect("fault-free run");
        assert_eq!(
            report.counts.total() as usize,
            bundle.trace.queries.len(),
            "{}",
            routing.name()
        );
        unit_cluster::check_cluster_identity(&report).unwrap();
    }
}
