//! Differential suite for the epoch-parallel execution mode.
//!
//! [`ExecutionMode::EpochParallel`] is documented as a pure wall-clock
//! knob: shards share no mutable state and pausing an engine at a
//! virtual-time boundary reorders nothing, so its output must be
//! bit-identical to [`ExecutionMode::WholeShard`] — for any worker count,
//! any epoch length, with faults installed, and with an observer watching.
//! This suite pins each of those claims on the golden fig3-style workload,
//! and re-pins the 1-shard ≡ single-server identity on the parallel path.

use unit_cluster::{BackoffConfig, ClusterConfig, ClusterReport, FailoverPolicy, RoutingPolicy};
use unit_core::config::UnitConfig;
use unit_core::split_seed;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_obs::Observer;
use unit_sim::{report_digest, run_simulation, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0002;

fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
}

fn unit_cfg() -> UnitConfig {
    UnitConfig::with_weights(UsmWeights::low_high_cfm())
}

fn run_mode(bundle: &TraceBundle, cluster: ClusterConfig) -> ClusterReport {
    cluster
        .build()
        .run_unit(&bundle.trace, sim_config(bundle.horizon), &unit_cfg())
        .expect("valid cluster config")
        .into_plain()
        .expect("fault-free run")
}

fn assert_reports_identical(a: &ClusterReport, b: &ClusterReport, what: &str) {
    assert_eq!(a.assignment, b.assignment, "{what}: assignment diverged");
    assert_eq!(a.counts, b.counts, "{what}: outcome tally diverged");
    assert_eq!(a.log, b.log, "{what}: merged log diverged");
    for (s, (ra, rb)) in a.shard_reports.iter().zip(&b.shard_reports).enumerate() {
        assert_eq!(
            report_digest(ra),
            report_digest(rb),
            "{what}: shard {s} digest diverged"
        );
    }
}

#[test]
fn epoch_parallel_is_bit_identical_to_whole_shard() {
    let bundle = golden_bundle();
    let epochs = [
        SimDuration::from_secs(10),    // one control tick per round
        SimDuration::from_secs(1_000), // many events per round
        bundle.horizon,                // degenerate: one round runs everything
    ];
    for routing in RoutingPolicy::ALL {
        for n_shards in [1usize, 4] {
            let base = ClusterConfig::new(n_shards)
                .with_routing(routing)
                .with_seed(SEED);
            let whole = run_mode(&bundle, base);
            for epoch in epochs {
                for workers in [1usize, 2, 0] {
                    let report = run_mode(&bundle, base.with_workers(workers).with_epoch(epoch));
                    assert_reports_identical(
                        &whole,
                        &report,
                        &format!(
                            "{}/{n_shards} shards/epoch {}s/{workers} workers",
                            routing.name(),
                            epoch.as_secs_f64()
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn one_shard_epoch_parallel_matches_single_server() {
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon);
    let single = run_simulation(
        &bundle.trace,
        UnitPolicy::new(unit_cfg().with_seed(split_seed(SEED, 0))),
        cfg,
    );
    let report = run_mode(
        &bundle,
        ClusterConfig::new(1)
            .with_seed(SEED)
            .with_epoch(SimDuration::from_secs(50)),
    );
    assert_eq!(
        report_digest(&report.shard_reports[0]),
        report_digest(&single),
        "1-shard epoch-parallel cluster diverged from the single-server engine"
    );
}

#[test]
fn epoch_parallel_with_faults_matches_whole_shard() {
    let bundle = golden_bundle();
    let fault_cfg = FaultConfig::quiet(bundle.horizon, bundle.trace.n_items).with_crashes(
        0.2,
        SimDuration::from_secs(2_000),
        FaultMode::Pause,
    );
    let plan = FaultPlan::generate(0xFA_17, 4, &fault_cfg);
    let failover = FailoverPolicy::Backoff(BackoffConfig::default());
    let base = ClusterConfig::new(4).with_seed(SEED);
    let run_with = |cluster: ClusterConfig| {
        cluster
            .build()
            .with_faults(&plan, failover)
            .run_unit(&bundle.trace, sim_config(bundle.horizon), &unit_cfg())
            .expect("valid cluster config")
            .into_faulty()
            .expect("faults installed")
    };
    let whole = run_with(base);
    for workers in [1usize, 0] {
        let epoch = run_with(
            base.with_workers(workers)
                .with_epoch(SimDuration::from_secs(100)),
        );
        assert_eq!(whole.decisions, epoch.decisions, "{workers} workers");
        assert_eq!(whole.counts, epoch.counts, "{workers} workers");
        assert_reports_identical(
            &whole.cluster,
            &epoch.cluster,
            &format!("faulty/{workers} workers"),
        );
    }
}

#[test]
fn epoch_parallel_observation_is_neutral_and_identical() {
    struct Collect(Vec<unit_obs::ObsEvent>);
    impl Observer for Collect {
        fn on_event(&mut self, event: &unit_obs::ObsEvent) {
            self.0.push(event.clone());
        }
    }
    let bundle = golden_bundle();
    let base = ClusterConfig::new(4).with_seed(SEED);
    let observed_run = |cluster: ClusterConfig| {
        let mut sink = Collect(Vec::new());
        let report = cluster
            .build()
            .with_observer(&mut sink)
            .run_unit(&bundle.trace, sim_config(bundle.horizon), &unit_cfg())
            .expect("valid cluster config")
            .into_plain()
            .expect("fault-free run");
        (report, sink.0)
    };
    let (whole, whole_events) = observed_run(base);
    let (epoch, epoch_events) = observed_run(base.with_epoch(SimDuration::from_secs(100)));
    assert_reports_identical(&whole, &epoch, "observed");
    assert_eq!(
        whole_events, epoch_events,
        "replayed observation streams diverged between execution modes"
    );
    // Observation stays passive on the parallel path too.
    let bare = run_mode(&bundle, base.with_epoch(SimDuration::from_secs(100)));
    assert_reports_identical(&bare, &epoch, "observer neutrality");
}

#[test]
fn filtered_updates_conserve_queries_but_change_digests() {
    let bundle = golden_bundle();
    let base = ClusterConfig::new(8).with_seed(SEED);
    let plain = run_mode(&bundle, base);
    let filtered = run_mode(&bundle, base.with_filtered_updates());
    // Same queries, same routing, every query still decided exactly once.
    assert_eq!(plain.assignment, filtered.assignment);
    assert_eq!(
        plain.counts.total(),
        filtered.counts.total(),
        "filtering must never drop queries"
    );
    unit_cluster::check_cluster_identity(&filtered).unwrap();
    // And the documented caveat holds: dropping unread streams changes at
    // least one shard's digest (less CPU contention on that shard).
    let diverged = plain
        .shard_reports
        .iter()
        .zip(&filtered.shard_reports)
        .any(|(a, b)| report_digest(a) != report_digest(b));
    assert!(
        diverged,
        "expected demand filtering to drop streams (and digests to move) at 8 shards"
    );
}
