//! Fault differential suite: the empty fault schedule is provably inert.
//!
//! A [`unit_cluster::ClusterRun`] with a [`FaultPlan::quiet`] plan
//! installs a fault hook on every shard and routes through the fault-aware
//! dispatcher — yet must produce **digest-bit-identical** shard reports,
//! the same assignment, the same merged log and the same tallies as the
//! plain fault-free run, for all 4 policies × 3 scheduling
//! disciplines × 3 routing policies on the golden fig3-style workload at
//! scale=8, under either failover policy and any worker count. This is the
//! contract that lets the fault machinery ship inside the main cluster
//! path without perturbing a single golden digest.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_cluster::{BackoffConfig, ClusterConfig, FailoverPolicy, RoutingPolicy};
use unit_core::config::UnitConfig;
use unit_core::policy::Policy;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_faults::FaultPlan;
use unit_sim::{report_digest, SchedulingDiscipline, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0001;
const N_SHARDS: usize = 2;

/// The golden workload at scale=8 (same bundle as `differential.rs`).
fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration, discipline: SchedulingDiscipline) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
        .with_discipline(discipline)
}

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// For every discipline × routing: quiet-plan fault cluster ==
/// plain cluster, shard digest for shard digest.
fn quiet_differential<P: Policy + Send>(
    policy_name: &str,
    failover: &FailoverPolicy,
    workers: usize,
    make: impl Fn(u64) -> P + Sync,
) {
    let bundle = golden_bundle();
    let plan = FaultPlan::quiet(N_SHARDS);
    let mut failures = Vec::new();
    for (discipline, dname) in DISCIPLINES {
        let cfg = sim_config(bundle.horizon, discipline);
        for routing in RoutingPolicy::ALL {
            let cluster_cfg = ClusterConfig::new(N_SHARDS)
                .with_routing(routing)
                .with_seed(SEED)
                .with_workers(workers);
            let plain = cluster_cfg
                .build()
                .run(&bundle.trace, cfg, |_, seed| make(seed))
                .expect("valid cluster config")
                .into_plain()
                .expect("fault-free run");
            let faulty = cluster_cfg
                .build()
                .with_faults(&plan, *failover)
                .run(&bundle.trace, cfg, |_, seed| make(seed))
                .expect("valid fault cluster config")
                .into_faulty()
                .expect("fault run");
            for shard in 0..N_SHARDS {
                let p = report_digest(&plain.shard_reports[shard]);
                let f = report_digest(&faulty.cluster.shard_reports[shard]);
                if p != f {
                    failures.push(format!(
                        "{policy_name}/{dname}/{}/shard{shard}: quiet-plan digest \
                         {f:#018x} != plain {p:#018x}",
                        routing.name()
                    ));
                }
            }
            assert_eq!(faulty.cluster.assignment, plain.assignment);
            assert_eq!(faulty.cluster.log, plain.log);
            assert_eq!(faulty.counts, plain.counts);
            assert_eq!(faulty.dispatcher_rejections(), 0);
            assert_eq!(faulty.total_retries(), 0);
            assert_eq!(
                faulty.average_usm().to_bits(),
                plain.average_usm().to_bits(),
                "{policy_name}/{dname}/{}: USM diverged under the quiet plan",
                routing.name()
            );
        }
    }
    assert!(
        failures.is_empty(),
        "the empty fault schedule was not inert:\n{}",
        failures.join("\n")
    );
}

#[test]
fn quiet_plan_is_inert_imu() {
    quiet_differential(
        "IMU",
        &FailoverPolicy::Backoff(BackoffConfig::default()),
        0,
        |_| ImuPolicy::new(),
    );
}

#[test]
fn quiet_plan_is_inert_odu() {
    quiet_differential(
        "ODU",
        &FailoverPolicy::Backoff(BackoffConfig::default()),
        0,
        |_| OduPolicy::new(),
    );
}

#[test]
fn quiet_plan_is_inert_qmf() {
    quiet_differential(
        "QMF",
        &FailoverPolicy::Backoff(BackoffConfig::default()),
        0,
        |_| QmfPolicy::default(),
    );
}

#[test]
fn quiet_plan_is_inert_unit() {
    quiet_differential(
        "UNIT",
        &FailoverPolicy::Backoff(BackoffConfig::default()),
        0,
        |seed| {
            UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed))
        },
    );
}

#[test]
fn quiet_plan_is_inert_for_no_retry_and_one_worker() {
    // The other axis of "any worker count, either failover policy": the
    // naive dispatcher on a single worker thread must be just as inert.
    quiet_differential("UNIT", &FailoverPolicy::NoRetry, 1, |seed| {
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed))
    });
}
