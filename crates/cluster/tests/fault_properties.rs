//! Property tests for the fault-injected cluster:
//!
//! (a) **conservation** — under any generated fault plan, every query is
//!     decided exactly once: shard outcomes plus dispatcher rejections
//!     total the trace's query count, with no duplicated or invented ids;
//! (b) **determinism** — a faulty run is bit-reproducible across reruns
//!     and across 1 vs N worker threads: same decisions, same merged
//!     history, same tallies;
//! (c) **health consistency** — no outcome is decided strictly inside a
//!     pause window and no query exceeds the retry budget (the packaged
//!     [`check_health_consistency`] invariant).

use proptest::prelude::*;
use unit_cluster::{
    check_health_consistency, BackoffConfig, ClusterConfig, FailoverPolicy, FaultClusterReport,
    RoutingPolicy,
};
use unit_core::config::UnitConfig;
use unit_core::time::SimDuration;
use unit_core::usm::{OutcomeCounts, UsmWeights};
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

#[derive(Debug, Clone)]
struct Scenario {
    bundle: TraceBundle,
    plan: FaultPlan,
    n_shards: usize,
    routing: RoutingPolicy,
    failover: FailoverPolicy,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (
            16usize..48,     // n_items
            60usize..160,    // n_queries
            2_000u64..6_000, // horizon seconds
            any::<u64>(),    // workload seed
        ),
        (
            1usize..4,    // n_shards
            0usize..3,    // routing policy index
            any::<u64>(), // run seed
        ),
        (
            1u32..30,      // crash rate percent
            5u64..60,      // mean window seconds
            any::<bool>(), // degraded-reads mode
            any::<u64>(),  // fault seed
        ),
        (
            0usize..6,     // stream faults
            0usize..4,     // bursts
            any::<bool>(), // backoff failover
        ),
    )
        .prop_map(
            |(
                (n_items, n_queries, horizon, wl_seed),
                (n_shards, routing, seed),
                (rate_pct, mean_window, degraded, fault_seed),
                (stream_faults, bursts, backoff),
            )| {
                let qcfg = QueryTraceConfig {
                    n_items,
                    n_queries,
                    horizon: SimDuration::from_secs(horizon),
                    seed: wl_seed,
                    ..QueryTraceConfig::default()
                };
                let ucfg =
                    UpdateTraceConfig::table1(UpdateVolume::Low, UpdateDistribution::Uniform)
                        .with_total((n_queries as u64 / 4).max(8));
                let bundle = TraceBundle::generate(&qcfg, &ucfg);
                let mode = if degraded {
                    FaultMode::DegradedReads
                } else {
                    FaultMode::Pause
                };
                let fcfg = FaultConfig::quiet(bundle.horizon, n_items)
                    .with_crashes(
                        f64::from(rate_pct) / 100.0,
                        SimDuration::from_secs(mean_window),
                        mode,
                    )
                    .with_stream_faults(
                        stream_faults,
                        SimDuration::from_secs(30),
                        SimDuration::from_secs(1),
                    )
                    .with_bursts(bursts, 3, SimDuration::from_secs(1));
                Scenario {
                    plan: FaultPlan::generate(fault_seed, n_shards, &fcfg),
                    bundle,
                    n_shards,
                    routing: RoutingPolicy::ALL[routing],
                    failover: if backoff {
                        FailoverPolicy::Backoff(BackoffConfig::default())
                    } else {
                        FailoverPolicy::NoRetry
                    },
                    seed,
                }
            },
        )
}

fn run(s: &Scenario, workers: usize) -> FaultClusterReport {
    let sim = unit_sim::SimConfig::new(s.bundle.horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10));
    let cluster = ClusterConfig::new(s.n_shards)
        .with_routing(s.routing)
        .with_seed(s.seed)
        .with_workers(workers);
    cluster
        .build()
        .with_faults(&s.plan, s.failover)
        .run_unit(
            &s.bundle.trace,
            sim,
            &UnitConfig::with_weights(UsmWeights::low_high_cfm()),
        )
        .expect("valid fault cluster config")
        .into_faulty()
        .expect("fault run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Conservation: every trace query decided exactly once across
    /// shard outcomes and dispatcher rejections.
    #[test]
    fn queries_are_conserved_under_faults(s in scenario_strategy()) {
        let report = run(&s, 0);
        let n_queries = s.bundle.trace.queries.len() as u64;
        prop_assert_eq!(report.counts.total(), n_queries);
        prop_assert_eq!(report.decisions.len() as u64, n_queries);
        prop_assert_eq!(report.log.len() as u64, n_queries);

        // No id lost, duplicated, or invented in the combined history.
        let mut logged: Vec<u64> = report.log.iter().map(|m| m.query.0).collect();
        logged.sort_unstable();
        let mut expected: Vec<u64> =
            s.bundle.trace.queries.iter().map(|q| q.id.0).collect();
        expected.sort_unstable();
        prop_assert_eq!(logged, expected);

        // Dispatcher entries are exactly the rejected decisions, and the
        // shard-level sub-report keeps its own identity.
        let pseudo = report.dispatcher_shard();
        let dispatcher_entries =
            report.log.iter().filter(|m| m.shard == pseudo).count() as u64;
        prop_assert_eq!(dispatcher_entries, report.dispatcher_rejections());
        unit_cluster::check_cluster_identity(&report.cluster)
            .map_err(TestCaseError::fail)?;

        // Combined counts recount exactly from the combined log.
        let mut recount = OutcomeCounts::default();
        for m in &report.log {
            recount.record(m.outcome);
        }
        prop_assert_eq!(recount, report.counts);
    }

    /// (b) Determinism: reruns and worker counts change nothing.
    #[test]
    fn faulty_runs_are_deterministic(s in scenario_strategy()) {
        let first = run(&s, 0);
        let again = run(&s, 0);
        prop_assert_eq!(&again.decisions, &first.decisions);
        prop_assert_eq!(&again.log, &first.log);
        prop_assert_eq!(again.counts, first.counts);
        let single_worker = run(&s, 1);
        prop_assert_eq!(&single_worker.decisions, &first.decisions);
        prop_assert_eq!(&single_worker.log, &first.log);
        prop_assert_eq!(single_worker.counts, first.counts);
        prop_assert_eq!(
            single_worker.average_usm().to_bits(),
            first.average_usm().to_bits()
        );
    }

    /// (c) Health consistency: no interior-of-pause-window outcomes, no
    /// budget overruns, exact accounting.
    #[test]
    fn health_consistency_holds(s in scenario_strategy()) {
        let report = run(&s, 0);
        check_health_consistency(&report, &s.plan, &s.failover)
            .map_err(TestCaseError::fail)?;
        // Spot-check the window invariant independently of the packaged
        // checker: shard outcomes never land strictly inside a pause
        // window of their shard.
        for m in &report.log {
            if m.shard >= s.n_shards {
                continue;
            }
            for w in &s.plan.shards[m.shard].crashes {
                if w.mode == FaultMode::Pause {
                    prop_assert!(
                        !(w.start < m.time && m.time < w.end),
                        "outcome at {:?} inside [{:?}, {:?}) on shard {}",
                        m.time, w.start, w.end, m.shard
                    );
                }
            }
        }
    }
}
