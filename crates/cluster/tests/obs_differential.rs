//! Observability digest-neutrality suite (DESIGN.md §6): installing a
//! recorder must not move a single bit of any report.
//!
//! Every engine emission site is gated on the presence of an observer, and
//! everything the observer sees is either a copy of state the engine
//! already computed or a drained side buffer the decision paths never
//! read. So for all 4 policies × 3 scheduling disciplines, single-server
//! and cluster, plain and fault-injected: `report_digest` with a
//! [`RingRecorder`] installed equals `report_digest` without one,
//! bit for bit — and the recorded stream itself is a pure function of the
//! run inputs (worker count invisible).

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_cluster::{BackoffConfig, ClusterConfig, FailoverPolicy, RoutingPolicy};
use unit_core::config::UnitConfig;
use unit_core::policy::Policy;
use unit_core::split_seed;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_obs::{ObsEvent, RingRecorder};
use unit_sim::{report_digest, SchedulingDiscipline, SimConfig, SimRun, Simulator};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0001;

/// The golden workload at scale=8 (same bundle as `differential.rs`).
fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration, discipline: SchedulingDiscipline) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
        .with_discipline(discipline)
}

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// Single server: digest(with recorder) == digest(without), and the
/// recorder actually saw the run.
fn single_server_neutrality<P: Policy>(policy_name: &str, make: impl Fn(u64) -> P) {
    let bundle = golden_bundle();
    for (discipline, dname) in DISCIPLINES {
        let cfg = sim_config(bundle.horizon, discipline);
        let seed = split_seed(SEED, 0);
        let quiet = Simulator::new(&bundle.trace, make(seed), cfg).run();
        let mut rec = RingRecorder::unbounded();
        let observed = SimRun::trace(&bundle.trace, make(seed), cfg)
            .with_observer(&mut rec)
            .run();
        assert_eq!(
            report_digest(&quiet),
            report_digest(&observed),
            "{policy_name}/{dname}: recorder moved the digest"
        );
        // The stream is real: one admission + one outcome per query, plus
        // a control tick per period.
        let admissions = rec
            .events()
            .filter(|e| matches!(e, ObsEvent::Admission { .. }))
            .count();
        let outcomes = rec
            .events()
            .filter(|e| matches!(e, ObsEvent::QueryOutcome { .. }))
            .count();
        let ticks = rec
            .events()
            .filter(|e| matches!(e, ObsEvent::ControlTick { .. }))
            .count();
        assert_eq!(
            admissions,
            bundle.trace.queries.len(),
            "{policy_name}/{dname}"
        );
        assert_eq!(
            outcomes,
            bundle.trace.queries.len(),
            "{policy_name}/{dname}"
        );
        assert!(
            ticks > 0,
            "{policy_name}/{dname}: no control ticks recorded"
        );
    }
}

#[test]
fn single_server_recorder_is_digest_neutral_imu() {
    single_server_neutrality("IMU", |_| ImuPolicy::new());
}

#[test]
fn single_server_recorder_is_digest_neutral_odu() {
    single_server_neutrality("ODU", |_| OduPolicy::new());
}

#[test]
fn single_server_recorder_is_digest_neutral_qmf() {
    single_server_neutrality("QMF", |_| QmfPolicy::default());
}

#[test]
fn single_server_recorder_is_digest_neutral_unit() {
    single_server_neutrality("UNIT", |seed| {
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed))
    });
}

/// Cluster, fault-free: digest-neutral per shard, merged history
/// untouched, and the observed stream is worker-count-invariant.
#[test]
fn cluster_recorder_is_digest_neutral_and_worker_invariant() {
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let base = UnitConfig::with_weights(UsmWeights::low_high_cfm());
    for routing in RoutingPolicy::ALL {
        let cluster = ClusterConfig::new(3).with_routing(routing).with_seed(SEED);
        let quiet = cluster
            .build()
            .run_unit(&bundle.trace, cfg, &base)
            .unwrap()
            .into_plain()
            .unwrap();
        let mut rec = RingRecorder::unbounded();
        let observed = cluster
            .build()
            .with_observer(&mut rec)
            .run_unit(&bundle.trace, cfg, &base)
            .unwrap()
            .into_plain()
            .unwrap();
        assert_eq!(quiet.log, observed.log, "{}", routing.name());
        assert_eq!(quiet.counts, observed.counts);
        for (q, o) in quiet.shard_reports.iter().zip(&observed.shard_reports) {
            assert_eq!(report_digest(q), report_digest(o), "{}", routing.name());
        }
        // Every query got a dispatcher route, and shard events are tagged.
        let routes = rec
            .events()
            .filter(|e| matches!(e, ObsEvent::DispatcherRoute { .. }))
            .count();
        assert_eq!(routes, bundle.trace.queries.len());
        assert!(rec.events().any(|e| matches!(e, ObsEvent::Shard { .. })));
        // Time-ordered stream (the replay's (time, lane, seq) sort).
        let stream = rec.into_events();
        assert!(stream.windows(2).all(|w| w[0].time() <= w[1].time()));

        // Worker count changes nothing in the observed stream.
        let mut rec1 = RingRecorder::unbounded();
        cluster
            .with_workers(1)
            .build()
            .with_observer(&mut rec1)
            .run_unit(&bundle.trace, cfg, &base)
            .unwrap();
        assert_eq!(stream, rec1.into_events(), "{}", routing.name());
    }
}

/// Cluster under a fault plan: digest-neutral, and the stream carries the
/// shard-health transitions the dispatcher saw.
#[test]
fn fault_cluster_recorder_is_digest_neutral() {
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let base = UnitConfig::with_weights(UsmWeights::low_high_cfm());
    let fcfg = FaultConfig::quiet(bundle.horizon, 100).with_crashes(
        0.25,
        SimDuration::from_secs(60),
        FaultMode::Pause,
    );
    let plan = FaultPlan::generate(0xFA_17, 3, &fcfg);
    assert!(!plan.is_empty());
    let failover = FailoverPolicy::Backoff(BackoffConfig::default());
    let cluster = ClusterConfig::new(3).with_seed(SEED);

    let quiet = cluster
        .build()
        .with_faults(&plan, failover)
        .run_unit(&bundle.trace, cfg, &base)
        .unwrap()
        .into_faulty()
        .unwrap();
    let mut rec = RingRecorder::unbounded();
    let observed = cluster
        .build()
        .with_faults(&plan, failover)
        .with_observer(&mut rec)
        .run_unit(&bundle.trace, cfg, &base)
        .unwrap()
        .into_faulty()
        .unwrap();
    assert_eq!(quiet.decisions, observed.decisions);
    assert_eq!(quiet.log, observed.log);
    assert_eq!(quiet.counts, observed.counts);
    for (q, o) in quiet
        .cluster
        .shard_reports
        .iter()
        .zip(&observed.cluster.shard_reports)
    {
        assert_eq!(report_digest(q), report_digest(o));
    }
    // The plan generated crash windows, so transitions must be visible.
    assert!(rec
        .events()
        .any(|e| matches!(e, ObsEvent::ShardHealth { .. })));
    let decided = rec
        .events()
        .filter(|e| {
            matches!(
                e,
                ObsEvent::DispatcherRoute { .. } | ObsEvent::DispatcherReject { .. }
            )
        })
        .count();
    assert_eq!(decided, bundle.trace.queries.len());
}
