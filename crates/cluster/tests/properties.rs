//! Property tests for the cluster layer (ISSUE 3, satellite 2):
//!
//! (a) **routing determinism** — the same seed + config yields an
//!     identical per-shard assignment across reruns and across 1 vs N
//!     worker threads;
//! (b) **conservation** — every generated query appears in exactly one
//!     shard's outcome log, and every update stream in exactly one
//!     shard's trace slice;
//! (c) **USM identity** — the cluster USM equals the USM recounted from
//!     the merged per-shard outcome logs to the last bit, and the
//!     query-count-weighted mean of per-shard USMs agrees to float
//!     round-off (the integer tallies underneath are exact).

use proptest::prelude::*;
use unit_cluster::{check_cluster_identity, ClusterConfig, RoutingPolicy};
use unit_core::config::UnitConfig;
use unit_core::time::SimDuration;
use unit_core::usm::{OutcomeCounts, UsmWeights};
use unit_workload::{
    slice_trace, ItemPartition, QueryTraceConfig, TraceBundle, UpdateDistribution,
    UpdateTraceConfig, UpdateVolume,
};

/// A small but non-trivial cluster scenario: workload shape, shard count,
/// routing policy, run seed.
#[derive(Debug, Clone)]
struct Scenario {
    bundle: TraceBundle,
    n_shards: usize,
    routing: RoutingPolicy,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (
            16usize..64,     // n_items
            60usize..220,    // n_queries
            3_000u64..9_000, // horizon seconds
            any::<u64>(),    // workload seed
        ),
        (
            1usize..5,    // n_shards
            0usize..3,    // routing policy index
            any::<u64>(), // run seed
        ),
    )
        .prop_map(
            |((n_items, n_queries, horizon, wl_seed), (n_shards, routing, seed))| {
                let qcfg = QueryTraceConfig {
                    n_items,
                    n_queries,
                    horizon: SimDuration::from_secs(horizon),
                    seed: wl_seed,
                    ..QueryTraceConfig::default()
                };
                let ucfg =
                    UpdateTraceConfig::table1(UpdateVolume::Low, UpdateDistribution::Uniform)
                        .with_total((n_queries as u64 / 4).max(8));
                Scenario {
                    bundle: TraceBundle::generate(&qcfg, &ucfg),
                    n_shards,
                    routing: RoutingPolicy::ALL[routing],
                    seed,
                }
            },
        )
}

fn run(s: &Scenario, workers: usize) -> unit_cluster::ClusterReport {
    let sim = unit_sim::SimConfig::new(s.bundle.horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10));
    let cluster = ClusterConfig::new(s.n_shards)
        .with_routing(s.routing)
        .with_seed(s.seed)
        .with_workers(workers);
    cluster
        .build()
        .run_unit(
            &s.bundle.trace,
            sim,
            &UnitConfig::with_weights(UsmWeights::low_high_cfm()),
        )
        .expect("valid cluster config")
        .into_plain()
        .expect("fault-free run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Same seed + config => identical assignment across 3 reruns and
    /// across 1 vs N worker threads — and not just the assignment: the
    /// whole merged history.
    #[test]
    fn routing_is_deterministic(s in scenario_strategy()) {
        let first = run(&s, 0); // one thread per shard
        for _ in 0..2 {
            let again = run(&s, 0);
            prop_assert_eq!(&again.assignment, &first.assignment);
            prop_assert_eq!(&again.log, &first.log);
        }
        let single_worker = run(&s, 1);
        prop_assert_eq!(&single_worker.assignment, &first.assignment);
        prop_assert_eq!(&single_worker.log, &first.log);
        prop_assert_eq!(single_worker.counts, first.counts);
        prop_assert_eq!(
            single_worker.average_usm().to_bits(),
            first.average_usm().to_bits()
        );
    }

    /// (b) Every query lands in exactly one shard's outcome log; every
    /// update stream in exactly one shard's trace slice.
    #[test]
    fn queries_and_updates_are_conserved(s in scenario_strategy()) {
        let report = run(&s, 0);

        // Queries: the merged log holds each generated query id once.
        let mut logged: Vec<u64> = report.log.iter().map(|m| m.query.0).collect();
        logged.sort_unstable();
        let mut expected: Vec<u64> =
            s.bundle.trace.queries.iter().map(|q| q.id.0).collect();
        expected.sort_unstable();
        prop_assert_eq!(logged, expected);

        // And each id is attributed to the shard the dispatcher chose.
        for m in &report.log {
            let idx = s.bundle.trace.queries.iter().position(|q| q.id == m.query);
            let idx = idx.ok_or_else(|| TestCaseError::fail("unknown query id"))?;
            prop_assert_eq!(report.assignment[idx], m.shard);
        }

        // Updates: re-derive the slices; stream ids partition exactly.
        let partition = ItemPartition::new(s.n_shards);
        let slices = slice_trace(&s.bundle.trace, &report.assignment, &partition)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut sliced: Vec<u32> = slices
            .iter()
            .flat_map(|t| t.updates.iter().map(|u| u.id.0))
            .collect();
        sliced.sort_unstable();
        let mut all: Vec<u32> = s.bundle.trace.updates.iter().map(|u| u.id.0).collect();
        all.sort_unstable();
        prop_assert_eq!(sliced, all);
        for (shard, slice) in slices.iter().enumerate() {
            for u in &slice.updates {
                prop_assert_eq!(partition.owner(u.item), shard);
            }
        }
    }

    /// (c) The cluster USM equals the merged-log recount to the last bit,
    /// and the query-weighted mean of shard USMs to float round-off.
    #[test]
    fn cluster_usm_identity(s in scenario_strategy()) {
        let report = run(&s, 0);

        // Bit-level: recount the merged log and price it identically.
        let mut recount = OutcomeCounts::default();
        for m in &report.log {
            recount.record(m.outcome);
        }
        prop_assert_eq!(recount, report.counts);
        prop_assert_eq!(
            recount.average_usm(&report.weights).to_bits(),
            report.average_usm().to_bits()
        );

        // Per-shard recounts match the shard reports exactly (integers).
        for (shard, sr) in report.shard_reports.iter().enumerate() {
            let mut c = OutcomeCounts::default();
            for m in report.log.iter().filter(|m| m.shard == shard) {
                c.record(m.outcome);
            }
            prop_assert_eq!(c, sr.counts);
        }

        // Float layer: the weighted mean agrees to round-off.
        let weighted = report.query_weighted_shard_usm();
        prop_assert!(
            (weighted - report.average_usm()).abs()
                <= 1e-9 * report.average_usm().abs().max(1.0),
            "weighted {} vs cluster {}",
            weighted,
            report.average_usm()
        );

        // And the packaged checker agrees with all of the above.
        check_cluster_identity(&report).map_err(TestCaseError::fail)?;
    }
}
