//! Cluster-level recovery differential (DESIGN.md §4b): shards that crash
//! with lose-state semantics — dropping all volatile state, restoring the
//! last control-boundary checkpoint, and replaying the lost window — must
//! leave the merged cluster report bit-identical to the fault-free run.
//!
//! A [`FaultMode::CrashLoseState`] window never reads as unhealthy (the
//! recovery is instantaneous in virtual time), so the dispatcher routes
//! exactly as the plain assigner does and the only moving part is each
//! crashed shard's checkpoint/restore/replay cycle. That makes the plain
//! run a valid reference: health-Up fault transitions are digest-neutral.
//! The claim is pinned across worker counts {0, 1} and both execution
//! modes (whole-shard and epoch-parallel), and the per-shard obs streams
//! are checked for the checkpoint → restore → replay event arc.

use unit_cluster::{
    check_health_consistency, BackoffConfig, ClusterConfig, ClusterReport, FailoverPolicy,
    FaultClusterReport, RouteDecision,
};
use unit_core::config::UnitConfig;
use unit_core::time::{SimDuration, SimTime};
use unit_core::usm::UsmWeights;
use unit_faults::{CrashWindow, FaultMode, FaultPlan, FaultSchedule};
use unit_obs::{ObsEvent, Observer, RingRecorder};
use unit_sim::{report_digest, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0003;
const N_SHARDS: usize = 4;

fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
}

fn unit_cfg() -> UnitConfig {
    UnitConfig::with_weights(UsmWeights::low_high_cfm())
}

fn crash_window(at: SimTime) -> CrashWindow {
    CrashWindow {
        start: at,
        end: SimTime(at.0 + SimDuration::from_secs(1).0),
        mode: FaultMode::CrashLoseState,
    }
}

/// Shards 0 and 2 crash (twice and once); shards 1 and 3 stay quiet.
/// Instants sit off the 10s control-tick grid so every replay window
/// spans real work.
fn crash_plan(horizon: SimDuration) -> FaultPlan {
    let mut plan = FaultPlan::quiet(N_SHARDS);
    plan.shards[0] = FaultSchedule {
        crashes: vec![
            crash_window(SimTime(horizon.0 * 2 / 5 + 1)),
            crash_window(SimTime(horizon.0 * 7 / 10 + 3)),
        ],
        ..FaultSchedule::default()
    };
    plan.shards[2] = FaultSchedule {
        crashes: vec![crash_window(SimTime(horizon.0 / 2 + 7))],
        ..FaultSchedule::default()
    };
    plan
}

/// Expected recoveries per shard under [`crash_plan`].
const EXPECTED_RECOVERIES: [u64; N_SHARDS] = [2, 0, 1, 0];

fn base_cluster() -> ClusterConfig {
    ClusterConfig::new(N_SHARDS).with_seed(SEED)
}

fn run_plain(bundle: &TraceBundle, cluster: ClusterConfig) -> ClusterReport {
    cluster
        .build()
        .run_unit(&bundle.trace, sim_config(bundle.horizon), &unit_cfg())
        .expect("valid cluster config")
        .into_plain()
        .expect("fault-free run")
}

fn run_crashed(
    bundle: &TraceBundle,
    cluster: ClusterConfig,
    plan: &FaultPlan,
) -> FaultClusterReport {
    cluster
        .build()
        .with_faults(plan, FailoverPolicy::Backoff(BackoffConfig::default()))
        .run_unit(&bundle.trace, sim_config(bundle.horizon), &unit_cfg())
        .expect("valid cluster config")
        .into_faulty()
        .expect("fault plan installed")
}

fn assert_recovery_invisible(plain: &ClusterReport, crashed: &FaultClusterReport, what: &str) {
    let c = &crashed.cluster;
    assert_eq!(
        plain.assignment, c.assignment,
        "{what}: assignment diverged"
    );
    assert_eq!(plain.counts, c.counts, "{what}: outcome tally diverged");
    assert_eq!(plain.log, c.log, "{what}: merged log diverged");
    assert_eq!(
        plain.counts, crashed.counts,
        "{what}: dispatcher folded in rejections for healthy shards"
    );
    for (s, (rp, rc)) in plain.shard_reports.iter().zip(&c.shard_reports).enumerate() {
        assert_eq!(
            report_digest(rp),
            report_digest(rc),
            "{what}: shard {s} diverged from its uncrashed twin"
        );
        assert_eq!(
            rc.faults.recoveries, EXPECTED_RECOVERIES[s],
            "{what}: shard {s} recovery count"
        );
    }
    // Crashes are invisible to the dispatcher too: every query routes at
    // its arrival with zero retries, exactly like the plain assigner.
    for (q, d) in plain.assignment.iter().zip(&crashed.decisions) {
        match *d {
            RouteDecision::Routed { shard, retries, .. } => {
                assert_eq!(shard, *q, "{what}: routing diverged");
                assert_eq!(retries, 0, "{what}: a healthy shard cost retries");
            }
            RouteDecision::Rejected { .. } => {
                panic!("{what}: dispatcher rejected a query with every shard up")
            }
        }
    }
}

#[test]
fn cluster_recovery_is_invisible_across_workers_and_modes() {
    let bundle = golden_bundle();
    let plan = crash_plan(bundle.horizon);
    plan.validate_against_horizon(SimTime(bundle.horizon.0))
        .expect("every crash must be reachable");
    let plain = run_plain(&bundle, base_cluster());

    for workers in [0usize, 1] {
        let crashed = run_crashed(&bundle, base_cluster().with_workers(workers), &plan);
        assert_recovery_invisible(&plain, &crashed, &format!("whole-shard/workers={workers}"));
        check_health_consistency(
            &crashed,
            &plan,
            &FailoverPolicy::Backoff(BackoffConfig::default()),
        )
        .expect("health consistency");

        let crashed_epoch = run_crashed(
            &bundle,
            base_cluster()
                .with_workers(workers)
                .with_epoch(SimDuration::from_secs(100)),
            &plan,
        );
        assert_recovery_invisible(
            &plain,
            &crashed_epoch,
            &format!("epoch-100s/workers={workers}"),
        );
    }
}

#[test]
fn crashed_shards_emit_the_checkpoint_event_arc() {
    let bundle = golden_bundle();
    let plan = crash_plan(bundle.horizon);
    let mut rec = RingRecorder::unbounded();
    let crashed = base_cluster()
        .with_workers(1)
        .with_epoch(SimDuration::from_secs(100))
        .build()
        .with_faults(&plan, FailoverPolicy::Backoff(BackoffConfig::default()))
        .with_observer(&mut rec)
        .run_unit(&bundle.trace, sim_config(bundle.horizon), &unit_cfg())
        .expect("valid cluster config")
        .into_faulty()
        .expect("fault plan installed");
    for (s, r) in crashed.cluster.shard_reports.iter().enumerate() {
        assert_eq!(r.faults.recoveries, EXPECTED_RECOVERIES[s]);
    }

    // Unwrap the per-shard lanes of the merged stream.
    let mut taken = vec![Vec::new(); N_SHARDS];
    let mut restores = vec![Vec::new(); N_SHARDS];
    let mut replays = [0usize; N_SHARDS];
    for ev in rec.events() {
        if let ObsEvent::Shard { shard, event, .. } = ev {
            let s = *shard as usize;
            match **event {
                ObsEvent::CheckpointTaken { time, bytes } => {
                    assert!(bytes > 0, "a checkpoint is never empty");
                    taken[s].push(time);
                }
                ObsEvent::RestoreBegin { time, checkpoint } => {
                    restores[s].push((time, checkpoint));
                }
                ObsEvent::ReplayComplete { .. } => replays[s] += 1,
                _ => {}
            }
        }
    }
    for (s, sched) in plan.shards.iter().enumerate() {
        let crashes: Vec<SimTime> = sched.crashes.iter().map(|w| w.start).collect();
        assert_eq!(
            restores[s].iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            crashes,
            "shard {s}: one restore per crash instant"
        );
        assert_eq!(replays[s], crashes.len(), "shard {s}: every replay closes");
        if crashes.is_empty() {
            assert!(taken[s].is_empty(), "quiet shard {s} must not checkpoint");
        } else {
            for &(crash, ckpt) in &restores[s] {
                assert!(ckpt <= crash, "shard {s}: restores rewind");
                assert!(
                    taken[s].contains(&ckpt),
                    "shard {s}: restored from a taken checkpoint"
                );
            }
        }
    }
}

/// The replayed observer stream for a crashed cluster stays coherent: the
/// merge is ordered by `(time, lane, seq)` even though a crashed shard's
/// local stream rewinds at each restore.
#[test]
fn crashed_cluster_replay_stream_is_time_ordered_per_merge_key() {
    struct OrderCheck {
        last: Option<SimTime>,
        rewinds: u64,
    }
    impl Observer for OrderCheck {
        fn on_event(&mut self, event: &ObsEvent) {
            let t = event.time();
            if let Some(last) = self.last {
                if t < last {
                    self.rewinds += 1;
                }
            }
            self.last = Some(t);
        }
    }
    let bundle = golden_bundle();
    let plan = crash_plan(bundle.horizon);
    let mut check = OrderCheck {
        last: None,
        rewinds: 0,
    };
    base_cluster()
        .build()
        .with_faults(&plan, FailoverPolicy::Backoff(BackoffConfig::default()))
        .with_observer(&mut check)
        .run_unit(&bundle.trace, sim_config(bundle.horizon), &unit_cfg())
        .expect("valid cluster config");
    assert_eq!(
        check.rewinds, 0,
        "merged stream must be globally time-sorted despite shard rewinds"
    );
}
