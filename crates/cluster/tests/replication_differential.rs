//! Replication differential suite: `factor == 1` is provably inert.
//!
//! A [`unit_cluster::ClusterRun`] with replication at factor 1 builds the
//! full replica machinery — a [`unit_cluster::ReplicaSets`], the
//! replica-aware routing prologue, replicated trace slicing — yet every
//! item's replica set is exactly its leader, the propagation schedule is
//! empty, and the candidate pools collapse to the owner shard. So the run
//! must be **digest-bit-identical** to today's partition-only cluster:
//! same shard digests, same assignment, same merged log and tallies, for
//! all 4 policies × 3 scheduling disciplines × 3 routing policies on the
//! golden fig3-style workload at scale=8, plain and under a fault plan,
//! for ≥2 worker counts and in epoch-parallel mode. This is the contract
//! that lets the replication layer ship inside the main cluster path
//! without perturbing a single golden digest.

use unit_baselines::{ImuPolicy, OduPolicy, QmfPolicy};
use unit_cluster::{
    BackoffConfig, ClusterConfig, FailoverPolicy, PropagationLag, ReplicaPlacement,
    ReplicationConfig, RoutingPolicy,
};
use unit_core::config::UnitConfig;
use unit_core::policy::Policy;
use unit_core::time::SimDuration;
use unit_core::unit_policy::UnitPolicy;
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_sim::{report_digest, SchedulingDiscipline, SimConfig};
use unit_workload::{
    QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig, UpdateVolume,
};

const SCALE: u64 = 8;
const SEED: u64 = 0x5EED_0001;
const N_SHARDS: usize = 2;

/// The golden workload at scale=8 (same bundle as `differential.rs`).
fn golden_bundle() -> TraceBundle {
    let qcfg = QueryTraceConfig::default().scaled_down(SCALE);
    let ucfg = UpdateTraceConfig::table1(UpdateVolume::Med, UpdateDistribution::Uniform)
        .with_total((UpdateVolume::Med.total_updates() / SCALE).max(1));
    TraceBundle::generate(&qcfg, &ucfg)
}

fn sim_config(horizon: SimDuration, discipline: SchedulingDiscipline) -> SimConfig {
    SimConfig::new(horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
        .with_discipline(discipline)
}

const DISCIPLINES: [(SchedulingDiscipline, &str); 3] = [
    (SchedulingDiscipline::DualPriorityEdf, "dual"),
    (SchedulingDiscipline::GlobalEdf, "global"),
    (SchedulingDiscipline::QueryFirst, "qfirst"),
];

/// Factor-1 configs that must all be inert: the bare default, and one
/// with a jittered lag schedule (no follower slots exist to delay, so the
/// lag knob must be unobservable too).
fn inert_replications() -> [ReplicationConfig; 2] {
    [
        ReplicationConfig::new(1),
        ReplicationConfig::new(1)
            .with_placement(ReplicaPlacement::Strided { stride: 3 })
            .with_lag(PropagationLag::jittered(
                SimDuration::from_secs(30),
                SimDuration::from_secs(90),
                4,
            )),
    ]
}

/// For every discipline × routing × worker count: replicated run at
/// factor 1 == plain run, shard digest for shard digest, plus the merged
/// artifacts and the (empty) replication report.
fn factor_one_differential<P: Policy + Send>(policy_name: &str, make: impl Fn(u64) -> P + Sync) {
    let bundle = golden_bundle();
    let mut failures = Vec::new();
    for (discipline, dname) in DISCIPLINES {
        let cfg = sim_config(bundle.horizon, discipline);
        for routing in RoutingPolicy::ALL {
            let cluster_cfg = ClusterConfig::new(N_SHARDS)
                .with_routing(routing)
                .with_seed(SEED);
            let plain = cluster_cfg
                .build()
                .run(&bundle.trace, cfg, |_, seed| make(seed))
                .expect("valid cluster config")
                .into_plain()
                .expect("fault-free run");
            for rep in inert_replications() {
                for workers in [0usize, 1] {
                    let replicated = cluster_cfg
                        .with_workers(workers)
                        .build()
                        .with_replication(rep)
                        .run(&bundle.trace, cfg, |_, seed| make(seed))
                        .expect("valid replicated config")
                        .into_plain()
                        .expect("fault-free run");
                    for shard in 0..N_SHARDS {
                        let p = report_digest(&plain.shard_reports[shard]);
                        let r = report_digest(&replicated.shard_reports[shard]);
                        if p != r {
                            failures.push(format!(
                                "{policy_name}/{dname}/{}/w{workers}/shard{shard}: \
                                 factor-1 digest {r:#018x} != plain {p:#018x}",
                                routing.name()
                            ));
                        }
                    }
                    assert_eq!(replicated.assignment, plain.assignment);
                    assert_eq!(replicated.log, plain.log);
                    assert_eq!(replicated.counts, plain.counts);
                    assert_eq!(
                        replicated.average_usm().to_bits(),
                        plain.average_usm().to_bits(),
                        "{policy_name}/{dname}/{}: USM diverged at factor 1",
                        routing.name()
                    );
                    // The replica layer ran — it reports — but saw nothing.
                    let rep_report = replicated
                        .replication
                        .as_ref()
                        .expect("replicated run carries a replication report");
                    assert_eq!(rep_report.factor, 1);
                    assert!(rep_report.propagation.is_empty());
                    assert!(rep_report.routes.is_empty());
                    assert!(rep_report.promotions.is_empty());
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "factor-1 replication diverged from the plain cluster:\n{}",
        failures.join("\n")
    );
}

#[test]
fn factor_one_is_bit_identical_imu() {
    factor_one_differential("IMU", |_| ImuPolicy::new());
}

#[test]
fn factor_one_is_bit_identical_odu() {
    factor_one_differential("ODU", |_| OduPolicy::new());
}

#[test]
fn factor_one_is_bit_identical_qmf() {
    factor_one_differential("QMF", |_| QmfPolicy::default());
}

#[test]
fn factor_one_is_bit_identical_unit() {
    factor_one_differential("UNIT", |seed| {
        UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed))
    });
}

fn unit_policy(seed: u64) -> UnitPolicy {
    UnitPolicy::new(UnitConfig::with_weights(UsmWeights::low_high_cfm()).with_seed(seed))
}

#[test]
fn factor_one_is_bit_identical_under_faults() {
    // Same inertness with a live fault plan: crashes reroute queries and
    // pause shards, and factor-1 replication must not move a single
    // verdict or outcome relative to the non-replicated fault path.
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let fcfg = FaultConfig::quiet(bundle.horizon, bundle.trace.n_items).with_crashes(
        0.2,
        SimDuration::from_secs(400),
        FaultMode::Pause,
    );
    let plan = FaultPlan::generate(0xFA_17, N_SHARDS, &fcfg);
    assert!(
        !plan.is_empty(),
        "the fault plan must actually crash shards"
    );
    let failover = FailoverPolicy::Backoff(BackoffConfig::default());
    for routing in RoutingPolicy::ALL {
        let cluster_cfg = ClusterConfig::new(N_SHARDS)
            .with_routing(routing)
            .with_seed(SEED);
        let plain = cluster_cfg
            .build()
            .with_faults(&plan, failover)
            .run(&bundle.trace, cfg, |_, seed| unit_policy(seed))
            .expect("valid fault config")
            .into_faulty()
            .expect("fault run");
        for workers in [0usize, 1] {
            let replicated = cluster_cfg
                .with_workers(workers)
                .build()
                .with_faults(&plan, failover)
                .with_replication(ReplicationConfig::new(1))
                .run(&bundle.trace, cfg, |_, seed| unit_policy(seed))
                .expect("valid replicated fault config")
                .into_faulty()
                .expect("fault run");
            for shard in 0..N_SHARDS {
                assert_eq!(
                    report_digest(&replicated.cluster.shard_reports[shard]),
                    report_digest(&plain.cluster.shard_reports[shard]),
                    "{}/w{workers}/shard{shard}",
                    routing.name()
                );
            }
            assert_eq!(replicated.decisions, plain.decisions);
            assert_eq!(replicated.cluster.assignment, plain.cluster.assignment);
            assert_eq!(replicated.cluster.log, plain.cluster.log);
            assert_eq!(replicated.counts, plain.counts);
            let rep_report = replicated
                .cluster
                .replication
                .as_ref()
                .expect("replication report");
            assert!(rep_report.propagation.is_empty());
            assert!(rep_report.promotions.is_empty());
        }
    }
}

#[test]
fn factor_one_is_bit_identical_in_epoch_mode() {
    // Epoch-parallel stepping with replication installed: still the plain
    // whole-shard digests, for two epoch sizes and two worker counts.
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    let base = ClusterConfig::new(N_SHARDS)
        .with_routing(RoutingPolicy::FreshnessAware)
        .with_seed(SEED);
    let plain = base
        .build()
        .run(&bundle.trace, cfg, |_, seed| unit_policy(seed))
        .expect("valid cluster config")
        .into_plain()
        .expect("fault-free run");
    for epoch_secs in [97u64, 1_000] {
        for workers in [0usize, 2] {
            let replicated = base
                .with_epoch(SimDuration::from_secs(epoch_secs))
                .with_workers(workers)
                .build()
                .with_replication(ReplicationConfig::new(1))
                .run(&bundle.trace, cfg, |_, seed| unit_policy(seed))
                .expect("valid replicated config")
                .into_plain()
                .expect("fault-free run");
            for shard in 0..N_SHARDS {
                assert_eq!(
                    report_digest(&replicated.shard_reports[shard]),
                    report_digest(&plain.shard_reports[shard]),
                    "epoch={epoch_secs}s w={workers} shard{shard}"
                );
            }
            assert_eq!(replicated.log, plain.log);
            assert_eq!(replicated.counts, plain.counts);
        }
    }
}

#[test]
fn replicated_cluster_conserves_queries_and_propagates() {
    // Factor > 1 with real lag: not bit-equal to the plain cluster (that
    // is the point), but every query is still decided exactly once, the
    // merged identity holds, and the propagation log is non-trivial.
    let bundle = golden_bundle();
    let cfg = sim_config(bundle.horizon, SchedulingDiscipline::DualPriorityEdf);
    for routing in RoutingPolicy::ALL {
        let rep = ReplicationConfig::new(2).with_lag(PropagationLag::jittered(
            SimDuration::from_secs(60),
            SimDuration::from_secs(120),
            4,
        ));
        let report = ClusterConfig::new(4)
            .with_routing(routing)
            .with_seed(SEED)
            .with_replication(rep)
            .build()
            .run(&bundle.trace, cfg, |_, seed| unit_policy(seed))
            .expect("valid replicated config")
            .into_plain()
            .expect("fault-free run");
        assert_eq!(
            report.counts.total() as usize,
            bundle.trace.queries.len(),
            "{}",
            routing.name()
        );
        unit_cluster::check_cluster_identity(&report).unwrap();
        let rep_report = report.replication.as_ref().expect("replication report");
        assert_eq!(rep_report.factor, 2);
        assert!(
            !rep_report.propagation.is_empty(),
            "{}: updates must propagate to followers",
            routing.name()
        );
        // Bit-reproducible for any worker count, replication included.
        let again = ClusterConfig::new(4)
            .with_routing(routing)
            .with_seed(SEED)
            .with_replication(ReplicationConfig::new(2).with_lag(PropagationLag::jittered(
                SimDuration::from_secs(60),
                SimDuration::from_secs(120),
                4,
            )))
            .with_workers(1)
            .build()
            .run(&bundle.trace, cfg, |_, seed| unit_policy(seed))
            .expect("valid replicated config")
            .into_plain()
            .expect("fault-free run");
        assert_eq!(again.log, report.log);
        assert_eq!(again.counts, report.counts);
        assert_eq!(again.replication, report.replication);
    }
}
