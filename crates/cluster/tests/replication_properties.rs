//! Property tests for the replication layer (and its merge/obs plumbing):
//!
//! (a) **update conservation** — replicated slicing puts each update
//!     stream on exactly its item's replica set: `factor` copies, one per
//!     hosting shard, leader included;
//! (b) **lag-estimate soundness** — at any instant the dispatcher's
//!     claimed in-transit bound dominates the true emitted-minus-delivered
//!     backlog, for every item and follower slot;
//! (c) **determinism** — a replicated run (merged log, tallies,
//!     replication report, and the full observed event stream) is
//!     bit-identical across reruns, worker counts, and epoch stepping;
//! (d) **promotion uniqueness** — promotions only ever name a live
//!     follower of the item, deduplicate to target changes, and originate
//!     from the item's leader.

use proptest::prelude::*;
use unit_cluster::{
    BackoffConfig, ClusterConfig, FailoverPolicy, PropagationLag, ReplicaSets, ReplicationConfig,
    RoutingPolicy,
};
use unit_core::config::UnitConfig;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::DataId;
use unit_core::usm::UsmWeights;
use unit_faults::{FaultConfig, FaultMode, FaultPlan};
use unit_obs::RingRecorder;
use unit_sim::SimConfig;
use unit_workload::{
    slice_trace_replicated, QueryTraceConfig, TraceBundle, UpdateDistribution, UpdateTraceConfig,
    UpdateVolume,
};

/// A replicated cluster scenario: workload shape, shard count, factor,
/// lag schedule, routing, run seed.
#[derive(Debug, Clone)]
struct Scenario {
    bundle: TraceBundle,
    n_shards: usize,
    routing: RoutingPolicy,
    seed: u64,
    replication: ReplicationConfig,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (
            16usize..48,     // n_items
            50usize..160,    // n_queries
            3_000u64..8_000, // horizon seconds
            any::<u64>(),    // workload seed
        ),
        (
            2usize..5,    // n_shards
            0usize..3,    // routing policy index
            any::<u64>(), // run seed
        ),
        (
            1usize..3, // extra replicas (factor - 1, capped below)
            0u64..300, // base lag seconds
            0u64..600, // jitter seconds
            1usize..5, // jitter windows
        ),
    )
        .prop_map(
            |(
                (n_items, n_queries, horizon, wl_seed),
                (n_shards, routing, seed),
                (extra, base, jitter, windows),
            )| {
                let qcfg = QueryTraceConfig {
                    n_items,
                    n_queries,
                    horizon: SimDuration::from_secs(horizon),
                    seed: wl_seed,
                    ..QueryTraceConfig::default()
                };
                let ucfg =
                    UpdateTraceConfig::table1(UpdateVolume::Low, UpdateDistribution::Uniform)
                        .with_total((n_queries as u64 / 4).max(8));
                let factor = (1 + extra).min(n_shards);
                let replication =
                    ReplicationConfig::new(factor).with_lag(PropagationLag::jittered(
                        SimDuration::from_secs(base),
                        SimDuration::from_secs(jitter),
                        windows,
                    ));
                Scenario {
                    bundle: TraceBundle::generate(&qcfg, &ucfg),
                    n_shards,
                    routing: RoutingPolicy::ALL[routing],
                    seed,
                    replication,
                }
            },
        )
}

fn sim_cfg(s: &Scenario) -> SimConfig {
    SimConfig::new(s.bundle.horizon)
        .with_weights(UsmWeights::low_high_cfm())
        .with_tick_period(SimDuration::from_secs(10))
}

fn cluster_cfg(s: &Scenario) -> ClusterConfig {
    ClusterConfig::new(s.n_shards)
        .with_routing(s.routing)
        .with_seed(s.seed)
        .with_replication(s.replication)
}

/// Run the scenario with an observer attached, returning the report and
/// the full replayed event stream.
fn run_observed(
    s: &Scenario,
    cfg: ClusterConfig,
) -> (unit_cluster::ClusterReport, Vec<unit_obs::ObsEvent>) {
    let mut rec = RingRecorder::unbounded();
    let report = cfg
        .build()
        .with_observer(&mut rec)
        .run_unit(
            &s.bundle.trace,
            sim_cfg(s),
            &UnitConfig::with_weights(UsmWeights::low_high_cfm()),
        )
        .expect("valid replicated config")
        .into_plain()
        .expect("fault-free run");
    (report, rec.into_events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Replicated slicing is conservation with multiplicity `factor`:
    /// each stream lands once on every shard of its item's replica set
    /// and nowhere else, and the fanout accounting closes.
    #[test]
    fn updates_are_conserved_across_replicas(s in scenario_strategy()) {
        let (report, _) = run_observed(&s, cluster_cfg(&s));
        let map = s.replication.replica_map(s.n_shards);
        let (slices, fanout) =
            slice_trace_replicated(&s.bundle.trace, &report.assignment, &map, false)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let factor = map.factor();
        for u in &s.bundle.trace.updates {
            let replicas: Vec<usize> = map.replicas(u.item).collect();
            prop_assert_eq!(replicas.len(), factor);
            for (shard, slice) in slices.iter().enumerate() {
                let copies = slice.updates.iter().filter(|v| v.id == u.id).count();
                let hosts = replicas.contains(&shard);
                prop_assert_eq!(
                    copies,
                    usize::from(hosts),
                    "stream {} on shard {}: hosts={}",
                    u.id.0,
                    shard,
                    hosts
                );
            }
        }
        prop_assert_eq!(
            fanout.kept() + fanout.dropped_streams,
            s.bundle.trace.updates.len() * factor
        );
        prop_assert_eq!(fanout.dropped_streams, 0); // unfiltered
    }

    /// (b) The dispatcher's `Qu` arithmetic is sound at every instant it
    /// could be consulted: the claimed in-transit count dominates the true
    /// backlog `emitted - delivered`, and deliveries never outrun
    /// emissions.
    #[test]
    fn lag_estimates_are_sound(
        s in scenario_strategy(),
        probes in proptest::collection::vec(any::<u64>(), 8..17),
    ) {
        let sets = ReplicaSets::new(
            &s.bundle.trace,
            s.n_shards,
            &s.replication,
            s.seed,
            s.bundle.horizon,
        );
        let span = s.bundle.horizon.0 + s.replication.lag.max_lag().0 + 2;
        for &p in &probes {
            let t = SimTime(p % span);
            for item in 0..s.bundle.trace.n_items {
                let d = DataId(item as u32);
                let emitted = sets.emitted(d, t);
                let claimed = sets.claimed_transit(d, t);
                for k in 1..sets.factor() {
                    let delivered = sets.delivered(d, k, t);
                    prop_assert!(
                        delivered <= emitted,
                        "item {item} slot {k} t={}: delivered {delivered} > emitted {emitted}",
                        t.0
                    );
                    prop_assert!(
                        emitted - delivered <= claimed,
                        "item {item} slot {k} t={}: backlog {} exceeds claimed {claimed}",
                        t.0,
                        emitted - delivered
                    );
                }
            }
        }
    }

    /// (c) A replicated run is a pure function of `(trace, config, seed)`:
    /// reruns, a single worker, and epoch-parallel stepping all reproduce
    /// the merged log, the tallies, the replication report, and the
    /// byte-for-byte observed event stream — replica pseudo-lanes
    /// included. The merged artifacts are also totally ordered on their
    /// documented keys.
    #[test]
    fn replicated_runs_are_deterministic(s in scenario_strategy()) {
        let base = cluster_cfg(&s);
        let (first, first_events) = run_observed(&s, base);
        let (rerun, rerun_events) = run_observed(&s, base);
        prop_assert_eq!(&rerun.log, &first.log);
        prop_assert_eq!(rerun.counts, first.counts);
        prop_assert_eq!(&rerun.replication, &first.replication);
        prop_assert_eq!(&rerun_events, &first_events);
        let (single, single_events) = run_observed(&s, base.with_workers(1));
        prop_assert_eq!(&single.assignment, &first.assignment);
        prop_assert_eq!(&single.log, &first.log);
        prop_assert_eq!(&single.replication, &first.replication);
        prop_assert_eq!(&single_events, &first_events);
        let (epoch, epoch_events) =
            run_observed(&s, base.with_epoch(SimDuration::from_secs(500)));
        prop_assert_eq!(&epoch.log, &first.log);
        prop_assert_eq!(&epoch.replication, &first.replication);
        prop_assert_eq!(&epoch_events, &first_events);

        // Total order of the merged history: (time, shard, seq) strictly
        // increasing; propagation: (time, follower lane, per-lane seq).
        for w in first.log.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                (a.time, a.shard, a.seq) < (b.time, b.shard, b.seq),
                "merged log out of order at t={}", b.time.0
            );
        }
        let rep = first.replication.as_ref()
            .ok_or_else(|| TestCaseError::fail("missing replication report"))?;
        let mut seqs = vec![0u64; s.n_shards];
        let mut last = None;
        for r in &rep.propagation {
            let key = (r.time, r.follower, seqs[r.follower]);
            seqs[r.follower] += 1;
            prop_assert!(
                last.map_or(true, |l| l < key),
                "propagation log out of order at t={}", r.time.0
            );
            last = Some(key);
        }
    }

    /// (d) Under leader crashes, every promotion is unique and well
    /// targeted: it originates from the item's leader, names a live
    /// follower replica, happens only while the leader is actually
    /// paused, and the log never holds duplicate records — and the whole
    /// promotion history is bit-reproducible across worker counts.
    #[test]
    fn promotions_are_unique_and_well_targeted(s in scenario_strategy()) {
        prop_assume!(s.replication.factor > 1);
        let fcfg = FaultConfig::quiet(s.bundle.horizon, s.bundle.trace.n_items)
            .with_crashes(0.3, SimDuration::from_secs(400), FaultMode::Pause);
        let plan = FaultPlan::generate(s.seed ^ 0xFA_17, s.n_shards, &fcfg);
        let run = |workers: usize| {
            cluster_cfg(&s)
                .with_workers(workers)
                .build()
                .with_faults(&plan, FailoverPolicy::Backoff(BackoffConfig::default()))
                .run_unit(
                    &s.bundle.trace,
                    sim_cfg(&s),
                    &UnitConfig::with_weights(UsmWeights::low_high_cfm()),
                )
                .expect("valid replicated fault config")
                .into_faulty()
                .expect("fault run")
        };
        let report = run(0);
        let map = s.replication.replica_map(s.n_shards);
        let rep = report.cluster.replication.as_ref()
            .ok_or_else(|| TestCaseError::fail("missing replication report"))?;
        for p in &rep.promotions {
            prop_assert_eq!(p.from, map.leader(p.item), "promotion from a non-leader");
            prop_assert!(
                map.follows(p.to, p.item),
                "item {} promoted to shard {} which is not a follower",
                p.item.0,
                p.to
            );
            prop_assert!(
                plan.shards[p.from].health_at(p.time).queries_paused(),
                "item {} promoted at t={} while its leader {} was serving",
                p.item.0,
                p.time.0,
                p.from
            );
            prop_assert!(
                !plan.shards[p.to].health_at(p.time).queries_paused(),
                "item {} promoted at t={} onto paused shard {}",
                p.item.0,
                p.time.0,
                p.to
            );
        }
        // No exact duplicates: the dedup slate only re-admits a target
        // after the leader recovered, which is a different instant.
        let mut keys: Vec<_> = rep
            .promotions
            .iter()
            .map(|p| (p.time, p.item.0, p.to))
            .collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate promotion records");
        // And the history is worker-count invariant.
        let single = run(1);
        prop_assert_eq!(&single.cluster.replication, &report.cluster.replication);
        prop_assert_eq!(&single.cluster.log, &report.cluster.log);
    }
}
