//! Query Admission Control (§3.3).
//!
//! Two gates:
//!
//! 1. **Transaction deadline check** — is the query *promising*? Using the
//!    Earliest-possible Start Time (EST = all work that would run before it
//!    under the dual-priority EDF discipline), admit only if
//!    `C_flex · EST_i + qe_i < qt_i`. The lag ratio `C_flex` starts at 1 and
//!    is the controller's admission knob: TAC/LAC signals move it ±10%
//!    (larger `C_flex` = tighter admission). Against the engine's
//!    deadline-indexed view the EST probe is `O(log N_rq)`.
//!
//! 2. **System USM check** — would admitting the query cost more than
//!    rejecting it? Admitting inserts `qe_i` of work ahead of every admitted
//!    query with a later deadline; queries that were on track but would now
//!    miss are *endangered*. If their summed DMF penalty exceeds the
//!    rejection penalty `C_r`, reject the newcomer. The scan starts from an
//!    `O(log N_rq)` prefix sum and walks only strictly-later incumbents,
//!    stopping the moment the cost threshold is crossed.

use crate::policy::AdmissionDecision;
use crate::snapshot::SnapshotView;
use crate::types::QuerySpec;
use crate::usm::UsmWeights;
use serde::{Deserialize, Serialize};

/// Why an admission decision came out the way it did (for logs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionVerdict {
    /// Passed both checks.
    Admitted,
    /// Failed the deadline check: could not plausibly finish in time.
    NotPromising {
        /// `C_flex · EST + qe` in seconds, the left side of the test.
        projected_secs: f64,
        /// `qt` in seconds, the right side of the test.
        deadline_secs: f64,
    },
    /// Failed the system-USM check: admitting endangers more USM than the
    /// rejection costs.
    EndangersSystem {
        /// Summed `C_fm` over endangered transactions, up to the first
        /// point the sum exceeded `rejection_cost` (the scan short-circuits
        /// once the verdict is decided).
        endangered_cost: f64,
        /// The newcomer's rejection penalty `C_r`.
        rejection_cost: f64,
    },
}

impl AdmissionVerdict {
    /// Collapse to the binary decision a policy must return.
    pub fn decision(&self) -> AdmissionDecision {
        match self {
            AdmissionVerdict::Admitted => AdmissionDecision::Admit,
            _ => AdmissionDecision::Reject,
        }
    }
}

/// The admission-control state machine: holds `C_flex` and evaluates both
/// checks against a [`SnapshotView`].
///
/// ```
/// use unit_core::admission::{AdmissionControl, AdmissionVerdict};
/// use unit_core::snapshot::SystemSnapshot;
/// use unit_core::time::{SimDuration, SimTime};
/// use unit_core::types::{DataId, QueryId, QuerySpec};
/// use unit_core::usm::UsmWeights;
///
/// let ac = AdmissionControl::default();
/// let q = QuerySpec {
///     id: QueryId(1),
///     arrival: SimTime::ZERO,
///     items: vec![DataId(0)],
///     exec_time: SimDuration::from_secs(10),
///     relative_deadline: SimDuration::from_secs(5), // cannot finish in time
///     freshness_req: 0.9,
///     pref_class: 0,
/// };
/// let idle = SystemSnapshot::empty(SimTime::ZERO);
/// assert!(matches!(
///     ac.evaluate(&q, &idle.view(), &UsmWeights::naive()),
///     AdmissionVerdict::NotPromising { .. }
/// ));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionControl {
    c_flex: f64,
    step: f64,
    min_c_flex: f64,
    max_c_flex: f64,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        // The floor keeps the deadline check meaningful even after long
        // failure-free stretches of LAC signals: with C_flex = 0.25 a query
        // whose backlog-projected start already eats 4x its allowance is
        // still turned away the moment a flash crowd hits.
        AdmissionControl::new(1.0, 0.10, 0.25, 16.0)
    }
}

impl AdmissionControl {
    /// Build with an initial `C_flex`, a TAC/LAC step fraction (0.10 in the
    /// paper), and clamping bounds that keep the knob responsive in both
    /// directions.
    ///
    /// # Panics
    /// Panics if the bounds or step are not sensible
    /// (`0 < min ≤ initial ≤ max`, `0 < step < 1`).
    pub fn new(initial_c_flex: f64, step: f64, min_c_flex: f64, max_c_flex: f64) -> Self {
        assert!(
            step > 0.0 && step < 1.0,
            "step must be in (0,1), got {step}"
        );
        assert!(
            0.0 < min_c_flex && min_c_flex <= initial_c_flex && initial_c_flex <= max_c_flex,
            "need 0 < min <= initial <= max C_flex"
        );
        AdmissionControl {
            c_flex: initial_c_flex,
            step,
            min_c_flex,
            max_c_flex,
        }
    }

    /// Current value of the lag ratio `C_flex`.
    pub fn c_flex(&self) -> f64 {
        self.c_flex
    }

    /// True when `C_flex` sits at its lower clamp — admission is as loose
    /// as this controller can make it, so further LAC signals are no-ops.
    pub fn at_floor(&self) -> bool {
        self.c_flex <= self.min_c_flex * 1.0001
    }

    /// TAC signal: tighten admission (`C_flex` up one step).
    pub fn tighten(&mut self) {
        self.c_flex = (self.c_flex * (1.0 + self.step)).min(self.max_c_flex);
    }

    /// LAC signal: loosen admission (`C_flex` down one step).
    pub fn loosen(&mut self) {
        self.c_flex = (self.c_flex * (1.0 - self.step)).max(self.min_c_flex);
    }

    /// Evaluate both admission checks for query `q` against the view,
    /// with a single shared preference vector (the paper's setting).
    pub fn evaluate(
        &self,
        q: &QuerySpec,
        sys: &SnapshotView<'_>,
        weights: &UsmWeights,
    ) -> AdmissionVerdict {
        self.evaluate_with(q, sys, weights, &|_| *weights)
    }

    /// Evaluate both admission checks with per-class preferences
    /// (multi-preference extension): `arr_weights` prices the arriving
    /// query's rejection, `weights_of` maps each *endangered* incumbent's
    /// preference class to its DMF penalty.
    pub fn evaluate_with(
        &self,
        q: &QuerySpec,
        sys: &SnapshotView<'_>,
        arr_weights: &UsmWeights,
        weights_of: &dyn Fn(u32) -> UsmWeights,
    ) -> AdmissionVerdict {
        let weights = arr_weights;
        // --- Transaction deadline check -------------------------------
        // EST_i = work ahead of q under dual-priority EDF (relative to now).
        // One O(log N_rq) prefix-sum probe against the engine's index.
        let est = sys.work_ahead_of(q.deadline());
        let projected = self.c_flex * est.as_secs_f64() + q.exec_time.as_secs_f64();
        let allowance = q.relative_deadline.as_secs_f64();
        if projected >= allowance {
            return AdmissionVerdict::NotPromising {
                projected_secs: projected,
                deadline_secs: allowance,
            };
        }

        // --- System USM check ------------------------------------------
        let endangered_cost = Self::endangered_cost(q, sys, weights_of, weights.c_r);
        if endangered_cost > weights.c_r {
            return AdmissionVerdict::EndangersSystem {
                endangered_cost,
                rejection_cost: weights.c_r,
            };
        }
        AdmissionVerdict::Admitted
    }

    /// Serialize the full control state (knob plus static bounds) into a
    /// checkpoint stream. See [`crate::checkpoint`].
    pub fn checkpoint_into(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_f64(self.c_flex);
        enc.put_f64(self.step);
        enc.put_f64(self.min_c_flex);
        enc.put_f64(self.max_c_flex);
    }

    /// Restore state captured by [`AdmissionControl::checkpoint_into`].
    pub fn restore_from(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        self.c_flex = dec.take_f64()?;
        self.step = dec.take_f64()?;
        self.min_c_flex = dec.take_f64()?;
        self.max_c_flex = dec.take_f64()?;
        Ok(())
    }

    /// Summed DMF penalty of the admitted queries that `q` would push past
    /// their deadlines: a query is *endangered* when it completes in time
    /// without `q` but not with `q`'s `qe` inserted ahead of it. Each
    /// endangered incumbent is priced with *its own* class's `C_fm`.
    ///
    /// Incumbents with deadlines at or before the newcomer's are never
    /// delayed, so their work is folded in via one `O(log N_rq)` prefix
    /// probe and the scan visits only strictly-later incumbents (in EDF
    /// `(deadline, id)` order — integer microsecond sums make this exactly
    /// equal to the full sequential accumulation). The scan stops as soon
    /// as the accumulated cost exceeds `stop_above`: the verdict is decided
    /// and every summand is non-negative.
    fn endangered_cost(
        q: &QuerySpec,
        sys: &SnapshotView<'_>,
        weights_of: &dyn Fn(u32) -> UsmWeights,
        stop_above: f64,
    ) -> f64 {
        if sys.ready_queue_len() == 0 {
            return 0.0;
        }
        let newcomer_deadline = q.deadline();
        let qe = q.exec_time;
        let now = sys.now;

        let mut cost = 0.0;
        // Running sum of work ahead of each incumbent: update backlog plus
        // every admitted query at or before the newcomer's deadline (none
        // of which the newcomer can delay — ties favor the incumbent).
        let mut ahead = sys.work_ahead_of(newcomer_deadline);
        sys.for_each_later(newcomer_deadline, |entry| {
            let finish_without = now + ahead + entry.remaining;
            let finish_with = finish_without + qe;
            if finish_without <= entry.deadline && finish_with > entry.deadline {
                cost += weights_of(entry.pref_class).c_fm;
                if cost > stop_above {
                    return false;
                }
            }
            ahead += entry.remaining;
            true
        });
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{QueueEntryView, SystemSnapshot};
    use crate::time::{SimDuration, SimTime};
    use crate::types::{DataId, QueryId};

    fn query(id: u64, arrival_s: u64, exec_s: u64, deadline_s: u64) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs(arrival_s),
            items: vec![DataId(0)],
            exec_time: SimDuration::from_secs(exec_s),
            relative_deadline: SimDuration::from_secs(deadline_s),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn entry(id: u64, deadline_s: u64, remaining_s: u64) -> QueueEntryView {
        QueueEntryView {
            id: QueryId(id),
            deadline: SimTime::from_secs(deadline_s),
            remaining: SimDuration::from_secs(remaining_s),
            pref_class: 0,
        }
    }

    #[test]
    fn idle_server_admits_feasible_query() {
        let ac = AdmissionControl::default();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        let verdict = ac.evaluate(&query(1, 0, 2, 10), &sys.view(), &UsmWeights::naive());
        assert_eq!(verdict, AdmissionVerdict::Admitted);
    }

    #[test]
    fn infeasible_deadline_is_rejected_even_when_idle() {
        let ac = AdmissionControl::default();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        // exec 10s, deadline 5s: cannot possibly finish.
        let verdict = ac.evaluate(&query(1, 0, 10, 5), &sys.view(), &UsmWeights::naive());
        assert!(matches!(verdict, AdmissionVerdict::NotPromising { .. }));
        assert_eq!(verdict.decision(), AdmissionDecision::Reject);
    }

    #[test]
    fn backlog_ahead_fails_the_deadline_check() {
        let ac = AdmissionControl::default();
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        sys.update_backlog = SimDuration::from_secs(9);
        // EST 9 + exec 2 = 11 >= deadline 10 -> not promising.
        let verdict = ac.evaluate(&query(1, 0, 2, 10), &sys.view(), &UsmWeights::naive());
        assert!(matches!(verdict, AdmissionVerdict::NotPromising { .. }));
        // With deadline 12 it fits.
        let verdict = ac.evaluate(&query(1, 0, 2, 12), &sys.view(), &UsmWeights::naive());
        assert_eq!(verdict, AdmissionVerdict::Admitted);
    }

    #[test]
    fn only_earlier_deadline_work_counts_toward_est() {
        let ac = AdmissionControl::default();
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        // One admitted query with a *later* deadline: does not precede us.
        sys.queries.push(entry(7, 100, 50));
        let verdict = ac.evaluate(&query(1, 0, 2, 10), &sys.view(), &UsmWeights::naive());
        assert_eq!(verdict, AdmissionVerdict::Admitted);
    }

    #[test]
    fn tighten_scales_est_and_flips_marginal_admissions() {
        let mut ac = AdmissionControl::default();
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        sys.update_backlog = SimDuration::from_secs(7);
        let q = query(1, 0, 2, 10); // 1.0*7 + 2 = 9 < 10 -> admit
        assert_eq!(
            ac.evaluate(&q, &sys.view(), &UsmWeights::naive()),
            AdmissionVerdict::Admitted
        );
        ac.tighten(); // C_flex = 1.1 -> 1.1*7 + 2 = 9.7 < 10 -> still admit
        assert_eq!(
            ac.evaluate(&q, &sys.view(), &UsmWeights::naive()),
            AdmissionVerdict::Admitted
        );
        ac.tighten(); // C_flex = 1.21 -> 10.47 >= 10 -> reject
        assert!(matches!(
            ac.evaluate(&q, &sys.view(), &UsmWeights::naive()),
            AdmissionVerdict::NotPromising { .. }
        ));
        // Loosening twice restores admission (0.9-steps undershoot 1.0 a bit).
        ac.loosen();
        ac.loosen();
        assert_eq!(
            ac.evaluate(&q, &sys.view(), &UsmWeights::naive()),
            AdmissionVerdict::Admitted
        );
    }

    #[test]
    fn c_flex_respects_bounds() {
        let mut ac = AdmissionControl::new(1.0, 0.10, 0.5, 2.0);
        for _ in 0..100 {
            ac.tighten();
        }
        assert!((ac.c_flex() - 2.0).abs() < 1e-12);
        for _ in 0..100 {
            ac.loosen();
        }
        assert!((ac.c_flex() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn endangering_more_cost_than_rejection_gets_rejected() {
        let ac = AdmissionControl::default();
        let weights = UsmWeights::penalties(0.2, 0.8, 0.2); // C_fm > C_r
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        // Incumbent: deadline 12s, 8s remaining -> finishes at 8s, slack 4s.
        sys.queries.push(entry(7, 12, 8));
        // Newcomer: exec 5s, deadline 6s (earlier) -> runs first, pushes the
        // incumbent to 13s > 12s: endangered, cost 0.8 > C_r 0.2 -> reject.
        let q = query(1, 0, 5, 6);
        let verdict = ac.evaluate(&q, &sys.view(), &weights);
        assert_eq!(
            verdict,
            AdmissionVerdict::EndangersSystem {
                endangered_cost: 0.8,
                rejection_cost: 0.2
            }
        );
    }

    #[test]
    fn cheap_dmf_lets_the_endangering_query_in() {
        let ac = AdmissionControl::default();
        // C_r > C_fm: rejecting is worse than one endangered incumbent.
        let weights = UsmWeights::penalties(0.8, 0.2, 0.2);
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        sys.queries.push(entry(7, 12, 8));
        let q = query(1, 0, 5, 6);
        assert_eq!(
            ac.evaluate(&q, &sys.view(), &weights),
            AdmissionVerdict::Admitted
        );
    }

    #[test]
    fn naive_weights_disable_the_usm_check() {
        let ac = AdmissionControl::default();
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        sys.queries.push(entry(7, 12, 8));
        let q = query(1, 0, 5, 6);
        // All penalties zero: 0 > 0 is false, so only the deadline check acts.
        assert_eq!(
            ac.evaluate(&q, &sys.view(), &UsmWeights::naive()),
            AdmissionVerdict::Admitted
        );
    }

    #[test]
    fn incumbents_already_doomed_are_not_counted_as_endangered() {
        let ac = AdmissionControl::default();
        let weights = UsmWeights::penalties(0.0, 1.0, 0.0);
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        // Incumbent already cannot make it (deadline 5s, remaining 8s).
        sys.queries.push(entry(7, 5, 8));
        let q = query(1, 0, 1, 2);
        // It was doomed with or without the newcomer: not endangered.
        assert_eq!(
            ac.evaluate(&q, &sys.view(), &weights),
            AdmissionVerdict::Admitted
        );
    }

    #[test]
    fn endangered_cost_accumulates_over_multiple_incumbents() {
        let ac = AdmissionControl::default();
        let weights = UsmWeights::penalties(1.5, 1.0, 0.0);
        let mut sys = SystemSnapshot::empty(SimTime::ZERO);
        // Two incumbents, each with exactly 1s of slack.
        sys.queries.push(entry(7, 9, 8)); // finishes 8, deadline 9
        sys.queries.push(entry(8, 19, 10)); // finishes 18, deadline 19
                                            // Newcomer exec 2s, deadline 3s: delays both past their deadlines.
        let q = query(1, 0, 2, 3);
        let verdict = ac.evaluate(&q, &sys.view(), &weights);
        assert_eq!(
            verdict,
            AdmissionVerdict::EndangersSystem {
                endangered_cost: 2.0,
                rejection_cost: 1.5
            }
        );
    }
}
