//! Versioned, byte-stable checkpoint codec (DESIGN.md §4b).
//!
//! Every component that participates in crash recovery serializes its
//! *canonical* state through [`Enc`] and reads it back through [`Dec`]:
//! fixed-width little-endian integers, `f64` via IEEE-754 bit patterns,
//! lengths as `u64`. No derived structure (Fenwick trees, treaps, priority
//! sets) is ever written — those are rebuilt from the canonical state at
//! restore time, so a snapshot is a pure function of the simulation state
//! and two identically-positioned runs produce bit-identical snapshots.
//!
//! The stream opens with a magic tag and a format version so a stale or
//! foreign byte blob fails loudly ([`CheckpointError::BadHeader`] /
//! [`CheckpointError::BadVersion`]) instead of deserializing garbage.

use std::fmt;

/// Magic tag opening every checkpoint stream.
pub const MAGIC: &[u8; 8] = b"UNITCKPT";

/// Current checkpoint format version. Bump on any layout change; restore
/// rejects mismatches rather than guessing.
pub const VERSION: u32 = 1;

/// Why a restore was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The stream does not start with [`MAGIC`].
    BadHeader,
    /// The stream's format version differs from [`VERSION`].
    BadVersion {
        /// Version found in the stream.
        found: u32,
    },
    /// The stream ended before the expected field.
    Truncated {
        /// Read offset at which the stream ran out.
        at: usize,
    },
    /// A tag or flag byte held a value outside its domain.
    BadTag {
        /// The offending value.
        value: u64,
        /// What was being decoded.
        what: &'static str,
    },
    /// The snapshot disagrees with the live run's static configuration
    /// (database size, query-store shape, ...).
    Mismatch {
        /// Which static property disagreed.
        what: &'static str,
    },
    /// Trailing bytes after the last expected field.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "checkpoint header magic mismatch"),
            CheckpointError::BadVersion { found } => {
                write!(f, "checkpoint version {found} != supported {VERSION}")
            }
            CheckpointError::Truncated { at } => {
                write!(f, "checkpoint truncated at byte {at}")
            }
            CheckpointError::BadTag { value, what } => {
                write!(f, "invalid {what} tag {value} in checkpoint")
            }
            CheckpointError::Mismatch { what } => {
                write!(f, "checkpoint does not match this run's {what}")
            }
            CheckpointError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after checkpoint payload")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Byte-stable encoder: appends fixed-width little-endian fields to a
/// growable buffer. Two encoders fed the same call sequence produce the
/// same bytes — there is no padding, no pointer content, no map iteration
/// left to chance (callers iterate ordered containers only).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An encoder holding the versioned header.
    pub fn new() -> Self {
        let mut e = Enc { buf: Vec::new() };
        e.buf.extend_from_slice(MAGIC);
        e.put_u32(VERSION);
        e
    }

    /// Consume the encoder, yielding the checkpoint bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing (not even the header) was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-stable, NaN-safe).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an `Option<u64>` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append an `Option<f64>` as a presence byte plus the bit pattern.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append a slice of `u64`s with a leading length.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Append a slice of `f64`s with a leading length.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }
}

/// Decoder over a checkpoint byte stream; every read is bounds-checked and
/// returns [`CheckpointError::Truncated`] past the end.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned after the validated header.
    pub fn new(data: &'a [u8]) -> Result<Self, CheckpointError> {
        let mut d = Dec { data, pos: 0 };
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = d.take_u8()?;
        }
        if &magic != MAGIC {
            return Err(CheckpointError::BadHeader);
        }
        let version = d.take_u32()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        Ok(d)
    }

    /// Unread bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Assert the stream was fully consumed.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(CheckpointError::TrailingBytes {
                remaining: self.data.len() - self.pos,
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CheckpointError::Truncated { at: self.pos })?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, CheckpointError> {
        let at = self.pos;
        let s = self.take(1)?;
        s.first().copied().ok_or(CheckpointError::Truncated { at })
    }

    /// Read a bool (rejects anything but 0/1).
    pub fn take_bool(&mut self) -> Result<bool, CheckpointError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CheckpointError::BadTag {
                value: v as u64,
                what: "bool",
            }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CheckpointError> {
        let at = self.pos;
        let arr: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| CheckpointError::Truncated { at })?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CheckpointError> {
        let at = self.pos;
        let arr: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| CheckpointError::Truncated { at })?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a length/`usize` (stored as `u64`).
    pub fn take_usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::BadTag {
            value: v,
            what: "usize",
        })
    }

    /// Read an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read an `Option<u64>` (presence byte plus value).
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Read an `Option<f64>` (presence byte plus bit pattern).
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        if self.take_bool()? {
            Ok(Some(self.take_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed `u64` vector.
    pub fn take_u64_vec(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let n = self.take_usize()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 8 + 1));
        for _ in 0..n {
            v.push(self.take_u64()?);
        }
        Ok(v)
    }

    /// Read a length-prefixed `f64` vector.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.take_usize()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 8 + 1));
        for _ in 0..n {
            v.push(self.take_f64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_f64(-0.0);
        e.put_opt_u64(Some(3));
        e.put_opt_u64(None);
        e.put_opt_f64(Some(f64::NAN));
        e.put_u64_slice(&[1, 2, 3]);
        e.put_f64_slice(&[0.5]);
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes).unwrap();
        assert_eq!(d.take_u8().unwrap(), 7);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.take_opt_u64().unwrap(), Some(3));
        assert_eq!(d.take_opt_u64().unwrap(), None);
        assert!(d.take_opt_f64().unwrap().unwrap().is_nan());
        assert_eq!(d.take_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.take_f64_vec().unwrap(), vec![0.5]);
        d.finish().unwrap();
    }

    #[test]
    fn identical_call_sequences_are_byte_identical() {
        let enc = || {
            let mut e = Enc::new();
            e.put_u64(42);
            e.put_f64(1.5);
            e.into_bytes()
        };
        assert_eq!(enc(), enc());
    }

    #[test]
    fn header_is_validated() {
        assert_eq!(Dec::new(b"NOTMAGIC....").unwrap_err(), {
            CheckpointError::BadHeader
        });
        let mut e = Enc::new();
        e.put_u64(1);
        let mut bytes = e.into_bytes();
        // Corrupt the version field.
        bytes[8] = 0xFF;
        match Dec::new(&bytes) {
            Err(CheckpointError::BadVersion { .. }) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Enc::new();
        e.put_u64(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..bytes.len() - 1]).unwrap();
        match d.take_u64() {
            Err(CheckpointError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut e = Enc::new();
        e.put_u8(1);
        let bytes = e.into_bytes();
        let d = Dec::new(&bytes).unwrap();
        match d.finish() {
            Err(CheckpointError::TrailingBytes { remaining: 1 }) => {}
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
        let mut e = Enc::new();
        e.put_u8(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes).unwrap();
        let _ = d.take_u8().unwrap();
        d.finish().unwrap();
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut e = Enc::new();
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes).unwrap();
        match d.take_bool() {
            Err(CheckpointError::BadTag { value: 2, .. }) => {}
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn errors_display() {
        let e = CheckpointError::Mismatch { what: "n_items" };
        assert!(e.to_string().contains("n_items"));
        let e = CheckpointError::BadVersion { found: 9 };
        assert!(e.to_string().contains('9'));
    }
}
