//! # Injectable clocks
//!
//! The serving runtime (`unit-server`) runs UNIT admission and
//! modulation against *some* timeline; which one is a constructor
//! argument, not a compile-time fact. A [`Clock`] yields the current
//! instant as a [`SimTime`] (µs ticks since the clock's epoch), so the
//! same server code runs:
//!
//! * under a [`VirtualClock`] in tests and replay — advanced explicitly,
//!   fully deterministic, bit-comparable against the simulation engine;
//! * under `unit-server`'s `WallClock` in production — anchored to a
//!   process-start `Instant`.
//!
//! `WallClock` deliberately does **not** live in this crate: `unit-core`
//! is wall-clock-free by invariant (xtask rule D2), and keeping the only
//! `Instant::now` in `crates/server` is what makes that boundary
//! checkable.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone source of "now" on some timeline.
///
/// Implementations must be monotone (successive `now` calls never go
/// backwards) and cheap — the server reads the clock on every request.
/// `Send + Sync` is part of the trait bound because one clock is shared
/// by every worker thread.
pub trait Clock: Send + Sync {
    /// The current instant, as ticks since this clock's epoch.
    fn now(&self) -> SimTime;
}

/// A manually-advanced clock: `now` is whatever the test (or the replay
/// driver) last set it to. Advancing is monotone by construction —
/// [`VirtualClock::advance_to`] is a `fetch_max`, so racing advancers
/// can never move time backwards.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A clock at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock {
            ticks: AtomicU64::new(0),
        }
    }

    /// A clock starting at the given instant.
    #[must_use]
    pub fn starting_at(t: SimTime) -> Self {
        VirtualClock {
            ticks: AtomicU64::new(t.0),
        }
    }

    /// Move the clock forward to `t`. A no-op when `t` is in the past —
    /// time never goes backwards, so concurrent advancers compose.
    pub fn advance_to(&self, t: SimTime) {
        self.ticks.fetch_max(t.0, Ordering::SeqCst);
    }

    /// Move the clock forward by `d` from its current reading.
    pub fn advance(&self, d: SimDuration) {
        // fetch_update retries under contention, so two concurrent
        // `advance(d)` calls add 2d total rather than racing to the same
        // target.
        let _ = self
            .ticks
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| {
                Some(t.saturating_add(d.0))
            });
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime(self.ticks.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_monotone() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime(0));
        c.advance_to(SimTime(50));
        assert_eq!(c.now(), SimTime(50));
        c.advance_to(SimTime(10)); // past: ignored
        assert_eq!(c.now(), SimTime(50));
        c.advance(SimDuration(25));
        assert_eq!(c.now(), SimTime(75));
    }

    #[test]
    fn starting_at_sets_epoch() {
        let c = VirtualClock::starting_at(SimTime(1_000_000));
        assert_eq!(c.now(), SimTime(1_000_000));
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(VirtualClock::new());
        let c2 = std::sync::Arc::clone(&c);
        let h = std::thread::spawn(move || c2.advance_to(SimTime(99)));
        h.join().unwrap();
        assert_eq!(c.now(), SimTime(99));
    }
}
