//! Configuration for the UNIT policy: every constant §3 names, in one place.

use crate::controller::LbcConfig;
use crate::modulation::{UpdateModulation, UpgradeRule};
use crate::time::SimDuration;
use crate::usm::UsmWeights;
use serde::{Deserialize as De2, Serialize as Se2};
use serde::{Deserialize, Serialize};

/// Default RNG seed for a [`UnitConfig`]; fix your own for experiments.
pub const DEFAULT_SEED: u64 = 0x5EED_0001;

/// How raw tickets become non-negative lottery weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Se2, De2, Default)]
pub enum VictimWeighting {
    /// `T_j − T_min`, the rule as printed in §3.4.1. Flattens relative
    /// differences when one item is extremely hot; kept for ablation.
    ShiftMin,
    /// `max(T_j, 0)`: items whose query value outweighs their update cost
    /// are never degraded. The default (documented deviation — see
    /// `TicketTable::clamped_weights`).
    #[default]
    ClampZero,
}

/// Full configuration of a [`crate::unit_policy::UnitPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitConfig {
    /// Default user-preference weights (`C_r`, `C_fm`, `C_fs`; `G_s = 1`),
    /// used for every query whose `pref_class` has no entry in
    /// `class_weights`.
    pub weights: UsmWeights,
    /// Per-class preference weights (multi-preference extension): class `i`
    /// uses `class_weights[i]`. Empty (the default) reproduces the paper's
    /// single-preference setting.
    #[serde(default)]
    pub class_weights: Vec<UsmWeights>,
    /// Controller trigger tuning (grace period, drop threshold).
    pub lbc: LbcConfig,
    /// Initial lag ratio `C_flex` of the admission deadline check (paper: 1).
    pub initial_c_flex: f64,
    /// TAC/LAC step fraction (paper: 0.10).
    pub c_flex_step: f64,
    /// Lower clamp for `C_flex`.
    pub min_c_flex: f64,
    /// Upper clamp for `C_flex`.
    pub max_c_flex: f64,
    /// Ticket forgetting factor `C_forget` (paper: 0.9).
    pub c_forget: f64,
    /// Degrade step `C_du` (paper: 0.1): victim period `× (1 + C_du)`.
    pub c_du: f64,
    /// Upgrade step `C_uu` (paper: 0.5): period `− C_uu · pi_j` per signal.
    pub c_uu: f64,
    /// Cap on the per-item degradation factor `pc_j / pi_j` (see
    /// [`UpdateModulation`] docs for why the paper's unbounded stretch is
    /// capped).
    pub max_degradation_factor: f64,
    /// Which reading of Eq. 10 the upgrade step uses.
    pub upgrade_rule: UpgradeRule,
    /// Cap on lottery draws per `DegradeUpdates` signal (the signal stops
    /// earlier once it has shed `modulation_step_util` of expected CPU).
    /// The paper degrades per signal without stating a batch size; its
    /// technical report carries the sensitivity analysis.
    pub degrade_victims_per_signal: usize,
    /// Utilization budget per modulation signal: one `DegradeUpdates`
    /// signal sheds about this much expected update-class CPU, and one
    /// `UpgradeUpdates` signal restores at most this much. Budgeting both
    /// actuators in the same units lets the feedback loop settle instead of
    /// oscillating (an unbudgeted `C_uu = 0.5` halving can undo dozens of
    /// degrade signals at once). Documented calibration; ablations sweep it.
    pub modulation_step_util: f64,
    /// Utilization budget per `UpgradeUpdates` signal; defaults to a
    /// fraction of the degrade budget. Restoring more slowly than shedding
    /// biases the equilibrium toward freshness only where queries actually
    /// demand it (the ticket lottery already steers *which* items are shed).
    pub upgrade_step_util: f64,
    /// Master switch for admission control (disable for ablations: every
    /// query is admitted).
    pub admission_enabled: bool,
    /// How many (cost-normalized) query accesses per update an item needs
    /// for its ticket to stay negative (protected from degradation). One
    /// 96-second update blocks the CPU for roughly two query deadlines, so
    /// an access and an update are *not* equal-value: protecting an item
    /// only pays off when its access traffic outweighs the collateral cost
    /// of its update stream. Used by the auto-normalizing access decrement
    /// (`0.5 · (qe/qt)/avg(qe/qt) / balance`).
    pub access_update_balance: f64,
    /// Scale applied to Eq. 6's per-access ticket decrement `qe/qt`.
    /// `None` (default) auto-normalizes: the decrement becomes
    /// `0.5 · (qe/qt) / avg(qe/qt)`, making the *average* access worth as
    /// much ticket as the average update adds (Eq. 7's sigmoid averages
    /// 0.5). Without normalization the raw `qe/qt` (≈0.02 under the paper's
    /// deadline recipe) is so small that one update outweighs dozens of
    /// accesses and the lottery degrades query-hot items. `Some(1.0)` is the
    /// paper's literal rule; the ablation benches compare.
    pub access_ticket_scale: Option<f64>,
    /// How raw tickets are turned into lottery weights.
    pub victim_weighting: VictimWeighting,
    /// Selection-pressure exponent applied to the shifted ticket weights
    /// before the lottery draw (`w^sharpness`). 1.0 is the paper's plain
    /// lottery. Values > 1 concentrate degradation harder on the
    /// hot-updated/cold-queried items, protecting the query-relevant tail —
    /// the ablation benches sweep this.
    pub lottery_sharpness: f64,
    /// Seed for the policy's internal randomness (lottery draws, tie breaks).
    pub seed: u64,
}

impl Default for UnitConfig {
    fn default() -> Self {
        UnitConfig {
            weights: UsmWeights::naive(),
            class_weights: Vec::new(),
            lbc: LbcConfig::default(),
            initial_c_flex: 1.0,
            c_flex_step: 0.10,
            min_c_flex: 0.25,
            max_c_flex: 16.0,
            c_forget: 0.9,
            c_du: 0.1,
            c_uu: 0.5,
            max_degradation_factor: UpdateModulation::DEFAULT_MAX_FACTOR,
            upgrade_rule: UpgradeRule::default(),
            degrade_victims_per_signal: 4096,
            modulation_step_util: 0.05,
            upgrade_step_util: 0.005,
            admission_enabled: true,
            access_update_balance: 3.0,
            access_ticket_scale: None,
            victim_weighting: VictimWeighting::default(),
            lottery_sharpness: 1.0,
            seed: DEFAULT_SEED,
        }
    }
}

impl UnitConfig {
    /// Default configuration with the given preference weights.
    pub fn with_weights(weights: UsmWeights) -> Self {
        UnitConfig {
            weights,
            ..UnitConfig::default()
        }
    }

    /// Default configuration with a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Default configuration with a specific grace period.
    pub fn with_grace_period(mut self, grace: SimDuration) -> Self {
        self.lbc.grace_period = grace;
        self
    }

    /// Set per-class preference weights (multi-preference extension).
    pub fn with_class_weights(mut self, class_weights: Vec<UsmWeights>) -> Self {
        self.class_weights = class_weights;
        self
    }

    /// The full preference set (default + classes).
    pub fn preferences(&self) -> crate::usm::PreferenceSet {
        crate::usm::PreferenceSet::with_classes(self.weights, self.class_weights.clone())
    }

    /// Weights for a preference class.
    pub fn weights_for(&self, class: u32) -> UsmWeights {
        self.class_weights
            .get(class as usize)
            .copied()
            .unwrap_or(self.weights)
    }

    /// Sanity-check the configuration, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.c_forget > 0.0 && self.c_forget <= 1.0) {
            return Err(format!("C_forget must be in (0,1], got {}", self.c_forget));
        }
        if self.c_du <= 0.0 {
            return Err(format!("C_du must be positive, got {}", self.c_du));
        }
        if !(self.c_uu > 0.0 && self.c_uu <= 1.0) {
            return Err(format!("C_uu must be in (0,1], got {}", self.c_uu));
        }
        if self.max_degradation_factor < 1.0 {
            return Err(format!(
                "max degradation factor must be >= 1, got {}",
                self.max_degradation_factor
            ));
        }
        if !(self.c_flex_step > 0.0 && self.c_flex_step < 1.0) {
            return Err(format!(
                "C_flex step must be in (0,1), got {}",
                self.c_flex_step
            ));
        }
        if !(self.min_c_flex > 0.0
            && self.min_c_flex <= self.initial_c_flex
            && self.initial_c_flex <= self.max_c_flex)
        {
            return Err("need 0 < min <= initial <= max C_flex".to_string());
        }
        if self.degrade_victims_per_signal == 0 {
            return Err("degrade_victims_per_signal must be >= 1".to_string());
        }
        if self.modulation_step_util <= 0.0 {
            return Err(format!(
                "modulation step budget must be positive, got {}",
                self.modulation_step_util
            ));
        }
        if self.upgrade_step_util <= 0.0 {
            return Err(format!(
                "upgrade step budget must be positive, got {}",
                self.upgrade_step_util
            ));
        }
        if self.access_update_balance <= 0.0 {
            return Err(format!(
                "access/update balance must be positive, got {}",
                self.access_update_balance
            ));
        }
        if self.lottery_sharpness <= 0.0 {
            return Err(format!(
                "lottery sharpness must be positive, got {}",
                self.lottery_sharpness
            ));
        }
        if self.lbc.threshold_fraction <= 0.0 {
            return Err("LBC threshold fraction must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = UnitConfig::default();
        assert_eq!(c.initial_c_flex, 1.0);
        assert_eq!(c.c_flex_step, 0.10);
        assert_eq!(c.c_forget, 0.9);
        assert_eq!(c.c_du, 0.1);
        assert_eq!(c.c_uu, 0.5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_override_fields() {
        let c = UnitConfig::with_weights(UsmWeights::high_high_cr())
            .with_seed(99)
            .with_grace_period(SimDuration::from_secs(10));
        assert_eq!(c.weights, UsmWeights::high_high_cr());
        assert_eq!(c.seed, 99);
        assert_eq!(c.lbc.grace_period, SimDuration::from_secs(10));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = UnitConfig::with_weights(UsmWeights::high_high_cfs())
            .with_seed(7)
            .with_class_weights(vec![UsmWeights::naive(), UsmWeights::low_high_cr()]);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: UnitConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn weights_for_falls_back_to_default() {
        let cfg = UnitConfig::with_weights(UsmWeights::naive())
            .with_class_weights(vec![UsmWeights::low_high_cfm()]);
        assert_eq!(cfg.weights_for(0), UsmWeights::low_high_cfm());
        assert_eq!(cfg.weights_for(1), UsmWeights::naive());
        assert_eq!(cfg.weights_for(99), UsmWeights::naive());
        let prefs = cfg.preferences();
        assert_eq!(prefs.get(0), UsmWeights::low_high_cfm());
        assert_eq!(prefs.get(5), UsmWeights::naive());
    }

    #[test]
    fn validate_catches_bad_constants() {
        let bad = |f: &dyn Fn(&mut UnitConfig)| {
            let mut c = UnitConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(&|c| c.c_forget = 1.5));
        assert!(bad(&|c| c.c_du = 0.0));
        assert!(bad(&|c| c.degrade_victims_per_signal = 0));
        assert!(bad(&|c| c.min_c_flex = 5.0)); // > initial
        assert!(bad(&|c| c.modulation_step_util = 0.0));
        assert!(bad(&|c| c.upgrade_step_util = -1.0));
        assert!(bad(&|c| c.access_update_balance = 0.0));
        assert!(bad(&|c| c.lottery_sharpness = 0.0));
    }
}
