//! The Load Balancing Controller and its Adaptive Allocation Algorithm
//! (§3.2, Figure 2).
//!
//! The LBC watches the stream of query outcomes and periodically — or
//! whenever the windowed USM drops by more than a threshold (1% of the USM
//! range in the paper) — decides which actuator to move:
//!
//! ```text
//! R  = C_r  · R_r      (or R_r   when all penalties are zero)
//! Fm = C_fm · R_fm     (or R_fm)
//! Fs = C_fs · R_fs     (or R_fs)
//! switch max(R, Fm, Fs)        // ties broken randomly
//!   R:  Loosen Admission Control
//!   Fm: Degrade Update; Tighten Admission Control
//!   Fs: Upgrade Update
//! ```
//!
//! The intuition: whichever failure class currently dominates the USM cost
//! is the one to relieve. Rejections dominating means admission is too
//! tight; deadline misses dominating means the CPU is oversubscribed (shed
//! update load *and* admit less); stale reads dominating means update
//! shedding went too far. One amendment (documented in DESIGN.md): when a
//! rejection-dominated window coincides with a *saturated* CPU, the
//! controller also sheds update load — Figure 2's rejection case assumes
//! spare capacity, and without the amendment an update volume above 100%
//! utilization pins the system in a reject-everything equilibrium.
//!
//! Interpretation note: Figure 2 does not say what to do when the window has
//! no failures at all. We loosen admission in that case — with a clean
//! window the only improvable component is the rejection of future load, and
//! this lets `C_flex` recover after transient overloads. The behaviour is
//! config-gated (`loosen_when_clean`).

use crate::policy::ControlSignal;
use crate::time::{SimDuration, SimTime};
use crate::types::Outcome;
use crate::usm::{OutcomeCounts, PreferenceSet, UsmWeights, UsmWindow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning of the LBC trigger conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LbcConfig {
    /// Maximum interval between activations; the controller fires once this
    /// much time has passed since the last one ("Grace Period") — provided
    /// the window carries enough outcomes to act on.
    pub grace_period: SimDuration,
    /// USM-drop trigger threshold as a fraction of the USM range span
    /// (the paper uses 1%).
    pub threshold_fraction: f64,
    /// Minimum outcomes in the window before *any* activation. A window of
    /// one or two queries makes `max(R, F_m, F_s)` a coin flip — e.g. a
    /// single stale read would fire `UpgradeUpdates` and erase accumulated
    /// shedding — so the controller waits until the ratios mean something.
    /// The effective activation period is therefore
    /// `max(grace_period, time to collect this many outcomes)`.
    pub min_window_samples: u64,
    /// Emit [`ControlSignal::LoosenAdmission`] when a window contains no
    /// failures at all (see module docs).
    pub loosen_when_clean: bool,
    /// CPU utilization at or above which a rejection-dominated window also
    /// sheds update load (see module docs on the saturated-rejection case).
    pub saturation_utilization: f64,
}

impl Default for LbcConfig {
    fn default() -> Self {
        LbcConfig {
            grace_period: SimDuration::from_secs(50),
            threshold_fraction: 0.01,
            min_window_samples: 16,
            loosen_when_clean: true,
            saturation_utilization: 0.98,
        }
    }
}

/// The Load Balancing Controller.
#[derive(Debug, Clone)]
pub struct Lbc {
    prefs: PreferenceSet,
    cfg: LbcConfig,
    window: UsmWindow,
    last_activation: SimTime,
    /// Average USM of the previously drained window (drop detection).
    prev_window_usm: Option<f64>,
    rng: StdRng,
    activations: u64,
}

impl Lbc {
    /// Build a controller for a single shared preference vector (the
    /// paper's setting); `seed` drives only the random tie-breaking of
    /// Figure 2's `switch`.
    pub fn new(weights: UsmWeights, cfg: LbcConfig, seed: u64) -> Self {
        Lbc::with_preferences(PreferenceSet::uniform(weights), cfg, seed)
    }

    /// Build a controller over per-class preferences (multi-preference
    /// extension): each recorded outcome is priced with its submitting
    /// class's weights, so the Adaptive Allocation chases the dominant
    /// *aggregate* cost across user populations.
    pub fn with_preferences(prefs: PreferenceSet, cfg: LbcConfig, seed: u64) -> Self {
        Lbc {
            prefs,
            cfg,
            window: UsmWindow::new(),
            last_activation: SimTime::ZERO,
            prev_window_usm: None,
            rng: StdRng::seed_from_u64(seed),
            activations: 0,
        }
    }

    /// Feed one query outcome into the control window, priced with the
    /// default preference class.
    pub fn record(&mut self, outcome: Outcome) {
        self.record_for_class(outcome, 0);
    }

    /// Feed one query outcome priced with its submitting preference class.
    pub fn record_for_class(&mut self, outcome: Outcome, class: u32) {
        let w = self.prefs.get(class);
        self.window.record_with(outcome, &w);
    }

    /// Outcomes recorded since the last activation.
    pub fn window_counts(&self) -> &OutcomeCounts {
        self.window.counts()
    }

    /// Number of times the controller has activated.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// The trigger condition (§3.2): grace period elapsed, or windowed USM
    /// fell more than the threshold below the previous window's USM — in
    /// both cases only once the window holds `min_window_samples` outcomes.
    pub fn should_activate(&self, now: SimTime) -> bool {
        let counts = self.window.counts();
        if counts.total() < self.cfg.min_window_samples {
            return false;
        }
        if now.saturating_since(self.last_activation) >= self.cfg.grace_period {
            return true;
        }
        match self.prev_window_usm {
            None => false,
            Some(prev) => {
                let current = self.window.average_usm();
                let threshold = self.cfg.threshold_fraction * self.prefs.max_range_span();
                prev - current > threshold
            }
        }
    }

    /// Earliest instant at which [`Lbc::should_activate`] could first return
    /// true, assuming **no further outcomes are recorded** before then. Between
    /// two server events the window is frozen, so this bound is exact:
    ///
    /// * fewer than `min_window_samples` outcomes — activation is impossible
    ///   at any time ([`SimTime::MAX`]);
    /// * the USM-drop trigger currently holds — activation is already due
    ///   ([`SimTime::ZERO`]);
    /// * otherwise only the grace timer can fire, at
    ///   `last_activation + grace_period`.
    ///
    /// The engine uses this to skip runs of guaranteed-idle control ticks in
    /// bulk; any recorded outcome comes from a heap event, which re-bounds the
    /// skip. O(1).
    pub fn idle_until(&self) -> SimTime {
        if self.window.counts().total() < self.cfg.min_window_samples {
            return SimTime::MAX;
        }
        let drop_due = match self.prev_window_usm {
            None => false,
            Some(prev) => {
                let current = self.window.average_usm();
                let threshold = self.cfg.threshold_fraction * self.prefs.max_range_span();
                prev - current > threshold
            }
        };
        if drop_due {
            return SimTime::ZERO;
        }
        self.last_activation + self.cfg.grace_period
    }

    /// Run the Adaptive Allocation Algorithm if the trigger condition holds;
    /// returns the emitted signals (empty when not activated or when the
    /// window was empty and clean-loosening is disabled). `utilization` is
    /// the CPU utilization over the recent measurement window.
    pub fn maybe_activate(&mut self, now: SimTime, utilization: f64) -> Vec<ControlSignal> {
        if !self.should_activate(now) {
            return Vec::new();
        }
        self.activate(now, utilization)
    }

    /// Unconditionally run the Adaptive Allocation Algorithm on the current
    /// window, draining it.
    pub fn activate(&mut self, now: SimTime, utilization: f64) -> Vec<ControlSignal> {
        self.activations += 1;
        self.last_activation = now;
        let (counts, usm, costs) = self.window.take_priced();
        if counts.total() > 0 {
            self.prev_window_usm = Some(usm);
        }
        self.allocate(&counts, costs, utilization)
    }

    /// Serialize the controller's dynamic state (window, timers, drop
    /// reference, tie-break RNG, activation count) into a checkpoint stream.
    /// The preference set and config are construction-time inputs and are
    /// not written. See [`crate::checkpoint`].
    pub fn checkpoint_into(&self, enc: &mut crate::checkpoint::Enc) {
        self.window.checkpoint_into(enc);
        enc.put_u64(self.last_activation.0);
        enc.put_opt_f64(self.prev_window_usm);
        for w in self.rng.state() {
            enc.put_u64(w);
        }
        enc.put_u64(self.activations);
    }

    /// Restore state captured by [`Lbc::checkpoint_into`].
    pub fn restore_from(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        self.window.restore_from(dec)?;
        self.last_activation = SimTime(dec.take_u64()?);
        self.prev_window_usm = dec.take_opt_f64()?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.take_u64()?;
        }
        self.rng = StdRng::from_state(s);
        self.activations = dec.take_u64()?;
        Ok(())
    }

    /// Figure 2's decision body, on a window of outcome counts.
    fn allocate(
        &mut self,
        counts: &OutcomeCounts,
        costs: [f64; 3],
        utilization: f64,
    ) -> Vec<ControlSignal> {
        let (r, fm, fs) = if self.prefs.is_naive() {
            // Line 2-3: with zero penalties, fall back to the raw ratios so
            // the controller still chases the dominant failure class.
            (
                counts.ratio(Outcome::Rejected),
                counts.ratio(Outcome::DeadlineMiss),
                counts.ratio(Outcome::DataStale),
            )
        } else {
            let [r, fm, fs] = costs;
            (r, fm, fs)
        };

        // Exact zero marks "no failures at all this window": the ratios/costs
        // below are sums of zero terms, not accumulated arithmetic drift.
        // lint: allow(D4) — intentional exact-zero sentinel, see comment above
        if r == 0.0 && fm == 0.0 && fs == 0.0 {
            return if self.cfg.loosen_when_clean && counts.total() > 0 {
                vec![ControlSignal::LoosenAdmission]
            } else {
                Vec::new()
            };
        }

        match self.argmax_with_random_ties(r, fm, fs) {
            CostClass::Rejection => {
                // Figure 2 treats dominant rejections as a sign admission is
                // too tight and only loosens. That analysis implicitly
                // assumes the CPU has room; when rejections dominate *and*
                // the CPU is saturated, the backlog squeezing queries out is
                // update work (queries are being rejected), so shed it too —
                // otherwise an update volume above 100% utilization wedges
                // the controller in a reject-everything equilibrium.
                if utilization >= self.cfg.saturation_utilization {
                    vec![
                        ControlSignal::LoosenAdmission,
                        ControlSignal::DegradeUpdates,
                    ]
                } else {
                    vec![ControlSignal::LoosenAdmission]
                }
            }
            CostClass::DeadlineMiss => vec![
                ControlSignal::DegradeUpdates,
                ControlSignal::TightenAdmission,
            ],
            CostClass::DataStale => vec![ControlSignal::UpgradeUpdates],
        }
    }

    fn argmax_with_random_ties(&mut self, r: f64, fm: f64, fs: f64) -> CostClass {
        let max = r.max(fm).max(fs);
        let mut candidates = [CostClass::Rejection; 3];
        let mut n = 0;
        if r == max {
            candidates[n] = CostClass::Rejection;
            n += 1;
        }
        if fm == max {
            candidates[n] = CostClass::DeadlineMiss;
            n += 1;
        }
        if fs == max {
            candidates[n] = CostClass::DataStale;
            n += 1;
        }
        candidates[self.rng.gen_range(0..n)]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CostClass {
    Rejection,
    DeadlineMiss,
    DataStale,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbc(weights: UsmWeights) -> Lbc {
        Lbc::new(weights, LbcConfig::default(), 7)
    }

    fn feed(lbc: &mut Lbc, outcome: Outcome, n: u64) {
        for _ in 0..n {
            lbc.record(outcome);
        }
    }

    #[test]
    fn grace_period_forces_activation_once_the_window_fills() {
        let mut l = lbc(UsmWeights::naive());
        feed(&mut l, Outcome::Success, 30);
        assert!(!l.should_activate(SimTime::from_secs(10)));
        assert!(l.should_activate(SimTime::from_secs(50)));
    }

    #[test]
    fn sparse_windows_defer_even_the_grace_trigger() {
        let mut l = lbc(UsmWeights::naive());
        feed(&mut l, Outcome::DataStale, 3); // below min_window_samples
        assert!(
            !l.should_activate(SimTime::from_secs(500)),
            "three outcomes cannot justify a control action"
        );
        feed(&mut l, Outcome::Success, 20);
        assert!(l.should_activate(SimTime::from_secs(500)));
    }

    #[test]
    fn usm_drop_triggers_early_activation() {
        let mut l = lbc(UsmWeights::naive());
        // First window: all success -> USM 1.0.
        feed(&mut l, Outcome::Success, 30);
        let _ = l.activate(SimTime::from_secs(1), 0.5);
        // Second window: half failures -> USM 0.5; drop 0.5 > 1% of span.
        feed(&mut l, Outcome::Success, 15);
        feed(&mut l, Outcome::DeadlineMiss, 15);
        assert!(l.should_activate(SimTime::from_secs(2)));
    }

    #[test]
    fn small_windows_do_not_trigger_on_noise() {
        let mut l = lbc(UsmWeights::naive());
        feed(&mut l, Outcome::Success, 30);
        let _ = l.activate(SimTime::from_secs(1), 0.5);
        // Only 3 samples, all failures: below min_window_samples.
        feed(&mut l, Outcome::DeadlineMiss, 3);
        assert!(!l.should_activate(SimTime::from_secs(2)));
    }

    #[test]
    fn dominant_rejection_cost_loosens_admission() {
        let mut l = lbc(UsmWeights::penalties(0.8, 0.2, 0.2));
        feed(&mut l, Outcome::Rejected, 10);
        feed(&mut l, Outcome::DeadlineMiss, 5);
        feed(&mut l, Outcome::Success, 85);
        // R = 0.8*0.10 = 0.08 > Fm = 0.2*0.05 = 0.01.
        let signals = l.activate(SimTime::from_secs(60), 0.5);
        assert_eq!(signals, vec![ControlSignal::LoosenAdmission]);
    }

    #[test]
    fn dominant_dmf_cost_degrades_updates_and_tightens() {
        let mut l = lbc(UsmWeights::penalties(0.2, 0.8, 0.2));
        feed(&mut l, Outcome::DeadlineMiss, 20);
        feed(&mut l, Outcome::Rejected, 5);
        feed(&mut l, Outcome::Success, 75);
        let signals = l.activate(SimTime::from_secs(60), 0.5);
        assert_eq!(
            signals,
            vec![
                ControlSignal::DegradeUpdates,
                ControlSignal::TightenAdmission
            ]
        );
    }

    #[test]
    fn dominant_dsf_cost_upgrades_updates() {
        let mut l = lbc(UsmWeights::penalties(0.2, 0.2, 0.8));
        feed(&mut l, Outcome::DataStale, 20);
        feed(&mut l, Outcome::Success, 80);
        let signals = l.activate(SimTime::from_secs(60), 0.5);
        assert_eq!(signals, vec![ControlSignal::UpgradeUpdates]);
    }

    #[test]
    fn naive_weights_use_raw_ratios() {
        let mut l = lbc(UsmWeights::naive());
        // More DSFs than anything else: must upgrade even with zero weights.
        feed(&mut l, Outcome::DataStale, 30);
        feed(&mut l, Outcome::DeadlineMiss, 10);
        feed(&mut l, Outcome::Success, 60);
        let signals = l.activate(SimTime::from_secs(60), 0.5);
        assert_eq!(signals, vec![ControlSignal::UpgradeUpdates]);
    }

    #[test]
    fn clean_window_loosens_when_configured() {
        let mut l = lbc(UsmWeights::naive());
        feed(&mut l, Outcome::Success, 10);
        assert_eq!(
            l.activate(SimTime::from_secs(60), 0.5),
            vec![ControlSignal::LoosenAdmission]
        );

        let cfg = LbcConfig {
            loosen_when_clean: false,
            ..LbcConfig::default()
        };
        let mut l = Lbc::new(UsmWeights::naive(), cfg, 7);
        feed(&mut l, Outcome::Success, 10);
        assert!(l.activate(SimTime::from_secs(60), 0.5).is_empty());
    }

    #[test]
    fn empty_window_emits_nothing() {
        let mut l = lbc(UsmWeights::naive());
        assert!(l.activate(SimTime::from_secs(60), 0.5).is_empty());
    }

    #[test]
    fn activation_drains_the_window() {
        let mut l = lbc(UsmWeights::naive());
        feed(&mut l, Outcome::Success, 5);
        let _ = l.activate(SimTime::from_secs(60), 0.5);
        assert_eq!(l.window_counts().total(), 0);
        assert_eq!(l.activations(), 1);
        // Immediately after activation the grace period restarts.
        assert!(!l.should_activate(SimTime::from_secs(61)));
    }

    #[test]
    fn ties_are_broken_among_the_tied_classes_only() {
        // R and Fs tied at the max; Fm strictly below. The chosen signal must
        // never be the Fm pair.
        for seed in 0..20 {
            let mut l = Lbc::new(
                UsmWeights::penalties(0.5, 0.1, 0.5),
                LbcConfig::default(),
                seed,
            );
            feed(&mut l, Outcome::Rejected, 10);
            feed(&mut l, Outcome::DataStale, 10);
            feed(&mut l, Outcome::DeadlineMiss, 10);
            feed(&mut l, Outcome::Success, 70);
            let signals = l.activate(SimTime::from_secs(60), 0.5);
            assert!(
                signals == vec![ControlSignal::LoosenAdmission]
                    || signals == vec![ControlSignal::UpgradeUpdates],
                "unexpected signals {signals:?}"
            );
        }
    }
}
