//! Fenwick (binary indexed) trees: O(log N) prefix sums over a mutable
//! array of values.
//!
//! Two consumers share this machinery:
//!
//! * [`crate::lottery`] — proportional-share victim selection needs `f64`
//!   weight sums and inverse-prefix-sum descent (`O(log N_d)` per draw,
//!   §3.4.1);
//! * the simulator's admission index — `work_ahead_of(deadline)` probes
//!   need `u64` (microsecond) sums of remaining query work keyed by
//!   deadline coordinate, so each probe is `O(log N_rq)` instead of a
//!   linear walk over the admitted set.

/// A value that can live in a [`Fenwick`] tree: copyable, with an additive
/// identity and exact (or IEEE) addition/subtraction.
pub trait FenwickValue: Copy + PartialOrd {
    /// Additive identity.
    const ZERO: Self;
    /// `self + rhs`.
    fn add(self, rhs: Self) -> Self;
    /// `self - rhs`. For unsigned values the caller must guarantee
    /// `rhs <= self` along every tree path (i.e. only subtract what was
    /// previously added at the same index).
    fn sub(self, rhs: Self) -> Self;
}

impl FenwickValue for f64 {
    const ZERO: Self = 0.0;
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
}

impl FenwickValue for u64 {
    const ZERO: Self = 0;
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
}

/// A Fenwick tree over `len` slots, all starting at `T::ZERO`.
#[derive(Debug, Clone)]
pub struct Fenwick<T> {
    /// 1-indexed array of partial sums.
    tree: Vec<T>,
    len: usize,
}

impl<T: FenwickValue> Fenwick<T> {
    /// A tree over `len` zero-valued slots.
    pub fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![T::ZERO; len + 1],
            len,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `delta` to slot `index` in O(log N).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn add(&mut self, index: usize, delta: T) {
        assert!(
            index < self.len,
            "index {index} out of range 0..{}",
            self.len
        );
        let mut i = index + 1;
        while i < self.tree.len() {
            // lint: allow(D6) — the loop condition is the bounds check
            self.tree[i] = self.tree[i].add(delta);
            i += i & i.wrapping_neg();
        }
    }

    /// Subtract `delta` from slot `index` in O(log N). For unsigned values
    /// only subtract amounts previously added at the same index.
    ///
    /// # Panics
    /// Panics if `index` is out of range (and, for unsigned values, on
    /// underflow in debug builds).
    pub fn sub(&mut self, index: usize, delta: T) {
        assert!(
            index < self.len,
            "index {index} out of range 0..{}",
            self.len
        );
        let mut i = index + 1;
        while i < self.tree.len() {
            // lint: allow(D6) — the loop condition is the bounds check
            self.tree[i] = self.tree[i].sub(delta);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..count` in O(log N). `count` is clamped to `len`.
    pub fn prefix_sum(&self, count: usize) -> T {
        let mut sum = T::ZERO;
        let mut i = count.min(self.len);
        while i > 0 {
            // lint: allow(D6) — i <= len < tree.len() by the clamp above
            sum = sum.add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of all slots.
    pub fn total(&self) -> T {
        self.prefix_sum(self.len)
    }

    /// Largest-prefix descent: the number of leading slots whose cumulative
    /// sum stays strictly below `target`. For sampling, this is the index
    /// of the first slot whose cumulative sum reaches `target` (callers
    /// clamp against zero-weight tails; see [`crate::lottery`]).
    pub fn descend(&self, mut target: T) -> usize {
        let n = self.len;
        if n == 0 {
            return 0;
        }
        let mut pos = 0usize;
        // Highest power of two <= n.
        let mut jump = 1usize << (usize::BITS - 1 - n.leading_zeros());
        while jump > 0 {
            let next = pos + jump;
            // lint: allow(D6) — next <= n and tree.len() == n + 1
            if next <= n && self.tree[next] < target {
                // lint: allow(D6) — same guard as the line above
                target = target.sub(self.tree[next]);
                pos = next;
            }
            jump >>= 1;
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_prefix_sums_track_adds_and_subs() {
        let mut f = Fenwick::<u64>::new(10);
        assert_eq!(f.total(), 0);
        f.add(3, 5);
        f.add(7, 2);
        f.add(3, 1);
        assert_eq!(f.prefix_sum(3), 0);
        assert_eq!(f.prefix_sum(4), 6);
        assert_eq!(f.prefix_sum(8), 8);
        assert_eq!(f.total(), 8);
        f.sub(3, 6);
        assert_eq!(f.total(), 2);
        assert_eq!(f.prefix_sum(4), 0);
    }

    #[test]
    fn f64_descend_finds_first_covering_slot() {
        let mut f = Fenwick::<f64>::new(4);
        for (i, w) in [1.0, 0.0, 3.0, 6.0].into_iter().enumerate() {
            f.add(i, w);
        }
        // Cumulative: [1, 1, 4, 10].
        assert_eq!(f.descend(0.5), 0);
        assert_eq!(f.descend(1.5), 2);
        // A target equal to a cumulative sum stays at that slot.
        assert_eq!(f.descend(4.0), 2);
        assert_eq!(f.descend(9.9), 3);
    }

    #[test]
    fn empty_tree_is_harmless() {
        let f = Fenwick::<u64>::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
        assert_eq!(f.prefix_sum(5), 0);
        assert_eq!(f.descend(1), 0);
    }

    #[test]
    fn prefix_counts_clamp_to_len() {
        let mut f = Fenwick::<u64>::new(3);
        f.add(0, 1);
        f.add(2, 4);
        assert_eq!(f.prefix_sum(100), 5);
        assert_eq!(f.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        let mut f = Fenwick::<u64>::new(2);
        f.add(2, 1);
    }
}
