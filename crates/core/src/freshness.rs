//! Freshness measurement (§2.2).
//!
//! The paper classifies freshness metrics into **time-based**, **lag-based**,
//! and **divergence-based** families and adopts the lag-based one because the
//! workload consists of periodic full-replacement updates: staleness is
//! naturally "how many newer versions exist that the server has not applied".
//!
//! For a data item `d_j`:
//!
//! ```text
//! Qu(d_j) = 1 / (1 + Udrop_j)
//! ```
//!
//! where `Udrop_j` counts the versions that arrived since the last applied
//! one. For a query, freshness is aggregated *strictly* — the minimum over
//! the accessed read set — so the reported value lower-bounds every item the
//! answer was computed from:
//!
//! ```text
//! Qu(q_i) = min_{d_j ∈ D_i} Qu(d_j)          (Eq. 1)
//! ```
//!
//! This module also provides the time-based and divergence-based variants as
//! documented extensions (the paper names them in §2.2; they are exercised by
//! the ablation benches).

use crate::time::{SimDuration, SimTime};
use crate::types::DataId;
use serde::{Deserialize, Serialize};

/// Lag-based freshness of a single item with `udrop` pending versions.
///
/// Always in `(0, 1]`: 1 when fully fresh, approaching 0 as versions pile up.
pub fn lag_freshness(udrop: u64) -> f64 {
    1.0 / (1.0 + udrop as f64)
}

/// The number of pending versions at which lag-based freshness first drops
/// below `req`. With the paper's default `qf = 0.9`, this is 1: a single
/// unapplied version already violates the requirement.
pub fn max_tolerable_udrop(req: f64) -> u64 {
    if req <= 0.0 {
        return u64::MAX;
    }
    // Largest u with 1/(1+u) >= req  <=>  u <= 1/req - 1.
    (1.0 / req - 1.0).floor().max(0.0) as u64
}

/// Strict (minimum) aggregation of item freshness over a read set (Eq. 1).
pub fn query_freshness<F>(items: &[DataId], mut item_freshness: F) -> f64
where
    F: FnMut(DataId) -> f64,
{
    items
        .iter()
        .map(|&d| item_freshness(d))
        .fold(f64::INFINITY, f64::min)
        .min(1.0)
}

/// Per-item freshness bookkeeping for the whole database.
///
/// The server-side view: every *version arrival* from a source increments the
/// item's pending count; every *applied* update transaction clears it (a
/// full-replacement update installs the newest version, so one application
/// catches the item up regardless of how many versions were skipped — the
/// stock-ticker argument from §1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreshnessTable {
    pending: Vec<u64>,
    last_applied: Vec<SimTime>,
    last_arrival: Vec<SimTime>,
    /// Total versions that arrived, per item (Fig. 3 "original" histogram).
    arrived: Vec<u64>,
    /// Total updates applied, per item (Fig. 3 "degraded" histogram).
    applied: Vec<u64>,
}

impl FreshnessTable {
    /// A table for `n_items` fully fresh items.
    pub fn new(n_items: usize) -> Self {
        FreshnessTable {
            pending: vec![0; n_items],
            last_applied: vec![SimTime::ZERO; n_items],
            last_arrival: vec![SimTime::ZERO; n_items],
            arrived: vec![0; n_items],
            applied: vec![0; n_items],
        }
    }

    /// Number of items tracked.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when the table tracks no items.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// A new version of `item` arrived from its source at `now`.
    pub fn record_arrival(&mut self, item: DataId, now: SimTime) {
        let i = item.index();
        self.pending[i] += 1;
        self.arrived[i] += 1;
        self.last_arrival[i] = now;
    }

    /// An update transaction for `item` committed at `now`, installing the
    /// newest version and clearing the backlog.
    pub fn record_applied(&mut self, item: DataId, now: SimTime) {
        let i = item.index();
        self.pending[i] = 0;
        self.applied[i] += 1;
        self.last_applied[i] = now;
    }

    /// Pending (unapplied) version count `Udrop_j`.
    pub fn udrop(&self, item: DataId) -> u64 {
        self.pending[item.index()]
    }

    /// Lag-based freshness of one item.
    pub fn item_freshness(&self, item: DataId) -> f64 {
        lag_freshness(self.udrop(item))
    }

    /// Strict-minimum freshness of a read set (Eq. 1).
    pub fn read_set_freshness(&self, items: &[DataId]) -> f64 {
        query_freshness(items, |d| self.item_freshness(d))
    }

    /// True when every item in the read set satisfies `req`.
    pub fn read_set_meets(&self, items: &[DataId], req: f64) -> bool {
        self.read_set_freshness(items) >= req
    }

    /// Items in `read_set` that currently violate `req` (the set an
    /// on-demand-update policy must refresh before the query runs).
    pub fn stale_items(&self, read_set: &[DataId], req: f64) -> Vec<DataId> {
        let tolerable = max_tolerable_udrop(req);
        read_set
            .iter()
            .copied()
            .filter(|&d| self.udrop(d) > tolerable)
            .collect()
    }

    /// Per-item arrived-version counts (Fig. 3 grey area).
    pub fn arrived_histogram(&self) -> &[u64] {
        &self.arrived
    }

    /// Per-item applied-update counts (Fig. 3 black line).
    pub fn applied_histogram(&self) -> &[u64] {
        &self.applied
    }

    /// Consume the table, handing back the `(arrived, applied)` histograms
    /// without copying them (end-of-run reporting).
    pub fn into_histograms(self) -> (Vec<u64>, Vec<u64>) {
        (self.arrived, self.applied)
    }

    /// Fraction of arrived versions that were applied, over the whole
    /// database. 1.0 under IMU with no backlog; small under heavy shedding.
    pub fn applied_ratio(&self) -> f64 {
        let arrived: u64 = self.arrived.iter().sum();
        if arrived == 0 {
            return 1.0;
        }
        let applied: u64 = self.applied.iter().sum();
        applied as f64 / arrived as f64
    }

    /// Serialize every per-item counter and timestamp into a checkpoint
    /// stream. See [`crate::checkpoint`].
    pub fn checkpoint_into(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_u64_slice(&self.pending);
        enc.put_usize(self.last_applied.len());
        for t in &self.last_applied {
            enc.put_u64(t.0);
        }
        enc.put_usize(self.last_arrival.len());
        for t in &self.last_arrival {
            enc.put_u64(t.0);
        }
        enc.put_u64_slice(&self.arrived);
        enc.put_u64_slice(&self.applied);
    }

    /// Restore state captured by [`FreshnessTable::checkpoint_into`].
    pub fn restore_from(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let n = self.pending.len();
        let pending = dec.take_u64_vec()?;
        if pending.len() != n {
            return Err(crate::checkpoint::CheckpointError::Mismatch {
                what: "freshness table size",
            });
        }
        self.pending = pending;
        for vec in [&mut self.last_applied, &mut self.last_arrival] {
            let m = dec.take_usize()?;
            if m != n {
                return Err(crate::checkpoint::CheckpointError::Mismatch {
                    what: "freshness table size",
                });
            }
            for t in vec.iter_mut() {
                *t = SimTime(dec.take_u64()?);
            }
        }
        let arrived = dec.take_u64_vec()?;
        let applied = dec.take_u64_vec()?;
        if arrived.len() != n || applied.len() != n {
            return Err(crate::checkpoint::CheckpointError::Mismatch {
                what: "freshness table size",
            });
        }
        self.arrived = arrived;
        self.applied = applied;
        Ok(())
    }

    /// **Time-based** freshness variant (documented extension): age of the
    /// item relative to a validity interval, `max(0, 1 - age/validity)`.
    pub fn time_freshness(&self, item: DataId, now: SimTime, validity: SimDuration) -> f64 {
        if validity.is_zero() {
            return if self.udrop(item) == 0 { 1.0 } else { 0.0 };
        }
        let i = item.index();
        if self.pending[i] == 0 {
            return 1.0;
        }
        // Stale since the first unapplied version; approximate its arrival by
        // the last recorded arrival (exact for Udrop == 1).
        let age = now.saturating_since(self.last_arrival[i]);
        (1.0 - age.as_secs_f64() / validity.as_secs_f64()).max(0.0)
    }

    /// **Divergence-based** freshness variant (documented extension): assumes
    /// each skipped version moves the value by a unit step, so divergence is
    /// proportional to the backlog; freshness decays exponentially with it.
    pub fn divergence_freshness(&self, item: DataId, decay: f64) -> f64 {
        (-decay * self.udrop(item) as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_freshness_matches_formula() {
        assert_eq!(lag_freshness(0), 1.0);
        assert_eq!(lag_freshness(1), 0.5);
        assert!((lag_freshness(9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tolerable_udrop_for_common_requirements() {
        // qf = 0.9: any pending version violates the requirement.
        assert_eq!(max_tolerable_udrop(0.9), 0);
        // qf = 0.5: exactly one pending version is tolerable.
        assert_eq!(max_tolerable_udrop(0.5), 1);
        // qf = 0.25: 1/(1+3) = 0.25 is still acceptable.
        assert_eq!(max_tolerable_udrop(0.25), 3);
        assert_eq!(max_tolerable_udrop(0.0), u64::MAX);
    }

    #[test]
    fn strict_min_aggregation() {
        let items = [DataId(0), DataId(1), DataId(2)];
        let f = query_freshness(&items, |d| match d.0 {
            0 => 1.0,
            1 => 0.5,
            _ => 0.25,
        });
        assert_eq!(f, 0.25);
        // Empty read set is vacuously fresh (clamped to 1).
        assert_eq!(query_freshness(&[], |_| 0.0), 1.0);
    }

    #[test]
    fn arrivals_accumulate_and_one_apply_clears() {
        let mut t = FreshnessTable::new(4);
        let d = DataId(2);
        assert_eq!(t.item_freshness(d), 1.0);
        t.record_arrival(d, SimTime::from_secs(1));
        t.record_arrival(d, SimTime::from_secs(2));
        t.record_arrival(d, SimTime::from_secs(3));
        assert_eq!(t.udrop(d), 3);
        assert!((t.item_freshness(d) - 0.25).abs() < 1e-12);
        // A single full-replacement application catches the item up.
        t.record_applied(d, SimTime::from_secs(4));
        assert_eq!(t.udrop(d), 0);
        assert_eq!(t.item_freshness(d), 1.0);
        assert_eq!(t.arrived_histogram()[2], 3);
        assert_eq!(t.applied_histogram()[2], 1);
    }

    #[test]
    fn stale_items_filters_by_requirement() {
        let mut t = FreshnessTable::new(3);
        t.record_arrival(DataId(0), SimTime::from_secs(1));
        t.record_arrival(DataId(2), SimTime::from_secs(1));
        t.record_arrival(DataId(2), SimTime::from_secs(2));
        let read_set = [DataId(0), DataId(1), DataId(2)];
        // qf = 0.9 -> both pending items are stale.
        assert_eq!(t.stale_items(&read_set, 0.9), vec![DataId(0), DataId(2)]);
        // qf = 0.5 tolerates one pending version -> only d2 is stale.
        assert_eq!(t.stale_items(&read_set, 0.5), vec![DataId(2)]);
        assert!(!t.read_set_meets(&read_set, 0.9));
        assert!(t.read_set_meets(&[DataId(1)], 0.9));
    }

    #[test]
    fn applied_ratio_tracks_shedding() {
        let mut t = FreshnessTable::new(2);
        assert_eq!(t.applied_ratio(), 1.0);
        for s in 0..10 {
            t.record_arrival(DataId(0), SimTime::from_secs(s));
        }
        t.record_applied(DataId(0), SimTime::from_secs(10));
        assert!((t.applied_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn time_freshness_decays_with_age() {
        let mut t = FreshnessTable::new(1);
        let d = DataId(0);
        let validity = SimDuration::from_secs(10);
        assert_eq!(t.time_freshness(d, SimTime::from_secs(5), validity), 1.0);
        t.record_arrival(d, SimTime::from_secs(5));
        let f = t.time_freshness(d, SimTime::from_secs(10), validity);
        assert!((f - 0.5).abs() < 1e-12);
        // Beyond the validity interval the item is fully stale.
        assert_eq!(t.time_freshness(d, SimTime::from_secs(30), validity), 0.0);
        // Applying restores full freshness.
        t.record_applied(d, SimTime::from_secs(31));
        assert_eq!(t.time_freshness(d, SimTime::from_secs(31), validity), 1.0);
    }

    #[test]
    fn divergence_freshness_decays_exponentially() {
        let mut t = FreshnessTable::new(1);
        let d = DataId(0);
        assert_eq!(t.divergence_freshness(d, 0.5), 1.0);
        t.record_arrival(d, SimTime::from_secs(1));
        t.record_arrival(d, SimTime::from_secs(2));
        let f = t.divergence_freshness(d, 0.5);
        assert!((f - (-1.0f64).exp()).abs() < 1e-12);
    }
}
