//! Pluggable freshness semantics (§2.2's three metric families).
//!
//! The paper classifies freshness metrics as **time-based**, **lag-based**,
//! and **divergence-based**, and adopts the lag-based one because its
//! workload has periodic full-replacement updates. This module makes the
//! choice a configuration: the server evaluates a query's read-set
//! freshness under whichever model the deployment calls for.
//!
//! * [`FreshnessModel::Lag`] — `1/(1+Udrop)`: staleness counted in skipped
//!   versions. The paper's metric and the default.
//! * [`FreshnessModel::TimeBased`] — `max(0, 1 − age/validity)`: staleness
//!   counted in wall-clock age against a temporal-validity interval, the
//!   classical real-time-database notion (cf. Xiong et al., RTSS'05, cited
//!   in the paper's related work). An item is perfectly fresh until a newer
//!   version exists, then decays linearly over `validity`.
//! * [`FreshnessModel::Divergence`] — `e^(−decay·Udrop)`: staleness as an
//!   exponential proxy for value divergence, appropriate when each skipped
//!   version moves the value by a comparable step (e.g. random-walk prices).
//!
//! All three agree that a fully applied item has freshness 1.0, so the
//! paper's headline experiments are unchanged under the default.

use crate::freshness::FreshnessTable;
use crate::time::{SimDuration, SimTime};
use crate::types::DataId;
use serde::{Deserialize, Serialize};

/// Which freshness metric the server evaluates query read sets under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FreshnessModel {
    /// Lag-based `1/(1+Udrop)` — the paper's metric.
    #[default]
    Lag,
    /// Time-based `max(0, 1 − age/validity)`.
    TimeBased {
        /// Temporal-validity interval: how long a superseded value remains
        /// acceptable.
        validity: SimDuration,
    },
    /// Divergence-based `e^(−decay·Udrop)`.
    Divergence {
        /// Per-skipped-version decay rate (> 0).
        decay: f64,
    },
}

impl FreshnessModel {
    /// Freshness of a single item at `now` under this model.
    pub fn item_freshness(&self, table: &FreshnessTable, item: DataId, now: SimTime) -> f64 {
        match *self {
            FreshnessModel::Lag => table.item_freshness(item),
            FreshnessModel::TimeBased { validity } => table.time_freshness(item, now, validity),
            FreshnessModel::Divergence { decay } => table.divergence_freshness(item, decay),
        }
    }

    /// Strict-minimum freshness of a read set at `now` (Eq. 1's aggregation
    /// applies to every model).
    pub fn read_set_freshness(
        &self,
        table: &FreshnessTable,
        items: &[DataId],
        now: SimTime,
    ) -> f64 {
        items
            .iter()
            .map(|&d| self.item_freshness(table, d, now))
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Validate model parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FreshnessModel::Lag => Ok(()),
            FreshnessModel::TimeBased { validity } => {
                if validity.is_zero() {
                    Err("time-based freshness needs a positive validity interval".into())
                } else {
                    Ok(())
                }
            }
            FreshnessModel::Divergence { decay } => {
                if decay > 0.0 && decay.is_finite() {
                    Ok(())
                } else {
                    Err(format!("divergence decay must be positive, got {decay}"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_backlog() -> FreshnessTable {
        let mut t = FreshnessTable::new(4);
        // d0 fresh; d1 one pending version (arrived t=10); d2 three pending.
        t.record_arrival(DataId(1), SimTime::from_secs(10));
        for s in [5, 10, 15] {
            t.record_arrival(DataId(2), SimTime::from_secs(s));
        }
        t
    }

    #[test]
    fn all_models_agree_on_fully_fresh_items() {
        let t = table_with_backlog();
        let now = SimTime::from_secs(20);
        for model in [
            FreshnessModel::Lag,
            FreshnessModel::TimeBased {
                validity: SimDuration::from_secs(10),
            },
            FreshnessModel::Divergence { decay: 0.7 },
        ] {
            assert_eq!(model.item_freshness(&t, DataId(0), now), 1.0, "{model:?}");
            assert_eq!(model.item_freshness(&t, DataId(3), now), 1.0, "{model:?}");
        }
    }

    #[test]
    fn lag_model_matches_the_table() {
        let t = table_with_backlog();
        let m = FreshnessModel::Lag;
        let now = SimTime::from_secs(20);
        assert_eq!(m.item_freshness(&t, DataId(1), now), 0.5);
        assert!((m.item_freshness(&t, DataId(2), now) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn time_model_decays_with_age_not_count() {
        let t = table_with_backlog();
        let m = FreshnessModel::TimeBased {
            validity: SimDuration::from_secs(20),
        };
        // d1's pending version arrived at t=10; at t=20 age=10 -> 0.5.
        assert!((m.item_freshness(&t, DataId(1), SimTime::from_secs(20)) - 0.5).abs() < 1e-12);
        // Far past validity: fully stale.
        assert_eq!(
            m.item_freshness(&t, DataId(1), SimTime::from_secs(100)),
            0.0
        );
    }

    #[test]
    fn divergence_model_decays_exponentially_with_count() {
        let t = table_with_backlog();
        let m = FreshnessModel::Divergence { decay: 0.5 };
        let now = SimTime::from_secs(20);
        let f1 = m.item_freshness(&t, DataId(1), now);
        let f2 = m.item_freshness(&t, DataId(2), now);
        assert!((f1 - (-0.5f64).exp()).abs() < 1e-12);
        assert!((f2 - (-1.5f64).exp()).abs() < 1e-12);
        assert!(f2 < f1);
    }

    #[test]
    fn read_set_aggregation_is_strict_min_for_every_model() {
        let t = table_with_backlog();
        let now = SimTime::from_secs(20);
        let read_set = [DataId(0), DataId(1), DataId(2)];
        for model in [
            FreshnessModel::Lag,
            FreshnessModel::TimeBased {
                validity: SimDuration::from_secs(20),
            },
            FreshnessModel::Divergence { decay: 0.5 },
        ] {
            let agg = model.read_set_freshness(&t, &read_set, now);
            let min = read_set
                .iter()
                .map(|&d| model.item_freshness(&t, d, now))
                .fold(f64::INFINITY, f64::min);
            assert!((agg - min).abs() < 1e-12, "{model:?}");
        }
        // Empty read set is vacuously fresh.
        assert_eq!(FreshnessModel::Lag.read_set_freshness(&t, &[], now), 1.0);
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(FreshnessModel::Lag.validate().is_ok());
        assert!(FreshnessModel::TimeBased {
            validity: SimDuration::ZERO
        }
        .validate()
        .is_err());
        assert!(FreshnessModel::Divergence { decay: 0.0 }
            .validate()
            .is_err());
        assert!(FreshnessModel::Divergence { decay: -1.0 }
            .validate()
            .is_err());
        assert!(FreshnessModel::Divergence { decay: 1.0 }.validate().is_ok());
    }
}
