//! # unit-core — User-centric Transaction Management (UNIT)
//!
//! A from-scratch Rust implementation of the framework in *Qu, Labrinidis,
//! Mossé: "UNIT: User-centric Transaction Management in Web-Database
//! Systems" (ICDE 2006)*.
//!
//! Web-database servers juggle two transaction classes on one CPU: user
//! **queries** (foreground, deadline- and freshness-sensitive) and periodic
//! **updates** (background, keeping data fresh). Under overload something
//! must give; UNIT decides *what* gives based on a unified **User
//! Satisfaction Metric (USM)** that prices rejections, deadline misses, and
//! stale reads according to user preferences.
//!
//! This crate contains the paper's contribution:
//!
//! * [`usm`] — the metric: per-query gains/penalties, windowed accounting.
//! * [`freshness`] — lag-based freshness (`1/(1+Udrop)`, strict-minimum
//!   aggregation) plus the time- and divergence-based variants.
//! * [`admission`] — the two-stage query admission control.
//! * [`tickets`] + [`lottery`] — victim selection for update degradation.
//! * [`modulation`] — update-frequency degrade/upgrade.
//! * [`controller`] — the Load Balancing Controller and its Adaptive
//!   Allocation Algorithm.
//! * [`unit_policy`] — all of the above assembled behind the [`Policy`]
//!   trait.
//!
//! The execution substrate (event-driven server with dual-priority EDF
//! scheduling and 2PL-HP locking) lives in the companion `unit-sim` crate;
//! workload synthesis lives in `unit-workload`; the paper's comparison
//! baselines (IMU, ODU, QMF) live in `unit-baselines`.
//!
//! ## Quick start
//!
//! ```
//! use unit_core::prelude::*;
//!
//! // Preferences: deadline misses hurt the most (Table 2, high C_fm).
//! let weights = UsmWeights::low_high_cfm();
//! let mut policy = UnitPolicy::new(UnitConfig::with_weights(weights));
//!
//! // The server (unit-sim) drives the policy through the `Policy` trait:
//! policy.init(4, &[]);
//! let q = QuerySpec {
//!     id: QueryId(1),
//!     arrival: SimTime::ZERO,
//!     items: vec![DataId(0)],
//!     exec_time: SimDuration::from_secs(1),
//!     relative_deadline: SimDuration::from_secs(10),
//!     freshness_req: 0.9,
//!     pref_class: 0,
//! };
//! let snapshot = SystemSnapshot::empty(SimTime::ZERO);
//! assert!(policy.on_query_arrival(&q, &snapshot.view()).is_admit());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod controller;
pub mod fenwick;
pub mod freshness;
pub mod freshness_model;
pub mod lottery;
pub mod modulation;
pub mod observe;
pub mod policy;
pub mod seed;
pub mod snapshot;
pub mod tickets;
pub mod time;
pub mod txn;
pub mod types;
pub mod unit_policy;
pub mod usm;
pub mod validate;

pub use admission::{AdmissionControl, AdmissionVerdict};
pub use checkpoint::{CheckpointError, Dec, Enc};
pub use clock::{Clock, VirtualClock};
pub use config::UnitConfig;
pub use controller::{Lbc, LbcConfig};
pub use fenwick::{Fenwick, FenwickValue};
pub use freshness::FreshnessTable;
pub use freshness_model::FreshnessModel;
pub use lottery::WeightedSampler;
pub use modulation::{UpdateModulation, UpgradeRule};
pub use observe::{AdmissionObs, ControllerObs, ModulationObs};
pub use policy::{AdmissionDecision, ControlSignal, Policy, UpdateAction};
pub use seed::split_seed;
pub use snapshot::{QueueEntryView, QueueSource, SnapshotView, SystemSnapshot};
pub use tickets::TicketTable;
pub use time::{SimDuration, SimTime};
pub use txn::{CommitSummary, ReadVersion, TransactionManager, TxnError, TxnToken};
pub use types::{
    DataId, Outcome, QueryId, QuerySpec, SpecError, Trace, TxnClass, UpdateSpec, UpdateStreamId,
};
pub use unit_policy::{UnitPolicy, UnitPolicyStats};
pub use usm::{OutcomeCounts, UsmWeights, UsmWindow};

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::admission::{AdmissionControl, AdmissionVerdict};
    pub use crate::clock::{Clock, VirtualClock};
    pub use crate::config::UnitConfig;
    pub use crate::controller::{Lbc, LbcConfig};
    pub use crate::freshness::FreshnessTable;
    pub use crate::freshness_model::FreshnessModel;
    pub use crate::modulation::{UpdateModulation, UpgradeRule};
    pub use crate::observe::{AdmissionObs, ControllerObs, ModulationObs};
    pub use crate::policy::{AdmissionDecision, ControlSignal, Policy, UpdateAction};
    pub use crate::snapshot::{QueueEntryView, QueueSource, SnapshotView, SystemSnapshot};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::txn::{CommitSummary, ReadVersion, TransactionManager, TxnError, TxnToken};
    pub use crate::types::{
        DataId, Outcome, QueryId, QuerySpec, Trace, TxnClass, UpdateSpec, UpdateStreamId,
    };
    pub use crate::unit_policy::UnitPolicy;
    pub use crate::usm::{OutcomeCounts, UsmWeights, UsmWindow};
}
