//! Lottery scheduling: O(log N) proportional-share random selection.
//!
//! §3.4.1 chooses the update-degradation victim by lottery scheduling
//! (Waldspurger & Weihl): each data item holds a number of tickets and the
//! victim is drawn with probability proportional to its ticket count. The
//! paper quotes `O(log N_d)` per draw; we realize that bound with the
//! shared [`Fenwick`] tree over non-negative weights — `O(log N)` point
//! updates and `O(log N)` inverse-prefix-sum sampling.
//!
//! Weights are `f64` because UNIT's ticket values are continuous (Eq. 6–8).
//! Callers must supply non-negative weights; UNIT shifts its raw tickets by
//! `−T_min` before loading them (§3.4.1).

use crate::fenwick::Fenwick;
use rand::Rng;

/// A Fenwick-tree-backed weighted sampler over indices `0..len`.
///
/// ```
/// use unit_core::lottery::WeightedSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut sampler = WeightedSampler::from_weights(&[0.0, 3.0, 1.0]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let draw = sampler.sample(&mut rng).unwrap();
/// assert!(draw == 1 || draw == 2, "index 0 has no tickets");
/// sampler.set(1, 0.0); // O(log N) point update
/// assert_eq!(sampler.sample(&mut rng), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    /// Fenwick tree of partial weight sums.
    tree: Fenwick<f64>,
    /// Current weight per index (kept for `weight()` and validation).
    weights: Vec<f64>,
}

impl WeightedSampler {
    /// A sampler over `len` indices, all with weight zero.
    pub fn new(len: usize) -> Self {
        WeightedSampler {
            tree: Fenwick::new(len),
            weights: vec![0.0; len],
        }
    }

    /// Build a sampler from a slice of non-negative weights in O(N).
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn from_weights(weights: &[f64]) -> Self {
        let mut s = WeightedSampler::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            s.set(i, w);
        }
        s
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the sampler covers no indices.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of `index`.
    pub fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.tree.total()
    }

    /// Set the weight of `index` to `w` in O(log N).
    ///
    /// # Panics
    /// Panics if `w` is negative or non-finite, or `index` out of range.
    pub fn set(&mut self, index: usize, w: f64) {
        assert!(
            w >= 0.0 && w.is_finite(),
            "lottery weights must be finite and non-negative, got {w}"
        );
        let delta = w - self.weights[index];
        self.weights[index] = w;
        self.tree.add(index, delta);
    }

    /// Draw one index with probability proportional to its weight, or `None`
    /// when the total weight is (numerically) zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let target = rng.gen::<f64>() * total;
        Some(self.find(target))
    }

    /// Map a raw `target ∈ [0, total)` to the index [`Self::sample`] would
    /// return for that draw value. Exposed so callers that pre-classify
    /// draws (e.g. against cumulative-weight spans) can resolve only the
    /// draws that matter while consuming the RNG stream themselves.
    pub fn locate(&self, target: f64) -> usize {
        self.find(target)
    }

    /// Cross-check the Fenwick tree against the stored weight vector: every
    /// prefix sum recomputed the naive O(N) way must match the tree within
    /// float tolerance. The shadow of the O(log N) fast path; always
    /// compiled, invoked behind the `validate` feature (see
    /// [`crate::validate`]).
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut cum = 0.0_f64;
        for (i, &w) in self.weights.iter().enumerate() {
            if w < 0.0 || !w.is_finite() {
                return Err(format!(
                    "weight {i} is {w}, must be finite and non-negative"
                ));
            }
            cum += w;
            let tree_cum = self.tree.prefix_sum(i + 1);
            let tol = 1e-9 * cum.abs().max(1.0);
            if (tree_cum - cum).abs() > tol {
                return Err(format!("fenwick prefix {i}: tree {tree_cum}, naive {cum}"));
            }
        }
        Ok(())
    }

    /// Find the first index whose cumulative weight exceeds `target` via the
    /// tree's largest-prefix descent. `target` must be in `[0, total)`.
    fn find(&self, target: f64) -> usize {
        let n = self.len();
        // Descent result = count of full prefixes below target; clamp against
        // accumulated float error landing on a zero-weight tail index.
        let mut idx = self.tree.descend(target).min(n - 1);
        // lint: allow(D4) — weights are set to the 0.0 literal, never computed; exact match is the sentinel
        while idx > 0 && self.weights[idx] == 0.0 {
            idx -= 1;
        }
        // If we walked into a zero-weight prefix (all-left zeros), walk right.
        // lint: allow(D4) — weights are set to the 0.0 literal, never computed; exact match is the sentinel
        while idx < n - 1 && self.weights[idx] == 0.0 {
            idx += 1;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_zero_weight_samplers_yield_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = WeightedSampler::new(0);
        assert!(s.is_empty());
        assert_eq!(s.sample(&mut rng), None);
        let s = WeightedSampler::new(5);
        assert_eq!(s.total(), 0.0);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn single_positive_weight_always_wins() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = WeightedSampler::new(8);
        s.set(5, 3.25);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), Some(5));
        }
    }

    #[test]
    fn totals_track_set_operations() {
        let mut s = WeightedSampler::from_weights(&[1.0, 2.0, 3.0]);
        assert!((s.total() - 6.0).abs() < 1e-12);
        s.set(1, 0.0);
        assert!((s.total() - 4.0).abs() < 1e-12);
        assert_eq!(s.weight(1), 0.0);
        s.set(1, 5.0);
        assert!((s.total() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequency_is_proportional_to_weight() {
        let weights = [1.0, 0.0, 3.0, 6.0];
        let s = WeightedSampler::from_weights(&weights);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 4];
        let draws = 100_000;
        for _ in 0..draws {
            counts[s.sample(&mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index must never be drawn");
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "index {i}: observed {observed:.4}, expected {expected:.4}"
            );
        }
    }

    #[test]
    fn non_power_of_two_sizes_sample_every_index() {
        // Exercise the descent logic on sizes that are not powers of two.
        for n in [1usize, 3, 5, 7, 100, 1000, 1024, 1025] {
            let weights: Vec<f64> = (0..n).map(|i| (i % 7 + 1) as f64).collect();
            let s = WeightedSampler::from_weights(&weights);
            let mut rng = StdRng::seed_from_u64(n as u64);
            for _ in 0..200 {
                let idx = s.sample(&mut rng).unwrap();
                assert!(idx < n);
                assert!(s.weight(idx) > 0.0);
            }
        }
    }

    #[test]
    fn consistency_check_accepts_a_healthy_sampler() {
        let mut s = WeightedSampler::from_weights(&[0.0, 3.0, 1.0, 2.5]);
        s.set(2, 0.0);
        s.set(0, 4.0);
        assert_eq!(s.check_consistency(), Ok(()));
    }

    #[test]
    fn consistency_check_catches_a_corrupted_tree() {
        let mut s = WeightedSampler::from_weights(&[1.0, 2.0, 3.0]);
        // Skew the Fenwick tree without going through `set`, as a bug in the
        // incremental path would.
        s.tree.add(1, 0.5);
        let err = s.check_consistency().unwrap_err();
        assert!(err.contains("fenwick prefix 1"), "{err}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_are_rejected() {
        let mut s = WeightedSampler::new(3);
        s.set(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_weights_are_rejected() {
        let mut s = WeightedSampler::new(3);
        s.set(0, f64::NAN);
    }
}
