//! Update Frequency Modulation (§3.4): degrade and upgrade update periods.
//!
//! Each item `d_j` has an *ideal* period `pi_j` (the source rate from the
//! trace) and a *current* period `pc_j ≥ pi_j` the server actually applies
//! updates at. Degrading stretches a victim's period multiplicatively
//! (Eq. 9); upgrading walks every degraded period back toward ideal
//! (Eq. 10):
//!
//! ```text
//! degrade:  pc_j ← min(cap·pi_j, pc_j · (1 + C_du))     C_du = 0.1
//! upgrade:  pc_j ← max(pi_j, pc_j − C_uu·pi_j)          C_uu = 0.5   (linear)
//!       or  pc_j ← max(pi_j, pc_j · (1 − C_uu))                      (geometric)
//! ```
//!
//! Two departures from the paper's text, both documented in DESIGN.md:
//!
//! * **Clamp direction.** Eq. 10 prints `min(pi_j, …)`, but periods must
//!   never drop below the source period (there is nothing to apply more
//!   often than versions arrive) and the prose says periods are "decreased
//!   gradually … until they reach the ideal period" — so we clamp from
//!   below with `max`.
//! * **Degradation cap.** The paper leaves `pc_j` unbounded. Unbounded
//!   stretching makes recovery through Eq. 10's linear step arbitrarily
//!   slow, so we cap the degradation factor (default 64×, i.e. up to ~98.4%
//!   of an item's updates shed — beyond the ≥95% shedding the paper reports
//!   in Fig. 3(c)). The geometric upgrade rule — the paper's "essentially
//!   cut the update period by half and quickly converge" reading — is
//!   provided as an alternative and compared in the ablation benches.

use crate::time::{SimDuration, SimTime};
use crate::types::DataId;
use serde::{Deserialize, Serialize};

/// How `UpgradeUpdates` walks a degraded period back toward ideal (Eq. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum UpgradeRule {
    /// `pc_j ← max(pi_j, pc_j − C_uu·pi_j)` — the formula as printed.
    /// Erases mild degradations (factor < 1 + C_uu) in a single signal,
    /// which destabilizes the controller when degradation is spread thin;
    /// kept for the ablation benches.
    LinearIdealStep,
    /// `pc_j ← max(pi_j, pc_j · (1 − C_uu))` — the "cut the update period by
    /// half and quickly converge" prose reading; geometric and proportional,
    /// so one signal relieves staleness without discarding the accumulated
    /// shedding. The default.
    #[default]
    Geometric,
}

/// Per-item current/ideal update periods with degrade/upgrade steps.
///
/// ```
/// use unit_core::modulation::UpdateModulation;
/// use unit_core::time::SimDuration;
/// use unit_core::types::DataId;
///
/// let mut m = UpdateModulation::new(vec![SimDuration::from_secs(100)], 0.1, 0.5);
/// m.degrade(DataId(0)); // Eq. 9: period x 1.1
/// assert_eq!(m.current_period(DataId(0)), SimDuration::from_secs(110));
/// m.upgrade_all(); // Eq. 10: back toward the ideal period
/// assert_eq!(m.current_period(DataId(0)), SimDuration::from_secs(100));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateModulation {
    ideal: Vec<SimDuration>,
    current: Vec<SimDuration>,
    /// Banked application credit per item (see [`Self::should_apply`]);
    /// starts at 1 so the first version always applies.
    credit: Vec<f64>,
    c_du: f64,
    c_uu: f64,
    max_factor: f64,
    rule: UpgradeRule,
}

impl UpdateModulation {
    /// Default cap on `pc_j / pi_j`.
    pub const DEFAULT_MAX_FACTOR: f64 = 64.0;

    /// Build from the ideal periods (index = item id) with the default cap
    /// and the as-printed linear upgrade rule. Items without an update
    /// stream should carry `SimDuration::MAX`.
    ///
    /// # Panics
    /// Panics unless `c_du > 0` and `c_uu ∈ (0, 1]`.
    pub fn new(ideal: Vec<SimDuration>, c_du: f64, c_uu: f64) -> Self {
        Self::with_rule(
            ideal,
            c_du,
            c_uu,
            Self::DEFAULT_MAX_FACTOR,
            UpgradeRule::default(),
        )
    }

    /// Build with an explicit degradation cap and upgrade rule.
    pub fn with_rule(
        ideal: Vec<SimDuration>,
        c_du: f64,
        c_uu: f64,
        max_factor: f64,
        rule: UpgradeRule,
    ) -> Self {
        assert!(c_du > 0.0, "C_du must be positive, got {c_du}");
        assert!(
            c_uu > 0.0 && c_uu <= 1.0,
            "C_uu must be in (0,1], got {c_uu}"
        );
        assert!(max_factor >= 1.0, "cap must be >= 1, got {max_factor}");
        let current = ideal.clone();
        let credit = vec![1.0; ideal.len()];
        UpdateModulation {
            ideal,
            current,
            credit,
            c_du,
            c_uu,
            max_factor,
            rule,
        }
    }

    /// Number of items tracked.
    pub fn len(&self) -> usize {
        self.ideal.len()
    }

    /// True when no items are tracked.
    pub fn is_empty(&self) -> bool {
        self.ideal.is_empty()
    }

    /// Ideal period `pi_j`.
    pub fn ideal_period(&self, item: DataId) -> SimDuration {
        self.ideal[item.index()]
    }

    /// Current (possibly degraded) period `pc_j`.
    pub fn current_period(&self, item: DataId) -> SimDuration {
        self.current[item.index()]
    }

    /// True when `pc_j > pi_j`.
    pub fn is_degraded(&self, item: DataId) -> bool {
        self.current[item.index()] > self.ideal[item.index()]
    }

    /// Number of currently degraded items.
    pub fn degraded_count(&self) -> usize {
        (0..self.len())
            .filter(|&i| self.current[i] > self.ideal[i])
            .count()
    }

    /// Degradation factor `pc_j / pi_j` (1.0 when not degraded).
    pub fn degradation_factor(&self, item: DataId) -> f64 {
        let i = item.index();
        if self.ideal[i].is_zero() || self.ideal[i] == SimDuration::MAX {
            1.0
        } else {
            self.current[i].0 as f64 / self.ideal[i].0 as f64
        }
    }

    /// Degrade one victim: `pc_j ← pc_j · (1 + C_du)` (Eq. 9), capped at
    /// `max_factor · pi_j`.
    pub fn degrade(&mut self, item: DataId) {
        let i = item.index();
        if self.ideal[i] == SimDuration::MAX {
            return; // no update stream for this item
        }
        let stretched = self.current[i].scale(1.0 + self.c_du);
        let cap = self.ideal[i].scale(self.max_factor);
        self.current[i] = stretched.min(cap);
    }

    /// True when [`Self::degrade`] would leave `item` unchanged — the item
    /// has no update stream, or its period already sits at the degradation
    /// cap. Mirrors the `degrade` arithmetic exactly so callers can detect
    /// no-op lottery draws without mutating anything.
    pub fn degrade_is_noop(&self, item: DataId) -> bool {
        let i = item.index();
        if self.ideal[i] == SimDuration::MAX {
            return true;
        }
        let stretched = self.current[i].scale(1.0 + self.c_du);
        let cap = self.ideal[i].scale(self.max_factor);
        stretched.min(cap) == self.current[i]
    }

    /// Upgrade every degraded item one step toward its ideal period
    /// (Eq. 10), per the configured [`UpgradeRule`].
    pub fn upgrade_all(&mut self) {
        self.upgrade_with_shrink(self.c_uu);
    }

    fn upgrade_with_shrink(&mut self, shrink: f64) {
        for i in 0..self.current.len() {
            if self.ideal[i] == SimDuration::MAX || self.current[i] <= self.ideal[i] {
                continue;
            }
            let next = match self.rule {
                UpgradeRule::LinearIdealStep => {
                    let step = self.ideal[i].scale(shrink);
                    self.current[i].saturating_sub(step)
                }
                UpgradeRule::Geometric => self.current[i].scale(1.0 - shrink),
            };
            self.current[i] = next.max(self.ideal[i]);
        }
    }

    /// Expected update-class CPU utilization under the current periods,
    /// given each item's ideal utilization share `u_j = ue_j / pi_j`.
    pub fn expected_utilization(&self, util_share: &[f64]) -> f64 {
        debug_assert_eq!(util_share.len(), self.len());
        (0..self.len())
            .map(|i| util_share[i] / self.degradation_factor(DataId(i as u32)))
            .sum()
    }

    /// Upgrade a single item one step toward its ideal period (the
    /// per-item body of Eq. 10). Returns true if the item was degraded.
    pub fn upgrade_one(&mut self, item: DataId) -> bool {
        let i = item.index();
        if self.ideal[i] == SimDuration::MAX || self.current[i] <= self.ideal[i] {
            return false;
        }
        let next = match self.rule {
            UpgradeRule::LinearIdealStep => {
                let step = self.ideal[i].scale(self.c_uu);
                self.current[i].saturating_sub(step)
            }
            UpgradeRule::Geometric => self.current[i].scale(1.0 - self.c_uu),
        };
        self.current[i] = next.max(self.ideal[i]);
        true
    }

    /// Rate-limiter used by the UNIT policy's version-arrival hook: should a
    /// version of `item` arriving at `now` be applied, given the current
    /// period?
    ///
    /// Credit-based subsampling: every arriving version earns
    /// `pi_j / pc_j` of credit (the survival fraction) and an application
    /// spends one unit. Undegraded items (`pc = pi`) therefore apply every
    /// version; a degradation factor of `f` sheds exactly `1 − 1/f` of the
    /// stream in the long run — smooth even for small factors, where a
    /// naive "one per `pc` interval" limiter would either shed nothing or a
    /// whole version at a time. The first version of each item is always
    /// applied (it initializes the item; credit starts at 1).
    pub fn should_apply(&mut self, item: DataId, _now: SimTime) -> bool {
        let i = item.index();
        if self.ideal[i] == SimDuration::MAX {
            // No stream configured; apply whatever shows up.
            return true;
        }
        self.credit[i] += self.survival_fraction(item);
        if self.credit[i] >= 1.0 {
            self.credit[i] -= 1.0;
            // Cap banked credit so a long-degraded item cannot burst-apply
            // many versions right after an upgrade.
            self.credit[i] = self.credit[i].min(1.0);
            true
        } else {
            false
        }
    }

    /// Expected fraction of versions that survive modulation for `item`
    /// (`pi_j / pc_j`).
    pub fn survival_fraction(&self, item: DataId) -> f64 {
        1.0 / self.degradation_factor(item)
    }

    /// Serialize periods, credit bank, and parameters into a checkpoint
    /// stream. See [`crate::checkpoint`].
    pub fn checkpoint_into(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_usize(self.ideal.len());
        for ((ideal, current), credit) in self.ideal.iter().zip(&self.current).zip(&self.credit) {
            enc.put_u64(ideal.0);
            enc.put_u64(current.0);
            enc.put_f64(*credit);
        }
        enc.put_f64(self.c_du);
        enc.put_f64(self.c_uu);
        enc.put_f64(self.max_factor);
        enc.put_u8(match self.rule {
            UpgradeRule::LinearIdealStep => 0,
            UpgradeRule::Geometric => 1,
        });
    }

    /// Restore state captured by [`UpdateModulation::checkpoint_into`].
    pub fn restore_from(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let n = dec.take_usize()?;
        if n != self.ideal.len() {
            return Err(crate::checkpoint::CheckpointError::Mismatch {
                what: "modulation table size",
            });
        }
        for (ideal, (current, credit)) in self
            .ideal
            .iter_mut()
            .zip(self.current.iter_mut().zip(self.credit.iter_mut()))
        {
            *ideal = SimDuration(dec.take_u64()?);
            *current = SimDuration(dec.take_u64()?);
            *credit = dec.take_f64()?;
        }
        self.c_du = dec.take_f64()?;
        self.c_uu = dec.take_f64()?;
        self.max_factor = dec.take_f64()?;
        self.rule = match dec.take_u8()? {
            0 => UpgradeRule::LinearIdealStep,
            1 => UpgradeRule::Geometric,
            v => {
                return Err(crate::checkpoint::CheckpointError::BadTag {
                    value: v as u64,
                    what: "upgrade rule",
                })
            }
        };
        Ok(())
    }

    /// Check `pi_j ≤ pc_j ≤ cap·pi_j` for every item; streamless items
    /// (`pi = MAX`) must remain untouched. The naive shadow of the clamps
    /// in [`Self::degrade`]/[`Self::upgrade_one`]; always compiled, invoked
    /// behind the `validate` feature (see [`crate::validate`]).
    pub fn check_period_bounds(&self) -> Result<(), String> {
        for i in 0..self.len() {
            let (pi, pc) = (self.ideal[i], self.current[i]);
            if pi == SimDuration::MAX {
                if pc != SimDuration::MAX {
                    return Err(format!(
                        "item {i}: streamless but period modulated to {pc:?}"
                    ));
                }
                continue;
            }
            if pc < pi {
                return Err(format!("item {i}: current {pc:?} below ideal {pi:?}"));
            }
            let cap = pi.scale(self.max_factor);
            if pc > cap {
                return Err(format!("item {i}: current {pc:?} above cap {cap:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulation(periods_s: &[u64]) -> UpdateModulation {
        UpdateModulation::new(
            periods_s
                .iter()
                .map(|&s| SimDuration::from_secs(s))
                .collect(),
            0.1,
            0.5,
        )
    }

    #[test]
    fn degrade_stretches_by_ten_percent() {
        let mut m = modulation(&[100]);
        let d = DataId(0);
        assert!(!m.is_degraded(d));
        m.degrade(d);
        assert_eq!(m.current_period(d), SimDuration::from_secs(110));
        assert!(m.is_degraded(d));
        m.degrade(d);
        assert_eq!(m.current_period(d), SimDuration::from_secs(121));
        assert!((m.degradation_factor(d) - 1.21).abs() < 1e-9);
        assert_eq!(m.ideal_period(d), SimDuration::from_secs(100));
    }

    #[test]
    fn degradation_is_capped() {
        let mut m = modulation(&[10]);
        let d = DataId(0);
        for _ in 0..1000 {
            m.degrade(d);
        }
        let factor = m.degradation_factor(d);
        assert!(
            (factor - UpdateModulation::DEFAULT_MAX_FACTOR).abs() < 0.2,
            "factor {factor} should sit at the cap"
        );
        assert!(m.survival_fraction(d) > 0.015);
    }

    #[test]
    fn linear_upgrade_steps_back_and_clamps_at_ideal() {
        let mut m = UpdateModulation::with_rule(
            vec![SimDuration::from_secs(100)],
            0.1,
            0.5,
            64.0,
            UpgradeRule::LinearIdealStep,
        );
        let d = DataId(0);
        for _ in 0..8 {
            m.degrade(d); // 100 * 1.1^8 ≈ 214.36s
        }
        assert!(m.current_period(d) > SimDuration::from_secs(214));
        m.upgrade_all(); // −50s
        assert!(m.current_period(d) > SimDuration::from_secs(164));
        m.upgrade_all(); // −50s
        m.upgrade_all(); // would undershoot -> clamp at ideal
        assert_eq!(m.current_period(d), SimDuration::from_secs(100));
        assert!(!m.is_degraded(d));
        // Further upgrades are no-ops.
        m.upgrade_all();
        assert_eq!(m.current_period(d), SimDuration::from_secs(100));
    }

    #[test]
    fn geometric_upgrade_halves_toward_ideal() {
        let mut m = UpdateModulation::with_rule(
            vec![SimDuration::from_secs(10)],
            0.1,
            0.5,
            64.0,
            UpgradeRule::Geometric,
        );
        let d = DataId(0);
        for _ in 0..1000 {
            m.degrade(d); // hits the cap: 640s
        }
        m.upgrade_all(); // 320s
        assert_eq!(m.current_period(d), SimDuration::from_secs(320));
        m.upgrade_all(); // 160s
        m.upgrade_all(); // 80s
        m.upgrade_all(); // 40s
        m.upgrade_all(); // 20s
        m.upgrade_all(); // clamped at 10s
        assert_eq!(m.current_period(d), SimDuration::from_secs(10));
        assert!(!m.is_degraded(d));
    }

    #[test]
    fn period_never_drops_below_ideal() {
        let mut m = modulation(&[60, 90]);
        m.degrade(DataId(0));
        for _ in 0..100 {
            m.upgrade_all();
        }
        assert_eq!(m.current_period(DataId(0)), SimDuration::from_secs(60));
        assert_eq!(m.current_period(DataId(1)), SimDuration::from_secs(90));
    }

    #[test]
    fn streamless_items_are_ignored() {
        let mut m = UpdateModulation::new(vec![SimDuration::MAX], 0.1, 0.5);
        let d = DataId(0);
        m.degrade(d);
        assert_eq!(m.current_period(d), SimDuration::MAX);
        assert_eq!(m.degradation_factor(d), 1.0);
        m.upgrade_all();
        assert_eq!(m.current_period(d), SimDuration::MAX);
    }

    #[test]
    fn undegraded_items_apply_every_version() {
        let mut m = modulation(&[10]);
        let d = DataId(0);
        // Versions arrive exactly at the ideal period.
        let mut applied = 0;
        for k in 0..10u64 {
            if m.should_apply(d, SimTime::from_secs(k * 10)) {
                applied += 1;
            }
        }
        assert_eq!(applied, 10, "no degradation -> no shedding");
    }

    #[test]
    fn degraded_items_subsample_versions() {
        let mut m = modulation(&[10]);
        let d = DataId(0);
        // Stretch the period to ~40s: expect roughly one in four applied.
        for _ in 0..15 {
            m.degrade(d); // 10 * 1.1^15 ≈ 41.77s
        }
        let mut applied = 0;
        for k in 0..100u64 {
            if m.should_apply(d, SimTime::from_secs(k * 10)) {
                applied += 1;
            }
        }
        assert!(
            (20..=30).contains(&applied),
            "expected ~25 of 100 applied, got {applied}"
        );
        assert!((m.survival_fraction(d) - 10.0 / 41.77).abs() < 0.01);
    }

    #[test]
    fn first_version_is_always_applied() {
        let mut m = modulation(&[10]);
        for _ in 0..30 {
            m.degrade(DataId(0));
        }
        assert!(m.should_apply(DataId(0), SimTime::from_secs(5)));
    }

    #[test]
    fn capped_shedding_stays_above_survival_floor() {
        let mut m = modulation(&[10]);
        let d = DataId(0);
        for _ in 0..10_000 {
            m.degrade(d);
        }
        // Versions every 10s for 64_000s: cap factor 64 -> ~1/64 applied.
        let mut applied = 0u32;
        let n = 6_400u64;
        for k in 0..n {
            if m.should_apply(d, SimTime::from_secs(k * 10)) {
                applied += 1;
            }
        }
        let fraction = applied as f64 / n as f64;
        assert!(
            fraction > 0.01 && fraction < 0.03,
            "survival fraction {fraction} should be ≈ 1/64"
        );
    }

    #[test]
    fn expected_utilization_tracks_degradation() {
        let mut m = modulation(&[10, 20]);
        // shares: item0 = 0.5, item1 = 0.1 (per caller-provided u_j).
        let shares = [0.5, 0.1];
        assert!((m.expected_utilization(&shares) - 0.6).abs() < 1e-12);
        // Degrading item 0 to 2x halves its expected utilization.
        for _ in 0..8 {
            m.degrade(DataId(0)); // 1.1^8 ≈ 2.14
        }
        let expected = 0.5 / m.degradation_factor(DataId(0)) + 0.1;
        assert!((m.expected_utilization(&shares) - expected).abs() < 1e-12);
    }

    #[test]
    fn period_bounds_check_accepts_modulated_state() {
        let mut m = modulation(&[10, 20]);
        for _ in 0..100 {
            m.degrade(DataId(0));
        }
        m.upgrade_all();
        assert_eq!(m.check_period_bounds(), Ok(()));
    }

    #[test]
    fn period_bounds_check_catches_out_of_range_periods() {
        let mut m = modulation(&[10, 20]);
        // Corrupt the state directly, as a clamp bug would.
        m.current[0] = SimDuration::from_secs(5);
        let err = m.check_period_bounds().unwrap_err();
        assert!(err.contains("below ideal"), "{err}");
        m.current[0] = SimDuration::from_secs(10_000);
        let err = m.check_period_bounds().unwrap_err();
        assert!(err.contains("above cap"), "{err}");

        let mut m = UpdateModulation::new(vec![SimDuration::MAX], 0.1, 0.5);
        m.current[0] = SimDuration::from_secs(1);
        let err = m.check_period_bounds().unwrap_err();
        assert!(err.contains("streamless"), "{err}");
    }

    #[test]
    #[should_panic(expected = "C_du")]
    fn invalid_cdu_is_rejected() {
        UpdateModulation::new(vec![SimDuration::from_secs(1)], 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "C_uu")]
    fn invalid_cuu_is_rejected() {
        UpdateModulation::new(vec![SimDuration::from_secs(1)], 0.1, 1.5);
    }
}
