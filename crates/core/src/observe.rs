//! Read-only observation records a [`crate::policy::Policy`] can expose.
//!
//! The observability layer (`unit-obs`) lives *above* this crate, so the
//! policy cannot emit events itself. Instead, the policy buffers small
//! derived records through the optional `Policy` observation hooks
//! (`set_observed` / `last_admission` / `controller_obs` /
//! `drain_modulation_obs`), and the engine — the single emitter — translates
//! them into typed events. Every record is pure derived data: producing one
//! never mutates decision state, which keeps an observed run bit-identical
//! to an unobserved one.

use crate::admission::AdmissionVerdict;
use crate::time::SimDuration;
use crate::types::DataId;

/// Detail behind the latest admission decision, for policies that run real
/// admission control (UNIT). Baselines leave this unset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionObs {
    /// The admission lag ratio `C_flex` at decision time.
    pub c_flex: f64,
    /// The staged verdict, including the failed inequality's numbers on a
    /// rejection.
    pub verdict: AdmissionVerdict,
}

/// Controller state snapshot taken right after a control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerObs {
    /// `C_flex` after the tick's signals were applied.
    pub c_flex: f64,
    /// Items whose update period is currently degraded.
    pub degraded_items: usize,
    /// Total lottery-ticket mass across all items.
    pub ticket_sum: f64,
}

/// One update-period modulation boundary: a degrade stretch or an upgrade
/// step applied to one item, with the item's ticket mass at that instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulationObs {
    /// The modulated item.
    pub item: DataId,
    /// The item's raw ticket value when it was picked.
    pub ticket: f64,
    /// Period before the change.
    pub old_period: SimDuration,
    /// Period after the change.
    pub new_period: SimDuration,
}
