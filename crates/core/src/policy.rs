//! The policy interface between the transaction manager and the server.
//!
//! Everything the paper compares — UNIT, IMU, ODU, QMF — is a
//! [`Policy`]: a set of callbacks the server invokes on query arrivals,
//! version arrivals, dispatches, commits, and periodic control ticks. The
//! server owns execution (scheduling, locking, deadlines); the policy owns
//! *decisions* (admission, which updates to apply, feedback control).
//!
//! The version-arrival hook unifies the paper's four update schemes:
//!
//! * **IMU** applies every version immediately.
//! * **ODU** never applies versions in the background; instead
//!   [`Policy::demand_refresh`] names the stale items to refresh right before
//!   a query runs.
//! * **QMF** applies versions according to its QoD (quality-of-data) level.
//! * **UNIT** applies versions at the modulated period `pc_j ≥ pi_j`
//!   maintained by update-frequency modulation.

use crate::observe::{AdmissionObs, ControllerObs, ModulationObs};
use crate::snapshot::SnapshotView;
use crate::time::{SimDuration, SimTime};
use crate::types::{DataId, Outcome, QuerySpec, UpdateSpec};
use serde::{Deserialize, Serialize};

/// Admission-control verdict for an arriving query (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Let the query into the ready queue.
    Admit,
    /// Turn the query away; its outcome becomes [`Outcome::Rejected`].
    Reject,
}

impl AdmissionDecision {
    /// True for [`AdmissionDecision::Admit`].
    pub fn is_admit(self) -> bool {
        matches!(self, AdmissionDecision::Admit)
    }
}

/// What to do with a freshly arrived version of a data item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateAction {
    /// Enqueue an update transaction that installs this (newest) version.
    Apply,
    /// Skip it; the item's `Udrop` grows until some later version is applied.
    Skip,
}

impl UpdateAction {
    /// True for [`UpdateAction::Apply`].
    pub fn is_apply(self) -> bool {
        matches!(self, UpdateAction::Apply)
    }
}

/// Control signals the Load Balancing Controller can emit (§3.2, Figure 1).
/// Policies apply these internally; the server logs them for the experiment
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlSignal {
    /// LAC — admit more queries (decrease `C_flex`).
    LoosenAdmission,
    /// TAC — admit fewer queries (increase `C_flex`).
    TightenAdmission,
    /// Degrade Update — shed update load via frequency modulation.
    DegradeUpdates,
    /// Upgrade Update — restore degraded update frequencies.
    UpgradeUpdates,
}

/// A transaction-management policy: admission control plus update scheduling,
/// optionally closed-loop.
///
/// All hooks take `&mut self`; policies are single-owner state machines
/// driven by one server. Hooks must be deterministic given the call sequence
/// and the policy's own seeded RNG, so that experiment runs are reproducible.
pub trait Policy {
    /// Human-readable policy name for reports ("UNIT", "IMU", ...). O(1).
    fn name(&self) -> &str;

    /// Called once before the run with the database size and the update
    /// streams, so the policy can size its per-item state. O(N_d); runs
    /// once, off the event hot path.
    fn init(&mut self, n_items: usize, updates: &[UpdateSpec]);

    /// Admission decision for a newly arrived query. `sys` is a borrowed,
    /// lazily-materialized view — scalar reads are free, queue probes are
    /// O(log N_rq). Implementations must stay within O(log N_rq) per call;
    /// this hook runs on every arrival.
    fn on_query_arrival(&mut self, q: &QuerySpec, sys: &SnapshotView<'_>) -> AdmissionDecision;

    /// A new version of `item` arrived from its source; decide whether the
    /// server should apply it. O(1) for every shipped policy — this hook
    /// fires once per version across every update stream.
    fn on_version_arrival(
        &mut self,
        item: DataId,
        now: SimTime,
        sys: &SnapshotView<'_>,
    ) -> UpdateAction;

    /// Items in `q`'s read set the server must refresh (as update
    /// transactions) before `q` starts executing. Only on-demand policies
    /// return a non-empty list. `udrop` exposes the current per-item backlog.
    /// O(|read set|) — called at most twice per query (admission, dispatch).
    fn demand_refresh(&mut self, q: &QuerySpec, udrop: &dyn Fn(DataId) -> u64) -> Vec<DataId> {
        let _ = (q, udrop);
        Vec::new()
    }

    /// Items the server should refresh *now*, called at every control tick
    /// (time-triggered counterpart of [`Policy::demand_refresh`]). Lets
    /// policies schedule update applications ahead of predicted accesses —
    /// e.g. the deferrable-update policy from the paper's related work.
    /// `udrop` exposes the current per-item backlog. Default: none.
    /// O(N_d) worst case, but only at tick frequency — never per event.
    fn tick_refreshes(&mut self, now: SimTime, udrop: &dyn Fn(DataId) -> u64) -> Vec<DataId> {
        let _ = (now, udrop);
        Vec::new()
    }

    /// When true, [`Policy::demand_refresh`] is evaluated the moment a query
    /// is *admitted* ("the query finds the needed data item is stale", §4.1)
    /// rather than when it first reaches the CPU. Arrival-time refreshing is
    /// eager: it spends CPU on refreshes even for queries that later miss
    /// their deadlines in the queue. O(1).
    fn refresh_at_admission(&self) -> bool {
        false
    }

    /// The server dispatched `q` (acquired its read locks); `freshness` is
    /// the strict-minimum freshness of the read set at that instant. Called
    /// again after a lock-conflict restart. O(|read set|) or cheaper.
    fn on_query_dispatch(&mut self, q: &QuerySpec, freshness: f64) {
        let _ = (q, freshness);
    }

    /// An update transaction for `item` committed. O(1) — this hook fires
    /// once per applied update.
    fn on_update_commit(&mut self, item: DataId, exec_time: SimDuration) {
        let _ = (item, exec_time);
    }

    /// Final outcome of a query (including rejections). O(1) amortized —
    /// fires once per submitted query.
    fn on_query_outcome(&mut self, q: &QuerySpec, outcome: Outcome) {
        let _ = (q, outcome);
    }

    /// Periodic control tick. Returns the signals acted upon (for logging);
    /// open-loop policies return an empty vector. Runs at tick frequency,
    /// not per event: up to O(N_d log N_d) (UNIT's lottery batches) is
    /// acceptable here, per DESIGN.md §2.1.
    fn on_tick(&mut self, now: SimTime, sys: &SnapshotView<'_>) -> Vec<ControlSignal> {
        let _ = (now, sys);
        Vec::new()
    }

    /// Instant strictly before which every control tick is a guaranteed
    /// no-op for this policy, **assuming no other hook fires in between**:
    /// for any tick at `t < tick_idle_until()`, [`Policy::on_tick`] would
    /// return no signals and mutate no state, and [`Policy::tick_refreshes`]
    /// would return no items. The engine uses this to skip whole runs of
    /// idle ticks between consecutive server events — any event that lands
    /// re-queries the bound, so the "no hook in between" premise holds by
    /// construction.
    ///
    /// This is an *optimization contract*, never a behavior switch: return
    /// a bound only when the skipped calls are provably side-effect-free,
    /// so a run taking the fast path stays bit-identical to one that does
    /// not (the differential suites pin this). [`SimTime::MAX`] means ticks
    /// are always no-ops; the default [`SimTime::ZERO`] means "cannot
    /// certify anything — run every tick". O(1).
    fn tick_idle_until(&self) -> SimTime {
        SimTime::ZERO
    }

    /// When true, the single upcoming tick at `now` is a guaranteed no-op
    /// (see [`Policy::tick_idle_until`], from which this is derived). O(1).
    fn tick_idle(&self, now: SimTime) -> bool {
        now < self.tick_idle_until()
    }

    /// The server's current modulated period for `item`'s updates, if the
    /// policy modulates periods (used by Fig. 3 instrumentation). `None`
    /// means "the ideal period". O(1).
    fn current_period(&self, item: DataId) -> Option<SimDuration> {
        let _ = item;
        None
    }

    // ---- Checkpoint hooks (see `crate::checkpoint`) ----------------------

    /// Serialize every decision-affecting mutable field into the checkpoint
    /// stream, in a fixed order mirrored by [`Policy::restore_state`].
    /// O(state size) — linear in the fields written, at most O(n_items).
    /// Stateless policies keep the empty default. Construction-time
    /// configuration and purely observational buffers must not be written —
    /// a snapshot captures exactly what a restored policy needs to make the
    /// same decisions the uncrashed one would have made. Called only at
    /// control-tick boundaries, off the event hot path.
    fn checkpoint_state(&self, enc: &mut crate::checkpoint::Enc) {
        let _ = enc;
    }

    /// Restore the fields written by [`Policy::checkpoint_state`] from the
    /// stream. O(state size) — mirrors [`Policy::checkpoint_state`] exactly.
    /// Called on a policy that has already gone through
    /// [`Policy::init`] for the same workload, so statically-derived state
    /// is in place and only the dynamic fields need overwriting.
    fn restore_state(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let _ = dec;
        Ok(())
    }

    // ---- Observation hooks (all optional; see `crate::observe`) ---------
    //
    // The engine is the sole event emitter; these hooks let it pull derived
    // records out of the policy without the policy depending on the
    // observability crate. They must never influence decisions: an observed
    // run is required to be bit-identical to an unobserved one.

    /// Told once by the server whether an observer is installed, before the
    /// run starts. Policies may use this to skip buffering observation
    /// records entirely when nobody is listening. Buffering must never
    /// change decisions either way. O(1).
    fn set_observed(&mut self, observed: bool) {
        let _ = observed;
    }

    /// Detail behind the most recent [`Policy::on_query_arrival`] decision,
    /// when the policy runs real admission control and observation is on.
    /// Read by the server immediately after each arrival. O(1).
    fn last_admission(&self) -> Option<AdmissionObs> {
        None
    }

    /// Controller state right after a [`Policy::on_tick`], for closed-loop
    /// policies with observation on. Called at tick frequency, never per
    /// event, so O(N_d) aggregates (e.g. a ticket-mass sum) are acceptable,
    /// per DESIGN.md §2.1.
    fn controller_obs(&self) -> Option<ControllerObs> {
        None
    }

    /// Drain the modulation boundaries crossed since the last drain
    /// (buffered only while observation is on). The server calls this after
    /// each tick and stamps the records with the tick time. O(n) in the
    /// records drained; O(1) when observation is off.
    fn drain_modulation_obs(&mut self) -> Vec<ModulationObs> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal open-loop policy exercising the default hook bodies.
    struct AdmitAll;

    impl Policy for AdmitAll {
        fn name(&self) -> &str {
            "admit-all"
        }
        fn init(&mut self, _n_items: usize, _updates: &[UpdateSpec]) {}
        fn on_query_arrival(
            &mut self,
            _q: &QuerySpec,
            _sys: &SnapshotView<'_>,
        ) -> AdmissionDecision {
            AdmissionDecision::Admit
        }
        fn on_version_arrival(
            &mut self,
            _item: DataId,
            _now: SimTime,
            _sys: &SnapshotView<'_>,
        ) -> UpdateAction {
            UpdateAction::Apply
        }
    }

    #[test]
    fn decision_and_action_predicates() {
        assert!(AdmissionDecision::Admit.is_admit());
        assert!(!AdmissionDecision::Reject.is_admit());
        assert!(UpdateAction::Apply.is_apply());
        assert!(!UpdateAction::Skip.is_apply());
    }

    #[test]
    fn default_hooks_are_neutral() {
        use crate::types::QueryId;
        let mut p = AdmitAll;
        p.init(4, &[]);
        let q = QuerySpec {
            id: QueryId(1),
            arrival: SimTime::ZERO,
            items: vec![DataId(0)],
            exec_time: SimDuration::from_secs(1),
            relative_deadline: SimDuration::from_secs(10),
            freshness_req: 0.9,
            pref_class: 0,
        };
        assert!(p.demand_refresh(&q, &|_| 5).is_empty());
        let snap = crate::snapshot::SystemSnapshot::empty(SimTime::ZERO);
        assert!(p.on_tick(SimTime::ZERO, &snap.view()).is_empty());
        assert_eq!(p.current_period(DataId(0)), None);
        p.on_query_dispatch(&q, 1.0);
        p.on_update_commit(DataId(0), SimDuration::from_secs(1));
        p.on_query_outcome(&q, Outcome::Success);
    }
}
