//! Deterministic seed splitting for multi-component experiments.
//!
//! A clustered run owns one user-facing seed but needs an *independent*
//! RNG stream per shard: handing `seed + i` to shard `i` correlates the
//! streams (most PRNGs map nearby seeds to nearby states), while hashing
//! `(seed, stream)` through a strong mixer gives every component its own
//! far-apart stream that is still a pure function of the run seed.
//!
//! The mixer is SplitMix64 (Steele, Lea, Flood — "Fast splittable
//! pseudorandom number generators", OOPSLA'14): a full-period bijective
//! finalizer whose output passes BigCrush, computable in a handful of
//! arithmetic ops with no state and no allocation. The same construction
//! seeds the sub-generators of `rand`'s `SeedableRng::seed_from_u64`.

/// One SplitMix64 mixing step: advance `state` by the Weyl constant and
/// scramble it through the murmur-style finalizer.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of independent stream `stream` from the run seed `base`.
///
/// Properties the cluster layer relies on:
///
/// * **Deterministic** — a pure function of `(base, stream)`; the same run
///   seed always yields the same per-shard seeds regardless of thread
///   interleaving.
/// * **Stream-separating** — adjacent stream indices map to unrelated
///   seeds, so shard RNGs do not echo each other's lottery draws.
/// * **Collision-resistant in practice** — the composition of two mixes is
///   a bijection of the intermediate state; distinct `(base, stream)`
///   pairs collide no more often than a random 64-bit function would.
pub fn split_seed(base: u64, stream: u64) -> u64 {
    // Mix the base first so that stream 0 of seed S is unrelated to S
    // itself (a policy seeded with `S` directly must not share a stream
    // with shard 0 of a cluster seeded with `S`... unless the caller asks
    // for exactly `split_seed(S, 0)`, which is the documented way to
    // reproduce a shard in isolation).
    splitmix64(splitmix64(base) ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitting_is_deterministic() {
        for base in [0u64, 1, 0x5EED_0001, u64::MAX] {
            for stream in [0u64, 1, 2, 63, 1 << 40] {
                assert_eq!(split_seed(base, stream), split_seed(base, stream));
            }
        }
    }

    #[test]
    fn streams_of_one_base_are_distinct() {
        let base = 0x5EED_0001;
        let mut seen: Vec<u64> = (0..1024).map(|s| split_seed(base, s)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1024, "adjacent streams must not collide");
    }

    #[test]
    fn bases_do_not_share_streams() {
        // The same stream index under different run seeds must diverge.
        for stream in 0..64u64 {
            assert_ne!(split_seed(1, stream), split_seed(2, stream));
        }
    }

    #[test]
    fn stream_zero_differs_from_the_raw_base() {
        // A single-server policy seeded with `base` and shard 0 of a cluster
        // seeded with `base` use different streams by design.
        for base in [0u64, 7, 0x5EED_0001] {
            assert_ne!(split_seed(base, 0), base);
        }
    }

    #[test]
    fn adjacent_streams_decorrelate() {
        // Crude avalanche check: consecutive stream seeds differ in roughly
        // half their bits, never in just a few.
        let base = 42;
        for s in 0..256u64 {
            let d = (split_seed(base, s) ^ split_seed(base, s + 1)).count_ones();
            assert!((8..=56).contains(&d), "stream {s}: only {d} bits flipped");
        }
    }
}
