//! A policy's view of the server at decision time.
//!
//! Admission control (§3.3) needs to reason about the ready queue: how much
//! work is ahead of a candidate query (for the Earliest-possible Start Time
//! check) and which admitted queries an extra admission would endanger (for
//! the system-USM check). Policy hooks receive a borrowed, lazy
//! [`SnapshotView`]: the cheap scalars (`now`, `update_backlog`,
//! `recent_utilization`) are plain fields computed in O(n_cpus), while the
//! admitted-query set is probed through a [`QueueSource`] so the common
//! admission path costs O(log N_rq) per probe instead of materializing an
//! owned `O(N_rq)` list per event. The owned [`SystemSnapshot`] remains as a
//! convenient test fixture (`snapshot.view()` adapts it).

use crate::time::{SimDuration, SimTime};
use crate::types::QueryId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One admitted-but-unfinished query as seen by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueEntryView {
    /// The query's identifier.
    pub id: QueryId,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Remaining service demand (full `qe` if not yet started; the unserved
    /// remainder if preempted mid-run).
    pub remaining: SimDuration,
    /// The submitting user's preference class (multi-preference extension).
    pub pref_class: u32,
}

/// Source of admitted-query state behind a [`SnapshotView`].
///
/// The simulator implements this directly over its deadline-indexed
/// order-statistic structures (Fenwick-backed, O(log N_rq) per probe);
/// [`SystemSnapshot`] implements it linearly over its owned vector for
/// tests and custom harnesses.
pub trait QueueSource {
    /// Number of admitted, unfinished queries (`N_rq`).
    fn query_count(&self) -> usize;

    /// Total remaining service over all admitted queries.
    fn total_query_work(&self) -> SimDuration;

    /// Remaining admitted-query work with deadline `<= deadline`.
    fn query_work_at_or_before(&self, deadline: SimTime) -> SimDuration;

    /// Visit admitted queries with deadline strictly after `after`, in
    /// ascending `(deadline, id)` order, until `visit` returns `false`.
    fn for_each_later(&self, after: SimTime, visit: &mut dyn FnMut(QueueEntryView) -> bool);

    /// Hand the full admitted list, in ascending `(deadline, id)` order, to
    /// `f`. Implementations may materialize lazily into a reused buffer —
    /// only policies that genuinely need the whole list pay for it.
    fn with_queries(&self, f: &mut dyn FnMut(&[QueueEntryView]));
}

/// Borrowed, lazily-materialized snapshot of server state passed to policy
/// hooks.
///
/// Scalars are free to read; the admitted-query set is reached through the
/// methods, which forward to the engine's indexed structures.
pub struct SnapshotView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Total remaining service of all queued/running update transactions.
    /// Updates outrank every query, so this entire backlog precedes any
    /// query-class work.
    pub update_backlog: SimDuration,
    /// CPU utilization over the recent measurement window, in `[0, 1]`.
    pub recent_utilization: f64,
    source: &'a dyn QueueSource,
}

impl<'a> SnapshotView<'a> {
    /// Assemble a view from precomputed scalars and a queue source.
    pub fn new(
        now: SimTime,
        update_backlog: SimDuration,
        recent_utilization: f64,
        source: &'a dyn QueueSource,
    ) -> Self {
        SnapshotView {
            now,
            update_backlog,
            recent_utilization,
            source,
        }
    }

    /// Work that would execute before a query-class transaction with absolute
    /// deadline `deadline`: the whole update backlog plus every admitted
    /// query with an earlier deadline (EDF within the query class). Ties are
    /// broken in favor of the incumbent (already-admitted work runs first).
    pub fn work_ahead_of(&self, deadline: SimTime) -> SimDuration {
        self.update_backlog + self.source.query_work_at_or_before(deadline)
    }

    /// Total remaining query-class work.
    pub fn query_backlog(&self) -> SimDuration {
        self.source.total_query_work()
    }

    /// Number of admitted, unfinished queries (`N_rq`).
    pub fn ready_queue_len(&self) -> usize {
        self.source.query_count()
    }

    /// Visit admitted queries with deadline strictly after `after`, in
    /// ascending `(deadline, id)` order, until `visit` returns `false`.
    pub fn for_each_later(&self, after: SimTime, mut visit: impl FnMut(QueueEntryView) -> bool) {
        self.source.for_each_later(after, &mut visit);
    }

    /// Run `f` over the full admitted list in ascending `(deadline, id)`
    /// order. Materialization cost is paid only on this call.
    pub fn with_queries<R>(&self, f: impl FnOnce(&[QueueEntryView]) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.source.with_queries(&mut |qs| {
            // lint: allow(panic) — QueueSource contract: callback runs exactly once
            out = Some((f.take().expect("with_queries called twice"))(qs));
        });
        // lint: allow(panic) — QueueSource contract: callback runs exactly once
        out.expect("QueueSource::with_queries must invoke its callback")
    }
}

impl fmt::Debug for SnapshotView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotView")
            .field("now", &self.now)
            .field("update_backlog", &self.update_backlog)
            .field("recent_utilization", &self.recent_utilization)
            .field("queries", &self.source.query_count())
            .finish()
    }
}

/// Owned snapshot of server state: test fixture and serialization form.
///
/// Production hooks receive a [`SnapshotView`]; build one from an owned
/// snapshot with [`SystemSnapshot::view`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Current simulated time.
    pub now: SimTime,
    /// Admitted, uncommitted user queries (ready, running, or blocked),
    /// in no particular order.
    pub queries: Vec<QueueEntryView>,
    /// Total remaining service of all queued/running update transactions.
    pub update_backlog: SimDuration,
    /// CPU utilization over the recent measurement window, in `[0, 1]`.
    pub recent_utilization: f64,
}

impl SystemSnapshot {
    /// An empty snapshot at time `now` (useful in tests and warm-up).
    pub fn empty(now: SimTime) -> Self {
        SystemSnapshot {
            now,
            queries: Vec::new(),
            update_backlog: SimDuration::ZERO,
            recent_utilization: 0.0,
        }
    }

    /// Borrow this snapshot as the view policies consume.
    pub fn view(&self) -> SnapshotView<'_> {
        SnapshotView::new(self.now, self.update_backlog, self.recent_utilization, self)
    }

    /// Work that would execute before a query-class transaction with absolute
    /// deadline `deadline` (see [`SnapshotView::work_ahead_of`]).
    pub fn work_ahead_of(&self, deadline: SimTime) -> SimDuration {
        self.update_backlog + self.query_work_at_or_before(deadline)
    }

    /// Total remaining query-class work.
    pub fn query_backlog(&self) -> SimDuration {
        self.queries
            .iter()
            .fold(SimDuration::ZERO, |acc, q| acc + q.remaining)
    }

    /// Number of admitted, unfinished queries (`N_rq`).
    pub fn ready_queue_len(&self) -> usize {
        self.queries.len()
    }

    /// The queries sorted in ascending `(deadline, id)` order (the order the
    /// engine's indexed source yields them in).
    fn sorted_queries(&self) -> Vec<QueueEntryView> {
        let mut qs = self.queries.clone();
        qs.sort_by_key(|e| (e.deadline, e.id));
        qs
    }
}

impl QueueSource for SystemSnapshot {
    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn total_query_work(&self) -> SimDuration {
        self.query_backlog()
    }

    fn query_work_at_or_before(&self, deadline: SimTime) -> SimDuration {
        let mut ahead = SimDuration::ZERO;
        for q in &self.queries {
            if q.deadline <= deadline {
                ahead += q.remaining;
            }
        }
        ahead
    }

    fn for_each_later(&self, after: SimTime, visit: &mut dyn FnMut(QueueEntryView) -> bool) {
        for q in self.sorted_queries() {
            if q.deadline > after && !visit(q) {
                return;
            }
        }
    }

    fn with_queries(&self, f: &mut dyn FnMut(&[QueueEntryView])) {
        f(&self.sorted_queries());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, deadline_s: u64, remaining_s: u64) -> QueueEntryView {
        QueueEntryView {
            id: QueryId(id),
            deadline: SimTime::from_secs(deadline_s),
            remaining: SimDuration::from_secs(remaining_s),
            pref_class: 0,
        }
    }

    #[test]
    fn work_ahead_counts_updates_and_earlier_deadlines() {
        let snap = SystemSnapshot {
            now: SimTime::from_secs(0),
            queries: vec![entry(1, 10, 2), entry(2, 20, 3), entry(3, 30, 4)],
            update_backlog: SimDuration::from_secs(5),
            recent_utilization: 0.5,
        };
        // Deadline 25: updates (5) + queries with deadline <= 25 (2 + 3).
        assert_eq!(
            snap.work_ahead_of(SimTime::from_secs(25)),
            SimDuration::from_secs(10)
        );
        // Deadline 5: only the update backlog precedes it.
        assert_eq!(
            snap.work_ahead_of(SimTime::from_secs(5)),
            SimDuration::from_secs(5)
        );
        // Tie at an incumbent's deadline counts the incumbent.
        assert_eq!(
            snap.work_ahead_of(SimTime::from_secs(10)),
            SimDuration::from_secs(7)
        );
        // The borrowed view agrees with the owned snapshot.
        let view = snap.view();
        assert_eq!(
            view.work_ahead_of(SimTime::from_secs(25)),
            SimDuration::from_secs(10)
        );
    }

    #[test]
    fn backlog_and_len() {
        let snap = SystemSnapshot {
            now: SimTime::ZERO,
            queries: vec![entry(1, 10, 2), entry(2, 20, 3)],
            update_backlog: SimDuration::from_secs(1),
            recent_utilization: 0.0,
        };
        assert_eq!(snap.query_backlog(), SimDuration::from_secs(5));
        assert_eq!(snap.ready_queue_len(), 2);
        let view = snap.view();
        assert_eq!(view.query_backlog(), SimDuration::from_secs(5));
        assert_eq!(view.ready_queue_len(), 2);
    }

    #[test]
    fn empty_snapshot_is_idle() {
        let snap = SystemSnapshot::empty(SimTime::from_secs(7));
        assert_eq!(snap.now, SimTime::from_secs(7));
        assert_eq!(snap.work_ahead_of(SimTime::MAX), SimDuration::ZERO);
        assert_eq!(snap.ready_queue_len(), 0);
    }

    #[test]
    fn view_iterates_in_deadline_order_and_stops_on_false() {
        let snap = SystemSnapshot {
            now: SimTime::ZERO,
            // Deliberately unsorted; includes a deadline tie broken by id.
            queries: vec![
                entry(4, 30, 1),
                entry(2, 10, 1),
                entry(3, 20, 1),
                entry(1, 10, 1),
            ],
            update_backlog: SimDuration::ZERO,
            recent_utilization: 0.0,
        };
        let view = snap.view();

        let mut seen = Vec::new();
        view.for_each_later(SimTime::from_secs(10), |q| {
            seen.push(q.id.0);
            true
        });
        assert_eq!(seen, vec![3, 4], "deadline == after must be excluded");

        let mut seen = Vec::new();
        view.for_each_later(SimTime::ZERO, |q| {
            seen.push(q.id.0);
            seen.len() < 3
        });
        assert_eq!(seen, vec![1, 2, 3], "tie broken by id; early stop honored");

        let order = view.with_queries(|qs| qs.iter().map(|q| q.id.0).collect::<Vec<_>>());
        assert_eq!(order, vec![1, 2, 3, 4]);
    }
}
