//! A policy's view of the server at decision time.
//!
//! Admission control (§3.3) needs to reason about the ready queue: how much
//! work is ahead of a candidate query (for the Earliest-possible Start Time
//! check) and which admitted queries an extra admission would endanger (for
//! the system-USM check). The simulator assembles a [`SystemSnapshot`] on
//! each policy invocation; its size is `O(N_rq)`, matching the complexity the
//! paper states for the admission algorithm.

use crate::time::{SimDuration, SimTime};
use crate::types::QueryId;
use serde::{Deserialize, Serialize};

/// One admitted-but-unfinished query as seen by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueEntryView {
    /// The query's identifier.
    pub id: QueryId,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Remaining service demand (full `qe` if not yet started; the unserved
    /// remainder if preempted mid-run).
    pub remaining: SimDuration,
    /// The submitting user's preference class (multi-preference extension).
    pub pref_class: u32,
}

/// Snapshot of server state passed to policy hooks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Current simulated time.
    pub now: SimTime,
    /// Admitted, uncommitted user queries (ready, running, or blocked),
    /// in no particular order.
    pub queries: Vec<QueueEntryView>,
    /// Total remaining service of all queued/running update transactions.
    /// Updates outrank every query, so this entire backlog precedes any
    /// query-class work.
    pub update_backlog: SimDuration,
    /// CPU utilization over the recent measurement window, in `[0, 1]`.
    pub recent_utilization: f64,
}

impl SystemSnapshot {
    /// An empty snapshot at time `now` (useful in tests and warm-up).
    pub fn empty(now: SimTime) -> Self {
        SystemSnapshot {
            now,
            queries: Vec::new(),
            update_backlog: SimDuration::ZERO,
            recent_utilization: 0.0,
        }
    }

    /// Work that would execute before a query-class transaction with absolute
    /// deadline `deadline`: the whole update backlog plus every admitted
    /// query with an earlier deadline (EDF within the query class). Ties are
    /// broken in favor of the incumbent (already-admitted work runs first).
    pub fn work_ahead_of(&self, deadline: SimTime) -> SimDuration {
        let mut ahead = self.update_backlog;
        for q in &self.queries {
            if q.deadline <= deadline {
                ahead += q.remaining;
            }
        }
        ahead
    }

    /// Total remaining query-class work.
    pub fn query_backlog(&self) -> SimDuration {
        self.queries
            .iter()
            .fold(SimDuration::ZERO, |acc, q| acc + q.remaining)
    }

    /// Number of admitted, unfinished queries (`N_rq`).
    pub fn ready_queue_len(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, deadline_s: u64, remaining_s: u64) -> QueueEntryView {
        QueueEntryView {
            id: QueryId(id),
            deadline: SimTime::from_secs(deadline_s),
            remaining: SimDuration::from_secs(remaining_s),
            pref_class: 0,
        }
    }

    #[test]
    fn work_ahead_counts_updates_and_earlier_deadlines() {
        let snap = SystemSnapshot {
            now: SimTime::from_secs(0),
            queries: vec![entry(1, 10, 2), entry(2, 20, 3), entry(3, 30, 4)],
            update_backlog: SimDuration::from_secs(5),
            recent_utilization: 0.5,
        };
        // Deadline 25: updates (5) + queries with deadline <= 25 (2 + 3).
        assert_eq!(
            snap.work_ahead_of(SimTime::from_secs(25)),
            SimDuration::from_secs(10)
        );
        // Deadline 5: only the update backlog precedes it.
        assert_eq!(
            snap.work_ahead_of(SimTime::from_secs(5)),
            SimDuration::from_secs(5)
        );
        // Tie at an incumbent's deadline counts the incumbent.
        assert_eq!(
            snap.work_ahead_of(SimTime::from_secs(10)),
            SimDuration::from_secs(7)
        );
    }

    #[test]
    fn backlog_and_len() {
        let snap = SystemSnapshot {
            now: SimTime::ZERO,
            queries: vec![entry(1, 10, 2), entry(2, 20, 3)],
            update_backlog: SimDuration::from_secs(1),
            recent_utilization: 0.0,
        };
        assert_eq!(snap.query_backlog(), SimDuration::from_secs(5));
        assert_eq!(snap.ready_queue_len(), 2);
    }

    #[test]
    fn empty_snapshot_is_idle() {
        let snap = SystemSnapshot::empty(SimTime::from_secs(7));
        assert_eq!(snap.now, SimTime::from_secs(7));
        assert_eq!(snap.work_ahead_of(SimTime::MAX), SimDuration::ZERO);
        assert_eq!(snap.ready_queue_len(), 0);
    }
}
