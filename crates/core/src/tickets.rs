//! Ticket accounting for update-degradation victim selection (§3.4.1).
//!
//! Each data item `d_j` carries a ticket value `T_j`. The *larger* the
//! ticket, the more likely the item is picked by the lottery as the next
//! degradation victim — so the rules push tickets **up** for items the
//! system spends much time updating and **down** for items that queries
//! actually need:
//!
//! * **Query effect** (Eq. 6): each query access to `d_j` decreases the
//!   ticket by the query's CPU-utilization share `DT_j = qe_i / qt_i`.
//! * **Update effect** (Eq. 7): each update of `d_j` increases the ticket by
//!   the sigmoid of how much its execution time exceeds the system-wide
//!   average: `IT_j = 1 / (1 + e^{ue_avg − ue_j})`.
//! * **Forgetting** (Eq. 8): before every adjustment the old ticket is scaled
//!   by `C_forget` (0.9 in the paper, following adaptive-filter practice), so
//!   the table tracks the *current* access/update mix.
//!
//! Raw tickets may go negative; for the lottery the table exposes
//! `T_j − T_min` (§3.4.1), which is non-negative by construction.

use serde::{Deserialize, Serialize};

/// Sigmoid used by the update effect: smooth, outlier-tolerant mapping of
/// execution-time differences into `(0, 1)` (Eq. 7).
///
/// The paper's formula exponentiates the raw difference in seconds, which
/// degenerates to a step function whenever execution times are not O(1 s)
/// (e.g. `e^±48` for this reproduction's 48–144 s updates). `scale` divides
/// the difference before exponentiation; passing the dispersion of the
/// update execution times keeps the sigmoid in its informative range.
/// `scale = 1` recovers the paper's formula exactly.
pub fn update_increment(ue_avg_secs: f64, ue_secs: f64, scale: f64) -> f64 {
    let s = if scale > 0.0 { scale } else { 1.0 };
    1.0 / (1.0 + ((ue_avg_secs - ue_secs) / s).exp())
}

/// Per-item ticket table with exponential forgetting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TicketTable {
    tickets: Vec<f64>,
    c_forget: f64,
    /// Average update execution time `ue_avg` across all streams, seconds.
    ue_avg_secs: f64,
    /// Sigmoid normalization scale (dispersion of update execution times).
    ue_scale_secs: f64,
}

impl TicketTable {
    /// A table of `n_items` zero tickets.
    ///
    /// # Panics
    /// Panics unless `c_forget ∈ (0, 1]`.
    pub fn new(n_items: usize, c_forget: f64, ue_avg_secs: f64) -> Self {
        Self::with_scale(n_items, c_forget, ue_avg_secs, 1.0)
    }

    /// Like [`TicketTable::new`] with an explicit sigmoid scale (see
    /// [`update_increment`]).
    pub fn with_scale(n_items: usize, c_forget: f64, ue_avg_secs: f64, ue_scale_secs: f64) -> Self {
        assert!(
            c_forget > 0.0 && c_forget <= 1.0,
            "C_forget must be in (0,1], got {c_forget}"
        );
        TicketTable {
            tickets: vec![0.0; n_items],
            c_forget,
            ue_avg_secs,
            ue_scale_secs: if ue_scale_secs > 0.0 {
                ue_scale_secs
            } else {
                1.0
            },
        }
    }

    /// Number of items tracked.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// True when the table tracks no items.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Raw ticket value `T_j` (may be negative).
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn raw(&self, item: usize) -> f64 {
        self.tickets[item] // lint: allow(D6) — out-of-range item is the documented panic contract
    }

    /// The configured forgetting factor.
    pub fn c_forget(&self) -> f64 {
        self.c_forget
    }

    /// The average update execution time the sigmoid is centered on.
    pub fn ue_avg_secs(&self) -> f64 {
        self.ue_avg_secs
    }

    /// Recenter the sigmoid (e.g., if streams change at runtime).
    pub fn set_ue_avg_secs(&mut self, ue_avg_secs: f64) {
        self.ue_avg_secs = ue_avg_secs;
    }

    /// Query effect (Eq. 6 + Eq. 8): `T_j ← T_j · C_forget − qe/qt`.
    ///
    /// `cpu_share` is the accessing query's `qe_i / qt_i`.
    pub fn on_query_access(&mut self, item: usize, cpu_share: f64) {
        debug_assert!(cpu_share >= 0.0);
        // lint: allow(D6) — callers pass item ids from the validated trace, all < n_items
        let t = &mut self.tickets[item];
        *t = *t * self.c_forget - cpu_share;
    }

    /// Update effect (Eq. 7 + Eq. 8):
    /// `T_j ← T_j · C_forget + sigmoid((ue_j − ue_avg)/scale)`.
    pub fn on_update(&mut self, item: usize, ue_secs: f64) {
        let inc = update_increment(self.ue_avg_secs, ue_secs, self.ue_scale_secs);
        // lint: allow(D6) — callers pass item ids from the validated trace, all < n_items
        let t = &mut self.tickets[item];
        *t = *t * self.c_forget + inc;
    }

    /// Pre-seed an item's ticket (warm start). The policy seeds each item
    /// that has an update stream with one average update's worth of ticket
    /// (+0.5), so the very first `DegradeUpdates` signals can already tell
    /// updated items from stream-less ones instead of waiting one full
    /// update period per item to observe a commit. Query accesses quickly
    /// drive the hot items negative again.
    pub fn seed(&mut self, item: usize, value: f64) {
        self.tickets[item] = value; // lint: allow(D6) — seeding iterates the policy's own 0..n_items range
    }

    /// Sum of every raw ticket, left to right. The modulation path reads
    /// tickets but must never write them; validate mode compares this sum
    /// bit-for-bit around each degrade/upgrade signal (see
    /// [`crate::validate`]).
    pub fn ticket_sum(&self) -> f64 {
        self.tickets.iter().sum()
    }

    /// Serialize every ticket plus the forgetting/sigmoid parameters into a
    /// checkpoint stream. See [`crate::checkpoint`].
    pub fn checkpoint_into(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_f64_slice(&self.tickets);
        enc.put_f64(self.c_forget);
        enc.put_f64(self.ue_avg_secs);
        enc.put_f64(self.ue_scale_secs);
    }

    /// Restore state captured by [`TicketTable::checkpoint_into`].
    pub fn restore_from(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let tickets = dec.take_f64_vec()?;
        if tickets.len() != self.tickets.len() {
            return Err(crate::checkpoint::CheckpointError::Mismatch {
                what: "ticket table size",
            });
        }
        self.tickets = tickets;
        self.c_forget = dec.take_f64()?;
        self.ue_avg_secs = dec.take_f64()?;
        self.ue_scale_secs = dec.take_f64()?;
        Ok(())
    }

    /// Lottery weights per the paper (§3.4.1): tickets shifted by `−T_min`
    /// so every weight is non-negative. The minimum-ticket item gets weight
    /// zero and is therefore never degraded — it is the item queries value
    /// most relative to its update cost.
    ///
    /// Caveat: when the ticket distribution is heavy-tailed (one very hot
    /// item with a large negative ticket), the shift flattens the *relative*
    /// differences among everything else — mildly query-relevant items end
    /// up with almost the same victim odds as never-queried ones. See
    /// [`TicketTable::clamped_weights`] for the sharper variant.
    pub fn shifted_weights(&self) -> Vec<f64> {
        let t_min = self.tickets.iter().copied().fold(f64::INFINITY, f64::min);
        if !t_min.is_finite() {
            return vec![0.0; self.tickets.len()];
        }
        self.tickets.iter().map(|&t| t - t_min).collect()
    }

    /// Lottery weights clamped at zero: `max(T_j, 0)`.
    ///
    /// A negative ticket means the item's (forgetting-weighted) query value
    /// exceeds its update cost — degrading it risks Data-Stale Failures for
    /// no CPU it could not have saved elsewhere. Clamping gives every such
    /// item zero victim odds instead of the small-but-harmful odds the
    /// global shift leaves them with. Documented deviation from §3.4.1
    /// (which subtracts `T_min`); the ablation benches compare both.
    pub fn clamped_weights(&self) -> Vec<f64> {
        self.tickets.iter().map(|&t| t.max(0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_centered_and_monotone() {
        // Equal execution time -> exactly 1/2.
        assert!((update_increment(1.0, 1.0, 1.0) - 0.5).abs() < 1e-12);
        // Longer-than-average updates increase tickets faster.
        assert!(update_increment(1.0, 2.0, 1.0) > 0.5);
        assert!(update_increment(1.0, 0.5, 1.0) < 0.5);
        // Bounded even for outliers (saturates smoothly toward the limits).
        assert!(update_increment(1.0, 10.0, 1.0) < 1.0);
        assert!(update_increment(1.0, -10.0, 1.0) > 0.0);
        assert!(update_increment(1.0, 1000.0, 1.0) <= 1.0);
        assert!(update_increment(1.0, -1000.0, 1.0) >= 0.0);
        // Scale normalization keeps large absolute differences informative.
        let lo = update_increment(96.0, 48.0, 28.0);
        let hi = update_increment(96.0, 144.0, 28.0);
        assert!(lo > 0.1 && lo < 0.5, "low-cost update increment {lo}");
        assert!(hi > 0.5 && hi < 0.9, "high-cost update increment {hi}");
    }

    #[test]
    fn query_accesses_decrease_tickets() {
        let mut t = TicketTable::new(3, 0.9, 1.0);
        t.on_query_access(0, 0.25);
        assert!((t.raw(0) - (-0.25)).abs() < 1e-12);
        // Second access: forget then subtract.
        t.on_query_access(0, 0.25);
        assert!((t.raw(0) - (-0.25 * 0.9 - 0.25)).abs() < 1e-12);
        assert_eq!(t.raw(1), 0.0);
    }

    #[test]
    fn updates_increase_tickets() {
        let mut t = TicketTable::new(2, 0.9, 1.0);
        t.on_update(1, 1.0);
        assert!((t.raw(1) - 0.5).abs() < 1e-12);
        t.on_update(1, 1.0);
        assert!((t.raw(1) - (0.5 * 0.9 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn forgetting_bounds_ticket_growth() {
        // With C_forget < 1 tickets converge to inc / (1 - C_forget).
        let mut t = TicketTable::new(1, 0.9, 1.0);
        for _ in 0..10_000 {
            t.on_update(0, 1.0);
        }
        let limit = 0.5 / (1.0 - 0.9);
        assert!((t.raw(0) - limit).abs() < 1e-6, "got {}", t.raw(0));
    }

    #[test]
    fn no_forgetting_keeps_full_history() {
        // C_forget = 1: "all historical accesses and updates are effective".
        let mut t = TicketTable::new(1, 1.0, 1.0);
        for _ in 0..4 {
            t.on_update(0, 1.0);
        }
        assert!((t.raw(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_weights_are_nonnegative_with_zero_at_min() {
        let mut t = TicketTable::new(3, 0.9, 1.0);
        t.on_query_access(0, 0.9); // heavily queried -> most negative
        t.on_update(1, 2.0); // heavily updated -> most positive
        let w = t.shifted_weights();
        assert!(w.iter().all(|&x| x >= 0.0));
        assert_eq!(w[0], 0.0, "minimum-ticket item gets zero weight");
        assert!(w[1] > w[2], "hot-updated item outweighs untouched item");
    }

    #[test]
    fn hot_updated_cold_accessed_items_dominate_the_lottery() {
        // The §4.2 observation: updates on cold-accessed & hot-updated data
        // should be dropped more often than on hot-accessed & cold-updated.
        let mut t = TicketTable::new(2, 0.9, 1.0);
        // Item 0: hot accessed, cold updated.
        for _ in 0..50 {
            t.on_query_access(0, 0.2);
        }
        t.on_update(0, 1.0);
        // Item 1: cold accessed, hot updated.
        for _ in 0..50 {
            t.on_update(1, 1.0);
        }
        t.on_query_access(1, 0.2);
        let w = t.shifted_weights();
        assert!(
            w[1] > 10.0 * w[0].max(1e-9),
            "victim odds must strongly favor item 1: {w:?}"
        );
    }

    #[test]
    #[should_panic(expected = "C_forget")]
    fn invalid_forgetting_factor_is_rejected() {
        TicketTable::new(1, 0.0, 1.0);
    }
}
