//! Virtual time for the simulated web-database server.
//!
//! All of UNIT's algorithms are defined over the server's clock: deadlines,
//! update periods, execution-time estimates, controller grace periods. The
//! simulator advances this clock deterministically, so the whole system is a
//! pure function of `(trace, policy, seed)`.
//!
//! Time is stored as an integer number of **microseconds** ([`SimTime`] for
//! instants, [`SimDuration`] for spans). Integer ticks keep event ordering
//! exact (no float drift in the event heap) while one microsecond of
//! granularity is far below every quantity in the workload (execution times
//! are on the order of seconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of ticks per simulated second.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulated clock, in ticks since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A non-negative span of simulated time, in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the simulated clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build an instant from whole simulated seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * TICKS_PER_SEC)
    }

    /// Build an instant from fractional simulated seconds (saturating at zero
    /// for negative inputs).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * TICKS_PER_SEC as f64).round() as u64)
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Span from `earlier` to `self`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration; `None` if it would precede time zero.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Build a span from whole simulated seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * TICKS_PER_SEC)
    }

    /// Build a span from fractional simulated seconds (saturating at zero for
    /// negative inputs).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * TICKS_PER_SEC as f64).round() as u64)
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True when the span is zero ticks long.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the span by a non-negative factor, rounding to the nearest tick.
    ///
    /// Used by update-frequency modulation (`pc_j × (1 + C_du)`) and by the
    /// admission check (`C_flex × EST`).
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be scaled negatively");
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Ratio of this span to another, as used by the ticket rule
    /// `DT_j = qe_i / qt_i` (Eq. 6). Returns 0 for a zero denominator.
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can legitimately happen.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_conversions_round_trip() {
        let t = SimTime::from_secs(42);
        assert_eq!(t.0, 42 * TICKS_PER_SEC);
        assert!((t.as_secs_f64() - 42.0).abs() < 1e-12);

        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.0, 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_float_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn instant_plus_span_arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
    }

    #[test]
    fn saturating_since_clamps_future_reference() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn scale_rounds_to_nearest_tick() {
        let d = SimDuration(10);
        assert_eq!(d.scale(1.1), SimDuration(11));
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
        // C_du = 0.1 degrade step from the paper.
        let period = SimDuration::from_secs(100);
        assert_eq!(period.scale(1.1), SimDuration::from_secs(110));
    }

    #[test]
    fn ratio_matches_ticket_decrement_formula() {
        let qe = SimDuration::from_secs(2);
        let qt = SimDuration::from_secs(8);
        assert!((qe.ratio(qt) - 0.25).abs() < 1e-12);
        assert_eq!(qe.ratio(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn checked_sub_detects_underflow() {
        assert_eq!(
            SimTime::from_secs(3).checked_sub(SimDuration::from_secs(4)),
            None
        );
        assert_eq!(
            SimTime::from_secs(4).checked_sub(SimDuration::from_secs(3)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn display_is_human_readable_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let near_max = SimTime(u64::MAX - 1);
        assert_eq!(near_max + SimDuration::from_secs(10), SimTime::MAX);
        let d = SimDuration(u64::MAX - 1);
        assert_eq!(d + SimDuration::from_secs(10), SimDuration::MAX);
    }
}
