//! # Storage-agnostic transaction API
//!
//! The boundary between UNIT's *policy* layer (admission, modulation,
//! USM accounting) and whatever actually holds the data. Everything that
//! mutates server state — applying an update version, reading a data item
//! on behalf of a query — goes through a [`TransactionManager`], so the
//! same policy code can drive:
//!
//! * the deterministic simulation engine (`unit-sim`'s `SimBackend`
//!   adapts the engine's [`crate::freshness::FreshnessTable`]), and
//! * a live in-memory store (`unit-server`'s `MemBackend`: sharded KV
//!   with per-item version counters, the production path).
//!
//! The contract is deliberately narrow — `begin` / `read` / `apply` /
//! `commit` / `abort` plus a non-transactional [`TransactionManager::observe_version`]
//! hook for source version arrivals — mirroring the unit-of-work
//! interfaces of classic web-tier transaction managers. Methods take
//! `&self`: implementations own their interior mutability (a `RefCell`
//! in the single-threaded oracle, sharded mutexes in the live server),
//! which is what lets one trait serve both worlds.
//!
//! Freshness is part of the read result, not a side channel: every
//! [`ReadVersion`] carries the item's applied-version counter and its
//! update lag (`Udrop`), so callers can evaluate the paper's lag-based
//! freshness `1/(1+Udrop)` per read and strict-minimum-aggregate it per
//! query without reaching around the trait.

use crate::freshness::lag_freshness;
use crate::time::SimTime;
use crate::types::{DataId, TxnClass};
use core::fmt;

/// Opaque handle for an open transaction. Obtained from
/// [`TransactionManager::begin`]; spent by `commit`/`abort`.
///
/// Tokens are plain 64-bit names, never reused within one backend's
/// lifetime, so a stale token is detected ([`TxnError::UnknownTxn`])
/// rather than silently aliased onto a newer transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnToken(u64);

impl TxnToken {
    /// Construct a token from its raw id. Intended for backend
    /// implementations; policy code should treat tokens as opaque.
    #[must_use]
    pub fn from_raw(id: u64) -> Self {
        TxnToken(id)
    }

    /// The raw id (stable within one backend instance).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The result of reading one data item inside a transaction: which
/// version was observed and how far it lags the source stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadVersion {
    /// The item that was read.
    pub item: DataId,
    /// Applied-version counter at read time (number of versions the
    /// backend has installed for this item since it was created).
    pub version: u64,
    /// Update lag `Udrop`: source versions that had arrived but were not
    /// yet applied when the read happened.
    pub udrop: u64,
}

impl ReadVersion {
    /// Lag-based freshness of this read, `1/(1+Udrop)` (paper §3.2).
    #[must_use]
    pub fn freshness(&self) -> f64 {
        lag_freshness(self.udrop)
    }
}

/// What a successful [`TransactionManager::commit`] reports back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitSummary {
    /// The committed transaction.
    pub txn: TxnToken,
    /// Backend time at which the commit took effect.
    pub commit_time: SimTime,
    /// Number of item reads the transaction performed.
    pub reads: u32,
    /// Number of item writes (update applications) it performed.
    pub writes: u32,
    /// Strict-minimum lag freshness over the read set (`1.0` for a
    /// read-free transaction) — the paper's per-query freshness `qf`.
    pub min_freshness: f64,
}

/// Typed failure modes of the transaction API.
///
/// `non_exhaustive`: backends may grow failure modes (e.g. replication
/// timeouts) without breaking policy-layer matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxnError {
    /// The item id is outside the backend's `0..n_items` range.
    UnknownItem(DataId),
    /// The token does not name an open transaction (never issued, or
    /// already committed/aborted).
    UnknownTxn(TxnToken),
    /// The backend has been shut down and accepts no further work.
    Closed,
    /// The operation lost a conflict on the given item (e.g. a
    /// write-write race in a concurrent backend) and should be retried
    /// or aborted by the caller.
    Conflict(DataId),
    /// The backend does not support this operation (e.g. writes through
    /// a read-only replica).
    Unsupported(&'static str),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::UnknownItem(d) => write!(f, "unknown data item {}", d.0),
            TxnError::UnknownTxn(t) => write!(f, "unknown or closed transaction {}", t.raw()),
            TxnError::Closed => write!(f, "transaction manager is closed"),
            TxnError::Conflict(d) => write!(f, "conflict on data item {}", d.0),
            TxnError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// The storage-agnostic transaction manager: every state mutation in a
/// UNIT server goes through one of these.
///
/// ## Contract
///
/// * `begin` hands out a fresh, never-reused [`TxnToken`].
/// * `read`/`apply` are valid only between `begin` and the matching
///   `commit`/`abort`; afterwards they return [`TxnError::UnknownTxn`].
/// * `commit` and `abort` both consume the token (idempotent failure:
///   a second close returns `UnknownTxn`, it does not panic).
/// * `observe_version` is **not** transactional: it records that a new
///   source version for `item` exists (raising `Udrop` until some
///   transaction applies it). It models the update stream's arrival
///   side, which in the paper happens regardless of what the server
///   chooses to install.
/// * Timestamps are supplied by the caller (from a `Clock`
///   implementation — see [`crate::clock`]), never read from the
///   environment, so the same backend works under virtual and wall
///   clocks and stays deterministic under the former.
pub trait TransactionManager {
    /// Open a transaction of the given class at time `now`.
    ///
    /// # Errors
    /// [`TxnError::Closed`] when the backend no longer accepts work.
    fn begin(&self, class: TxnClass, now: SimTime) -> Result<TxnToken, TxnError>;

    /// Read `item` inside `txn`, returning the observed version and its
    /// update lag.
    ///
    /// # Errors
    /// [`TxnError::UnknownItem`] / [`TxnError::UnknownTxn`] on bad ids;
    /// [`TxnError::Conflict`] when a concurrent backend loses a race.
    fn read(&self, txn: TxnToken, item: DataId, now: SimTime) -> Result<ReadVersion, TxnError>;

    /// Stage an install of `item`'s **latest** source version inside
    /// `txn` (the update-transaction write path). At commit the item's
    /// accumulated lag clears to zero and its applied-version counter
    /// bumps — the paper's semantics: applying an update always installs
    /// the newest version, superseding every skipped one.
    ///
    /// # Errors
    /// Same domain as [`TransactionManager::read`].
    fn apply(&self, txn: TxnToken, item: DataId, now: SimTime) -> Result<(), TxnError>;

    /// Commit `txn`, making its applies visible and returning the
    /// read/write/freshness summary. Consumes the token.
    ///
    /// # Errors
    /// [`TxnError::UnknownTxn`] when the token is not open.
    fn commit(&self, txn: TxnToken, now: SimTime) -> Result<CommitSummary, TxnError>;

    /// Abort `txn`, discarding its applies. Consumes the token.
    ///
    /// # Errors
    /// [`TxnError::UnknownTxn`] when the token is not open.
    fn abort(&self, txn: TxnToken) -> Result<(), TxnError>;

    /// Record the arrival of a new source version for `item` (raises its
    /// `Udrop` until applied). Non-transactional by design — see the
    /// trait docs.
    ///
    /// # Errors
    /// [`TxnError::UnknownItem`] on a bad id.
    fn observe_version(&self, item: DataId, now: SimTime) -> Result<(), TxnError>;

    /// Current update lag (`Udrop`) of `item` — arrived-but-unapplied
    /// source versions. The freshness the *next* read would see is
    /// `1/(1+udrop)`.
    ///
    /// # Errors
    /// [`TxnError::UnknownItem`] on a bad id.
    fn udrop(&self, item: DataId) -> Result<u64, TxnError>;

    /// Number of data items this backend serves (`0..n_items` are the
    /// valid [`DataId`]s).
    fn n_items(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_roundtrip_and_order() {
        let a = TxnToken::from_raw(1);
        let b = TxnToken::from_raw(2);
        assert_eq!(a.raw(), 1);
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn read_version_freshness_matches_lag_model() {
        let rv = ReadVersion {
            item: DataId(0),
            version: 7,
            udrop: 3,
        };
        assert!((rv.freshness() - 0.25).abs() < 1e-12);
        let fresh = ReadVersion {
            item: DataId(0),
            version: 7,
            udrop: 0,
        };
        assert!((fresh.freshness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_render_usefully() {
        assert_eq!(
            TxnError::UnknownItem(DataId(9)).to_string(),
            "unknown data item 9"
        );
        assert_eq!(
            TxnError::UnknownTxn(TxnToken::from_raw(4)).to_string(),
            "unknown or closed transaction 4"
        );
        assert!(TxnError::Conflict(DataId(1)).to_string().contains("1"));
    }
}
