//! Domain model: data items, user queries, update streams, and outcomes.
//!
//! Mirrors §2.1 of the paper. The database `D = {d_i}` holds `S` data items.
//! **User queries** read one or more items and carry a firm relative deadline
//! `qt_i` and a freshness requirement `qf_i`. **Updates** are periodic,
//! full-replacement writes of a single item; skipping them affects freshness
//! but never correctness, which is what makes update-frequency modulation a
//! legal load-shedding lever.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data item (index into the database, `0..n_items`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct DataId(pub u32);

impl DataId {
    /// The item id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Identifier of a user query within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of an update stream (one periodic source per [`UpdateSpec`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct UpdateStreamId(pub u32);

impl fmt::Display for UpdateStreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Transaction class. Updates have strictly higher dispatch priority than
/// user queries (§3.1: dual-priority ready queue), and the lock manager's
/// High-Priority rule compares classes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TxnClass {
    /// Background update transaction (higher priority).
    Update,
    /// Foreground user query transaction (lower priority).
    Query,
}

impl TxnClass {
    /// True for the update class.
    pub fn is_update(self) -> bool {
        matches!(self, TxnClass::Update)
    }
}

/// The four possible fortunes of a user query (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Admitted, committed before its deadline, and read sufficiently fresh
    /// data.
    Success,
    /// Turned away by admission control before execution.
    Rejected,
    /// Deadline-Missed Failure: admitted but failed to commit before `qt_i`.
    DeadlineMiss,
    /// Data-Stale Failure: committed in time but the accessed items did not
    /// meet the freshness requirement `qf_i`.
    DataStale,
}

impl Outcome {
    /// All outcomes, in the order the paper enumerates them.
    pub const ALL: [Outcome; 4] = [
        Outcome::Success,
        Outcome::Rejected,
        Outcome::DeadlineMiss,
        Outcome::DataStale,
    ];

    /// Short label used by the experiment harness output.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Rejected => "rejected",
            Outcome::DeadlineMiss => "dmf",
            Outcome::DataStale => "dsf",
        }
    }

    /// True for any of the three failure outcomes.
    pub fn is_failure(self) -> bool {
        !matches!(self, Outcome::Success)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A user query transaction as it appears in a trace (§2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Trace-unique identifier.
    pub id: QueryId,
    /// Arrival time at the server.
    pub arrival: SimTime,
    /// Read set `D_i`: the data items the query accesses. Non-empty,
    /// duplicate-free.
    pub items: Vec<DataId>,
    /// Estimated (and, in the simulator, actual) execution time `qe_i`. The
    /// paper assumes these estimates come from the DBMS's query-optimizer
    /// monitoring.
    pub exec_time: SimDuration,
    /// Firm relative deadline `qt_i`: the query is worthless after
    /// `arrival + qt_i`.
    pub relative_deadline: SimDuration,
    /// Freshness requirement `qf_i` in `(0, 1]`.
    pub freshness_req: f64,
    /// User-preference class of the submitting user (multi-preference
    /// extension; §3.1 of the paper assumes a single class). Policies map
    /// classes to [`crate::usm::UsmWeights`]; unknown classes fall back to
    /// the default preference. Class 0 by default.
    #[serde(default)]
    pub pref_class: u32,
}

impl QuerySpec {
    /// Absolute deadline `arrival + qt_i`.
    pub fn deadline(&self) -> SimTime {
        self.arrival + self.relative_deadline
    }

    /// Validate the invariants a trace generator must uphold.
    pub fn validate(&self, n_items: usize) -> Result<(), SpecError> {
        if self.items.is_empty() {
            return Err(SpecError::EmptyReadSet(self.id));
        }
        let mut seen = vec![false; n_items];
        for &d in &self.items {
            let idx = d.index();
            if idx >= n_items {
                return Err(SpecError::ItemOutOfRange(d, n_items));
            }
            // lint: allow(D6) — idx >= n_items returned ItemOutOfRange just above
            if seen[idx] {
                return Err(SpecError::DuplicateItem(self.id, d));
            }
            seen[idx] = true; // lint: allow(D6) — same range check as the read above
        }
        if self.exec_time.is_zero() {
            return Err(SpecError::ZeroExecTime(self.id));
        }
        if self.relative_deadline.is_zero() {
            return Err(SpecError::ZeroDeadline(self.id));
        }
        if !(self.freshness_req > 0.0 && self.freshness_req <= 1.0) {
            return Err(SpecError::BadFreshnessReq(self.id, self.freshness_req));
        }
        Ok(())
    }
}

/// A periodic update stream specification `u_j` (§2.1): which item it
/// refreshes, how often new versions arrive from the source, and how long one
/// application takes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateSpec {
    /// Trace-unique stream identifier.
    pub id: UpdateStreamId,
    /// The data item `ud_j` this stream refreshes.
    pub item: DataId,
    /// Ideal (source) period `pi_j` between consecutive versions.
    pub period: SimDuration,
    /// Execution time `ue_j` of applying one version.
    pub exec_time: SimDuration,
    /// Phase: arrival time of the first version.
    pub first_arrival: SimTime,
}

impl UpdateSpec {
    /// Validate the invariants a trace generator must uphold.
    pub fn validate(&self, n_items: usize) -> Result<(), SpecError> {
        if self.item.index() >= n_items {
            return Err(SpecError::ItemOutOfRange(self.item, n_items));
        }
        if self.period.is_zero() {
            return Err(SpecError::ZeroPeriod(self.id));
        }
        if self.exec_time.is_zero() {
            return Err(SpecError::ZeroUpdateExec(self.id));
        }
        Ok(())
    }
}

/// Errors produced when validating trace specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A query declared an empty read set.
    EmptyReadSet(QueryId),
    /// A spec referenced an item outside `0..n_items`.
    ItemOutOfRange(DataId, usize),
    /// A query listed the same item twice.
    DuplicateItem(QueryId, DataId),
    /// A query with zero execution time.
    ZeroExecTime(QueryId),
    /// A query with zero relative deadline.
    ZeroDeadline(QueryId),
    /// A freshness requirement outside `(0, 1]`.
    BadFreshnessReq(QueryId, f64),
    /// An update stream with zero period.
    ZeroPeriod(UpdateStreamId),
    /// An update stream with zero execution time.
    ZeroUpdateExec(UpdateStreamId),
    /// Queries out of arrival order in a trace.
    UnsortedQueries(QueryId),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyReadSet(q) => write!(f, "query {q} has an empty read set"),
            SpecError::ItemOutOfRange(d, n) => {
                write!(f, "item {d} out of range (database has {n} items)")
            }
            SpecError::DuplicateItem(q, d) => write!(f, "query {q} reads item {d} twice"),
            SpecError::ZeroExecTime(q) => write!(f, "query {q} has zero execution time"),
            SpecError::ZeroDeadline(q) => write!(f, "query {q} has zero relative deadline"),
            SpecError::BadFreshnessReq(q, v) => {
                write!(f, "query {q} freshness requirement {v} outside (0,1]")
            }
            SpecError::ZeroPeriod(u) => write!(f, "update stream {u} has zero period"),
            SpecError::ZeroUpdateExec(u) => write!(f, "update stream {u} has zero execution time"),
            SpecError::UnsortedQueries(q) => {
                write!(f, "query {q} arrives before its predecessor in the trace")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete workload: database size plus the query and update traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of data items `S` in the database.
    pub n_items: usize,
    /// User queries, sorted by arrival time.
    pub queries: Vec<QuerySpec>,
    /// Periodic update streams.
    pub updates: Vec<UpdateSpec>,
}

impl Trace {
    /// Validate every spec and the arrival-order invariant.
    pub fn validate(&self) -> Result<(), SpecError> {
        for q in &self.queries {
            q.validate(self.n_items)?;
        }
        for w in windows2(&self.queries) {
            if w.1.arrival < w.0.arrival {
                return Err(SpecError::UnsortedQueries(w.1.id));
            }
        }
        for u in &self.updates {
            u.validate(self.n_items)?;
        }
        Ok(())
    }

    /// Total update-class work if every version were applied, over `horizon`.
    /// Used to report the offered update utilization of a trace.
    pub fn offered_update_utilization(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        let mut work = 0.0;
        for u in &self.updates {
            let count = horizon.0 / u.period.0.max(1);
            work += count as f64 * u.exec_time.as_secs_f64();
        }
        work / horizon.as_secs_f64()
    }

    /// Total query-class work over `horizon` (every query admitted and run
    /// exactly once).
    pub fn offered_query_utilization(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        let work: f64 = self.queries.iter().map(|q| q.exec_time.as_secs_f64()).sum();
        work / horizon.as_secs_f64()
    }

    /// Per-item query access counts (how many queries read each item).
    pub fn query_access_histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.n_items];
        for q in &self.queries {
            for d in &q.items {
                // lint: allow(D6) — Trace::validate bounds every access below n_items
                h[d.index()] += 1;
            }
        }
        h
    }

    /// Per-item count of versions the sources will emit over `horizon`.
    pub fn update_volume_histogram(&self, horizon: SimDuration) -> Vec<u64> {
        let mut h = vec![0u64; self.n_items];
        for u in &self.updates {
            if u.first_arrival.0 <= horizon.0 {
                let remaining = horizon.0 - u.first_arrival.0;
                // lint: allow(D6) — Trace::validate bounds every update item below n_items
                h[u.item.index()] += 1 + remaining / u.period.0.max(1);
            }
        }
        h
    }
}

fn windows2<T>(slice: &[T]) -> impl Iterator<Item = (&T, &T)> {
    // lint: allow(D6) — windows(2) yields exactly-2-element slices
    slice.windows(2).map(|w| (&w[0], &w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn query(id: u64, arrival_s: u64, items: &[u32]) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            arrival: SimTime::from_secs(arrival_s),
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs(2),
            relative_deadline: SimDuration::from_secs(20),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn update(id: u32, item: u32, period_s: u64) -> UpdateSpec {
        UpdateSpec {
            id: UpdateStreamId(id),
            item: DataId(item),
            period: SimDuration::from_secs(period_s),
            exec_time: SimDuration::from_secs(1),
            first_arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn update_class_outranks_query_class() {
        assert!(TxnClass::Update < TxnClass::Query);
        assert!(TxnClass::Update.is_update());
        assert!(!TxnClass::Query.is_update());
    }

    #[test]
    fn deadline_is_arrival_plus_relative() {
        let q = query(1, 10, &[0]);
        assert_eq!(q.deadline(), SimTime::from_secs(30));
    }

    #[test]
    fn outcome_labels_and_failure_classification() {
        assert_eq!(Outcome::Success.label(), "success");
        assert!(!Outcome::Success.is_failure());
        for o in [Outcome::Rejected, Outcome::DeadlineMiss, Outcome::DataStale] {
            assert!(o.is_failure());
        }
        assert_eq!(Outcome::ALL.len(), 4);
    }

    #[test]
    fn query_validation_rejects_malformed_specs() {
        let mut q = query(1, 0, &[]);
        assert_eq!(q.validate(4), Err(SpecError::EmptyReadSet(QueryId(1))));

        q = query(1, 0, &[7]);
        assert_eq!(q.validate(4), Err(SpecError::ItemOutOfRange(DataId(7), 4)));

        q = query(1, 0, &[2, 2]);
        assert_eq!(
            q.validate(4),
            Err(SpecError::DuplicateItem(QueryId(1), DataId(2)))
        );

        q = query(1, 0, &[2]);
        q.exec_time = SimDuration::ZERO;
        assert_eq!(q.validate(4), Err(SpecError::ZeroExecTime(QueryId(1))));

        q = query(1, 0, &[2]);
        q.freshness_req = 1.5;
        assert!(matches!(q.validate(4), Err(SpecError::BadFreshnessReq(..))));

        q = query(1, 0, &[2]);
        q.freshness_req = 0.0;
        assert!(matches!(q.validate(4), Err(SpecError::BadFreshnessReq(..))));

        assert!(query(1, 0, &[0, 1, 3]).validate(4).is_ok());
    }

    #[test]
    fn update_validation_rejects_malformed_specs() {
        assert!(update(0, 1, 60).validate(4).is_ok());
        assert!(matches!(
            update(0, 9, 60).validate(4),
            Err(SpecError::ItemOutOfRange(..))
        ));
        let mut u = update(0, 1, 60);
        u.period = SimDuration::ZERO;
        assert_eq!(u.validate(4), Err(SpecError::ZeroPeriod(UpdateStreamId(0))));
    }

    #[test]
    fn trace_validation_requires_sorted_arrivals() {
        let trace = Trace {
            n_items: 4,
            queries: vec![query(1, 10, &[0]), query(2, 5, &[1])],
            updates: vec![],
        };
        assert_eq!(
            trace.validate(),
            Err(SpecError::UnsortedQueries(QueryId(2)))
        );
    }

    #[test]
    fn offered_utilizations_match_hand_computation() {
        // One stream: period 10s, exec 1s -> 10% utilization.
        let trace = Trace {
            n_items: 4,
            queries: vec![query(1, 0, &[0]), query(2, 1, &[1])],
            updates: vec![update(0, 0, 10)],
        };
        let horizon = SimDuration::from_secs(100);
        let uu = trace.offered_update_utilization(horizon);
        assert!((uu - 0.10).abs() < 0.01, "got {uu}");
        // Two queries x 2s over 100s -> 4%.
        let qu = trace.offered_query_utilization(horizon);
        assert!((qu - 0.04).abs() < 1e-9, "got {qu}");
    }

    #[test]
    fn histograms_count_accesses_and_versions() {
        let trace = Trace {
            n_items: 3,
            queries: vec![query(1, 0, &[0, 2]), query(2, 1, &[0])],
            updates: vec![update(0, 1, 25)],
        };
        assert_eq!(trace.query_access_histogram(), vec![2, 0, 1]);
        // Versions at t=0,25,50,75,100 within a 100s horizon -> 5.
        let h = trace.update_volume_histogram(SimDuration::from_secs(100));
        assert_eq!(h, vec![0, 5, 0]);
    }

    #[test]
    fn trace_serde_round_trip() {
        let trace = Trace {
            n_items: 2,
            queries: vec![query(1, 0, &[0])],
            updates: vec![update(0, 1, 30)],
        };
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
