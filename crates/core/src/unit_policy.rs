//! The UNIT policy: the paper's contribution, assembled (§3, Figure 1).
//!
//! `UnitPolicy` wires the four mechanisms of the framework behind the
//! [`Policy`] interface:
//!
//! * the **USM window** and **Load Balancing Controller** ([`Lbc`]) watch
//!   query outcomes and emit control signals,
//! * **Query Admission Control** ([`AdmissionControl`]) gates arrivals with
//!   the deadline and system-USM checks, its tightness steered by TAC/LAC,
//! * **Update Frequency Modulation** ([`UpdateModulation`]) decides which
//!   arriving versions are applied, its periods steered by Degrade/Upgrade,
//! * the **ticket table + lottery** ([`TicketTable`], [`WeightedSampler`])
//!   choose degradation victims proportionally to how unprofitable an item's
//!   updates currently are.
//!
//! Control activations happen on the periodic `on_tick` hook: the LBC's
//! grace-period and USM-drop triggers are evaluated there, so a fine tick
//! (1 simulated second by default in the simulator) realizes the paper's
//! "periodically or when the USM drops" rule at tick granularity.

use crate::admission::{AdmissionControl, AdmissionVerdict};
use crate::config::UnitConfig;
use crate::controller::Lbc;
use crate::lottery::WeightedSampler;
use crate::modulation::UpdateModulation;
use crate::observe::{AdmissionObs, ControllerObs, ModulationObs};
use crate::policy::{AdmissionDecision, ControlSignal, Policy, UpdateAction};
use crate::snapshot::SnapshotView;
use crate::tickets::TicketTable;
use crate::time::{SimDuration, SimTime};
use crate::types::{DataId, Outcome, QuerySpec, UpdateSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters exposed for instrumentation and the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitPolicyStats {
    /// Queries rejected by the deadline (promising-transaction) check.
    pub rejected_not_promising: u64,
    /// Queries rejected by the system-USM (endangerment) check.
    pub rejected_endangering: u64,
    /// Versions skipped by update-frequency modulation.
    pub versions_skipped: u64,
    /// Versions applied.
    pub versions_applied: u64,
    /// Total degrade lottery draws performed.
    pub degrade_draws: u64,
    /// Total `UpgradeUpdates` signals handled.
    pub upgrade_signals: u64,
}

/// The UNIT transaction-management policy (§3).
pub struct UnitPolicy {
    cfg: UnitConfig,
    ac: AdmissionControl,
    tickets: TicketTable,
    modulation: UpdateModulation,
    lbc: Lbc,
    rng: StdRng,
    stats: UnitPolicyStats,
    /// Running sum/count of observed `qe/qt` for auto-normalizing Eq. 6's
    /// access decrement (see `UnitConfig::access_ticket_scale`).
    cpu_share_sum: f64,
    cpu_share_count: u64,
    /// Ideal per-item update utilization shares `ue_j / pi_j` (budgeting).
    util_share: Vec<f64>,
    /// True while an observer is installed on the driving server. Gates the
    /// observation buffers below; never influences decisions.
    observed: bool,
    /// Verdict behind the latest arrival decision (observation only).
    last_admission: Option<AdmissionObs>,
    /// Modulation boundaries crossed since the last drain (observation only).
    modulation_obs: Vec<ModulationObs>,
}

impl UnitPolicy {
    /// Build a policy from a validated configuration.
    ///
    /// # Panics
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: UnitConfig) -> Self {
        if let Err(e) = cfg.validate() {
            // lint: allow(panic) — documented constructor contract, caught at config time
            panic!("invalid UnitConfig: {e}");
        }
        UnitPolicy {
            ac: AdmissionControl::new(
                cfg.initial_c_flex,
                cfg.c_flex_step,
                cfg.min_c_flex,
                cfg.max_c_flex,
            ),
            tickets: TicketTable::new(0, cfg.c_forget, 1.0),
            modulation: UpdateModulation::new(Vec::new(), cfg.c_du, cfg.c_uu),
            lbc: Lbc::with_preferences(cfg.preferences(), cfg.lbc, cfg.seed ^ 0x1bc),
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: UnitPolicyStats::default(),
            cpu_share_sum: 0.0,
            cpu_share_count: 0,
            util_share: Vec::new(),
            observed: false,
            last_admission: None,
            modulation_obs: Vec::new(),
            cfg,
        }
    }

    /// Eq. 6 decrement for one access with CPU share `qe/qt`, after the
    /// configured scaling.
    fn access_decrement(&self, cpu_share: f64) -> f64 {
        match self.cfg.access_ticket_scale {
            Some(scale) => cpu_share * scale,
            None => {
                let base = 0.5 / self.cfg.access_update_balance;
                if self.cpu_share_count == 0 {
                    return base;
                }
                let avg = self.cpu_share_sum / self.cpu_share_count as f64;
                if avg <= 0.0 {
                    base
                } else {
                    base * cpu_share / avg
                }
            }
        }
    }

    /// Convenience constructor: defaults with the given weights.
    pub fn with_weights(weights: crate::usm::UsmWeights) -> Self {
        UnitPolicy::new(UnitConfig::with_weights(weights))
    }

    /// The configuration this policy was built with.
    pub fn config(&self) -> &UnitConfig {
        &self.cfg
    }

    /// Current admission lag ratio `C_flex`.
    pub fn c_flex(&self) -> f64 {
        self.ac.c_flex()
    }

    /// Number of items whose update period is currently degraded.
    pub fn degraded_count(&self) -> usize {
        self.modulation.degraded_count()
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> UnitPolicyStats {
        self.stats
    }

    /// Number of LBC activations so far.
    pub fn lbc_activations(&self) -> u64 {
        self.lbc.activations()
    }

    /// Raw ticket value of an item (diagnostics).
    pub fn ticket(&self, item: DataId) -> f64 {
        self.tickets.raw(item.index())
    }

    fn apply_signal(&mut self, signal: ControlSignal) {
        #[cfg(feature = "validate")]
        let ticket_bits = self.tickets.ticket_sum().to_bits();
        match signal {
            ControlSignal::LoosenAdmission => self.ac.loosen(),
            ControlSignal::TightenAdmission => self.ac.tighten(),
            ControlSignal::DegradeUpdates => self.degrade_batch(),
            ControlSignal::UpgradeUpdates => {
                self.upgrade_batch();
                self.stats.upgrade_signals += 1;
            }
        }
        crate::validate_check!("ticket-conservation", {
            let after = self.tickets.ticket_sum().to_bits();
            if after == ticket_bits {
                Ok(())
            } else {
                Err(format!(
                    "{signal:?} changed the ticket sum: {:e} -> {:e}",
                    f64::from_bits(ticket_bits),
                    f64::from_bits(after)
                ))
            }
        });
        crate::validate_check!("period-bounds", self.modulation.check_period_bounds());
    }

    /// One `UpgradeUpdates` signal: walk degraded items back toward their
    /// ideal periods in order of *query value* (lowest ticket first — the
    /// mirror image of degrade-by-highest-ticket), until the signal has
    /// restored `upgrade_step_util` of expected CPU. Staleness harm lives
    /// on the query-valuable items, so they are the ones a Data-Stale-
    /// dominated window should refresh; never-queried items keep their
    /// accumulated shedding.
    fn upgrade_batch(&mut self) {
        let budget = self.cfg.upgrade_step_util;
        // Ascending ticket = most query-valuable first; ties by index keep
        // the order deterministic. A lazily-popped min-heap visits items in
        // exactly that order but pays O(log N) only per item actually
        // upgraded — the budget usually stops after a handful, so the
        // per-signal cost is O(N_degraded) heapify instead of a full sort.
        struct ByTicket {
            ticket: f64,
            index: usize,
        }
        impl PartialEq for ByTicket {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for ByTicket {}
        impl PartialOrd for ByTicket {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for ByTicket {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.ticket
                    .partial_cmp(&other.ticket)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.index.cmp(&other.index))
            }
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<ByTicket>> =
            (0..self.util_share.len())
                .filter(|&i| self.modulation.is_degraded(DataId(i as u32)))
                .map(|i| {
                    std::cmp::Reverse(ByTicket {
                        ticket: self.tickets.raw(i),
                        index: i,
                    })
                })
                .collect();
        let mut restored = 0.0;
        while restored < budget {
            let Some(std::cmp::Reverse(ByTicket { index: i, .. })) = heap.pop() else {
                break;
            };
            let d = DataId(i as u32);
            let before = self.modulation.survival_fraction(d);
            let old_period = self.observed.then(|| self.modulation.current_period(d));
            if self.modulation.upgrade_one(d) {
                let after = self.modulation.survival_fraction(d);
                restored += self.util_share[i] * (after - before);
                if let Some(old_period) = old_period {
                    self.modulation_obs.push(ModulationObs {
                        item: d,
                        ticket: self.tickets.raw(i),
                        old_period,
                        new_period: self.modulation.current_period(d),
                    });
                }
            }
        }
    }

    /// One `DegradeUpdates` signal: draw lottery victims (with replacement —
    /// repeats compound the 10% stretch) and stretch each one's period,
    /// until the signal has shed `modulation_step_util` of expected CPU or
    /// the draw cap is hit.
    fn degrade_batch(&mut self) {
        let mut weights = match self.cfg.victim_weighting {
            crate::config::VictimWeighting::ShiftMin => self.tickets.shifted_weights(),
            crate::config::VictimWeighting::ClampZero => self.tickets.clamped_weights(),
        };
        // lint: allow(D4) — sharpness is a configured literal; 1.0 means "feature off"
        if self.cfg.lottery_sharpness != 1.0 {
            for w in &mut weights {
                *w = w.powf(self.cfg.lottery_sharpness);
            }
        }
        let sampler = WeightedSampler::from_weights(&weights);
        crate::validate_check!("lottery-sampler", sampler.check_consistency());
        let total = sampler.total();
        if total <= 0.0 || !total.is_finite() {
            return; // all tickets equal: sample() would yield None unconsumed
        }
        // Draws only mutate state while they land on a positive-weight item
        // that is still below its degradation cap; every other draw is a pure
        // no-op (zero shed, no period change) that exists solely to advance
        // the RNG stream. Zero-weight items occupy no draw mass, so `[0,
        // total)` splits into one contiguous cumulative span per positive
        // item, in index order. Precompute the spans belonging to *uncapped*
        // items, inflated by a margin many orders above the descent's float
        // rounding, and classify each draw with a binary search — only draws
        // inside a span (or its safety margin) pay for the exact tree
        // descent. In steady state the lottery's mass sits on capped items,
        // and the old loop burned thousands of descents per signal shedding
        // 0 CPU.
        let margin = total * 1e-6;
        let mut bounds: Vec<f64> = Vec::new();
        let mut uncapped = 0usize;
        let mut cum = 0.0_f64;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            let start = cum;
            cum += w;
            if !self.modulation.degrade_is_noop(DataId(i as u32)) {
                uncapped += 1;
                match bounds.last_mut() {
                    Some(end) if *end >= start - margin => *end = cum + margin,
                    _ => {
                        bounds.push(start - margin);
                        bounds.push(cum + margin);
                    }
                }
            }
        }
        let mut shed = 0.0;
        let mut remaining = self.cfg.degrade_victims_per_signal;
        while remaining > 0 {
            if shed >= self.cfg.modulation_step_util {
                break;
            }
            if uncapped == 0 {
                // Every further draw picks a positive-weight (hence capped)
                // victim: no shed, no modulation change. Consume the same
                // number of RNG values and stop.
                for _ in 0..remaining {
                    let _ = self.rng.gen::<f64>();
                }
                self.stats.degrade_draws += remaining as u64;
                break;
            }
            let target = self.rng.gen::<f64>() * total;
            // Odd partition index = inside an uncapped span (spans are
            // disjoint and sorted, stored as flattened [start, end) pairs).
            if bounds.partition_point(|&b| b <= target) % 2 == 0 {
                // Certainly a capped victim: the draw is a no-op.
                self.stats.degrade_draws += 1;
            } else {
                let victim = sampler.locate(target);
                let d = DataId(victim as u32);
                if self.modulation.degrade_is_noop(d) {
                    // Margin hit or an item capped earlier in this loop —
                    // still a no-op, only the counter moves.
                    self.stats.degrade_draws += 1;
                } else {
                    let before = self.modulation.survival_fraction(d);
                    let old_period = self.observed.then(|| self.modulation.current_period(d));
                    self.modulation.degrade(d);
                    let after = self.modulation.survival_fraction(d);
                    shed += self.util_share[victim] * (before - after);
                    self.stats.degrade_draws += 1;
                    if let Some(old_period) = old_period {
                        self.modulation_obs.push(ModulationObs {
                            item: d,
                            ticket: self.tickets.raw(victim),
                            old_period,
                            new_period: self.modulation.current_period(d),
                        });
                    }
                    if self.modulation.degrade_is_noop(d) {
                        uncapped -= 1;
                    }
                }
            }
            remaining -= 1;
        }
    }
}

impl Policy for UnitPolicy {
    fn name(&self) -> &str {
        "UNIT"
    }

    fn init(&mut self, n_items: usize, updates: &[UpdateSpec]) {
        let (ue_avg, ue_std) = if updates.is_empty() {
            (1.0, 1.0)
        } else {
            let n = updates.len() as f64;
            let avg = updates
                .iter()
                .map(|u| u.exec_time.as_secs_f64())
                .sum::<f64>()
                / n;
            let var = updates
                .iter()
                .map(|u| {
                    let d = u.exec_time.as_secs_f64() - avg;
                    d * d
                })
                .sum::<f64>()
                / n;
            (avg, var.sqrt().max(1e-9))
        };
        // Normalize Eq. 7's sigmoid by the dispersion of update execution
        // times so it stays informative at any time scale.
        self.tickets = TicketTable::with_scale(n_items, self.cfg.c_forget, ue_avg, ue_std);
        // Warm start: seed every item that has an update stream with one
        // average update's worth of ticket, so early Degrade signals can
        // already discriminate before the first per-item commit is observed
        // (update periods can exceed the controller's whole warm-up window).
        for u in updates {
            self.tickets.seed(u.item.index(), 0.5);
        }

        // Ideal period per item: the fastest stream updating it (streams are
        // normally one-per-item); items without a stream get MAX and are
        // transparent to modulation.
        let mut ideal = vec![SimDuration::MAX; n_items];
        for u in updates {
            let slot = &mut ideal[u.item.index()];
            if u.period < *slot {
                *slot = u.period;
            }
        }
        self.util_share = ideal
            .iter()
            .enumerate()
            .map(|(i, &pi)| {
                if pi == SimDuration::MAX || pi.is_zero() {
                    0.0
                } else {
                    // Total exec over the item's streams per ideal period.
                    updates
                        .iter()
                        .filter(|u| u.item.index() == i)
                        .map(|u| u.exec_time.as_secs_f64() / u.period.as_secs_f64())
                        .sum()
                }
            })
            .collect();
        self.modulation = UpdateModulation::with_rule(
            ideal,
            self.cfg.c_du,
            self.cfg.c_uu,
            self.cfg.max_degradation_factor,
            self.cfg.upgrade_rule,
        );
    }

    fn on_query_arrival(&mut self, q: &QuerySpec, sys: &SnapshotView<'_>) -> AdmissionDecision {
        if !self.cfg.admission_enabled {
            self.last_admission = None;
            return AdmissionDecision::Admit;
        }
        let arr_weights = self.cfg.weights_for(q.pref_class);
        let cfg = &self.cfg;
        let verdict = self
            .ac
            .evaluate_with(q, sys, &arr_weights, &|class| cfg.weights_for(class));
        match verdict {
            AdmissionVerdict::NotPromising { .. } => self.stats.rejected_not_promising += 1,
            AdmissionVerdict::EndangersSystem { .. } => self.stats.rejected_endangering += 1,
            AdmissionVerdict::Admitted => {}
        }
        if self.observed {
            self.last_admission = Some(AdmissionObs {
                c_flex: self.ac.c_flex(),
                verdict,
            });
        }
        verdict.decision()
    }

    fn on_version_arrival(
        &mut self,
        item: DataId,
        now: SimTime,
        _sys: &SnapshotView<'_>,
    ) -> UpdateAction {
        if self.modulation.should_apply(item, now) {
            self.stats.versions_applied += 1;
            UpdateAction::Apply
        } else {
            self.stats.versions_skipped += 1;
            UpdateAction::Skip
        }
    }

    fn on_query_dispatch(&mut self, q: &QuerySpec, _freshness: f64) {
        // Query effect on tickets (Eq. 6): each accessed item's ticket drops
        // by the query's CPU-utilization share (normalized so the average
        // access balances the average update — see UnitConfig).
        let share = q.exec_time.ratio(q.relative_deadline);
        self.cpu_share_sum += share;
        self.cpu_share_count += 1;
        let decrement = self.access_decrement(share);
        for &d in &q.items {
            self.tickets.on_query_access(d.index(), decrement);
        }
    }

    fn on_update_commit(&mut self, item: DataId, exec_time: SimDuration) {
        // Update effect on tickets (Eq. 7): executed updates raise the
        // item's victim odds, weighted by how expensive they are.
        self.tickets
            .on_update(item.index(), exec_time.as_secs_f64());
    }

    fn on_query_outcome(&mut self, q: &QuerySpec, outcome: Outcome) {
        self.lbc.record_for_class(outcome, q.pref_class);
    }

    fn on_tick(&mut self, now: SimTime, sys: &SnapshotView<'_>) -> Vec<ControlSignal> {
        let mut signals = self.lbc.maybe_activate(now, sys.recent_utilization);
        // Rejection-dominated windows normally just loosen admission, but
        // when C_flex already sits at its floor the LAC is a no-op: the
        // rejections are structural — queries are being turned away because
        // update work is queued ahead of their deadlines — so shed update
        // load as well. (Companion to the LBC's saturated-rejection case;
        // documented in DESIGN.md.)
        if signals.contains(&ControlSignal::LoosenAdmission)
            && !signals.contains(&ControlSignal::DegradeUpdates)
            && self.ac.at_floor()
        {
            signals.push(ControlSignal::DegradeUpdates);
        }
        for &s in &signals {
            self.apply_signal(s);
        }
        signals
    }

    /// Serialize every decision-affecting mutable field: admission knob,
    /// tickets, modulation periods/credit, LBC window + RNG, lottery RNG,
    /// stats, and the access-share normalizer. Observation buffers
    /// (`last_admission`, `modulation_obs`) are transient and skipped;
    /// `util_share` is rebuilt by [`Policy::init`] before restore.
    fn checkpoint_state(&self, enc: &mut crate::checkpoint::Enc) {
        self.ac.checkpoint_into(enc);
        self.tickets.checkpoint_into(enc);
        self.modulation.checkpoint_into(enc);
        self.lbc.checkpoint_into(enc);
        for w in self.rng.state() {
            enc.put_u64(w);
        }
        enc.put_u64(self.stats.rejected_not_promising);
        enc.put_u64(self.stats.rejected_endangering);
        enc.put_u64(self.stats.versions_skipped);
        enc.put_u64(self.stats.versions_applied);
        enc.put_u64(self.stats.degrade_draws);
        enc.put_u64(self.stats.upgrade_signals);
        enc.put_f64(self.cpu_share_sum);
        enc.put_u64(self.cpu_share_count);
    }

    fn restore_state(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        self.ac.restore_from(dec)?;
        self.tickets.restore_from(dec)?;
        self.modulation.restore_from(dec)?;
        self.lbc.restore_from(dec)?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.take_u64()?;
        }
        self.rng = StdRng::from_state(s);
        self.stats.rejected_not_promising = dec.take_u64()?;
        self.stats.rejected_endangering = dec.take_u64()?;
        self.stats.versions_skipped = dec.take_u64()?;
        self.stats.versions_applied = dec.take_u64()?;
        self.stats.degrade_draws = dec.take_u64()?;
        self.stats.upgrade_signals = dec.take_u64()?;
        self.cpu_share_sum = dec.take_f64()?;
        self.cpu_share_count = dec.take_u64()?;
        Ok(())
    }

    /// O(1): a tick is a no-op exactly when the LBC will not activate, and
    /// until an outcome lands only the grace timer can change that — so the
    /// LBC's [`Lbc::idle_until`] bound is exact. UNIT schedules no
    /// time-triggered refreshes.
    fn tick_idle_until(&self) -> SimTime {
        self.lbc.idle_until()
    }

    fn current_period(&self, item: DataId) -> Option<SimDuration> {
        Some(self.modulation.current_period(item))
    }

    /// O(1): flips the observation flag and clears stale buffers.
    fn set_observed(&mut self, observed: bool) {
        self.observed = observed;
        if !observed {
            self.last_admission = None;
            self.modulation_obs.clear();
        }
    }

    /// O(1): the buffered verdict behind the latest arrival decision.
    fn last_admission(&self) -> Option<AdmissionObs> {
        self.last_admission
    }

    /// O(N_d) for the ticket-mass sum; called at tick frequency only.
    fn controller_obs(&self) -> Option<ControllerObs> {
        Some(ControllerObs {
            c_flex: self.ac.c_flex(),
            degraded_items: self.modulation.degraded_count(),
            ticket_sum: self.tickets.ticket_sum(),
        })
    }

    /// O(n) in the drained records; O(1) when observation is off.
    fn drain_modulation_obs(&mut self) -> Vec<ModulationObs> {
        std::mem::take(&mut self.modulation_obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;
    use crate::types::{QueryId, UpdateStreamId};
    use crate::usm::UsmWeights;

    fn update_spec(id: u32, item: u32, period_s: u64, exec_s: u64) -> UpdateSpec {
        UpdateSpec {
            id: UpdateStreamId(id),
            item: DataId(item),
            period: SimDuration::from_secs(period_s),
            exec_time: SimDuration::from_secs(exec_s),
            first_arrival: SimTime::ZERO,
        }
    }

    fn query_spec(id: u64, items: &[u32], exec_s: u64, deadline_s: u64) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            arrival: SimTime::ZERO,
            items: items.iter().map(|&i| DataId(i)).collect(),
            exec_time: SimDuration::from_secs(exec_s),
            relative_deadline: SimDuration::from_secs(deadline_s),
            freshness_req: 0.9,
            pref_class: 0,
        }
    }

    fn initialized_policy() -> UnitPolicy {
        let mut p = UnitPolicy::new(UnitConfig::default().with_seed(42));
        p.init(
            4,
            &[
                update_spec(0, 0, 10, 1),
                update_spec(1, 1, 20, 1),
                update_spec(2, 2, 30, 3),
            ],
        );
        p
    }

    #[test]
    fn feasible_queries_are_admitted_on_an_idle_server() {
        let mut p = initialized_policy();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        let d = p.on_query_arrival(&query_spec(1, &[0], 2, 30), &sys.view());
        assert_eq!(d, AdmissionDecision::Admit);
        assert_eq!(p.stats().rejected_not_promising, 0);
    }

    #[test]
    fn hopeless_queries_are_rejected() {
        let mut p = initialized_policy();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        let d = p.on_query_arrival(&query_spec(1, &[0], 30, 2), &sys.view());
        assert_eq!(d, AdmissionDecision::Reject);
        assert_eq!(p.stats().rejected_not_promising, 1);
    }

    #[test]
    fn undegraded_versions_are_applied_at_source_rate() {
        let mut p = initialized_policy();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        for k in 0..5u64 {
            let a = p.on_version_arrival(DataId(0), SimTime::from_secs(k * 10), &sys.view());
            assert_eq!(a, UpdateAction::Apply, "version {k} must be applied");
        }
        assert_eq!(p.stats().versions_applied, 5);
        assert_eq!(p.stats().versions_skipped, 0);
    }

    #[test]
    fn degrade_signals_cause_version_skipping() {
        let mut p = initialized_policy();
        let sys = SystemSnapshot::empty(SimTime::ZERO);

        // Make item 2 the obvious victim: many expensive updates, no queries.
        for _ in 0..50 {
            p.on_update_commit(DataId(2), SimDuration::from_secs(3));
        }
        // And make items 0, 1 query-valuable.
        for _ in 0..50 {
            p.on_query_dispatch(&query_spec(1, &[0, 1], 2, 10), 1.0);
        }

        // Drive degrade signals directly.
        for _ in 0..10 {
            p.apply_signal(ControlSignal::DegradeUpdates);
        }
        assert!(p.degraded_count() >= 1);
        assert!(
            p.current_period(DataId(2)).unwrap() > SimDuration::from_secs(30),
            "victim item 2 should be degraded, period = {:?}",
            p.current_period(DataId(2))
        );
        // Its versions are now subsampled.
        let mut applied = 0;
        for k in 0..100u64 {
            if p.on_version_arrival(DataId(2), SimTime::from_secs(k * 30), &sys.view())
                .is_apply()
            {
                applied += 1;
            }
        }
        assert!(applied < 100, "degraded stream must shed some versions");
        // Upgrades walk the period back to ideal.
        for _ in 0..200 {
            p.apply_signal(ControlSignal::UpgradeUpdates);
        }
        assert_eq!(
            p.current_period(DataId(2)),
            Some(SimDuration::from_secs(30))
        );
        assert_eq!(p.degraded_count(), 0);
    }

    #[test]
    fn admission_signals_move_c_flex() {
        let mut p = initialized_policy();
        let before = p.c_flex();
        p.apply_signal(ControlSignal::TightenAdmission);
        assert!(p.c_flex() > before);
        p.apply_signal(ControlSignal::LoosenAdmission);
        p.apply_signal(ControlSignal::LoosenAdmission);
        assert!(p.c_flex() < before);
    }

    #[test]
    fn tick_after_grace_period_activates_lbc() {
        let mut p = initialized_policy();
        let sys = SystemSnapshot::empty(SimTime::ZERO);
        // Feed a DSF-dominated window.
        for _ in 0..30 {
            p.on_query_outcome(&query_spec(1, &[0], 1, 10), Outcome::DataStale);
        }
        for _ in 0..70 {
            p.on_query_outcome(&query_spec(1, &[0], 1, 10), Outcome::Success);
        }
        // Before the grace period: no activation.
        assert!(p.on_tick(SimTime::from_secs(1), &sys.view()).is_empty());
        // After: DSF dominates -> UpgradeUpdates.
        let signals = p.on_tick(SimTime::from_secs(60), &sys.view());
        assert_eq!(signals, vec![ControlSignal::UpgradeUpdates]);
        assert_eq!(p.lbc_activations(), 1);
    }

    #[test]
    fn policy_name_and_periods_are_exposed() {
        let p = initialized_policy();
        assert_eq!(p.name(), "UNIT");
        assert_eq!(
            p.current_period(DataId(0)),
            Some(SimDuration::from_secs(10))
        );
        // Item 3 has no stream.
        assert_eq!(p.current_period(DataId(3)), Some(SimDuration::MAX));
    }

    #[test]
    fn with_weights_builder_sets_preferences() {
        let p = UnitPolicy::with_weights(UsmWeights::high_high_cfm());
        assert_eq!(p.config().weights, UsmWeights::high_high_cfm());
    }

    #[test]
    fn observation_hooks_buffer_only_when_observed() {
        let sys = SystemSnapshot::empty(SimTime::ZERO);

        // Unobserved: nothing is buffered.
        let mut quiet = initialized_policy();
        let _ = quiet.on_query_arrival(&query_spec(1, &[0], 30, 2), &sys.view());
        assert_eq!(quiet.last_admission(), None);
        for _ in 0..10 {
            quiet.apply_signal(ControlSignal::DegradeUpdates);
        }
        assert!(quiet.drain_modulation_obs().is_empty());

        // Observed: the same call sequence exposes its derived records.
        let mut p = initialized_policy();
        p.set_observed(true);
        let _ = p.on_query_arrival(&query_spec(1, &[0], 30, 2), &sys.view());
        let obs = p.last_admission().expect("verdict must be buffered");
        assert!(matches!(obs.verdict, AdmissionVerdict::NotPromising { .. }));
        assert!(obs.c_flex > 0.0);
        for _ in 0..10 {
            p.apply_signal(ControlSignal::DegradeUpdates);
        }
        let boundaries = p.drain_modulation_obs();
        assert!(!boundaries.is_empty(), "degrades must log boundaries");
        assert!(boundaries.iter().all(|m| m.new_period > m.old_period));
        assert!(
            p.drain_modulation_obs().is_empty(),
            "drain empties the buffer"
        );

        let ctl = p.controller_obs().expect("UNIT exposes controller state");
        assert!(ctl.degraded_items >= 1);
        assert!(ctl.ticket_sum.is_finite());

        // Observation never changed decisions: stats paths are identical.
        assert_eq!(p.stats(), quiet.stats());

        // Turning observation off clears the buffers.
        p.set_observed(false);
        assert_eq!(p.last_admission(), None);
    }

    #[test]
    #[should_panic(expected = "invalid UnitConfig")]
    fn invalid_config_panics_at_construction() {
        let cfg = UnitConfig {
            c_forget: 2.0,
            ..UnitConfig::default()
        };
        let _ = UnitPolicy::new(cfg);
    }
}
