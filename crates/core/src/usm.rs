//! The User Satisfaction Metric (§2.3).
//!
//! Per query `q_i`, user satisfaction is a gain or a differentiated penalty
//! (Eq. 3):
//!
//! ```text
//! US(q_i) =  G_s     if q_i meets both qt_i and qf_i
//!           −C_r     if q_i is rejected
//!           −C_fm    if q_i misses its deadline (DMF)
//!           −C_fs    if q_i misses its freshness requirement (DSF)
//! ```
//!
//! The paper normalizes `G_s = 1`. Averaging the total over all submitted
//! queries gives (Eq. 5) `USM = S − R − F_m − F_s`, bounded by
//! `[−max(C_r, C_fm, C_fs), 1]` (§2.3.2).
//!
//! [`UsmWeights`] carries the user-preference knobs, including the Table 2
//! configurations used in the sensitivity experiments. [`OutcomeCounts`] and
//! [`UsmWindow`] do the bookkeeping for both the final report and the LBC's
//! sliding control window.

use crate::types::Outcome;
use serde::{Deserialize, Serialize};
use std::fmt;

/// User-preference weights: the success gain and the three failure penalties,
/// all normalized to the gain (§2.3.1).
///
/// ```
/// use unit_core::usm::{OutcomeCounts, UsmWeights};
/// use unit_core::types::Outcome;
///
/// // Deadline misses are the most annoying failure (Table 2).
/// let w = UsmWeights::low_high_cfm();
/// let mut counts = OutcomeCounts::default();
/// counts.record(Outcome::Success);
/// counts.record(Outcome::Success);
/// counts.record(Outcome::DeadlineMiss);
/// counts.record(Outcome::Rejected);
/// // USM = (2·1 − 0.8 − 0.2) / 4
/// assert!((counts.average_usm(&w) - 0.25).abs() < 1e-12);
/// assert_eq!(w.range(), (-0.8, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsmWeights {
    /// Success gain `G_s` (1 in the paper).
    pub gain: f64,
    /// Rejection penalty `C_r`.
    pub c_r: f64,
    /// Deadline-Missed Failure penalty `C_fm`.
    pub c_fm: f64,
    /// Data-Stale Failure penalty `C_fs`.
    pub c_fs: f64,
}

impl Default for UsmWeights {
    /// The "naive" setting of §4.3: all penalties zero, so USM equals the
    /// traditional success ratio.
    fn default() -> Self {
        UsmWeights::naive()
    }
}

impl UsmWeights {
    /// All penalties zero — USM degenerates to the success ratio (§4.3).
    pub const fn naive() -> Self {
        UsmWeights {
            gain: 1.0,
            c_r: 0.0,
            c_fm: 0.0,
            c_fs: 0.0,
        }
    }

    /// General constructor with `G_s = 1`.
    pub const fn penalties(c_r: f64, c_fm: f64, c_fs: f64) -> Self {
        UsmWeights {
            gain: 1.0,
            c_r,
            c_fm,
            c_fs,
        }
    }

    /// Table 2, penalties < 1, "high C_r" column: (C_r, C_fm, C_fs) =
    /// (0.8, 0.2, 0.2).
    pub const fn low_high_cr() -> Self {
        UsmWeights::penalties(0.8, 0.2, 0.2)
    }

    /// Table 2, penalties < 1, "high C_fm" column: (0.2, 0.8, 0.2).
    pub const fn low_high_cfm() -> Self {
        UsmWeights::penalties(0.2, 0.8, 0.2)
    }

    /// Table 2, penalties < 1, "high C_fs" column: (0.2, 0.2, 0.8).
    pub const fn low_high_cfs() -> Self {
        UsmWeights::penalties(0.2, 0.2, 0.8)
    }

    /// Table 2, penalties > 1, "high C_r" column: (8, 2, 2).
    pub const fn high_high_cr() -> Self {
        UsmWeights::penalties(8.0, 2.0, 2.0)
    }

    /// Table 2, penalties > 1, "high C_fm" column: (2, 8, 2).
    pub const fn high_high_cfm() -> Self {
        UsmWeights::penalties(2.0, 8.0, 2.0)
    }

    /// Table 2, penalties > 1, "high C_fs" column: (2, 2, 8).
    pub const fn high_high_cfs() -> Self {
        UsmWeights::penalties(2.0, 2.0, 8.0)
    }

    /// True when every penalty is zero (the naive / success-ratio setting).
    pub fn is_naive(&self) -> bool {
        // lint: allow(D4) — penalties are configured literals, not computed values
        self.c_r == 0.0 && self.c_fm == 0.0 && self.c_fs == 0.0
    }

    /// Per-query satisfaction value for one outcome (Eq. 3).
    pub fn satisfaction(&self, outcome: Outcome) -> f64 {
        match outcome {
            Outcome::Success => self.gain,
            Outcome::Rejected => -self.c_r,
            Outcome::DeadlineMiss => -self.c_fm,
            Outcome::DataStale => -self.c_fs,
        }
    }

    /// The attainable USM interval `[−max penalty, G_s]` (§2.3.2).
    pub fn range(&self) -> (f64, f64) {
        (-self.max_penalty(), self.gain)
    }

    /// Width of the USM range; the LBC threshold is 1% of this (§3.2).
    pub fn range_span(&self) -> f64 {
        self.gain + self.max_penalty()
    }

    /// The largest of the three penalties.
    pub fn max_penalty(&self) -> f64 {
        self.c_r.max(self.c_fm).max(self.c_fs)
    }
}

impl fmt::Display for UsmWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Gs={} Cr={} Cfm={} Cfs={}",
            self.gain, self.c_r, self.c_fm, self.c_fs
        )
    }
}

/// Counts of query outcomes: `N_s`, `N_r`, `N_fm`, `N_fs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Successful queries.
    pub success: u64,
    /// Rejected queries.
    pub rejected: u64,
    /// Deadline-missed failures.
    pub deadline_miss: u64,
    /// Data-stale failures.
    pub data_stale: u64,
}

impl OutcomeCounts {
    /// Record one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Success => self.success += 1,
            Outcome::Rejected => self.rejected += 1,
            Outcome::DeadlineMiss => self.deadline_miss += 1,
            Outcome::DataStale => self.data_stale += 1,
        }
    }

    /// Total submitted queries accounted for.
    pub fn total(&self) -> u64 {
        self.success + self.rejected + self.deadline_miss + self.data_stale
    }

    /// Count for a specific outcome.
    pub fn count(&self, outcome: Outcome) -> u64 {
        match outcome {
            Outcome::Success => self.success,
            Outcome::Rejected => self.rejected,
            Outcome::DeadlineMiss => self.deadline_miss,
            Outcome::DataStale => self.data_stale,
        }
    }

    /// Ratio of one outcome over the total (`R_s`, `R_r`, `R_fm`, `R_fs` of
    /// §4.5); 0 when no queries have been counted.
    pub fn ratio(&self, outcome: Outcome) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / total as f64
        }
    }

    /// Success ratio `R_s` — the naive USM of §4.3.
    pub fn success_ratio(&self) -> f64 {
        self.ratio(Outcome::Success)
    }

    /// All four ratios `(R_s, R_r, R_fm, R_fs)`, in the paper's order.
    pub fn ratios(&self) -> [f64; 4] {
        [
            self.ratio(Outcome::Success),
            self.ratio(Outcome::Rejected),
            self.ratio(Outcome::DeadlineMiss),
            self.ratio(Outcome::DataStale),
        ]
    }

    /// Total USM (Eq. 4): sum of gains minus the three penalty sums.
    pub fn total_usm(&self, w: &UsmWeights) -> f64 {
        w.gain * self.success as f64
            - w.c_r * self.rejected as f64
            - w.c_fm * self.deadline_miss as f64
            - w.c_fs * self.data_stale as f64
    }

    /// Average USM (Eq. 5): `S − R − F_m − F_s`. Zero before any query.
    pub fn average_usm(&self, w: &UsmWeights) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.total_usm(w) / total as f64
        }
    }

    /// The three average cost components `(R, F_m, F_s)` of Eq. 5.
    pub fn cost_components(&self, w: &UsmWeights) -> [f64; 3] {
        let total = self.total().max(1) as f64;
        [
            w.c_r * self.rejected as f64 / total,
            w.c_fm * self.deadline_miss as f64 / total,
            w.c_fs * self.data_stale as f64 / total,
        ]
    }

    /// Element-wise sum of two count sets.
    pub fn merged(&self, other: &OutcomeCounts) -> OutcomeCounts {
        OutcomeCounts {
            success: self.success + other.success,
            rejected: self.rejected + other.rejected,
            deadline_miss: self.deadline_miss + other.deadline_miss,
            data_stale: self.data_stale + other.data_stale,
        }
    }
}

/// A set of per-class user preferences (multi-preference extension).
///
/// §3.1 assumes all users share one preference vector and notes the
/// framework "can be easily extended to support multiple preferences"; this
/// type is that extension. Each query carries a `pref_class`
/// ([`crate::types::QuerySpec::pref_class`]); the set maps classes to
/// weights, falling back to the default for unknown classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferenceSet {
    default: UsmWeights,
    classes: Vec<UsmWeights>,
}

impl PreferenceSet {
    /// Every class shares `weights` (the paper's single-preference setting).
    pub fn uniform(weights: UsmWeights) -> Self {
        PreferenceSet {
            default: weights,
            classes: Vec::new(),
        }
    }

    /// Class `i` uses `classes[i]`; classes beyond the vector fall back to
    /// `default`.
    pub fn with_classes(default: UsmWeights, classes: Vec<UsmWeights>) -> Self {
        PreferenceSet { default, classes }
    }

    /// Weights for a preference class.
    pub fn get(&self, class: u32) -> UsmWeights {
        self.classes
            .get(class as usize)
            .copied()
            .unwrap_or(self.default)
    }

    /// The default (fallback) weights.
    pub fn default_weights(&self) -> UsmWeights {
        self.default
    }

    /// Number of explicitly configured classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len().max(1)
    }

    /// True when every configured class is the naive (all-zero-penalty)
    /// setting — the LBC then falls back to raw failure ratios, as in the
    /// paper's Figure 2 line 2.
    pub fn is_naive(&self) -> bool {
        self.default.is_naive() && self.classes.iter().all(UsmWeights::is_naive)
    }

    /// The widest USM range span across classes (used for the LBC's 1%
    /// drop threshold).
    pub fn max_range_span(&self) -> f64 {
        self.classes
            .iter()
            .map(UsmWeights::range_span)
            .fold(self.default.range_span(), f64::max)
    }
}

impl From<UsmWeights> for PreferenceSet {
    fn from(w: UsmWeights) -> Self {
        PreferenceSet::uniform(w)
    }
}

/// A resettable window over outcome counts — the LBC's view of "what happened
/// since my last activation" (§3.2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsmWindow {
    counts: OutcomeCounts,
    /// Accumulated success gain, priced per recording (multi-class aware).
    gain: f64,
    /// Accumulated rejection / DMF / DSF costs, priced per recording.
    costs: [f64; 3],
}

impl UsmWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one outcome into the window, pricing it with `weights` (the
    /// submitting user's preference class).
    pub fn record_with(&mut self, outcome: Outcome, weights: &UsmWeights) {
        self.counts.record(outcome);
        match outcome {
            Outcome::Success => self.gain += weights.gain,
            Outcome::Rejected => self.costs[0] += weights.c_r,
            Outcome::DeadlineMiss => self.costs[1] += weights.c_fm,
            Outcome::DataStale => self.costs[2] += weights.c_fs,
        }
    }

    /// Record one outcome priced with unit gain and zero penalties (naive).
    pub fn record(&mut self, outcome: Outcome) {
        self.record_with(outcome, &UsmWeights::naive());
    }

    /// Counts accumulated since the last [`UsmWindow::take`].
    pub fn counts(&self) -> &OutcomeCounts {
        &self.counts
    }

    /// Average USM of the window under the per-recording pricing
    /// (`(gain − costs) / n`); 0 for an empty window.
    pub fn average_usm(&self) -> f64 {
        let n = self.counts.total();
        if n == 0 {
            0.0
        } else {
            (self.gain - self.costs.iter().sum::<f64>()) / n as f64
        }
    }

    /// Average cost components `(R, F_m, F_s)` under the per-recording
    /// pricing.
    pub fn cost_components(&self) -> [f64; 3] {
        let n = self.counts.total().max(1) as f64;
        [self.costs[0] / n, self.costs[1] / n, self.costs[2] / n]
    }

    /// Whether anything has been recorded since the last reset.
    pub fn is_empty(&self) -> bool {
        self.counts.total() == 0
    }

    /// Drain the window, returning its counts and resetting it.
    pub fn take(&mut self) -> OutcomeCounts {
        let counts = self.counts;
        *self = UsmWindow::default();
        counts
    }

    /// Serialize the window (counts plus priced accumulators) into a
    /// checkpoint stream. See [`crate::checkpoint`].
    pub fn checkpoint_into(&self, enc: &mut crate::checkpoint::Enc) {
        enc.put_u64(self.counts.success);
        enc.put_u64(self.counts.rejected);
        enc.put_u64(self.counts.deadline_miss);
        enc.put_u64(self.counts.data_stale);
        enc.put_f64(self.gain);
        for c in self.costs {
            enc.put_f64(c);
        }
    }

    /// Restore state captured by [`UsmWindow::checkpoint_into`].
    pub fn restore_from(
        &mut self,
        dec: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        self.counts.success = dec.take_u64()?;
        self.counts.rejected = dec.take_u64()?;
        self.counts.deadline_miss = dec.take_u64()?;
        self.counts.data_stale = dec.take_u64()?;
        self.gain = dec.take_f64()?;
        for c in &mut self.costs {
            *c = dec.take_f64()?;
        }
        Ok(())
    }

    /// Drain the window, returning counts plus the priced USM average and
    /// cost components.
    pub fn take_priced(&mut self) -> (OutcomeCounts, f64, [f64; 3]) {
        let usm = self.average_usm();
        let costs = self.cost_components();
        let counts = self.counts;
        *self = UsmWindow::default();
        (counts, usm, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfaction_matches_eq3() {
        let w = UsmWeights::penalties(0.5, 0.7, 0.3);
        assert_eq!(w.satisfaction(Outcome::Success), 1.0);
        assert_eq!(w.satisfaction(Outcome::Rejected), -0.5);
        assert_eq!(w.satisfaction(Outcome::DeadlineMiss), -0.7);
        assert_eq!(w.satisfaction(Outcome::DataStale), -0.3);
    }

    #[test]
    fn naive_usm_equals_success_ratio() {
        let w = UsmWeights::naive();
        assert!(w.is_naive());
        let mut c = OutcomeCounts::default();
        for _ in 0..6 {
            c.record(Outcome::Success);
        }
        for _ in 0..2 {
            c.record(Outcome::Rejected);
        }
        c.record(Outcome::DeadlineMiss);
        c.record(Outcome::DataStale);
        assert!((c.average_usm(&w) - 0.6).abs() < 1e-12);
        assert!((c.success_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn average_usm_matches_eq5_decomposition() {
        let w = UsmWeights::penalties(0.2, 0.8, 0.2);
        let mut c = OutcomeCounts::default();
        for _ in 0..5 {
            c.record(Outcome::Success);
        }
        for _ in 0..3 {
            c.record(Outcome::Rejected);
        }
        c.record(Outcome::DeadlineMiss);
        c.record(Outcome::DataStale);
        let [r, fm, fs] = c.cost_components(&w);
        let s = c.success_ratio() * w.gain;
        assert!((c.average_usm(&w) - (s - r - fm - fs)).abs() < 1e-12);
        assert!((r - 0.2 * 0.3).abs() < 1e-12);
        assert!((fm - 0.8 * 0.1).abs() < 1e-12);
        assert!((fs - 0.2 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn usm_stays_within_paper_range() {
        let w = UsmWeights::high_high_cfm();
        let (lo, hi) = w.range();
        assert_eq!(lo, -8.0);
        assert_eq!(hi, 1.0);
        assert_eq!(w.range_span(), 9.0);

        // All-success hits the top of the range.
        let mut c = OutcomeCounts::default();
        for _ in 0..10 {
            c.record(Outcome::Success);
        }
        assert_eq!(c.average_usm(&w), hi);

        // All worst-failure hits the bottom.
        let mut c = OutcomeCounts::default();
        for _ in 0..10 {
            c.record(Outcome::DeadlineMiss);
        }
        assert_eq!(c.average_usm(&w), lo);
    }

    #[test]
    fn table2_presets_match_paper() {
        assert_eq!(
            UsmWeights::low_high_cr(),
            UsmWeights::penalties(0.8, 0.2, 0.2)
        );
        assert_eq!(
            UsmWeights::low_high_cfm(),
            UsmWeights::penalties(0.2, 0.8, 0.2)
        );
        assert_eq!(
            UsmWeights::low_high_cfs(),
            UsmWeights::penalties(0.2, 0.2, 0.8)
        );
        assert_eq!(
            UsmWeights::high_high_cr(),
            UsmWeights::penalties(8.0, 2.0, 2.0)
        );
        assert_eq!(
            UsmWeights::high_high_cfm(),
            UsmWeights::penalties(2.0, 8.0, 2.0)
        );
        assert_eq!(
            UsmWeights::high_high_cfs(),
            UsmWeights::penalties(2.0, 2.0, 8.0)
        );
        for w in [UsmWeights::low_high_cr(), UsmWeights::high_high_cfs()] {
            assert!(!w.is_naive());
        }
    }

    #[test]
    fn ratios_sum_to_one_when_nonempty() {
        let mut c = OutcomeCounts::default();
        c.record(Outcome::Success);
        c.record(Outcome::Rejected);
        c.record(Outcome::Rejected);
        c.record(Outcome::DataStale);
        let sum: f64 = c.ratios().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(Outcome::Rejected), 2);
    }

    #[test]
    fn empty_counts_are_neutral() {
        let c = OutcomeCounts::default();
        assert_eq!(c.total(), 0);
        assert_eq!(c.average_usm(&UsmWeights::naive()), 0.0);
        assert_eq!(c.ratios(), [0.0; 4]);
    }

    #[test]
    fn window_take_resets() {
        let mut w = UsmWindow::new();
        assert!(w.is_empty());
        w.record(Outcome::Success);
        w.record(Outcome::DeadlineMiss);
        assert!(!w.is_empty());
        let counts = w.take();
        assert_eq!(counts.success, 1);
        assert_eq!(counts.deadline_miss, 1);
        assert!(w.is_empty());
        assert_eq!(w.counts().total(), 0);
    }

    #[test]
    fn merged_adds_counts() {
        let mut a = OutcomeCounts::default();
        a.record(Outcome::Success);
        let mut b = OutcomeCounts::default();
        b.record(Outcome::Rejected);
        b.record(Outcome::Success);
        let m = a.merged(&b);
        assert_eq!(m.success, 2);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.total(), 3);
    }
}
