//! Debug-mode runtime invariant checking (feature `validate`).
//!
//! The hot paths in this workspace maintain incremental structures — Fenwick
//! prefix sums, modulated update periods, lottery samplers — whose
//! correctness is an *invariant*, not a type. With the `validate` feature
//! enabled, those invariants are re-derived the naive way (O(N) recounts)
//! and compared against the fast-path state at coarse boundaries (control
//! ticks, batch signals). A mismatch aborts the run immediately, at the
//! boundary where the divergence first became observable, instead of
//! surfacing thousands of events later as a subtly wrong report.
//!
//! Conventions, enforced across core and sim:
//!
//! * **Check functions are always compiled.** Each checker is an ordinary
//!   `pub fn … -> Result<(), String>` (e.g.
//!   [`crate::lottery::WeightedSampler::check_consistency`]), so it stays
//!   type-checked and unit-testable in every build.
//! * **Invocations are feature-gated.** Call sites go through
//!   [`crate::validate_check!`], which expands to nothing without the feature —
//!   release builds carry zero overhead and the golden benchmark digest is
//!   bit-identical with the feature off.
//! * **Failures abort.** A failed check is a bug in the incremental
//!   structure, never a recoverable condition; the macro panics with the
//!   invariant's name and the checker's message.

/// Run an invariant check only when the `validate` feature is enabled.
///
/// `$check` must evaluate to `Result<(), String>`. With the feature off the
/// whole statement is compiled out; with it on, an `Err` aborts with the
/// invariant name and message:
///
/// ```text
/// validate[lottery-sampler]: fenwick prefix 3: tree 1.25, naive 2.25
/// ```
///
/// The `cfg` resolves at the *expansion* site, so dependent crates gate the
/// checks behind their own `validate` feature (which should forward to
/// `unit-core/validate`).
#[macro_export]
macro_rules! validate_check {
    ($name:literal, $check:expr) => {
        #[cfg(feature = "validate")]
        {
            if let Err(msg) = $check {
                // lint: allow(panic) — validate-mode invariant failures abort by design
                panic!("validate[{}]: {msg}", $name);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn ok_checks_pass_silently() {
        validate_check!("noop", Ok::<(), String>(()));
    }

    #[test]
    #[cfg(feature = "validate")]
    #[should_panic(expected = "validate[broken]: detail")]
    fn failed_checks_abort_with_name_and_message() {
        validate_check!("broken", Err::<(), String>("detail".into()));
    }

    #[test]
    #[cfg(not(feature = "validate"))]
    fn failed_checks_are_compiled_out_without_the_feature() {
        validate_check!("broken", Err::<(), String>("detail".into()));
    }
}
