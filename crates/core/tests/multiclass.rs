//! Tests for the multi-preference extension: per-class pricing in the USM
//! window, the controller, and the admission system-USM check.

use unit_core::admission::{AdmissionControl, AdmissionVerdict};
use unit_core::controller::{Lbc, LbcConfig};
use unit_core::policy::ControlSignal;
use unit_core::snapshot::{QueueEntryView, SystemSnapshot};
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QueryId, QuerySpec};
use unit_core::usm::{PreferenceSet, UsmWeights, UsmWindow};

fn traders() -> UsmWeights {
    UsmWeights::penalties(0.2, 0.2, 0.8) // staleness hurts
}

fn analysts() -> UsmWeights {
    UsmWeights::penalties(0.2, 0.8, 0.2) // misses hurt
}

#[test]
fn preference_set_lookup_and_fallback() {
    let prefs = PreferenceSet::with_classes(UsmWeights::naive(), vec![traders(), analysts()]);
    assert_eq!(prefs.get(0), traders());
    assert_eq!(prefs.get(1), analysts());
    // Unknown classes fall back to the default.
    assert_eq!(prefs.get(7), UsmWeights::naive());
    assert_eq!(prefs.n_classes(), 2);
    assert!(!prefs.is_naive());
    assert!(PreferenceSet::uniform(UsmWeights::naive()).is_naive());
    // The drop threshold uses the widest range across classes.
    let wide = PreferenceSet::with_classes(UsmWeights::naive(), vec![UsmWeights::high_high_cfm()]);
    assert_eq!(wide.max_range_span(), 9.0);
}

#[test]
fn window_prices_each_recording_with_its_own_weights() {
    let mut w = UsmWindow::new();
    w.record_with(Outcome::Success, &traders()); // +1
    w.record_with(Outcome::DataStale, &traders()); // -0.8
    w.record_with(Outcome::DataStale, &analysts()); // -0.2
    w.record_with(Outcome::DeadlineMiss, &analysts()); // -0.8
                                                       // USM = (1 - 0.8 - 0.2 - 0.8)/4 = -0.2
    assert!((w.average_usm() - (-0.2)).abs() < 1e-12);
    let [r, fm, fs] = w.cost_components();
    assert_eq!(r, 0.0);
    assert!((fm - 0.2).abs() < 1e-12); // 0.8 / 4
    assert!((fs - 0.25).abs() < 1e-12); // (0.8 + 0.2) / 4
                                        // Counts are class-blind.
    assert_eq!(w.counts().data_stale, 2);
}

#[test]
fn controller_chases_the_aggregate_class_priced_cost() {
    // Same outcome mix, two class assignments: when the DSFs belong to
    // traders (C_fs = 0.8) the dominant cost is staleness; when they belong
    // to analysts (C_fs = 0.2) the DMF cost dominates instead.
    let prefs = PreferenceSet::with_classes(UsmWeights::naive(), vec![traders(), analysts()]);

    let mut lbc = Lbc::with_preferences(prefs.clone(), LbcConfig::default(), 1);
    for _ in 0..10 {
        lbc.record_for_class(Outcome::DataStale, 0); // traders: 0.8 each
    }
    for _ in 0..8 {
        lbc.record_for_class(Outcome::DeadlineMiss, 1); // analysts: 0.8 each
    }
    for _ in 0..82 {
        lbc.record_for_class(Outcome::Success, 0);
    }
    // Fs = 8.0/100 > Fm = 6.4/100 -> upgrade updates.
    assert_eq!(
        lbc.activate(SimTime::from_secs(60), 0.5),
        vec![ControlSignal::UpgradeUpdates]
    );

    let mut lbc = Lbc::with_preferences(prefs, LbcConfig::default(), 1);
    for _ in 0..10 {
        lbc.record_for_class(Outcome::DataStale, 1); // analysts: 0.2 each
    }
    for _ in 0..8 {
        lbc.record_for_class(Outcome::DeadlineMiss, 1); // analysts: 0.8 each
    }
    for _ in 0..82 {
        lbc.record_for_class(Outcome::Success, 0);
    }
    // Fm = 6.4/100 > Fs = 2.0/100 -> degrade + tighten.
    assert_eq!(
        lbc.activate(SimTime::from_secs(60), 0.5),
        vec![
            ControlSignal::DegradeUpdates,
            ControlSignal::TightenAdmission
        ]
    );
}

#[test]
fn admission_prices_endangered_incumbents_with_their_own_class() {
    let ac = AdmissionControl::default();
    let weights_of = |class: u32| -> UsmWeights {
        match class {
            0 => traders(),  // C_fm = 0.2
            _ => analysts(), // C_fm = 0.8
        }
    };
    // Newcomer: cheap rejection (trader, C_r = 0.2), earlier deadline.
    let q = QuerySpec {
        id: QueryId(9),
        arrival: SimTime::ZERO,
        items: vec![DataId(0)],
        exec_time: SimDuration::from_secs(5),
        relative_deadline: SimDuration::from_secs(6),
        freshness_req: 0.9,
        pref_class: 0,
    };

    // Incumbent with 1s slack; endangered either way.
    let incumbent = |class: u32| SystemSnapshot {
        now: SimTime::ZERO,
        queries: vec![QueueEntryView {
            id: QueryId(1),
            deadline: SimTime::from_secs(12),
            remaining: SimDuration::from_secs(8),
            pref_class: class,
        }],
        update_backlog: SimDuration::ZERO,
        recent_utilization: 0.5,
    };

    // Endangering an analyst (C_fm 0.8 > C_r 0.2): reject.
    let sys = incumbent(1);
    let verdict = ac.evaluate_with(&q, &sys.view(), &traders(), &weights_of);
    assert!(matches!(verdict, AdmissionVerdict::EndangersSystem { .. }));

    // Endangering a fellow trader (C_fm 0.2 = C_r 0.2, not greater): admit.
    let sys = incumbent(0);
    let verdict = ac.evaluate_with(&q, &sys.view(), &traders(), &weights_of);
    assert_eq!(verdict, AdmissionVerdict::Admitted);
}

#[test]
fn single_class_paths_are_unchanged() {
    // The uniform PreferenceSet and the plain record()/evaluate() APIs must
    // behave exactly like the pre-extension code.
    let w = UsmWeights::low_high_cfm();
    let mut a = Lbc::new(w, LbcConfig::default(), 3);
    let mut b = Lbc::with_preferences(PreferenceSet::uniform(w), LbcConfig::default(), 3);
    for o in [
        Outcome::Success,
        Outcome::DeadlineMiss,
        Outcome::DeadlineMiss,
        Outcome::Rejected,
    ]
    .iter()
    .cycle()
    .take(40)
    {
        a.record_for_class(*o, 0);
        b.record(*o);
    }
    assert_eq!(
        a.activate(SimTime::from_secs(60), 0.5),
        b.activate(SimTime::from_secs(60), 0.5)
    );
}
