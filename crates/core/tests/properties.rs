//! Property-based tests (proptest) for unit-core's data structures and
//! invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use unit_core::controller::{Lbc, LbcConfig};
use unit_core::freshness::{lag_freshness, max_tolerable_udrop, FreshnessTable};
use unit_core::lottery::WeightedSampler;
use unit_core::modulation::{UpdateModulation, UpgradeRule};
use unit_core::tickets::TicketTable;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome};
use unit_core::usm::{OutcomeCounts, UsmWeights};

// ---------------------------------------------------------------------------
// Lottery / Fenwick sampler
// ---------------------------------------------------------------------------

proptest! {
    /// The sampler never returns an index with zero weight, never panics,
    /// and always returns in-range indices.
    #[test]
    fn lottery_only_draws_positive_weights(
        weights in prop::collection::vec(0.0f64..100.0, 1..200),
        seed in any::<u64>(),
    ) {
        let sampler = WeightedSampler::from_weights(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let total: f64 = weights.iter().sum();
        for _ in 0..32 {
            match sampler.sample(&mut rng) {
                Some(idx) => {
                    prop_assert!(idx < weights.len());
                    prop_assert!(weights[idx] > 0.0, "drew zero-weight index {idx}");
                }
                None => prop_assert!(total <= 0.0, "None despite positive total {total}"),
            }
        }
    }

    /// Point updates keep the tree-total consistent with the weight vector.
    #[test]
    fn lottery_total_matches_weights_after_updates(
        initial in prop::collection::vec(0.0f64..50.0, 1..100),
        updates in prop::collection::vec((0usize..100, 0.0f64..50.0), 0..50),
    ) {
        let mut sampler = WeightedSampler::from_weights(&initial);
        let mut shadow = initial.clone();
        for (idx, w) in updates {
            let idx = idx % shadow.len();
            sampler.set(idx, w);
            shadow[idx] = w;
        }
        let expected: f64 = shadow.iter().sum();
        prop_assert!((sampler.total() - expected).abs() < 1e-6);
        for (i, &w) in shadow.iter().enumerate() {
            prop_assert!((sampler.weight(i) - w).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// USM
// ---------------------------------------------------------------------------

fn weights_strategy() -> impl Strategy<Value = UsmWeights> {
    (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0)
        .prop_map(|(r, fm, fs)| UsmWeights::penalties(r, fm, fs))
}

fn outcome_strategy() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Success),
        Just(Outcome::Rejected),
        Just(Outcome::DeadlineMiss),
        Just(Outcome::DataStale),
    ]
}

proptest! {
    /// Average USM always lies in the theoretical range [−max penalty, G_s].
    #[test]
    fn usm_within_range(
        weights in weights_strategy(),
        outcomes in prop::collection::vec(outcome_strategy(), 0..500),
    ) {
        let mut counts = OutcomeCounts::default();
        for o in &outcomes {
            counts.record(*o);
        }
        let usm = counts.average_usm(&weights);
        let (lo, hi) = weights.range();
        prop_assert!(usm >= lo - 1e-9, "usm {usm} below {lo}");
        prop_assert!(usm <= hi + 1e-9, "usm {usm} above {hi}");
        // Ratios always partition.
        if !outcomes.is_empty() {
            let sum: f64 = counts.ratios().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
        // Eq. 5 decomposition holds exactly.
        let [r, fm, fs] = counts.cost_components(&weights);
        let s = counts.success_ratio() * weights.gain;
        prop_assert!((usm - (s - r - fm - fs)).abs() < 1e-9);
    }

    /// Merging count sets is the same as recording the concatenation.
    #[test]
    fn usm_counts_merge_is_additive(
        a in prop::collection::vec(outcome_strategy(), 0..100),
        b in prop::collection::vec(outcome_strategy(), 0..100),
    ) {
        let mut ca = OutcomeCounts::default();
        for o in &a { ca.record(*o); }
        let mut cb = OutcomeCounts::default();
        for o in &b { cb.record(*o); }
        let mut concat = OutcomeCounts::default();
        for o in a.iter().chain(&b) { concat.record(*o); }
        prop_assert_eq!(ca.merged(&cb), concat);
    }
}

// ---------------------------------------------------------------------------
// Freshness
// ---------------------------------------------------------------------------

proptest! {
    /// Item freshness is always in (0, 1], strictly decreasing in the
    /// backlog, and the tolerable-udrop bound is exact.
    #[test]
    fn lag_freshness_bounds(udrop in 0u64..10_000) {
        let f = lag_freshness(udrop);
        prop_assert!(f > 0.0 && f <= 1.0);
        if udrop > 0 {
            prop_assert!(f < lag_freshness(udrop - 1));
        }
    }

    #[test]
    fn tolerable_udrop_is_tight(req in 0.01f64..1.0) {
        let k = max_tolerable_udrop(req);
        prop_assert!(lag_freshness(k) >= req - 1e-12);
        prop_assert!(lag_freshness(k + 1) < req + 1e-12);
    }

    /// Arbitrary interleavings of arrivals and applications keep the table
    /// consistent: freshness is min-aggregated and arrival/application
    /// totals never disagree with the event stream.
    #[test]
    fn freshness_table_consistency(
        events in prop::collection::vec((0u32..16, any::<bool>()), 0..300),
    ) {
        let mut table = FreshnessTable::new(16);
        let mut arrivals = [0u64; 16];
        let mut applies = [0u64; 16];
        let mut pending = [0u64; 16];
        for (i, (item, is_apply)) in events.iter().enumerate() {
            let d = DataId(*item);
            let t = SimTime::from_secs(i as u64);
            if *is_apply {
                table.record_applied(d, t);
                applies[*item as usize] += 1;
                pending[*item as usize] = 0;
            } else {
                table.record_arrival(d, t);
                arrivals[*item as usize] += 1;
                pending[*item as usize] += 1;
            }
        }
        for i in 0..16u32 {
            prop_assert_eq!(table.udrop(DataId(i)), pending[i as usize]);
            prop_assert_eq!(table.arrived_histogram()[i as usize], arrivals[i as usize]);
            prop_assert_eq!(table.applied_histogram()[i as usize], applies[i as usize]);
        }
        // Strict-min aggregation: the read-set freshness equals the minimum
        // item freshness.
        let read_set: Vec<DataId> = (0..16).map(DataId).collect();
        let min_item = (0..16u32)
            .map(|i| table.item_freshness(DataId(i)))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((table.read_set_freshness(&read_set) - min_item).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Modulation
// ---------------------------------------------------------------------------

proptest! {
    /// Any sequence of degrade/upgrade operations keeps every period within
    /// [ideal, cap x ideal].
    #[test]
    fn modulation_periods_stay_bounded(
        periods in prop::collection::vec(10u64..10_000, 1..32),
        ops in prop::collection::vec((any::<bool>(), 0usize..32), 0..200),
        geometric in any::<bool>(),
    ) {
        let n = periods.len();
        let ideal: Vec<SimDuration> = periods.iter().map(|&s| SimDuration::from_secs(s)).collect();
        let rule = if geometric { UpgradeRule::Geometric } else { UpgradeRule::LinearIdealStep };
        let mut m = UpdateModulation::with_rule(ideal.clone(), 0.1, 0.5, 64.0, rule);
        for (degrade, idx) in ops {
            let d = DataId((idx % n) as u32);
            if degrade {
                m.degrade(d);
            } else {
                m.upgrade_all();
            }
        }
        for (i, &ideal_period) in ideal.iter().enumerate() {
            let d = DataId(i as u32);
            let cur = m.current_period(d);
            prop_assert!(cur >= ideal_period, "period below ideal");
            let factor = m.degradation_factor(d);
            prop_assert!((1.0..=64.5).contains(&factor), "factor {factor} out of bounds");
            prop_assert!(m.survival_fraction(d) > 0.0 && m.survival_fraction(d) <= 1.0);
        }
    }

    /// Credit-based subsampling sheds asymptotically 1 - 1/f of a long
    /// version stream.
    #[test]
    fn modulation_survival_matches_factor(hits in 0usize..40) {
        let mut m = UpdateModulation::new(vec![SimDuration::from_secs(10)], 0.1, 0.5);
        let d = DataId(0);
        for _ in 0..hits {
            m.degrade(d);
        }
        let n = 20_000u64;
        let mut applied = 0u64;
        for k in 0..n {
            if m.should_apply(d, SimTime::from_secs(k * 10)) {
                applied += 1;
            }
        }
        let expected = m.survival_fraction(d);
        let observed = applied as f64 / n as f64;
        prop_assert!(
            (observed - expected).abs() < 0.01,
            "factor {:.2}: observed {observed:.4}, expected {expected:.4}",
            m.degradation_factor(d)
        );
    }
}

// ---------------------------------------------------------------------------
// Tickets & controller
// ---------------------------------------------------------------------------

proptest! {
    /// Shifted weights are non-negative with at least one zero; clamped
    /// weights are non-negative and zero exactly where tickets <= 0.
    #[test]
    fn ticket_weight_transforms(
        events in prop::collection::vec((0usize..16, any::<bool>(), 0.01f64..2.0), 1..200),
    ) {
        let mut t = TicketTable::with_scale(16, 0.9, 1.0, 1.0);
        for (item, is_update, mag) in events {
            if is_update {
                t.on_update(item, mag);
            } else {
                t.on_query_access(item, mag);
            }
        }
        let shifted = t.shifted_weights();
        prop_assert!(shifted.iter().all(|&w| w >= 0.0));
        prop_assert!(shifted.iter().any(|&w| w.abs() < 1e-12), "min must map to zero");
        let clamped = t.clamped_weights();
        for (i, &w) in clamped.iter().enumerate() {
            prop_assert!(w >= 0.0);
            prop_assert_eq!(w > 0.0, t.raw(i) > 0.0);
        }
    }

    /// The controller emits only coherent signal sets: one of the four
    /// Figure 2 outcomes, never contradictory pairs.
    #[test]
    fn lbc_signal_sets_are_coherent(
        outcomes in prop::collection::vec(outcome_strategy(), 16..200),
        weights in weights_strategy(),
        utilization in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        use unit_core::policy::ControlSignal as S;
        let mut lbc = Lbc::new(weights, LbcConfig::default(), seed);
        for o in &outcomes {
            lbc.record(*o);
        }
        let signals = lbc.activate(SimTime::from_secs(100), utilization);
        let ok = signals.is_empty()
            || signals == vec![S::LoosenAdmission]
            || signals == vec![S::LoosenAdmission, S::DegradeUpdates]
            || signals == vec![S::DegradeUpdates, S::TightenAdmission]
            || signals == vec![S::UpgradeUpdates];
        prop_assert!(ok, "unexpected signal set {signals:?}");
        // Activation always drains the window.
        prop_assert_eq!(lbc.window_counts().total(), 0);
    }
}
