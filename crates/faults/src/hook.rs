//! The [`FaultHook`] adapter: plugs a validated [`FaultSchedule`] into a
//! [`unit_sim::Simulator`] via `Simulator::with_faults`.

use crate::schedule::{FaultMode, FaultSchedule, ScheduleError};
use unit_core::time::SimTime;
use unit_core::types::DataId;
use unit_sim::faults::{BackgroundLoad, FaultHook, HealthState, UpdateFault};

/// One shard's fault hook: a validated schedule plus the O(log F) lookups
/// the engine needs. Construction validates, so an installed hook can never
/// carry overlapping windows or unbounded instants.
#[derive(Debug, Clone)]
pub struct ShardFaults {
    schedule: FaultSchedule,
}

impl ShardFaults {
    /// Wrap a schedule, validating it first.
    pub fn new(schedule: FaultSchedule) -> Result<ShardFaults, ScheduleError> {
        schedule.validate()?;
        Ok(ShardFaults { schedule })
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl FaultHook for ShardFaults {
    /// O(W + B): every window boundary plus every burst instant.
    fn transition_times(&self) -> Vec<SimTime> {
        self.schedule.transition_instants()
    }

    /// O(log W) binary search over the crash windows.
    fn health(&self, now: SimTime) -> HealthState {
        self.schedule.health_at(now)
    }

    /// O(log F) binary search over the per-item fault intervals.
    fn update_fault(&self, item: DataId, now: SimTime) -> UpdateFault {
        self.schedule.update_fault_at(item, now)
    }

    /// O(log B + B_now) binary search plus the loads at exactly `now`.
    fn load_at(&self, now: SimTime) -> Vec<BackgroundLoad> {
        self.schedule.loads_at(now)
    }

    /// O(W): the starts of every [`FaultMode::CrashLoseState`] window.
    /// Already sorted — validation orders the windows — and each start is
    /// in [`FaultHook::transition_times`] via
    /// [`FaultSchedule::transition_instants`].
    fn lose_state_crashes(&self) -> Vec<SimTime> {
        self.schedule
            .crashes
            .iter()
            .filter(|w| w.mode == FaultMode::CrashLoseState)
            .map(|w| w.start)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CrashWindow, FaultMode};

    #[test]
    fn construction_validates() {
        assert!(ShardFaults::new(FaultSchedule::empty()).is_ok());
        let bad = FaultSchedule {
            crashes: vec![CrashWindow {
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(5),
                mode: FaultMode::Pause,
            }],
            ..FaultSchedule::default()
        };
        assert!(ShardFaults::new(bad).is_err());
    }

    #[test]
    fn hook_delegates_to_schedule() {
        let s = FaultSchedule {
            crashes: vec![CrashWindow {
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(20),
                mode: FaultMode::Pause,
            }],
            ..FaultSchedule::default()
        };
        let hook = ShardFaults::new(s).expect("valid schedule");
        assert_eq!(hook.transition_times().len(), 2);
        assert_eq!(
            hook.health(SimTime::from_secs(15)),
            HealthState::Down {
                until: SimTime::from_secs(20)
            }
        );
        assert_eq!(
            hook.update_fault(DataId(0), SimTime::from_secs(15)),
            UpdateFault::Apply
        );
        assert!(hook.load_at(SimTime::from_secs(15)).is_empty());
        assert!(hook.lose_state_crashes().is_empty(), "pause windows only");
    }

    #[test]
    fn lose_state_crashes_are_the_crash_mode_starts() {
        let s = FaultSchedule {
            crashes: vec![
                CrashWindow {
                    start: SimTime::from_secs(10),
                    end: SimTime::from_secs(11),
                    mode: FaultMode::CrashLoseState,
                },
                CrashWindow {
                    start: SimTime::from_secs(20),
                    end: SimTime::from_secs(30),
                    mode: FaultMode::Pause,
                },
                CrashWindow {
                    start: SimTime::from_secs(40),
                    end: SimTime::from_secs(41),
                    mode: FaultMode::CrashLoseState,
                },
            ],
            ..FaultSchedule::default()
        };
        let hook = ShardFaults::new(s).expect("valid schedule");
        assert_eq!(
            hook.lose_state_crashes(),
            vec![SimTime::from_secs(10), SimTime::from_secs(40)]
        );
        // Every crash instant must also be a transition instant, or the
        // engine would never wake to perform the recovery.
        let transitions = hook.transition_times();
        for t in hook.lose_state_crashes() {
            assert!(transitions.contains(&t), "crash at {t} not scheduled");
        }
        // A lose-state window never reads as unhealthy: recovery is
        // instantaneous in virtual time.
        assert_eq!(
            hook.health(SimTime::from_secs(10)),
            HealthState::Up,
            "lose-state crash instant stays Up"
        );
    }
}
