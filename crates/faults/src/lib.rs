//! # unit-faults — deterministic fault injection
//!
//! A seeded, fully declarative fault layer for the UNIT simulator (DESIGN.md
//! §4). Faults are expressed as **virtual-time data** fixed before the first
//! event fires:
//!
//! * **crash/recovery windows** ([`CrashWindow`]) — a shard is fully paused
//!   ([`FaultMode::Pause`]) or serves degraded reads from last-applied
//!   versions ([`FaultMode::DegradedReads`]),
//! * **update-stream faults** ([`StreamFault`]) — per-item intervals where
//!   arriving versions are dropped or delayed, feeding the real
//!   `Udrop`/freshness path,
//! * **load bursts** ([`Burst`]) — background update-class CPU demand
//!   injected at chosen instants.
//!
//! Schedules are generated from a seed through counter-mode SplitMix64
//! ([`unit_core::seed::split_seed`]; no wall clocks, no OS entropy — lint
//! rule D2), so a faulty run is a pure function of
//! `(trace, policy, config, seed)` and bit-reproducible. The empty schedule
//! is **provably inert**: installing it changes no engine behaviour, which
//! the fault differential suite pins digest-for-digest.
//!
//! [`ShardFaults`] adapts a validated [`FaultSchedule`] to the engine's
//! [`unit_sim::faults::FaultHook`]; the cluster dispatcher reads the same
//! schedules for failover routing (`unit_cluster::failover`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hook;
pub mod schedule;

pub use hook::ShardFaults;
pub use schedule::{
    Burst, CrashWindow, FaultConfig, FaultMode, FaultSchedule, ScheduleError, StreamFault,
    StreamFaultKind,
};

use unit_core::seed::split_seed;

/// Per-shard fault schedules for a whole cluster, derived from one run
/// seed: shard `i` gets `FaultSchedule::generate(split_seed(seed, i), cfg)`,
/// the same stream-splitting construction the cluster uses for policy
/// seeds.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// One schedule per shard, indexed by shard id.
    pub shards: Vec<FaultSchedule>,
}

impl FaultPlan {
    /// A plan with an empty (inert) schedule for every shard.
    pub fn quiet(n_shards: usize) -> FaultPlan {
        FaultPlan {
            shards: vec![FaultSchedule::empty(); n_shards],
        }
    }

    /// Generate one schedule per shard from the run seed.
    pub fn generate(seed: u64, n_shards: usize, cfg: &FaultConfig) -> FaultPlan {
        FaultPlan {
            shards: (0..n_shards)
                .map(|s| FaultSchedule::generate(split_seed(seed, s as u64), cfg))
                .collect(),
        }
    }

    /// True when every shard's schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FaultSchedule::is_empty)
    }

    /// Validate every shard schedule.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        for s in &self.shards {
            s.validate()?;
        }
        Ok(())
    }

    /// Validate every shard schedule against a workload horizon (the
    /// opt-in audit of [`FaultSchedule::validate_against_horizon`]):
    /// faults that start at or past the horizon never fire and are
    /// rejected as configuration mistakes.
    pub fn validate_against_horizon(
        &self,
        horizon: unit_core::time::SimTime,
    ) -> Result<(), ScheduleError> {
        for s in &self.shards {
            s.validate_against_horizon(horizon)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::SimDuration;

    #[test]
    fn quiet_plan_is_empty_and_valid() {
        let p = FaultPlan::quiet(4);
        assert_eq!(p.shards.len(), 4);
        assert!(p.is_empty());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn generated_plan_gives_each_shard_its_own_schedule() {
        let cfg = FaultConfig::quiet(SimDuration::from_secs(300), 100).with_crashes(
            0.15,
            SimDuration::from_secs(10),
            FaultMode::Pause,
        );
        let p = FaultPlan::generate(0x5EED_0001, 3, &cfg);
        assert!(p.validate().is_ok());
        assert!(!p.is_empty());
        assert_ne!(p.shards[0], p.shards[1], "shards get independent streams");
        assert_ne!(p.shards[1], p.shards[2]);
        let again = FaultPlan::generate(0x5EED_0001, 3, &cfg);
        assert_eq!(p, again, "plan is a pure function of the seed");
    }
}
