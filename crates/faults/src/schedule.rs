//! The fault schedule: a declarative, virtual-time description of every
//! failure a run will experience, fixed before the first event fires.
//!
//! All faults are known a priori — crash windows, per-item update-stream
//! faults, and load bursts are plain data, so a faulty run stays a pure
//! function of `(trace, policy, config, schedule)` and the cluster
//! dispatcher can make its failover decisions in its sequential prologue
//! without ever racing the shard engines.

use serde::{Deserialize, Serialize};
use unit_core::seed::split_seed;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::DataId;
use unit_sim::faults::{BackgroundLoad, HealthState, UpdateFault};

/// What a crash window does to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultMode {
    /// Full pause: nothing executes, queries stall (and typically miss
    /// their firm deadlines) until recovery.
    Pause,
    /// Graceful degradation: the read path stays up serving last-applied
    /// versions (honest DSF through `Udrop`), update applications drop.
    DegradedReads,
    /// Lose-state crash (DESIGN.md §4b): at `start` the shard discards all
    /// volatile state, restores its last control-boundary checkpoint, and
    /// replays the lost window in virtual time. The shard is never
    /// *observably* down — recovery is instantaneous in virtual time — so
    /// [`FaultSchedule::health_at`] reports `Up` throughout; the window's
    /// `end` exists only to satisfy the shared window invariants and its
    /// transition is a no-op.
    CrashLoseState,
}

/// One crash/recovery window: `[start, end)` in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// First down instant (inclusive).
    pub start: SimTime,
    /// Recovery instant (exclusive — the shard is up again at `end`).
    pub end: SimTime,
    /// Pause or degraded-reads semantics.
    pub mode: FaultMode,
}

impl CrashWindow {
    /// True when `t` lies inside the window (`start <= t < end`).
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// What a stream-fault interval does to arriving versions of its item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamFaultKind {
    /// Versions are observed (`Udrop` rises) but never applied.
    Drop,
    /// Applications are postponed by the given delay.
    Delay(SimDuration),
}

/// One per-item update-stream fault interval: versions of `item` arriving
/// in `[start, end)` are dropped or delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamFault {
    /// The item whose update stream is faulty.
    pub item: DataId,
    /// First affected instant (inclusive).
    pub start: SimTime,
    /// First unaffected instant (exclusive).
    pub end: SimTime,
    /// Drop or delay semantics.
    pub kind: StreamFaultKind,
}

/// One load burst: at instant `at`, `loads` background transactions of
/// `exec` CPU demand each are injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Burst {
    /// Injection instant.
    pub at: SimTime,
    /// Number of background transactions injected.
    pub loads: u32,
    /// CPU demand of each.
    pub exec: SimDuration,
}

/// Why a schedule failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A crash window with `start >= end` (empty or inverted).
    EmptyCrashWindow {
        /// The window's start.
        start: SimTime,
    },
    /// Crash windows not sorted by start, or overlapping.
    CrashWindowsOverlap {
        /// Start of the second window of the offending pair.
        start: SimTime,
    },
    /// A window or burst at (or beyond) [`SimTime::MAX`] — virtual-time
    /// arithmetic past it would overflow (`end + tick_period`, backoff
    /// sums), so "never recovers" must be expressed as an end beyond the
    /// last trace activity, not as infinity.
    UnboundedTime,
    /// A stream fault with `start >= end`.
    EmptyStreamFault {
        /// The offending item.
        item: DataId,
    },
    /// Two stream-fault intervals for the same item overlap (the per-item
    /// fault at an instant must be unique).
    StreamFaultsOverlap {
        /// The offending item.
        item: DataId,
    },
    /// Stream faults not sorted by `(item, start)` — required for the
    /// O(log F) interval lookup.
    StreamFaultsUnsorted,
    /// A burst with zero transactions or zero demand.
    DegenerateBurst {
        /// The burst's instant.
        at: SimTime,
    },
    /// Bursts not sorted by instant.
    BurstsUnsorted,
    /// A crash window starting at or beyond the declared horizon: it can
    /// never fire within the workload, so it is almost certainly a unit
    /// mistake (seconds vs. micros) rather than intent. Only reported by
    /// the opt-in [`FaultSchedule::validate_against_horizon`].
    CrashWindowPastHorizon {
        /// The unreachable window's start.
        start: SimTime,
    },
    /// A stream-fault interval starting at or beyond the declared horizon
    /// (opt-in horizon check only).
    StreamFaultPastHorizon {
        /// The item whose interval is unreachable.
        item: DataId,
    },
    /// A load burst at or beyond the declared horizon (opt-in horizon
    /// check only).
    BurstPastHorizon {
        /// The unreachable burst's instant.
        at: SimTime,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::EmptyCrashWindow { start } => {
                write!(f, "crash window at {start} is empty or inverted")
            }
            ScheduleError::CrashWindowsOverlap { start } => {
                write!(
                    f,
                    "crash window at {start} overlaps (or precedes) its predecessor"
                )
            }
            ScheduleError::UnboundedTime => {
                write!(
                    f,
                    "schedule instant at SimTime::MAX would overflow virtual-time arithmetic"
                )
            }
            ScheduleError::EmptyStreamFault { item } => {
                write!(f, "stream fault for item {} is empty or inverted", item.0)
            }
            ScheduleError::StreamFaultsOverlap { item } => {
                write!(f, "stream faults for item {} overlap", item.0)
            }
            ScheduleError::StreamFaultsUnsorted => {
                write!(f, "stream faults must be sorted by (item, start)")
            }
            ScheduleError::DegenerateBurst { at } => {
                write!(f, "burst at {at} has zero transactions or zero demand")
            }
            ScheduleError::BurstsUnsorted => write!(f, "bursts must be sorted by instant"),
            ScheduleError::CrashWindowPastHorizon { start } => {
                write!(f, "crash window at {start} starts at or past the horizon")
            }
            ScheduleError::StreamFaultPastHorizon { item } => {
                write!(
                    f,
                    "stream fault for item {} starts at or past the horizon",
                    item.0
                )
            }
            ScheduleError::BurstPastHorizon { at } => {
                write!(f, "burst at {at} lies at or past the horizon")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Deterministic generation parameters (see [`FaultSchedule::generate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Workload horizon the faults are placed within.
    pub horizon: SimDuration,
    /// Number of database items (stream faults pick targets below this).
    pub n_items: usize,
    /// Target fraction of the horizon spent inside crash windows, in
    /// `[0, 1)`. Zero (or negative) disables crash windows.
    pub crash_rate: f64,
    /// Mean crash-window length (actual lengths vary ±50%).
    pub mean_window: SimDuration,
    /// What crash windows do ([`FaultMode`]).
    pub mode: FaultMode,
    /// Number of per-item stream-fault intervals to scatter.
    pub stream_faults: usize,
    /// Length of each stream-fault interval.
    pub stream_fault_len: SimDuration,
    /// Delay applied by stream faults; [`SimDuration::ZERO`] makes them
    /// drop faults instead.
    pub stream_delay: SimDuration,
    /// Number of load bursts to scatter.
    pub bursts: usize,
    /// Background transactions per burst.
    pub burst_loads: u32,
    /// CPU demand of each background transaction.
    pub burst_exec: SimDuration,
}

impl FaultConfig {
    /// A config that generates nothing: the empty schedule.
    pub fn quiet(horizon: SimDuration, n_items: usize) -> FaultConfig {
        FaultConfig {
            horizon,
            n_items,
            crash_rate: 0.0,
            mean_window: SimDuration::ZERO,
            mode: FaultMode::Pause,
            stream_faults: 0,
            stream_fault_len: SimDuration::ZERO,
            stream_delay: SimDuration::ZERO,
            bursts: 0,
            burst_loads: 0,
            burst_exec: SimDuration::ZERO,
        }
    }

    /// Set the crash-window parameters.
    #[must_use]
    pub fn with_crashes(mut self, rate: f64, mean_window: SimDuration, mode: FaultMode) -> Self {
        self.crash_rate = rate;
        self.mean_window = mean_window;
        self.mode = mode;
        self
    }

    /// Set the stream-fault parameters (`delay == ZERO` means drop faults).
    #[must_use]
    pub fn with_stream_faults(
        mut self,
        count: usize,
        len: SimDuration,
        delay: SimDuration,
    ) -> Self {
        self.stream_faults = count;
        self.stream_fault_len = len;
        self.stream_delay = delay;
        self
    }

    /// Set the load-burst parameters.
    #[must_use]
    pub fn with_bursts(mut self, count: usize, loads: u32, exec: SimDuration) -> Self {
        self.bursts = count;
        self.burst_loads = loads;
        self.burst_exec = exec;
        self
    }
}

/// Counter-mode SplitMix64 draws: draw `k` is `split_seed(seed, k)`, so the
/// stream is a pure function of the seed with no mutable generator state to
/// misorder.
struct Draws {
    seed: u64,
    n: u64,
}

impl Draws {
    fn new(seed: u64) -> Draws {
        Draws { seed, n: 0 }
    }

    fn next(&mut self) -> u64 {
        let v = split_seed(self.seed, self.n);
        self.n += 1;
        v
    }

    /// A draw in `[0, n)`; 0 when `n == 0`. (Modulo bias is irrelevant at
    /// fault-schedule scales.)
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// A complete, declarative fault schedule for one shard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Crash/recovery windows, sorted by start, non-overlapping.
    pub crashes: Vec<CrashWindow>,
    /// Per-item update-stream fault intervals, sorted by `(item, start)`,
    /// non-overlapping per item.
    pub stream_faults: Vec<StreamFault>,
    /// Load bursts, sorted by instant.
    pub bursts: Vec<Burst>,
}

impl FaultSchedule {
    /// The empty schedule: provably inert (installing it changes nothing).
    pub fn empty() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// True when the schedule contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.stream_faults.is_empty() && self.bursts.is_empty()
    }

    /// Check the structural invariants every consumer relies on (sorted,
    /// non-overlapping, bounded, non-degenerate).
    pub fn validate(&self) -> Result<(), ScheduleError> {
        for w in &self.crashes {
            if w.start >= w.end {
                return Err(ScheduleError::EmptyCrashWindow { start: w.start });
            }
            if w.end == SimTime::MAX {
                return Err(ScheduleError::UnboundedTime);
            }
        }
        for pair in self.crashes.windows(2) {
            // lint: allow(D6) — windows(2) yields exactly-2-element slices
            if pair[1].start < pair[0].end {
                return Err(ScheduleError::CrashWindowsOverlap {
                    // lint: allow(D6) — same 2-element window as above
                    start: pair[1].start,
                });
            }
        }
        for s in &self.stream_faults {
            if s.start >= s.end {
                return Err(ScheduleError::EmptyStreamFault { item: s.item });
            }
            if s.end == SimTime::MAX {
                return Err(ScheduleError::UnboundedTime);
            }
        }
        for pair in self.stream_faults.windows(2) {
            // lint: allow(D6) — windows(2) yields exactly-2-element slices
            let (a, b) = (&pair[0], &pair[1]);
            if (b.item.0, b.start) < (a.item.0, a.start) {
                return Err(ScheduleError::StreamFaultsUnsorted);
            }
            if a.item == b.item && b.start < a.end {
                return Err(ScheduleError::StreamFaultsOverlap { item: a.item });
            }
        }
        for b in &self.bursts {
            if b.loads == 0 || b.exec.is_zero() {
                return Err(ScheduleError::DegenerateBurst { at: b.at });
            }
            if b.at == SimTime::MAX {
                return Err(ScheduleError::UnboundedTime);
            }
        }
        for pair in self.bursts.windows(2) {
            // lint: allow(D6) — windows(2) yields exactly-2-element slices
            if pair[1].at < pair[0].at {
                return Err(ScheduleError::BurstsUnsorted);
            }
        }
        Ok(())
    }

    /// [`FaultSchedule::validate`] plus the opt-in horizon audit: every
    /// crash window, stream-fault interval, and burst must *start* before
    /// `horizon` (ends may spill past it — "never recovers within the
    /// workload" is legitimate). A fault placed entirely past the horizon
    /// silently never fires, which in practice is a unit mistake; callers
    /// that know their workload horizon should prefer this check. O(F).
    pub fn validate_against_horizon(&self, horizon: SimTime) -> Result<(), ScheduleError> {
        self.validate()?;
        for w in &self.crashes {
            if w.start >= horizon {
                return Err(ScheduleError::CrashWindowPastHorizon { start: w.start });
            }
        }
        for s in &self.stream_faults {
            if s.start >= horizon {
                return Err(ScheduleError::StreamFaultPastHorizon { item: s.item });
            }
        }
        for b in &self.bursts {
            if b.at >= horizon {
                return Err(ScheduleError::BurstPastHorizon { at: b.at });
            }
        }
        Ok(())
    }

    /// Generate a schedule from a seed: crash windows covering roughly
    /// `crash_rate` of the horizon, `stream_faults` drop/delay intervals on
    /// random items, and `bursts` load bursts — all placed by counter-mode
    /// SplitMix64 draws, so the result is a pure function of
    /// `(seed, cfg)`. The output always passes [`FaultSchedule::validate`].
    pub fn generate(seed: u64, cfg: &FaultConfig) -> FaultSchedule {
        let mut d = Draws::new(seed);
        let horizon_end = SimTime::ZERO + cfg.horizon;

        // Crash windows: one per frame of length `mean_window / crash_rate`,
        // with ±50% length jitter and a random in-frame offset. Frame-local
        // placement keeps the windows sorted and non-overlapping by
        // construction.
        let mut crashes = Vec::new();
        if cfg.crash_rate > 0.0 && !cfg.mean_window.is_zero() {
            let rate = cfg.crash_rate.min(0.9);
            let frame = cfg.mean_window.scale(1.0 / rate);
            let mut frame_start = SimTime::ZERO;
            while frame_start < horizon_end {
                let mut len = cfg.mean_window / 2 + SimDuration(d.below(cfg.mean_window.0.max(1)));
                let cap = frame * 3 / 4;
                if len > cap {
                    len = cap;
                }
                if !len.is_zero() {
                    let slack = frame.saturating_sub(len);
                    let offset = SimDuration(d.below(slack.0.max(1)));
                    let start = frame_start + offset;
                    let mut end = start + len;
                    if end > horizon_end {
                        end = horizon_end;
                    }
                    if start < end && start < horizon_end {
                        crashes.push(CrashWindow {
                            start,
                            end,
                            mode: cfg.mode,
                        });
                    }
                }
                frame_start += frame;
            }
        }

        // Stream faults: scattered uniformly, then sorted by (item, start)
        // with per-item overlaps resolved by keeping the earlier interval.
        let mut stream_faults = Vec::new();
        if cfg.stream_faults > 0 && !cfg.stream_fault_len.is_zero() && cfg.n_items > 0 {
            let kind = if cfg.stream_delay.is_zero() {
                StreamFaultKind::Drop
            } else {
                StreamFaultKind::Delay(cfg.stream_delay)
            };
            let span = cfg.horizon.saturating_sub(cfg.stream_fault_len);
            for _ in 0..cfg.stream_faults {
                let item = DataId(d.below(cfg.n_items as u64) as u32);
                let start = SimTime(d.below(span.0.max(1)));
                stream_faults.push(StreamFault {
                    item,
                    start,
                    end: start + cfg.stream_fault_len,
                    kind,
                });
            }
            stream_faults.sort_by_key(|s| (s.item.0, s.start, s.end));
            let mut kept: Vec<StreamFault> = Vec::with_capacity(stream_faults.len());
            for s in stream_faults {
                let overlaps = kept
                    .last()
                    .is_some_and(|p| p.item == s.item && s.start < p.end);
                if !overlaps {
                    kept.push(s);
                }
            }
            stream_faults = kept;
        }

        // Bursts: scattered uniformly over the horizon, sorted by instant.
        let mut bursts = Vec::new();
        if cfg.bursts > 0 && cfg.burst_loads > 0 && !cfg.burst_exec.is_zero() {
            for _ in 0..cfg.bursts {
                bursts.push(Burst {
                    at: SimTime(d.below(cfg.horizon.0.max(1))),
                    loads: cfg.burst_loads,
                    exec: cfg.burst_exec,
                });
            }
            bursts.sort_by_key(|b| b.at);
        }

        let schedule = FaultSchedule {
            crashes,
            stream_faults,
            bursts,
        };
        debug_assert!(schedule.validate().is_ok(), "generator broke an invariant");
        schedule
    }

    /// Health of the shard at `now`: the crash window containing `now`, if
    /// any, mapped through its [`FaultMode`]. O(log W).
    pub fn health_at(&self, now: SimTime) -> HealthState {
        let i = self.crashes.partition_point(|w| w.start <= now);
        if i == 0 {
            return HealthState::Up;
        }
        // lint: allow(D6) — i > 0 was just checked, so i - 1 is in range
        let w = &self.crashes[i - 1];
        if w.contains(now) {
            match w.mode {
                FaultMode::Pause => HealthState::Down { until: w.end },
                FaultMode::DegradedReads => HealthState::Degraded { until: w.end },
                // Recovery is instantaneous in virtual time: the crash and
                // its checkpoint replay happen *at* `start`, so no instant
                // ever observes the shard unhealthy.
                FaultMode::CrashLoseState => HealthState::Up,
            }
        } else {
            HealthState::Up
        }
    }

    /// Fault applied to a version of `item` arriving at `now` (crash
    /// windows aside). O(log F).
    pub fn update_fault_at(&self, item: DataId, now: SimTime) -> UpdateFault {
        let i = self
            .stream_faults
            .partition_point(|s| (s.item.0, s.start) <= (item.0, now));
        if i == 0 {
            return UpdateFault::Apply;
        }
        // lint: allow(D6) — i > 0 was just checked, so i - 1 is in range
        let s = &self.stream_faults[i - 1];
        if s.item == item && s.start <= now && now < s.end {
            match s.kind {
                StreamFaultKind::Drop => UpdateFault::Drop,
                StreamFaultKind::Delay(d) => UpdateFault::Delay(d),
            }
        } else {
            UpdateFault::Apply
        }
    }

    /// Background loads injected at exactly `now`. O(log B + B_now).
    pub fn loads_at(&self, now: SimTime) -> Vec<BackgroundLoad> {
        let lo = self.bursts.partition_point(|b| b.at < now);
        let hi = self.bursts.partition_point(|b| b.at <= now);
        let mut loads = Vec::new();
        // lint: allow(D6) — partition_point gives lo <= hi <= len
        for b in &self.bursts[lo..hi] {
            for _ in 0..b.loads {
                loads.push(BackgroundLoad { exec: b.exec });
            }
        }
        loads
    }

    /// Every instant the engine must wake at: window boundaries and burst
    /// instants. O(W + B).
    ///
    /// A [`FaultMode::CrashLoseState`] window contributes only its start
    /// (the crash instant): recovery is instantaneous in virtual time, so
    /// waking the engine at the end would be a pure no-op — and a no-op
    /// event still perturbs `end_time` when it lands past the last real
    /// event of the run.
    pub fn transition_instants(&self) -> Vec<SimTime> {
        let mut times = Vec::with_capacity(2 * self.crashes.len() + self.bursts.len());
        for w in &self.crashes {
            times.push(w.start);
            if w.mode != FaultMode::CrashLoseState {
                times.push(w.end);
            }
        }
        for b in &self.bursts {
            times.push(b.at);
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn dur(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn window(start: u64, end: u64, mode: FaultMode) -> CrashWindow {
        CrashWindow {
            start: t(start),
            end: t(end),
            mode,
        }
    }

    #[test]
    fn empty_schedule_is_inert_data() {
        let s = FaultSchedule::empty();
        assert!(s.is_empty());
        assert!(s.validate().is_ok());
        assert!(s.transition_instants().is_empty());
        assert_eq!(s.health_at(t(5)), HealthState::Up);
        assert_eq!(s.update_fault_at(DataId(0), t(5)), UpdateFault::Apply);
        assert!(s.loads_at(t(5)).is_empty());
    }

    #[test]
    fn health_lookup_half_open_windows() {
        let s = FaultSchedule {
            crashes: vec![
                window(10, 20, FaultMode::Pause),
                window(30, 40, FaultMode::DegradedReads),
            ],
            ..FaultSchedule::default()
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.health_at(t(9)), HealthState::Up);
        assert_eq!(s.health_at(t(10)), HealthState::Down { until: t(20) });
        assert_eq!(s.health_at(t(19)), HealthState::Down { until: t(20) });
        assert_eq!(s.health_at(t(20)), HealthState::Up, "end is exclusive");
        assert_eq!(s.health_at(t(35)), HealthState::Degraded { until: t(40) });
        assert_eq!(s.health_at(t(40)), HealthState::Up);
    }

    #[test]
    fn stream_fault_lookup_per_item() {
        let s = FaultSchedule {
            stream_faults: vec![
                StreamFault {
                    item: DataId(1),
                    start: t(5),
                    end: t(10),
                    kind: StreamFaultKind::Drop,
                },
                StreamFault {
                    item: DataId(1),
                    start: t(20),
                    end: t(25),
                    kind: StreamFaultKind::Delay(dur(3)),
                },
                StreamFault {
                    item: DataId(2),
                    start: t(0),
                    end: t(100),
                    kind: StreamFaultKind::Drop,
                },
            ],
            ..FaultSchedule::default()
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.update_fault_at(DataId(1), t(7)), UpdateFault::Drop);
        assert_eq!(s.update_fault_at(DataId(1), t(10)), UpdateFault::Apply);
        assert_eq!(
            s.update_fault_at(DataId(1), t(22)),
            UpdateFault::Delay(dur(3))
        );
        assert_eq!(s.update_fault_at(DataId(2), t(7)), UpdateFault::Drop);
        assert_eq!(s.update_fault_at(DataId(0), t(7)), UpdateFault::Apply);
        assert_eq!(s.update_fault_at(DataId(3), t(7)), UpdateFault::Apply);
    }

    #[test]
    fn loads_at_matches_exact_instants_only() {
        let s = FaultSchedule {
            bursts: vec![
                Burst {
                    at: t(5),
                    loads: 2,
                    exec: dur(1),
                },
                Burst {
                    at: t(5),
                    loads: 1,
                    exec: dur(2),
                },
                Burst {
                    at: t(9),
                    loads: 1,
                    exec: dur(1),
                },
            ],
            ..FaultSchedule::default()
        };
        assert!(s.validate().is_ok());
        let loads = s.loads_at(t(5));
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[2].exec, dur(2));
        assert!(s.loads_at(t(6)).is_empty());
        assert_eq!(s.loads_at(t(9)).len(), 1);
    }

    #[test]
    fn validation_rejects_malformed_schedules() {
        let empty_win = FaultSchedule {
            crashes: vec![window(10, 10, FaultMode::Pause)],
            ..FaultSchedule::default()
        };
        assert!(matches!(
            empty_win.validate(),
            Err(ScheduleError::EmptyCrashWindow { .. })
        ));

        let overlap = FaultSchedule {
            crashes: vec![
                window(10, 30, FaultMode::Pause),
                window(20, 40, FaultMode::Pause),
            ],
            ..FaultSchedule::default()
        };
        assert!(matches!(
            overlap.validate(),
            Err(ScheduleError::CrashWindowsOverlap { .. })
        ));

        let unbounded = FaultSchedule {
            crashes: vec![CrashWindow {
                start: t(10),
                end: SimTime::MAX,
                mode: FaultMode::Pause,
            }],
            ..FaultSchedule::default()
        };
        assert_eq!(unbounded.validate(), Err(ScheduleError::UnboundedTime));

        let unsorted_streams = FaultSchedule {
            stream_faults: vec![
                StreamFault {
                    item: DataId(2),
                    start: t(0),
                    end: t(1),
                    kind: StreamFaultKind::Drop,
                },
                StreamFault {
                    item: DataId(1),
                    start: t(0),
                    end: t(1),
                    kind: StreamFaultKind::Drop,
                },
            ],
            ..FaultSchedule::default()
        };
        assert_eq!(
            unsorted_streams.validate(),
            Err(ScheduleError::StreamFaultsUnsorted)
        );

        let degenerate_burst = FaultSchedule {
            bursts: vec![Burst {
                at: t(1),
                loads: 0,
                exec: dur(1),
            }],
            ..FaultSchedule::default()
        };
        assert!(matches!(
            degenerate_burst.validate(),
            Err(ScheduleError::DegenerateBurst { .. })
        ));

        let unsorted_bursts = FaultSchedule {
            bursts: vec![
                Burst {
                    at: t(9),
                    loads: 1,
                    exec: dur(1),
                },
                Burst {
                    at: t(1),
                    loads: 1,
                    exec: dur(1),
                },
            ],
            ..FaultSchedule::default()
        };
        assert_eq!(
            unsorted_bursts.validate(),
            Err(ScheduleError::BurstsUnsorted)
        );
    }

    #[test]
    fn horizon_audit_rejects_unreachable_faults_exactly() {
        let horizon = t(100);

        // Starting before the horizon is fine even when the end spills past
        // it ("never recovers within the workload" is legitimate).
        let spilling = FaultSchedule {
            crashes: vec![window(90, 500, FaultMode::Pause)],
            ..FaultSchedule::default()
        };
        assert_eq!(spilling.validate_against_horizon(horizon), Ok(()));

        // Starting exactly at the horizon never fires: exact error.
        let at_edge = FaultSchedule {
            crashes: vec![window(100, 110, FaultMode::CrashLoseState)],
            ..FaultSchedule::default()
        };
        assert_eq!(
            at_edge.validate_against_horizon(horizon),
            Err(ScheduleError::CrashWindowPastHorizon { start: t(100) })
        );

        let late_stream = FaultSchedule {
            stream_faults: vec![StreamFault {
                item: DataId(7),
                start: t(120),
                end: t(130),
                kind: StreamFaultKind::Drop,
            }],
            ..FaultSchedule::default()
        };
        assert_eq!(
            late_stream.validate_against_horizon(horizon),
            Err(ScheduleError::StreamFaultPastHorizon { item: DataId(7) })
        );

        let late_burst = FaultSchedule {
            bursts: vec![Burst {
                at: t(250),
                loads: 1,
                exec: dur(1),
            }],
            ..FaultSchedule::default()
        };
        assert_eq!(
            late_burst.validate_against_horizon(horizon),
            Err(ScheduleError::BurstPastHorizon { at: t(250) })
        );

        // The horizon audit still runs the structural checks first: a
        // zero-length window is reported as empty, not as past-horizon.
        let empty_late = FaultSchedule {
            crashes: vec![window(150, 150, FaultMode::Pause)],
            ..FaultSchedule::default()
        };
        assert_eq!(
            empty_late.validate_against_horizon(horizon),
            Err(ScheduleError::EmptyCrashWindow { start: t(150) })
        );
    }

    #[test]
    fn lose_state_windows_read_as_up() {
        let s = FaultSchedule {
            crashes: vec![window(10, 20, FaultMode::CrashLoseState)],
            ..FaultSchedule::default()
        };
        assert!(s.validate().is_ok());
        // Recovery is instantaneous in virtual time: no instant inside the
        // window observes the shard unhealthy.
        for secs in [9, 10, 15, 19, 20] {
            assert_eq!(s.health_at(t(secs)), HealthState::Up, "at {secs}s");
        }
        // Only the start schedules a wakeup (the crash fires there); the
        // end would be a pure no-op and is not scheduled.
        assert_eq!(s.transition_instants(), vec![t(10)]);
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let cfg = FaultConfig::quiet(dur(300), 100)
            .with_crashes(0.1, dur(10), FaultMode::Pause)
            .with_stream_faults(20, dur(15), SimDuration::ZERO)
            .with_bursts(5, 3, dur(2));
        let a = FaultSchedule::generate(0x5EED, &cfg);
        let b = FaultSchedule::generate(0x5EED, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.validate().is_ok());
        assert!(!a.crashes.is_empty());
        assert!(!a.stream_faults.is_empty());
        assert_eq!(a.bursts.len(), 5);

        let c = FaultSchedule::generate(0x5EED + 1, &cfg);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn quiet_config_generates_the_empty_schedule() {
        let cfg = FaultConfig::quiet(dur(300), 100);
        assert!(FaultSchedule::generate(7, &cfg).is_empty());
    }

    #[test]
    fn generated_downtime_tracks_crash_rate() {
        let cfg = FaultConfig::quiet(dur(1000), 10).with_crashes(0.2, dur(10), FaultMode::Pause);
        let s = FaultSchedule::generate(42, &cfg);
        let down: u64 = s.crashes.iter().map(|w| (w.end - w.start).0).sum();
        let frac = down as f64 / dur(1000).0 as f64;
        assert!(
            (0.05..=0.5).contains(&frac),
            "downtime fraction {frac} far from the 0.2 target"
        );
    }
}
