//! The typed event taxonomy (DESIGN.md §6).
//!
//! Every event carries a virtual-time stamp and only *derived* information:
//! emitting an event never mutates simulation state, which is what makes an
//! installed observer `report_digest`-bit-neutral by construction. The
//! variants cover the paper's feedback loop end to end — admission verdicts,
//! `C_flex` steps with their TAC/LAC signal counts, per-item ticket mass at
//! modulation boundaries, queue depth / EST at control ticks, fault-window
//! transitions, and the cluster dispatcher's routing and health view.

use unit_core::admission::AdmissionVerdict;
use unit_core::policy::AdmissionDecision;
use unit_core::time::{SimDuration, SimTime};
use unit_core::types::{DataId, Outcome, QueryId};

/// Coarse server health phase, as seen by fault windows and the cluster
/// dispatcher (mirrors `unit_sim::HealthState` without the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Fully operational.
    Up,
    /// Serving reads from last-applied versions; update applications drop.
    Degraded,
    /// Crashed/paused: nothing executes.
    Down,
}

impl FaultPhase {
    /// Stable lowercase name used by the exporters. O(1).
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::Up => "up",
            FaultPhase::Degraded => "degraded",
            FaultPhase::Down => "down",
        }
    }
}

/// One observability event, stamped in virtual time.
///
/// Single-server events come straight from the engine; `Shard`-wrapped
/// events are a cluster replay of one shard engine's stream; the dispatcher
/// events (`DispatcherRoute`, `DispatcherReject`, `ShardHealth`) are
/// cluster-level and never wrapped.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// An admission decision for an arriving query. `verdict`/`c_flex` are
    /// present when the policy runs real admission control (UNIT), absent
    /// for open-loop baselines.
    Admission {
        /// Virtual arrival instant.
        time: SimTime,
        /// The arriving query.
        query: QueryId,
        /// The binary decision the engine acted on.
        decision: AdmissionDecision,
        /// The detailed verdict (reject reason with the failed inequality's
        /// numbers), when the policy exposes one.
        verdict: Option<AdmissionVerdict>,
        /// The admission lag ratio `C_flex` at decision time, when exposed.
        c_flex: Option<f64>,
    },
    /// The final outcome of one query (including rejections).
    QueryOutcome {
        /// Virtual instant the outcome was decided.
        time: SimTime,
        /// The decided query.
        query: QueryId,
        /// Its outcome.
        outcome: Outcome,
    },
    /// Queue depth and backlog sampled at a control tick, exactly as the
    /// policy's `on_tick` saw them (pre-tick state).
    ControlTick {
        /// Tick instant.
        time: SimTime,
        /// Admitted, unfinished queries (ready-queue depth).
        ready_queries: usize,
        /// Remaining admitted-query work — the EST numerator — in seconds.
        query_backlog_secs: f64,
        /// Outstanding update work in seconds.
        update_backlog_secs: f64,
        /// CPU utilization over the elapsed tick window.
        utilization: f64,
        /// Running average USM over all decided queries.
        usm: f64,
    },
    /// Controller state after a control tick, with the signal counts the
    /// tick emitted (all zero on a quiet tick).
    ControlStep {
        /// Tick instant.
        time: SimTime,
        /// `C_flex` after the tick's signals were applied.
        c_flex: f64,
        /// `TightenAdmission` signals this tick.
        tac: u32,
        /// `LoosenAdmission` signals this tick.
        lac: u32,
        /// `DegradeUpdates` signals this tick.
        degrade: u32,
        /// `UpgradeUpdates` signals this tick.
        upgrade: u32,
        /// Items whose update period is currently degraded.
        degraded_items: usize,
        /// Total lottery-ticket mass across all items.
        ticket_sum: f64,
    },
    /// One item's update period crossed a modulation boundary (a degrade
    /// stretch or an upgrade step), with its ticket mass at that instant.
    TicketMass {
        /// Instant of the modulation change (the enclosing tick).
        time: SimTime,
        /// The modulated item.
        item: DataId,
        /// The item's raw ticket value when it was picked.
        ticket: f64,
        /// Period before the change.
        old_period: SimDuration,
        /// Period after the change.
        new_period: SimDuration,
    },
    /// A fault window opened or closed on this server (engine-level).
    FaultWindow {
        /// Transition instant.
        time: SimTime,
        /// Health phase from this instant on.
        phase: FaultPhase,
        /// Scheduled end of the window (`None` when the phase is `Up`).
        until: Option<SimTime>,
    },
    /// A shard's health transitioned, as the cluster dispatcher sees the
    /// fault plan.
    ShardHealth {
        /// Transition instant.
        time: SimTime,
        /// The shard whose health changed.
        shard: u32,
        /// Health phase from this instant on.
        phase: FaultPhase,
        /// Scheduled end of the window (`None` when the phase is `Up`).
        until: Option<SimTime>,
    },
    /// The dispatcher routed a query to a shard (after `retries` backoff
    /// steps when failover is active).
    DispatcherRoute {
        /// Effective dispatch instant (> arrival after backoff).
        time: SimTime,
        /// The routed query.
        query: QueryId,
        /// Target shard.
        shard: u32,
        /// Backoff steps taken before routing.
        retries: u32,
    },
    /// The dispatcher rejected a query without routing it (failover budget
    /// or deadline exhausted); scored as a real `C_r` rejection.
    DispatcherReject {
        /// Instant the dispatcher gave up.
        time: SimTime,
        /// The rejected query.
        query: QueryId,
        /// Backoff steps taken before giving up.
        retries: u32,
    },
    /// A propagated version landed on a follower replica (replayed on the
    /// follower's replica pseudo-lane).
    ReplicaPropagate {
        /// Delivery instant at the follower.
        time: SimTime,
        /// The replicated item.
        item: DataId,
        /// The item's leader shard.
        leader: u32,
        /// The follower shard the version landed on.
        follower: u32,
        /// 1-based version ordinal among the item's emissions within the
        /// horizon.
        version: u64,
        /// Leader-side emission instant.
        emitted: SimTime,
    },
    /// The dispatcher routed a query to a shard serving part of its read
    /// set as a *follower*, under a claimed `Qu` staleness bound.
    ReplicaRoute {
        /// Effective dispatch instant.
        time: SimTime,
        /// The routed query.
        query: QueryId,
        /// Target shard.
        shard: u32,
        /// Read-set items the shard serves as a follower.
        follower_items: u32,
        /// Worst claimed in-transit version count among those items.
        claimed_transit: u64,
    },
    /// A crashed leader's freshest live follower took over an item at
    /// routing time (deterministic promotion).
    ReplicaPromote {
        /// Dispatch instant the promotion took effect.
        time: SimTime,
        /// The item whose leader was down.
        item: DataId,
        /// The paused leader shard.
        from: u32,
        /// The promoted follower shard.
        to: u32,
    },
    /// A deterministic crash-recovery checkpoint of the full engine state
    /// was taken at a control boundary (engine-level; only emitted while a
    /// lose-state crash schedule is armed).
    CheckpointTaken {
        /// Checkpoint instant (a control-tick boundary or run start).
        time: SimTime,
        /// Size of the serialized snapshot in bytes.
        bytes: u64,
    },
    /// A lose-state crash fired: the engine is discarding all volatile
    /// state and restoring from its last checkpoint, then replaying the
    /// lost window in virtual time.
    RestoreBegin {
        /// Crash instant (replay will catch back up to here).
        time: SimTime,
        /// Virtual instant of the checkpoint being restored.
        checkpoint: SimTime,
    },
    /// Replay of a crash-lost window completed: the engine's state has
    /// caught back up to the crash instant.
    ReplayComplete {
        /// The crash instant replay caught up to.
        time: SimTime,
        /// Virtual instant of the checkpoint the replay started from.
        checkpoint: SimTime,
    },
    /// A shard engine's event, replayed at cluster level: `seq` is the
    /// event's position in that shard's own stream, making the cluster
    /// merge key `(time, shard, seq)` unique and deterministic.
    Shard {
        /// Originating shard.
        shard: u32,
        /// Position in the shard's local event stream.
        seq: u64,
        /// The shard-local event.
        event: Box<ObsEvent>,
    },
}

impl ObsEvent {
    /// The event's virtual-time stamp (the wrapped event's for `Shard`).
    /// O(depth), effectively O(1).
    pub fn time(&self) -> SimTime {
        match self {
            ObsEvent::Admission { time, .. }
            | ObsEvent::QueryOutcome { time, .. }
            | ObsEvent::ControlTick { time, .. }
            | ObsEvent::ControlStep { time, .. }
            | ObsEvent::TicketMass { time, .. }
            | ObsEvent::FaultWindow { time, .. }
            | ObsEvent::ShardHealth { time, .. }
            | ObsEvent::DispatcherRoute { time, .. }
            | ObsEvent::DispatcherReject { time, .. }
            | ObsEvent::ReplicaPropagate { time, .. }
            | ObsEvent::ReplicaRoute { time, .. }
            | ObsEvent::ReplicaPromote { time, .. }
            | ObsEvent::CheckpointTaken { time, .. }
            | ObsEvent::RestoreBegin { time, .. }
            | ObsEvent::ReplayComplete { time, .. } => *time,
            ObsEvent::Shard { event, .. } => event.time(),
        }
    }

    /// Stable lowercase kind tag used by the exporters. O(1).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Admission { .. } => "admission",
            ObsEvent::QueryOutcome { .. } => "outcome",
            ObsEvent::ControlTick { .. } => "control_tick",
            ObsEvent::ControlStep { .. } => "control_step",
            ObsEvent::TicketMass { .. } => "ticket_mass",
            ObsEvent::FaultWindow { .. } => "fault_window",
            ObsEvent::ShardHealth { .. } => "shard_health",
            ObsEvent::DispatcherRoute { .. } => "route",
            ObsEvent::DispatcherReject { .. } => "dispatcher_reject",
            ObsEvent::ReplicaPropagate { .. } => "replica_propagate",
            ObsEvent::ReplicaRoute { .. } => "replica_route",
            ObsEvent::ReplicaPromote { .. } => "replica_promote",
            ObsEvent::CheckpointTaken { .. } => "checkpoint_taken",
            ObsEvent::RestoreBegin { .. } => "restore_begin",
            ObsEvent::ReplayComplete { .. } => "replay_complete",
            ObsEvent::Shard { .. } => "shard",
        }
    }
}

/// Stable lowercase name of an outcome (exporters and rendering). O(1).
pub fn outcome_name(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Success => "success",
        Outcome::DeadlineMiss => "deadline_miss",
        Outcome::DataStale => "data_stale",
        Outcome::Rejected => "rejected",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_wrapping_preserves_the_inner_timestamp() {
        let inner = ObsEvent::QueryOutcome {
            time: SimTime::from_secs(7),
            query: QueryId(3),
            outcome: Outcome::Success,
        };
        let wrapped = ObsEvent::Shard {
            shard: 2,
            seq: 0,
            event: Box::new(inner.clone()),
        };
        assert_eq!(wrapped.time(), SimTime::from_secs(7));
        assert_eq!(inner.kind(), "outcome");
        assert_eq!(wrapped.kind(), "shard");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultPhase::Down.name(), "down");
        assert_eq!(outcome_name(Outcome::DataStale), "data_stale");
    }
}
