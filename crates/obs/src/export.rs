//! JSONL and CSV trace exporters.
//!
//! Both formats are hand-rendered with deterministic formatting: times and
//! periods are raw virtual-time ticks (integers), floats use Rust's
//! shortest-roundtrip `Display`, and event order is preserved — the same
//! event stream always produces byte-identical output (the golden-file
//! tests pin this). JSONL is the full-fidelity format (one object per
//! line, nested for `Shard`-wrapped events); CSV is a flattened convenience
//! with one row per event and a fixed column set.
//!
//! The bench harness writes both under `results/` via `--trace-out`.

use crate::event::{outcome_name, ObsEvent};
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use unit_core::admission::AdmissionVerdict;
use unit_core::time::SimTime;

/// A float as a JSON value: shortest-roundtrip for finite values, `null`
/// for the non-finite ones JSON cannot carry. O(1).
fn jf(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        if !s.contains('.') && !s.contains('e') {
            // Keep a float-typed column float-looking ("1.0", not "1").
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// An optional instant as a JSON value. O(1).
fn jt(t: Option<SimTime>) -> String {
    match t {
        Some(t) => t.0.to_string(),
        None => "null".to_string(),
    }
}

fn verdict_json(v: &AdmissionVerdict) -> String {
    match v {
        AdmissionVerdict::Admitted => r#"{"type":"admitted"}"#.to_string(),
        AdmissionVerdict::NotPromising {
            projected_secs,
            deadline_secs,
        } => format!(
            r#"{{"type":"not_promising","projected_secs":{},"deadline_secs":{}}}"#,
            jf(*projected_secs),
            jf(*deadline_secs)
        ),
        AdmissionVerdict::EndangersSystem {
            endangered_cost,
            rejection_cost,
        } => format!(
            r#"{{"type":"endangers_system","endangered_cost":{},"rejection_cost":{}}}"#,
            jf(*endangered_cost),
            jf(*rejection_cost)
        ),
    }
}

/// One event as a single-line JSON object. O(size of the event).
pub fn event_to_json(ev: &ObsEvent) -> String {
    match ev {
        ObsEvent::Admission {
            time,
            query,
            decision,
            verdict,
            c_flex,
        } => {
            let decision = if decision.is_admit() {
                "admit"
            } else {
                "reject"
            };
            let verdict = verdict
                .as_ref()
                .map_or_else(|| "null".to_string(), verdict_json);
            let c_flex = c_flex.map_or_else(|| "null".to_string(), jf);
            format!(
                r#"{{"kind":"admission","t":{},"query":{},"decision":"{decision}","verdict":{verdict},"c_flex":{c_flex}}}"#,
                time.0, query.0
            )
        }
        ObsEvent::QueryOutcome {
            time,
            query,
            outcome,
        } => format!(
            r#"{{"kind":"outcome","t":{},"query":{},"outcome":"{}"}}"#,
            time.0,
            query.0,
            outcome_name(*outcome)
        ),
        ObsEvent::ControlTick {
            time,
            ready_queries,
            query_backlog_secs,
            update_backlog_secs,
            utilization,
            usm,
        } => format!(
            r#"{{"kind":"control_tick","t":{},"ready_queries":{ready_queries},"query_backlog_secs":{},"update_backlog_secs":{},"utilization":{},"usm":{}}}"#,
            time.0,
            jf(*query_backlog_secs),
            jf(*update_backlog_secs),
            jf(*utilization),
            jf(*usm)
        ),
        ObsEvent::ControlStep {
            time,
            c_flex,
            tac,
            lac,
            degrade,
            upgrade,
            degraded_items,
            ticket_sum,
        } => format!(
            r#"{{"kind":"control_step","t":{},"c_flex":{},"tac":{tac},"lac":{lac},"degrade":{degrade},"upgrade":{upgrade},"degraded_items":{degraded_items},"ticket_sum":{}}}"#,
            time.0,
            jf(*c_flex),
            jf(*ticket_sum)
        ),
        ObsEvent::TicketMass {
            time,
            item,
            ticket,
            old_period,
            new_period,
        } => format!(
            r#"{{"kind":"ticket_mass","t":{},"item":{},"ticket":{},"old_period":{},"new_period":{}}}"#,
            time.0,
            item.0,
            jf(*ticket),
            old_period.0,
            new_period.0
        ),
        ObsEvent::FaultWindow { time, phase, until } => format!(
            r#"{{"kind":"fault_window","t":{},"phase":"{}","until":{}}}"#,
            time.0,
            phase.name(),
            jt(*until)
        ),
        ObsEvent::ShardHealth {
            time,
            shard,
            phase,
            until,
        } => format!(
            r#"{{"kind":"shard_health","t":{},"shard":{shard},"phase":"{}","until":{}}}"#,
            time.0,
            phase.name(),
            jt(*until)
        ),
        ObsEvent::DispatcherRoute {
            time,
            query,
            shard,
            retries,
        } => format!(
            r#"{{"kind":"route","t":{},"query":{},"shard":{shard},"retries":{retries}}}"#,
            time.0, query.0
        ),
        ObsEvent::DispatcherReject {
            time,
            query,
            retries,
        } => format!(
            r#"{{"kind":"dispatcher_reject","t":{},"query":{},"retries":{retries}}}"#,
            time.0, query.0
        ),
        ObsEvent::ReplicaPropagate {
            time,
            item,
            leader,
            follower,
            version,
            emitted,
        } => format!(
            r#"{{"kind":"replica_propagate","t":{},"item":{},"leader":{leader},"follower":{follower},"version":{version},"emitted":{}}}"#,
            time.0, item.0, emitted.0
        ),
        ObsEvent::ReplicaRoute {
            time,
            query,
            shard,
            follower_items,
            claimed_transit,
        } => format!(
            r#"{{"kind":"replica_route","t":{},"query":{},"shard":{shard},"follower_items":{follower_items},"claimed_transit":{claimed_transit}}}"#,
            time.0, query.0
        ),
        ObsEvent::ReplicaPromote {
            time,
            item,
            from,
            to,
        } => format!(
            r#"{{"kind":"replica_promote","t":{},"item":{},"from":{from},"to":{to}}}"#,
            time.0, item.0
        ),
        ObsEvent::CheckpointTaken { time, bytes } => format!(
            r#"{{"kind":"checkpoint_taken","t":{},"bytes":{bytes}}}"#,
            time.0
        ),
        ObsEvent::RestoreBegin { time, checkpoint } => format!(
            r#"{{"kind":"restore_begin","t":{},"checkpoint":{}}}"#,
            time.0, checkpoint.0
        ),
        ObsEvent::ReplayComplete { time, checkpoint } => format!(
            r#"{{"kind":"replay_complete","t":{},"checkpoint":{}}}"#,
            time.0, checkpoint.0
        ),
        ObsEvent::Shard { shard, seq, event } => format!(
            r#"{{"kind":"shard","shard":{shard},"seq":{seq},"event":{}}}"#,
            event_to_json(event)
        ),
    }
}

/// Render an event stream as JSONL (one JSON object per line, trailing
/// newline). O(total event size).
pub fn to_jsonl(events: &[ObsEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// The CSV header matching [`to_csv`]'s fixed column set.
pub const CSV_HEADER: &str = "kind,time,shard,seq,query,item,detail,v0,v1,v2,v3,v4,v5";

/// One CSV row: the flattened fields of one event. `Shard`-wrapped events
/// flatten to the inner event's row with `shard`/`seq` filled. Per-kind
/// column meanings are documented in DESIGN.md §6. O(size of the event).
fn event_to_csv_row(ev: &ObsEvent, shard: Option<u32>, seq: Option<u64>) -> String {
    // Column scratch: detail plus up to six values; unused cells stay empty.
    let mut detail = String::new();
    let mut query = String::new();
    let mut item = String::new();
    let mut v0 = String::new();
    let mut v1 = String::new();
    let mut v2 = String::new();
    let mut v3 = String::new();
    let mut v4 = String::new();
    let mut v5 = String::new();
    let mut shard_col = shard.map_or_else(String::new, |s| s.to_string());
    match ev {
        ObsEvent::Admission {
            query: q,
            decision,
            verdict,
            c_flex,
            ..
        } => {
            query = q.0.to_string();
            detail = match verdict {
                Some(AdmissionVerdict::Admitted) => "admitted".to_string(),
                Some(AdmissionVerdict::NotPromising {
                    projected_secs,
                    deadline_secs,
                }) => {
                    v0 = jf(*projected_secs);
                    v1 = jf(*deadline_secs);
                    "not_promising".to_string()
                }
                Some(AdmissionVerdict::EndangersSystem {
                    endangered_cost,
                    rejection_cost,
                }) => {
                    v0 = jf(*endangered_cost);
                    v1 = jf(*rejection_cost);
                    "endangers_system".to_string()
                }
                None => if decision.is_admit() {
                    "admit"
                } else {
                    "reject"
                }
                .to_string(),
            };
            if let Some(c) = c_flex {
                v2 = jf(*c);
            }
        }
        ObsEvent::QueryOutcome {
            query: q, outcome, ..
        } => {
            query = q.0.to_string();
            detail = outcome_name(*outcome).to_string();
        }
        ObsEvent::ControlTick {
            ready_queries,
            query_backlog_secs,
            update_backlog_secs,
            utilization,
            usm,
            ..
        } => {
            v0 = ready_queries.to_string();
            v1 = jf(*query_backlog_secs);
            v2 = jf(*update_backlog_secs);
            v3 = jf(*utilization);
            v4 = jf(*usm);
        }
        ObsEvent::ControlStep {
            c_flex,
            tac,
            lac,
            degrade,
            upgrade,
            degraded_items,
            ticket_sum,
            ..
        } => {
            detail = degraded_items.to_string();
            v0 = jf(*c_flex);
            v1 = tac.to_string();
            v2 = lac.to_string();
            v3 = degrade.to_string();
            v4 = upgrade.to_string();
            v5 = jf(*ticket_sum);
        }
        ObsEvent::TicketMass {
            item: d,
            ticket,
            old_period,
            new_period,
            ..
        } => {
            item = d.0.to_string();
            v0 = jf(*ticket);
            v1 = old_period.0.to_string();
            v2 = new_period.0.to_string();
        }
        ObsEvent::FaultWindow { phase, until, .. } => {
            detail = phase.name().to_string();
            if let Some(u) = until {
                v0 = u.0.to_string();
            }
        }
        ObsEvent::ShardHealth {
            shard: s,
            phase,
            until,
            ..
        } => {
            shard_col = s.to_string();
            detail = phase.name().to_string();
            if let Some(u) = until {
                v0 = u.0.to_string();
            }
        }
        ObsEvent::DispatcherRoute {
            query: q,
            shard: s,
            retries,
            ..
        } => {
            query = q.0.to_string();
            shard_col = s.to_string();
            detail = "routed".to_string();
            v0 = retries.to_string();
        }
        ObsEvent::DispatcherReject {
            query: q, retries, ..
        } => {
            query = q.0.to_string();
            detail = "rejected".to_string();
            v0 = retries.to_string();
        }
        ObsEvent::ReplicaPropagate {
            item: d,
            leader,
            follower,
            version,
            emitted,
            ..
        } => {
            item = d.0.to_string();
            shard_col = follower.to_string();
            detail = "propagated".to_string();
            v0 = leader.to_string();
            v1 = version.to_string();
            v2 = emitted.0.to_string();
        }
        ObsEvent::ReplicaRoute {
            query: q,
            shard: s,
            follower_items,
            claimed_transit,
            ..
        } => {
            query = q.0.to_string();
            shard_col = s.to_string();
            detail = "follower_read".to_string();
            v0 = follower_items.to_string();
            v1 = claimed_transit.to_string();
        }
        ObsEvent::ReplicaPromote {
            item: d, from, to, ..
        } => {
            item = d.0.to_string();
            shard_col = to.to_string();
            detail = "promoted".to_string();
            v0 = from.to_string();
        }
        ObsEvent::CheckpointTaken { bytes, .. } => {
            detail = "checkpoint".to_string();
            v0 = bytes.to_string();
        }
        ObsEvent::RestoreBegin { checkpoint, .. } => {
            detail = "restore".to_string();
            v0 = checkpoint.0.to_string();
        }
        ObsEvent::ReplayComplete { checkpoint, .. } => {
            detail = "replayed".to_string();
            v0 = checkpoint.0.to_string();
        }
        ObsEvent::Shard {
            shard: s,
            seq: n,
            event,
        } => {
            return event_to_csv_row(event, Some(*s), Some(*n));
        }
    }
    let seq_col = seq.map_or_else(String::new, |s| s.to_string());
    format!(
        "{},{},{shard_col},{seq_col},{query},{item},{detail},{},{},{},{},{},{}",
        ev.kind(),
        ev.time().0,
        v0,
        v1,
        v2,
        v3,
        v4,
        v5
    )
}

/// Render an event stream as CSV with [`CSV_HEADER`] as the first line.
/// O(total event size).
pub fn to_csv(events: &[ObsEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for ev in events {
        let _ = writeln!(out, "{}", event_to_csv_row(ev, None, None));
    }
    out
}

/// Write the stream as JSONL at `path`, creating parent directories
/// (conventionally under `results/`).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_jsonl(path: impl AsRef<Path>, events: &[ObsEvent]) -> io::Result<()> {
    write_text(path.as_ref(), &to_jsonl(events))
}

/// Write the stream as CSV at `path`, creating parent directories
/// (conventionally under `results/`).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_csv(path: impl AsRef<Path>, events: &[ObsEvent]) -> io::Result<()> {
    write_text(path.as_ref(), &to_csv(events))
}

fn write_text(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultPhase;
    use unit_core::policy::AdmissionDecision;
    use unit_core::time::SimDuration;
    use unit_core::types::{DataId, Outcome, QueryId};

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::Admission {
                time: SimTime::from_secs(1),
                query: QueryId(10),
                decision: AdmissionDecision::Reject,
                verdict: Some(AdmissionVerdict::NotPromising {
                    projected_secs: 12.5,
                    deadline_secs: 8.0,
                }),
                c_flex: Some(1.1),
            },
            ObsEvent::ControlTick {
                time: SimTime::from_secs(2),
                ready_queries: 3,
                query_backlog_secs: 4.5,
                update_backlog_secs: 0.25,
                utilization: 0.75,
                usm: 0.5,
            },
            ObsEvent::TicketMass {
                time: SimTime::from_secs(2),
                item: DataId(7),
                ticket: 2.5,
                old_period: SimDuration::from_secs(10),
                new_period: SimDuration::from_secs(11),
            },
            ObsEvent::Shard {
                shard: 1,
                seq: 4,
                event: Box::new(ObsEvent::QueryOutcome {
                    time: SimTime::from_secs(3),
                    query: QueryId(10),
                    outcome: Outcome::DeadlineMiss,
                }),
            },
            ObsEvent::ShardHealth {
                time: SimTime::from_secs(4),
                shard: 0,
                phase: FaultPhase::Down,
                until: Some(SimTime::from_secs(9)),
            },
        ]
    }

    #[test]
    fn jsonl_golden() {
        let expected = concat!(
            r#"{"kind":"admission","t":1000000,"query":10,"decision":"reject","verdict":{"type":"not_promising","projected_secs":12.5,"deadline_secs":8.0},"c_flex":1.1}"#,
            "\n",
            r#"{"kind":"control_tick","t":2000000,"ready_queries":3,"query_backlog_secs":4.5,"update_backlog_secs":0.25,"utilization":0.75,"usm":0.5}"#,
            "\n",
            r#"{"kind":"ticket_mass","t":2000000,"item":7,"ticket":2.5,"old_period":10000000,"new_period":11000000}"#,
            "\n",
            r#"{"kind":"shard","shard":1,"seq":4,"event":{"kind":"outcome","t":3000000,"query":10,"outcome":"deadline_miss"}}"#,
            "\n",
            r#"{"kind":"shard_health","t":4000000,"shard":0,"phase":"down","until":9000000}"#,
            "\n",
        );
        assert_eq!(to_jsonl(&sample_events()), expected);
    }

    #[test]
    fn csv_golden() {
        let expected = concat!(
            "kind,time,shard,seq,query,item,detail,v0,v1,v2,v3,v4,v5\n",
            "admission,1000000,,,10,,not_promising,12.5,8.0,1.1,,,\n",
            "control_tick,2000000,,,,,,3,4.5,0.25,0.75,0.5,\n",
            "ticket_mass,2000000,,,,7,,2.5,10000000,11000000,,,\n",
            "outcome,3000000,1,4,10,,deadline_miss,,,,,,\n",
            "shard_health,4000000,0,,,,down,9000000,,,,,\n",
        );
        assert_eq!(to_csv(&sample_events()), expected);
    }

    fn replication_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::ReplicaRoute {
                time: SimTime::from_secs(5),
                query: QueryId(2),
                shard: 3,
                follower_items: 2,
                claimed_transit: 4,
            },
            ObsEvent::ReplicaPromote {
                time: SimTime::from_secs(5),
                item: DataId(1),
                from: 0,
                to: 2,
            },
            ObsEvent::Shard {
                shard: 6,
                seq: 0,
                event: Box::new(ObsEvent::ReplicaPropagate {
                    time: SimTime::from_secs(6),
                    item: DataId(1),
                    leader: 0,
                    follower: 2,
                    version: 3,
                    emitted: SimTime::from_secs(4),
                }),
            },
        ]
    }

    #[test]
    fn replication_jsonl_golden() {
        let expected = concat!(
            r#"{"kind":"replica_route","t":5000000,"query":2,"shard":3,"follower_items":2,"claimed_transit":4}"#,
            "\n",
            r#"{"kind":"replica_promote","t":5000000,"item":1,"from":0,"to":2}"#,
            "\n",
            r#"{"kind":"shard","shard":6,"seq":0,"event":{"kind":"replica_propagate","t":6000000,"item":1,"leader":0,"follower":2,"version":3,"emitted":4000000}}"#,
            "\n",
        );
        assert_eq!(to_jsonl(&replication_events()), expected);
    }

    #[test]
    fn replication_csv_golden() {
        let expected = concat!(
            "kind,time,shard,seq,query,item,detail,v0,v1,v2,v3,v4,v5\n",
            "replica_route,5000000,3,,2,,follower_read,2,4,,,,\n",
            "replica_promote,5000000,2,,,1,promoted,0,,,,,\n",
            "replica_propagate,6000000,2,0,,1,propagated,0,3,4000000,,,\n",
        );
        assert_eq!(to_csv(&replication_events()), expected);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(jf(f64::NAN), "null");
        assert_eq!(jf(f64::INFINITY), "null");
        assert_eq!(jf(1.0), "1.0");
        assert_eq!(jf(0.125), "0.125");
    }

    #[test]
    fn files_land_under_the_requested_directory() {
        let dir = std::env::temp_dir().join("unit_obs_export_test");
        let path = dir.join("nested").join("trace.jsonl");
        write_jsonl(&path, &sample_events()).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, to_jsonl(&sample_events()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
