//! Deterministic observability for the UNIT reproduction.
//!
//! This crate defines the typed event taxonomy ([`ObsEvent`]), the
//! [`Observer`] sink trait with its two shipped implementations
//! ([`NullObserver`], [`RingRecorder`]), and deterministic JSONL/CSV
//! exporters ([`export`]). Events are stamped in virtual time and carry
//! only derived information, so observation never perturbs a run: with a
//! recorder installed every `report_digest` is bit-identical to the
//! observer-free run, and with no observer installed the emission sites
//! compile down to one `Option` branch each.
//!
//! The engine (`unit_sim`) and the cluster dispatcher (`unit_cluster`) are
//! the emitters; this crate deliberately depends only on `unit_core` so it
//! can sit between the core types and every layer that observes them.
//! DESIGN.md §6 documents the model; CONTRIBUTING.md explains how to add
//! an event or metric.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod export;
pub mod recorder;

pub use event::{outcome_name, FaultPhase, ObsEvent};
pub use export::{event_to_json, to_csv, to_jsonl, write_csv, write_jsonl, CSV_HEADER};
pub use recorder::{NullObserver, Observer, RingRecorder};
