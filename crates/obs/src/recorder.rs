//! The [`Observer`] trait and its two shipped implementations: the no-op
//! [`NullObserver`] (compiles to nothing on the engine's hot path) and the
//! bounded [`RingRecorder`].

use crate::event::ObsEvent;
use std::collections::VecDeque;

/// A sink for [`ObsEvent`]s.
///
/// Observers are passive: they receive borrowed events and must not feed
/// anything back into the simulation. The engine only *constructs* events
/// when an observer is installed, so an absent observer costs one branch on
/// an `Option` per emission site, and an installed one is
/// `report_digest`-bit-neutral by construction (the differential suite in
/// `crates/obs/tests` pins both properties).
pub trait Observer {
    /// Receive one event. Called in virtual-time order within a run;
    /// implementations should be O(1) amortized — the engine calls this on
    /// its hot path.
    fn on_event(&mut self, event: &ObsEvent);
}

/// The observer that ignores everything. Behaviourally identical to
/// installing no observer at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    /// O(1): discards the event.
    #[inline]
    fn on_event(&mut self, _event: &ObsEvent) {}
}

/// A bounded ring-buffer recorder: keeps the **latest** `capacity` events,
/// counting (not storing) everything older that was displaced.
///
/// The bound makes long runs safe to observe — memory stays O(capacity)
/// regardless of horizon — while [`RingRecorder::unbounded`] serves the
/// exporters and the cluster merge, which need complete streams.
#[derive(Debug, Clone, Default)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder keeping the latest `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingRecorder {
        assert!(capacity > 0, "a recorder needs room for at least one event");
        RingRecorder {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A recorder that never drops (capacity `usize::MAX`). Used where the
    /// full stream is required: exporters, cluster replay.
    pub fn unbounded() -> RingRecorder {
        RingRecorder {
            capacity: usize::MAX,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The configured capacity. O(1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held, oldest first. O(1).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was displaced).
    /// O(1).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events displaced by the capacity bound. O(1).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate the held events, oldest first. O(1) to create.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter()
    }

    /// Consume the recorder, returning the held events oldest-first. O(n).
    pub fn into_events(self) -> Vec<ObsEvent> {
        self.events.into_iter().collect()
    }
}

impl Observer for RingRecorder {
    /// O(1) amortized: one clone into the ring, displacing the oldest
    /// event when full.
    fn on_event(&mut self, event: &ObsEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::time::SimTime;
    use unit_core::types::{Outcome, QueryId};

    fn outcome_at(sec: u64) -> ObsEvent {
        ObsEvent::QueryOutcome {
            time: SimTime::from_secs(sec),
            query: QueryId(sec),
            outcome: Outcome::Success,
        }
    }

    #[test]
    fn ring_keeps_the_latest_events_and_counts_drops() {
        let mut rec = RingRecorder::new(3);
        for s in 0..5 {
            rec.on_event(&outcome_at(s));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let times: Vec<u64> = rec.events().map(|e| e.time().0).collect();
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(2).0,
                SimTime::from_secs(3).0,
                SimTime::from_secs(4).0
            ]
        );
    }

    #[test]
    fn unbounded_recorder_never_drops() {
        let mut rec = RingRecorder::unbounded();
        for s in 0..1000 {
            rec.on_event(&outcome_at(s));
        }
        assert_eq!(rec.len(), 1000);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.into_events().len(), 1000);
    }

    #[test]
    #[should_panic(expected = "room for at least one event")]
    fn zero_capacity_is_rejected() {
        let _ = RingRecorder::new(0);
    }

    #[test]
    fn null_observer_is_inert() {
        let mut n = NullObserver;
        n.on_event(&outcome_at(1));
    }
}
