//! Property tests for [`RingRecorder`]'s drop-oldest accounting: however
//! events arrive, `len + dropped` equals the feed length, the survivors
//! are exactly the newest `len` events in arrival order, and per-lane
//! subsequences of interleaved `Shard` events survive as suffixes.

use proptest::prelude::*;
use unit_core::time::SimTime;
use unit_obs::{ObsEvent, Observer, RingRecorder};

/// A distinguishable event: the payload doubles as identity.
fn tagged(i: u64) -> ObsEvent {
    ObsEvent::CheckpointTaken {
        time: SimTime(i),
        bytes: i,
    }
}

fn tag_of(e: &ObsEvent) -> u64 {
    match e {
        ObsEvent::CheckpointTaken { bytes, .. } => *bytes,
        other => panic!("unexpected event {other:?}"),
    }
}

proptest! {
    /// `len == min(fed, capacity)`, `dropped == fed - len`, and the
    /// survivors are exactly the newest `len` events in arrival order.
    #[test]
    fn drop_oldest_accounting_is_exact(fed in 0usize..400, capacity in 1usize..64) {
        let mut rec = RingRecorder::new(capacity);
        prop_assert_eq!(rec.capacity(), capacity);
        for i in 0..fed {
            rec.on_event(&tagged(i as u64));
        }
        let kept = fed.min(capacity);
        prop_assert_eq!(rec.len(), kept);
        prop_assert_eq!(rec.is_empty(), fed == 0);
        prop_assert_eq!(rec.dropped(), (fed - kept) as u64);
        let tags: Vec<u64> = rec.events().map(tag_of).collect();
        let expected: Vec<u64> = ((fed - kept) as u64..fed as u64).collect();
        prop_assert_eq!(tags, expected, "survivors must be the newest, in order");
    }

    /// The degenerate ring: capacity 1 always holds exactly the newest
    /// event, and every earlier event counts as dropped.
    #[test]
    fn capacity_one_keeps_only_the_newest(fed in 1usize..200) {
        let mut rec = RingRecorder::new(1);
        for i in 0..fed {
            rec.on_event(&tagged(i as u64));
            // Invariant holds after *every* push, not just at the end.
            prop_assert_eq!(rec.len(), 1);
            prop_assert_eq!(rec.dropped(), i as u64);
            prop_assert_eq!(rec.events().map(tag_of).next(), Some(i as u64));
        }
        let events = rec.into_events();
        prop_assert_eq!(events.len(), 1);
        prop_assert_eq!(events.first().map(tag_of), Some(fed as u64 - 1));
    }

    /// Interleaved `Shard` lanes: drop-oldest is global, so each lane's
    /// surviving events are a *suffix* of that lane's own sequence, in
    /// order — the ring never punches holes in a lane.
    #[test]
    fn interleaved_shard_lanes_survive_as_suffixes(
        lanes in prop::collection::vec(0u32..4, 1..300),
        capacity in 1usize..48,
    ) {
        let mut per_lane_seq = [0u64; 4];
        let mut rec = RingRecorder::new(capacity);
        let mut full: Vec<(u32, u64)> = Vec::new();
        for &lane in &lanes {
            let seq = per_lane_seq[lane as usize];
            per_lane_seq[lane as usize] += 1;
            full.push((lane, seq));
            rec.on_event(&ObsEvent::Shard {
                shard: lane,
                seq,
                event: Box::new(tagged(seq)),
            });
        }
        prop_assert_eq!(rec.len() as u64 + rec.dropped(), lanes.len() as u64);
        let survivors: Vec<(u32, u64)> = rec
            .events()
            .map(|e| match e {
                ObsEvent::Shard { shard, seq, .. } => (*shard, *seq),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        // Global suffix...
        let start = full.len() - survivors.len();
        prop_assert_eq!(&survivors[..], &full[start..], "global order preserved");
        // ...hence a per-lane suffix: the surviving seqs of each lane run
        // contiguously up to that lane's final seq.
        for lane in 0..4u32 {
            let seqs: Vec<u64> = survivors
                .iter()
                .filter(|&&(l, _)| l == lane)
                .map(|&(_, s)| s)
                .collect();
            let total = per_lane_seq[lane as usize];
            let expected: Vec<u64> = (total - seqs.len() as u64..total).collect();
            prop_assert_eq!(seqs, expected, "lane {} lost interior events", lane);
        }
    }
}

/// The unbounded recorder never drops, whatever arrives.
#[test]
fn unbounded_recorder_never_drops() {
    let mut rec = RingRecorder::unbounded();
    for i in 0..10_000u64 {
        rec.on_event(&tagged(i));
    }
    assert_eq!(rec.len(), 10_000);
    assert_eq!(rec.dropped(), 0);
    assert_eq!(rec.into_events().len(), 10_000);
}
