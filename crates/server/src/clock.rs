//! # `WallClock` — the production timeline
//!
//! The one place in the workspace allowed to read the machine clock
//! (xtask rule D2 exempts only this crate and the bench harness). A
//! [`WallClock`] anchors a process-start [`Instant`] and reports elapsed
//! wall time as [`SimTime`] µs ticks, so the serving runtime consumes
//! wall and virtual time through the same [`Clock`] trait and every
//! admission deadline, modulation period, and outcome stamp is a tick
//! count on *some* timeline — which one is a constructor argument.

use std::time::Instant;
use unit_core::clock::Clock;
use unit_core::time::SimTime;

/// Wall time as µs ticks since the clock's construction.
///
/// Monotone by construction: [`Instant`] is monotonic, and the epoch is
/// fixed at construction. Cheap enough for the per-request hot path (one
/// `Instant::now` and a subtraction).
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose tick 0 is "now".
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_starts_near_zero() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        // Two immediate reads land well within a second of the epoch.
        assert!(a < SimTime::from_secs(1));
    }

    #[test]
    fn wall_clock_advances() {
        let c = WallClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now() > a);
    }
}
