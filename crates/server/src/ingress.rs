//! # Ingress requests
//!
//! The unit of work flowing through the server's MPSC channel: a query
//! spec whose timing fields have been re-stamped onto the serving
//! clock's timeline (see `crate::server` module docs), plus the two
//! instants the runtime decided from them.

use unit_core::time::SimTime;
use unit_core::types::QuerySpec;

/// One in-flight query request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The query, with `arrival`, `relative_deadline`, and `exec_time`
    /// re-stamped onto the serving clock's timeline.
    pub spec: QuerySpec,
    /// Clock tick at which the request entered the ingress channel.
    pub enqueue: SimTime,
    /// Absolute firm deadline on the serving clock
    /// (`enqueue + scaled relative deadline`).
    pub deadline: SimTime,
}
