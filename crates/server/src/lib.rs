//! # unit-server — the live serving runtime
//!
//! Everything before this crate runs UNIT on a *virtual* timeline: the
//! deterministic engine replays traces tick by tick. This crate runs the
//! same policy layer against a real clock: thread-per-core workers drain
//! an in-process MPSC ingress channel, admission and update-frequency
//! modulation fire against wall-clock deadlines, and every state
//! mutation goes through the storage-agnostic
//! [`unit_core::txn::TransactionManager`] — here backed by
//! [`MemBackend`], a sharded in-memory versioned KV (the oracle path
//! uses `unit_sim::SimBackend` over the engine's freshness table).
//!
//! The deterministic engine stays in the loop as the **differential
//! oracle** ([`mod@replay`]): the same trace is fed through the same
//! bounded channel into the engine under a
//! [`VirtualClock`](unit_core::clock::VirtualClock), which must be
//! *bit-identical* to a direct simulation ([`unit_sim::report_digest`]),
//! while a wall-clock serve must agree with the oracle's outcome
//! distribution within a stated tolerance ([`outcome_agreement`]).
//!
//! Clock discipline: this crate is the only place in the workspace
//! allowed to read the machine clock (`cargo xtask analyze` rule D2
//! enforces the boundary); everything else consumes time through the
//! [`unit_core::clock::Clock`] trait.
//!
//! An optional TCP line-protocol frontend (the `socket` module) lives
//! behind the `socket` feature; the bench and tests inject requests
//! directly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod ingress;
pub mod mem;
pub mod replay;
pub mod server;
#[cfg(feature = "socket")]
pub mod socket;

pub use clock::WallClock;
pub use ingress::Request;
pub use mem::MemBackend;
pub use replay::{outcome_agreement, replay, Agreement};
pub use server::{serve, ServeConfig, ServeReport};

/// Convenient glob-import: the serving entry points plus the core
/// transaction/clock vocabulary they are used with.
///
/// ```
/// use unit_server::prelude::*;
/// ```
pub mod prelude {
    pub use crate::clock::WallClock;
    pub use crate::ingress::Request;
    pub use crate::mem::MemBackend;
    pub use crate::replay::{outcome_agreement, replay, Agreement};
    pub use crate::server::{serve, ServeConfig, ServeReport};
    pub use unit_core::clock::{Clock, VirtualClock};
    pub use unit_core::txn::{CommitSummary, ReadVersion, TransactionManager, TxnError, TxnToken};
}
