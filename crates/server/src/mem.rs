//! # `MemBackend` — the live server's sharded in-memory store
//!
//! The production-path [`TransactionManager`]: data items striped over
//! lock-sharded slabs (per-item applied-version counter + pending-lag
//! counter, the live analogue of the engine's `FreshnessTable` row), and
//! open transactions striped over a second set of lock shards keyed by
//! token. All methods take `&self` and the backend is `Send + Sync`, so
//! one instance serves every worker thread.
//!
//! Concurrency model: an operation holds at most one lock at a time
//! (item shard *or* txn stripe, never both), so there is no lock-order
//! cycle to deadlock on. Applies are last-writer-wins — installing an
//! update always installs the *latest* source version (the paper's
//! semantics), so two racing applies both clear the lag and the version
//! counter advances twice; no [`TxnError::Conflict`] arises from the
//! shipped workloads. The variant stays in the error enum for backends
//! with real write-write races.
//!
//! Determinism: under a single driving thread the backend is a pure
//! function of the call sequence (token allocation is a fetch-add from
//! zero), which is what the replay differential leans on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use unit_core::time::SimTime;
use unit_core::txn::{CommitSummary, ReadVersion, TransactionManager, TxnError, TxnToken};
use unit_core::types::{DataId, TxnClass};

/// One item's live state: how many source versions have been installed,
/// and how many arrived-but-uninstalled versions are pending (`Udrop`).
#[derive(Debug, Default, Clone, Copy)]
struct ItemState {
    version: u64,
    pending: u64,
}

/// One open transaction's scratch state.
#[derive(Debug)]
struct OpenTxn {
    token: TxnToken,
    reads: u32,
    staged_applies: Vec<DataId>,
    min_freshness: f64,
}

/// Lock a mutex, tolerating poisoning: a worker that panicked while
/// holding the lock leaves per-item counters in a consistent state (every
/// critical section is a few integer writes), so the data is still usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sharded in-memory KV with per-item versions behind the
/// storage-agnostic transaction trait. See the module docs.
pub struct MemBackend {
    /// Item shards; item `i` lives in shard `i % n_shards` at local
    /// index `i / n_shards`.
    shards: Vec<Mutex<Vec<ItemState>>>,
    /// Open-transaction stripes keyed by `token % stripes`.
    txns: Vec<Mutex<Vec<OpenTxn>>>,
    next_token: AtomicU64,
    closed: AtomicBool,
    n_items: usize,
}

impl MemBackend {
    /// Default stripe count for the open-transaction table.
    const TXN_STRIPES: usize = 16;

    /// A backend over `n_items` fully-fresh items, sharded `n_shards`
    /// ways (clamped to at least 1).
    #[must_use]
    pub fn new(n_items: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let mut shards = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            // Shard s holds items s, s+n_shards, s+2*n_shards, ...
            let len = n_items.saturating_sub(s).div_ceil(n_shards);
            shards.push(Mutex::new(vec![ItemState::default(); len]));
        }
        MemBackend {
            shards,
            txns: (0..Self::TXN_STRIPES)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            next_token: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            n_items,
        }
    }

    /// Stop accepting new transactions: every later [`MemBackend::begin`]
    /// returns [`TxnError::Closed`]. Already-open transactions may still
    /// commit or abort (drain-then-stop shutdown).
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    fn check_item(&self, item: DataId) -> Result<(), TxnError> {
        if item.index() >= self.n_items {
            return Err(TxnError::UnknownItem(item));
        }
        Ok(())
    }

    /// Run `f` on `item`'s state slot. The item must be range-checked.
    fn with_item<R>(&self, item: DataId, f: impl FnOnce(&mut ItemState) -> R) -> R {
        let shard_idx = item.index() % self.shards.len();
        let local = item.index() / self.shards.len();
        // lint: allow(D6) — shard_idx is a modulo of the shard count
        let mut shard = lock(&self.shards[shard_idx]);
        // lint: allow(D6) — callers range-check the item, and the stripe layout puts every id < n_items inside its shard's vector
        f(&mut shard[local])
    }

    fn stripe(&self, txn: TxnToken) -> &Mutex<Vec<OpenTxn>> {
        // lint: allow(D6) — the index is a modulo of the stripe count
        &self.txns[(txn.raw() as usize) % self.txns.len()]
    }

    /// Run `f` on the open transaction named by `txn`.
    fn with_txn<R>(&self, txn: TxnToken, f: impl FnOnce(&mut OpenTxn) -> R) -> Result<R, TxnError> {
        let mut stripe = lock(self.stripe(txn));
        match stripe.iter_mut().find(|t| t.token == txn) {
            Some(open) => Ok(f(open)),
            None => Err(TxnError::UnknownTxn(txn)),
        }
    }

    /// Remove and return the open transaction named by `txn`.
    fn take_txn(&self, txn: TxnToken) -> Result<OpenTxn, TxnError> {
        let mut stripe = lock(self.stripe(txn));
        match stripe.iter().position(|t| t.token == txn) {
            Some(idx) => Ok(stripe.swap_remove(idx)),
            None => Err(TxnError::UnknownTxn(txn)),
        }
    }
}

impl TransactionManager for MemBackend {
    fn begin(&self, _class: TxnClass, _now: SimTime) -> Result<TxnToken, TxnError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TxnError::Closed);
        }
        let token = TxnToken::from_raw(self.next_token.fetch_add(1, Ordering::SeqCst));
        lock(self.stripe(token)).push(OpenTxn {
            token,
            reads: 0,
            staged_applies: Vec::new(),
            min_freshness: 1.0,
        });
        Ok(token)
    }

    fn read(&self, txn: TxnToken, item: DataId, _now: SimTime) -> Result<ReadVersion, TxnError> {
        self.check_item(item)?;
        // Probe the txn first so a bad token is reported even when the
        // read itself would have succeeded.
        self.with_txn(txn, |_| ())?;
        let (version, udrop) = self.with_item(item, |s| (s.version, s.pending));
        let rv = ReadVersion {
            item,
            version,
            udrop,
        };
        let freshness = rv.freshness();
        self.with_txn(txn, |open| {
            open.reads += 1;
            open.min_freshness = open.min_freshness.min(freshness);
        })?;
        Ok(rv)
    }

    fn apply(&self, txn: TxnToken, item: DataId, _now: SimTime) -> Result<(), TxnError> {
        self.check_item(item)?;
        self.with_txn(txn, |open| open.staged_applies.push(item))
    }

    fn commit(&self, txn: TxnToken, now: SimTime) -> Result<CommitSummary, TxnError> {
        let open = self.take_txn(txn)?;
        for item in &open.staged_applies {
            // Installing the latest version clears the item's whole
            // accumulated lag — the paper's (and SimBackend's) semantics.
            self.with_item(*item, |s| {
                s.pending = 0;
                s.version += 1;
            });
        }
        Ok(CommitSummary {
            txn: open.token,
            commit_time: now,
            reads: open.reads,
            writes: open.staged_applies.len() as u32,
            min_freshness: open.min_freshness,
        })
    }

    fn abort(&self, txn: TxnToken) -> Result<(), TxnError> {
        self.take_txn(txn).map(|_| ())
    }

    fn observe_version(&self, item: DataId, _now: SimTime) -> Result<(), TxnError> {
        self.check_item(item)?;
        self.with_item(item, |s| s.pending += 1);
        Ok(())
    }

    fn udrop(&self, item: DataId) -> Result<u64, TxnError> {
        self.check_item(item)?;
        Ok(self.with_item(item, |s| s.pending))
    }

    fn n_items(&self) -> usize {
        self.n_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T0: SimTime = SimTime(0);

    #[test]
    fn matches_sim_backend_semantics() {
        let be = MemBackend::new(5, 2);
        let item = DataId(3);
        be.observe_version(item, T0).unwrap();
        be.observe_version(item, T0).unwrap();
        assert_eq!(be.udrop(item).unwrap(), 2);

        let q = be.begin(TxnClass::Query, T0).unwrap();
        let rv = be.read(q, item, T0).unwrap();
        assert_eq!((rv.version, rv.udrop), (0, 2));
        let s = be.commit(q, T0).unwrap();
        assert!((s.min_freshness - 1.0 / 3.0).abs() < 1e-12);

        let u = be.begin(TxnClass::Update, T0).unwrap();
        be.apply(u, item, T0).unwrap();
        assert_eq!(be.commit(u, T0).unwrap().writes, 1);
        assert_eq!(be.udrop(item).unwrap(), 0, "install clears the whole lag");
        let q2 = be.begin(TxnClass::Query, T0).unwrap();
        assert_eq!(be.read(q2, item, T0).unwrap().version, 1);
        be.abort(q2).unwrap();
    }

    #[test]
    fn typed_errors_and_close() {
        let be = MemBackend::new(2, 1);
        let q = be.begin(TxnClass::Query, T0).unwrap();
        assert_eq!(
            be.read(q, DataId(9), T0).unwrap_err(),
            TxnError::UnknownItem(DataId(9))
        );
        let stale = TxnToken::from_raw(777);
        assert_eq!(be.abort(stale).unwrap_err(), TxnError::UnknownTxn(stale));
        be.close();
        assert_eq!(be.begin(TxnClass::Query, T0).unwrap_err(), TxnError::Closed);
        // Open transactions still drain after close.
        be.commit(q, T0).unwrap();
    }

    #[test]
    fn concurrent_applies_conserve_version_count() {
        let be = Arc::new(MemBackend::new(8, 4));
        let threads = 4;
        let per_thread = 100;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let be = Arc::clone(&be);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let item = DataId(i % 8);
                    be.observe_version(item, T0).unwrap();
                    let u = be.begin(TxnClass::Update, T0).unwrap();
                    be.apply(u, item, T0).unwrap();
                    be.commit(u, T0).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every commit bumped exactly one version; all lag was cleared by
        // the final installs.
        let total: u64 = (0..8)
            .map(|i| {
                let q = be.begin(TxnClass::Query, T0).unwrap();
                let v = be.read(q, DataId(i), T0).unwrap().version;
                be.abort(q).unwrap();
                v
            })
            .sum();
        assert_eq!(total, threads as u64 * per_thread as u64);
    }
}
