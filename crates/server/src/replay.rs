//! # Replay mode — the deterministic engine as differential oracle
//!
//! Feeds a trace's queries through the *same shape of pipeline* the live
//! server uses — a producer thread pushing specs into a bounded MPSC
//! channel, a consumer draining it — but the consumer is the
//! deterministic [`unit_sim::Simulator`] (via [`SimRun::streaming`]) and the
//! timeline is a [`VirtualClock`] advanced to each arrival as it crosses
//! the channel. Because the engine's streamed pipeline is proven
//! bit-identical to its materialized one (`Simulator::run_streamed`'s
//! theorem, pinned by the sim test-suite), a replay through a real
//! channel inherits bit-identity: `report_digest(replay) ==
//! report_digest(Simulator::run)` for the same trace/policy/config.
//!
//! That gives the live server a two-sided oracle:
//!
//! * **exact** — under a `VirtualClock`, replay must be *bit-identical*
//!   to the engine (asserted across every policy × discipline in
//!   `tests/replay_differential.rs`);
//! * **statistical** — under a `WallClock`, the live server's outcome
//!   *distribution* must agree with the engine's within a stated
//!   tolerance ([`outcome_agreement`]), since worker-local admission and
//!   completion-time deadline checks perturb individual decisions but
//!   not the aggregate behaviour.

use std::sync::mpsc::sync_channel;
use unit_core::clock::VirtualClock;
use unit_core::policy::Policy;
use unit_core::time::SimTime;
use unit_core::types::{QuerySpec, Trace};
use unit_core::usm::OutcomeCounts;
use unit_sim::{SimConfig, SimReport, SimRun};

/// Iterator adapter that advances a [`VirtualClock`] to each query's
/// arrival instant as the query is pulled off the ingress channel — the
/// virtual clock tracks the ingress frontier exactly the way the wall
/// clock tracks real arrivals.
struct ClockedIngress<'a, I> {
    inner: I,
    clock: &'a VirtualClock,
}

impl<I: Iterator<Item = QuerySpec>> Iterator for ClockedIngress<'_, I> {
    type Item = QuerySpec;

    fn next(&mut self) -> Option<QuerySpec> {
        let spec = self.inner.next()?;
        self.clock.advance_to(spec.arrival);
        Some(spec)
    }
}

/// Replay `trace` through the channelled pipeline under `clock`,
/// returning the oracle's report. `chunk` bounds both the channel and
/// the engine's arrival lookahead — the live server's
/// `channel_capacity` analogue.
///
/// # Panics
/// Panics if the trace is malformed (same contract as
/// [`unit_sim::Simulator::new`])
/// or a pipeline thread panics.
pub fn replay<P: Policy + Send>(
    trace: &Trace,
    policy: P,
    cfg: SimConfig,
    chunk: usize,
    clock: &VirtualClock,
) -> SimReport {
    let chunk = chunk.max(1);
    let (tx, rx) = sync_channel::<QuerySpec>(chunk);
    let queries = trace.queries.clone();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for q in queries {
                if tx.send(q).is_err() {
                    return; // consumer hung up (engine horizon reached)
                }
            }
        });
        let ingress = ClockedIngress {
            inner: rx.into_iter(),
            clock,
        };
        let report = SimRun::streaming(trace.n_items, &trace.updates, policy, cfg)
            .run_streamed(ingress, chunk);
        // The run is over: the virtual timeline has reached the horizon.
        clock.advance_to(SimTime::ZERO + cfg.horizon);
        report
    })
}

/// How far apart two outcome distributions are: half the L1 distance
/// between their outcome-ratio vectors, in `[0, 1]` (total variation
/// distance). `0` means identical mixes; `1` means disjoint.
#[derive(Debug, Clone, Copy)]
pub struct Agreement {
    /// Total-variation distance between the two outcome distributions.
    pub distance: f64,
}

impl Agreement {
    /// True when the distributions agree within `tolerance`.
    #[must_use]
    pub fn within(&self, tolerance: f64) -> bool {
        self.distance <= tolerance
    }
}

/// Compare two outcome tallies as distributions (see [`Agreement`]).
/// An empty tally compared against a non-empty one is maximally distant.
#[must_use]
pub fn outcome_agreement(a: &OutcomeCounts, b: &OutcomeCounts) -> Agreement {
    if a.total() == 0 || b.total() == 0 {
        return Agreement {
            distance: if a.total() == b.total() { 0.0 } else { 1.0 },
        };
    }
    let ra = a.ratios();
    let rb = b.ratios();
    let l1: f64 = ra.iter().zip(rb.iter()).map(|(x, y)| (x - y).abs()).sum();
    Agreement { distance: l1 / 2.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::clock::Clock;
    use unit_core::config::UnitConfig;
    use unit_core::time::SimDuration;
    use unit_core::types::{DataId, QueryId};
    use unit_core::unit_policy::UnitPolicy;
    use unit_sim::{report_digest, Simulator};

    fn tiny_trace() -> Trace {
        Trace {
            n_items: 2,
            queries: (0..20)
                .map(|i| QuerySpec {
                    id: QueryId(i),
                    arrival: SimTime::from_secs(1 + i),
                    items: vec![DataId((i % 2) as u32)],
                    exec_time: SimDuration::from_secs(1),
                    relative_deadline: SimDuration::from_secs(10),
                    freshness_req: 0.5,
                    pref_class: 0,
                })
                .collect(),
            updates: vec![],
        }
    }

    #[test]
    fn replay_is_bit_identical_to_direct_run() {
        let trace = tiny_trace();
        let cfg = SimConfig::new(SimDuration::from_secs(60));
        let clock = VirtualClock::new();
        let replayed = replay(
            &trace,
            UnitPolicy::new(UnitConfig::default()),
            cfg,
            4,
            &clock,
        );
        let direct = Simulator::new(&trace, UnitPolicy::new(UnitConfig::default()), cfg).run();
        assert_eq!(report_digest(&replayed), report_digest(&direct));
        assert_eq!(clock.now(), SimTime::ZERO + cfg.horizon);
    }

    #[test]
    fn agreement_distance_behaves() {
        let mut a = OutcomeCounts::default();
        let mut b = OutcomeCounts::default();
        assert!(outcome_agreement(&a, &b).within(0.0));
        a.success = 90;
        a.rejected = 10;
        b.success = 85;
        b.rejected = 15;
        let agr = outcome_agreement(&a, &b);
        assert!((agr.distance - 0.05).abs() < 1e-9);
        assert!(agr.within(0.051) && !agr.within(0.049));
        let empty = OutcomeCounts::default();
        assert!((outcome_agreement(&a, &empty).distance - 1.0).abs() < 1e-12);
    }
}
