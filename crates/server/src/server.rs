//! # The live serving runtime
//!
//! Thread-per-core workers draining an in-process MPSC ingress channel,
//! running UNIT admission and update-frequency modulation against
//! *wall-clock* deadlines (or any other [`Clock`]), with every state
//! mutation routed through a [`TransactionManager`].
//!
//! ## Timeline mapping
//!
//! Traces speak virtual µs; the live server speaks clock ticks. A run is
//! parameterized by `time_scale`: virtual instant `a` maps to clock tick
//! `a / time_scale`, so one knob compresses an hour-long trace into a
//! seconds-long serve while shrinking deadlines and service demands by
//! the same factor (a paced run is a time-lapse of the simulated one).
//! With pacing off, requests are injected as fast as the channel accepts
//! and only deadlines/exec demands are scaled — the throughput-benchmark
//! mode.
//!
//! ## What is approximated relative to the simulator
//!
//! The deterministic engine is the oracle; the live server trades three
//! of its exactnesses for concurrency, and the replay differential
//! quantifies the residue (`crate::replay`):
//!
//! * **admission state is worker-local** — each worker owns a policy
//!   instance and sees the shared in-service table at lock-acquisition
//!   time, not a serialized global order;
//! * **firm deadlines are detected at completion**, not preemptively at
//!   expiry (the engine aborts mid-run);
//! * **control ticks are per-worker**, paced by each worker's progress
//!   through its own request stream.

use crate::ingress::Request;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Mutex;
use unit_core::clock::Clock;
use unit_core::policy::Policy;
use unit_core::snapshot::{QueueEntryView, SystemSnapshot};
use unit_core::time::{SimDuration, SimTime};
use unit_core::txn::TransactionManager;
use unit_core::types::{Outcome, Trace, TxnClass, UpdateSpec};
use unit_core::usm::{OutcomeCounts, UsmWeights};
use unit_obs::ObsEvent;

/// Serving-run knobs. Construct with [`ServeConfig::new`], then chain
/// `with_*`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-thread count (thread-per-core is `available_parallelism`).
    pub workers: usize,
    /// Virtual µs per clock tick: virtual instant `a` serves at tick
    /// `a / time_scale`. Also scales deadlines and service demands.
    pub time_scale: u64,
    /// Pace arrivals on the scaled timeline (`true`), or inject flat-out
    /// and scale only deadlines/demands (`false`).
    pub paced: bool,
    /// Ingress channel bound: arrivals in flight ahead of the workers.
    pub channel_capacity: usize,
    /// Control-tick period, in *virtual* µs (scaled like everything else).
    pub tick_period: SimDuration,
    /// USM weights for the report's utility tally.
    pub weights: UsmWeights,
    /// Record per-worker observability lanes into the report.
    pub observe: bool,
}

impl ServeConfig {
    /// A config with `workers` workers at the given time scale, paced,
    /// with a 1024-deep ingress, 10 s virtual ticks, naive weights, and
    /// observation off.
    #[must_use]
    pub fn new(workers: usize, time_scale: u64) -> Self {
        ServeConfig {
            workers: workers.max(1),
            time_scale: time_scale.max(1),
            paced: true,
            channel_capacity: 1024,
            tick_period: SimDuration::from_secs(10),
            weights: UsmWeights::default(),
            observe: false,
        }
    }

    /// Disable arrival pacing (throughput mode): inject as fast as the
    /// channel accepts; deadlines and demands stay scaled.
    #[must_use]
    pub fn flat_out(mut self) -> Self {
        self.paced = false;
        self
    }

    /// Set the USM weights used in the report.
    #[must_use]
    pub fn with_weights(mut self, weights: UsmWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Record per-worker observability lanes into the report.
    #[must_use]
    pub fn with_observation(mut self) -> Self {
        self.observe = true;
        self
    }

    /// Set the ingress channel bound.
    #[must_use]
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    fn scale_dur(&self, d: SimDuration) -> SimDuration {
        SimDuration((d.0 / self.time_scale).max(1))
    }

    fn scale_time(&self, t: SimTime) -> SimTime {
        SimTime(t.0 / self.time_scale)
    }
}

/// What one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Policy name (from [`Policy::name`]).
    pub policy: String,
    /// Worker threads that served the run.
    pub workers: usize,
    /// Queries submitted into the ingress channel.
    pub submitted: u64,
    /// Outcome tally; conservation demands `counts.total() == submitted`.
    pub counts: OutcomeCounts,
    /// Source versions that arrived (update-stream side).
    pub updates_arrived: u64,
    /// Versions actually installed (after modulation/skipping).
    pub updates_applied: u64,
    /// Wall (clock) ticks from first injection to last completion.
    pub elapsed: SimDuration,
    /// The USM weights the report was tallied under.
    pub weights: UsmWeights,
    /// Per-worker observability lanes (each event wrapped in
    /// [`ObsEvent::Shard`] with `shard = worker`), when observation was on.
    pub events: Vec<ObsEvent>,
}

impl ServeReport {
    /// Sustained query throughput in completed operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.0 == 0 {
            return 0.0;
        }
        self.counts.total() as f64 / (self.elapsed.0 as f64 / 1_000_000.0)
    }

    /// Fraction of submitted queries that missed their (scaled) deadline.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        self.counts.ratio(Outcome::DeadlineMiss)
    }

    /// Total user-satisfaction metric under the run's weights.
    #[must_use]
    pub fn total_usm(&self) -> f64 {
        self.counts.total_usm(&self.weights)
    }

    /// Conservation: every submitted query reached exactly one outcome.
    #[must_use]
    pub fn conserves(&self) -> bool {
        self.counts.total() == self.submitted
    }
}

/// Outcome + in-service bookkeeping shared by every worker.
struct LiveState {
    /// Admitted-but-unfinished queries (the policy's ready-queue view)
    /// plus the update backlog estimate, under one lock — an admission
    /// decision sees a consistent pair.
    inner: Mutex<LiveInner>,
    updates_arrived: AtomicU64,
    updates_applied: AtomicU64,
    /// Ticks workers spent processing requests (utilization estimate).
    busy: AtomicU64,
    stop_updates: AtomicBool,
}

struct LiveInner {
    in_service: Vec<QueueEntryView>,
    update_backlog: SimDuration,
}

impl LiveState {
    fn new() -> Self {
        LiveState {
            inner: Mutex::new(LiveInner {
                in_service: Vec::new(),
                update_backlog: SimDuration::ZERO,
            }),
            updates_arrived: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            stop_updates: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LiveInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Owned snapshot for one policy decision: the in-service table and
    /// backlog at lock-acquisition time, utilization from busy-tick
    /// accounting.
    fn snapshot(&self, now: SimTime, workers: usize) -> SystemSnapshot {
        let (queries, update_backlog) = {
            let inner = self.lock();
            (inner.in_service.clone(), inner.update_backlog)
        };
        let busy = self.busy.load(Ordering::Relaxed);
        let capacity = now.0.saturating_mul(workers as u64).max(1);
        SystemSnapshot {
            now,
            queries,
            update_backlog,
            recent_utilization: (busy as f64 / capacity as f64).min(1.0),
        }
    }

    fn admit(&self, entry: QueueEntryView) {
        self.lock().in_service.push(entry);
    }

    fn complete(&self, id: unit_core::types::QueryId) {
        let mut inner = self.lock();
        if let Some(idx) = inner.in_service.iter().position(|e| e.id == id) {
            inner.in_service.swap_remove(idx);
        }
    }
}

/// One worker's run state: its own policy, tick cadence, and obs lane.
struct Worker<'a, P: Policy> {
    policy: P,
    state: &'a LiveState,
    clock: &'a dyn Clock,
    backend: &'a (dyn TransactionManager + Sync),
    cfg: &'a ServeConfig,
    next_tick: SimTime,
    tick_wall: SimDuration,
    counts: OutcomeCounts,
    events: Vec<ObsEvent>,
}

impl<P: Policy> Worker<'_, P> {
    fn maybe_tick(&mut self, now: SimTime) {
        if now < self.next_tick {
            return;
        }
        let snap = self.state.snapshot(now, self.cfg.workers);
        self.policy.on_tick(now, &snap.view());
        while self.next_tick <= now {
            self.next_tick += self.tick_wall;
        }
    }

    fn serve_one(&mut self, req: Request) {
        let start = self.clock.now();
        self.maybe_tick(start);
        let q = &req.spec;

        // Admission against an owned snapshot of the shared live state.
        let snap = self.state.snapshot(start, self.cfg.workers);
        let decision = self.policy.on_query_arrival(q, &snap.view());
        if self.cfg.observe {
            let obs = self.policy.last_admission();
            self.events.push(ObsEvent::Admission {
                time: start,
                query: q.id,
                decision,
                verdict: obs.map(|o| o.verdict),
                c_flex: obs.map(|o| o.c_flex),
            });
        }
        if !decision.is_admit() {
            self.finish(q, start, Outcome::Rejected);
            return;
        }

        let deadline = req.deadline;
        self.state.admit(QueueEntryView {
            id: q.id,
            deadline,
            remaining: q.exec_time,
            pref_class: q.pref_class,
        });

        // Execute: read the query's items through the transaction API,
        // holding the CPU for the scaled service demand.
        let min_freshness = match self.backend.begin(TxnClass::Query, start) {
            Ok(txn) => {
                for &item in &q.items {
                    let _ = self.backend.read(txn, item, self.clock.now());
                }
                let target = start + q.exec_time;
                while self.clock.now() < target {
                    std::hint::spin_loop();
                }
                match self.backend.commit(txn, self.clock.now()) {
                    Ok(summary) => summary.min_freshness,
                    Err(_) => 0.0,
                }
            }
            Err(_) => 0.0,
        };

        let end = self.clock.now();
        self.state.complete(q.id);
        self.state
            .busy
            .fetch_add((end - start).0, Ordering::Relaxed);
        let outcome = if end > deadline {
            Outcome::DeadlineMiss
        } else if min_freshness < q.freshness_req {
            Outcome::DataStale
        } else {
            Outcome::Success
        };
        self.finish(q, end, outcome);
    }

    fn finish(&mut self, q: &unit_core::types::QuerySpec, now: SimTime, outcome: Outcome) {
        self.counts.record(outcome);
        self.policy.on_query_outcome(q, outcome);
        if self.cfg.observe {
            self.events.push(ObsEvent::QueryOutcome {
                time: now,
                query: q.id,
                outcome,
            });
        }
    }
}

/// Poison-tolerant receiver lock (the ingress receiver is shared).
fn recv_next(rx: &Mutex<Receiver<Request>>) -> Option<Request> {
    let guard = match rx.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.recv().ok()
}

/// Drive the update streams: pace each stream's version arrivals on the
/// scaled timeline, record every arrival at the backend, and apply or
/// skip each version as the (updater-owned) policy decides.
#[allow(clippy::too_many_arguments)]
fn run_updates<P: Policy>(
    mut policy: P,
    updates: &[UpdateSpec],
    horizon: SimDuration,
    state: &LiveState,
    clock: &dyn Clock,
    backend: &(dyn TransactionManager + Sync),
    cfg: &ServeConfig,
) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Earliest-next-arrival schedule over all streams, on the virtual
    // timeline (ties broken by stream index for determinism).
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = updates
        .iter()
        .enumerate()
        .map(|(idx, u)| Reverse((u.first_arrival, idx)))
        .collect();
    let end = SimTime::ZERO + horizon;

    while let Some(Reverse((arrival, idx))) = heap.pop() {
        if arrival > end || state.stop_updates.load(Ordering::SeqCst) {
            return;
        }
        // lint: allow(D6) — idx came from enumerating this same slice
        let stream = &updates[idx];
        // Sleep (in interruptible slices) until the scaled wall instant.
        let wall_target = cfg.scale_time(arrival);
        if cfg.paced {
            loop {
                let now = clock.now();
                if now >= wall_target || state.stop_updates.load(Ordering::SeqCst) {
                    break;
                }
                let remaining = (wall_target - now).0.min(10_000);
                std::thread::sleep(std::time::Duration::from_micros(remaining));
            }
            if state.stop_updates.load(Ordering::SeqCst) {
                return;
            }
        }

        let now = clock.now();
        let _ = backend.observe_version(stream.item, now);
        state.updates_arrived.fetch_add(1, Ordering::Relaxed);
        let snap = state.snapshot(now, cfg.workers);
        if policy
            .on_version_arrival(stream.item, now, &snap.view())
            .is_apply()
        {
            let exec = cfg.scale_dur(stream.exec_time);
            state.lock().update_backlog += exec;
            if let Ok(txn) = backend.begin(TxnClass::Update, now) {
                let _ = backend.apply(txn, stream.item, now);
                if backend.commit(txn, clock.now()).is_ok() {
                    state.updates_applied.fetch_add(1, Ordering::Relaxed);
                    policy.on_update_commit(stream.item, exec);
                }
            }
            let mut inner = state.lock();
            inner.update_backlog = SimDuration(inner.update_backlog.0.saturating_sub(exec.0));
        }
        heap.push(Reverse((arrival + stream.period, idx)));
    }
}

/// Serve a trace's queries live: spawn `cfg.workers` worker threads and
/// one updater thread, inject every query through the bounded ingress
/// channel (paced or flat-out), and tally the outcomes.
///
/// `make_policy(i)` builds the policy instance for worker `i`; index
/// `cfg.workers` is the updater's instance. Each instance is
/// [`Policy::init`]-ed with the trace's database size and update streams.
///
/// The trace's virtual timeline is mapped onto `clock` ticks via
/// `cfg.time_scale` (see the module docs). `horizon` bounds the update
/// streams — pass the trace bundle's horizon.
pub fn serve<P, F>(
    cfg: &ServeConfig,
    clock: &dyn Clock,
    backend: &(dyn TransactionManager + Sync),
    trace: &Trace,
    horizon: SimDuration,
    make_policy: F,
) -> ServeReport
where
    P: Policy + Send,
    F: Fn(usize) -> P,
{
    let state = LiveState::new();
    let (tx, rx) = std::sync::mpsc::sync_channel::<Request>(cfg.channel_capacity);
    let rx = Mutex::new(rx);
    let tick_wall = cfg.scale_dur(cfg.tick_period);

    let mut policies = Vec::with_capacity(cfg.workers + 1);
    for i in 0..=cfg.workers {
        let mut p = make_policy(i);
        p.init(trace.n_items, &trace.updates);
        p.set_observed(cfg.observe && i < cfg.workers);
        policies.push(p);
    }
    // lint: allow(panic) — policies was filled with exactly workers+1 entries
    let updater_policy = policies.pop().expect("one policy per worker + updater");
    let policy_name = updater_policy.name().to_string();

    let mut submitted = 0u64;
    let mut counts = OutcomeCounts::default();
    let mut events = Vec::new();

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(cfg.workers);
        for policy in policies {
            let rx = &rx;
            let state = &state;
            let worker = Worker {
                policy,
                state,
                clock,
                backend,
                cfg,
                next_tick: SimTime::ZERO + tick_wall,
                tick_wall,
                counts: OutcomeCounts::default(),
                events: Vec::new(),
            };
            workers.push(scope.spawn(move || {
                let mut worker = worker;
                while let Some(req) = recv_next(rx) {
                    worker.serve_one(req);
                }
                (worker.counts, worker.events)
            }));
        }
        let updater = scope.spawn(|| {
            run_updates(
                updater_policy,
                &trace.updates,
                horizon,
                &state,
                clock,
                backend,
                cfg,
            );
        });

        // Producer: inject queries in arrival order, pacing if asked.
        submitted = inject(cfg, clock, trace, &tx);
        drop(tx); // disconnect: workers drain and exit

        for (i, handle) in workers.into_iter().enumerate() {
            // lint: allow(panic) — a worker thread panicking is already fatal
            let (c, evs) = handle.join().expect("worker thread panicked");
            counts.success += c.success;
            counts.rejected += c.rejected;
            counts.deadline_miss += c.deadline_miss;
            counts.data_stale += c.data_stale;
            for (seq, event) in evs.into_iter().enumerate() {
                events.push(ObsEvent::Shard {
                    shard: i as u32,
                    seq: seq as u64,
                    event: Box::new(event),
                });
            }
        }
        state.stop_updates.store(true, Ordering::SeqCst);
        // lint: allow(panic) — an updater thread panicking is already fatal
        updater.join().expect("updater thread panicked");
    });

    ServeReport {
        policy: policy_name,
        workers: cfg.workers,
        submitted,
        counts,
        updates_arrived: state.updates_arrived.load(Ordering::Relaxed),
        updates_applied: state.updates_applied.load(Ordering::Relaxed),
        elapsed: clock.now() - SimTime::ZERO,
        weights: cfg.weights,
        events,
    }
}

/// Inject every query, stamping arrivals and deadlines onto the scaled
/// clock timeline. Returns the number submitted.
fn inject(cfg: &ServeConfig, clock: &dyn Clock, trace: &Trace, tx: &SyncSender<Request>) -> u64 {
    let mut submitted = 0u64;
    for spec in &trace.queries {
        let wall_arrival = cfg.scale_time(spec.arrival);
        if cfg.paced {
            loop {
                let now = clock.now();
                if now >= wall_arrival {
                    break;
                }
                let remaining = (wall_arrival - now).0.min(10_000);
                std::thread::sleep(std::time::Duration::from_micros(remaining));
            }
        }
        let enqueue = clock.now();
        let mut stamped = spec.clone();
        stamped.arrival = enqueue;
        stamped.relative_deadline = cfg.scale_dur(spec.relative_deadline);
        stamped.exec_time = cfg.scale_dur(spec.exec_time);
        let deadline = enqueue + stamped.relative_deadline;
        let mut req = Request {
            spec: stamped,
            enqueue,
            deadline,
        };
        // Bounded channel: block until a worker frees a slot.
        loop {
            match tx.try_send(req) {
                Ok(()) => break,
                Err(TrySendError::Full(back)) => {
                    req = back;
                    std::thread::yield_now();
                }
                Err(TrySendError::Disconnected(_)) => return submitted,
            }
        }
        submitted += 1;
    }
    submitted
}
