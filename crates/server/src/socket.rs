//! # Optional TCP frontend (feature `socket`)
//!
//! A deliberately minimal line-protocol listener that turns network
//! requests into ingress [`Request`]s. The serving runtime itself is
//! socket-agnostic — the bench and the tests inject requests directly
//! into the channel — so this stays a thin, optional shim.
//!
//! Protocol: one query per line,
//!
//! ```text
//! q <id> <item[,item...]> <exec_us> <deadline_us> <freshness>
//! ```
//!
//! e.g. `q 7 0,3,12 5000 250000 0.9`. Malformed lines are answered with
//! `err <reason>` and dropped; accepted lines are answered with `ok`.

use crate::ingress::Request;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::SyncSender;
use unit_core::clock::Clock;
use unit_core::time::SimDuration;
use unit_core::types::{DataId, QueryId, QuerySpec};

/// Parse one protocol line into a spec (timing fields in clock ticks).
fn parse_line(line: &str) -> Result<(QueryId, Vec<DataId>, u64, u64, f64), String> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some("q") {
        return Err("expected 'q' verb".to_string());
    }
    let id = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or("bad query id")?;
    let items = parts
        .next()
        .ok_or("missing item list")?
        .split(',')
        .map(|s| s.parse::<u32>().map(DataId))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("bad item id: {e}"))?;
    let exec = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or("bad exec_us")?;
    let deadline = parts
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or("bad deadline_us")?;
    let freshness = parts
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or("bad freshness")?;
    Ok((QueryId(id), items, exec, deadline, freshness))
}

fn handle_conn(
    stream: TcpStream,
    clock: &dyn Clock,
    tx: &SyncSender<Request>,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Ok((id, items, exec, deadline, freshness)) => {
                let enqueue = clock.now();
                let spec = QuerySpec {
                    id,
                    arrival: enqueue,
                    items,
                    exec_time: SimDuration(exec.max(1)),
                    relative_deadline: SimDuration(deadline.max(1)),
                    freshness_req: freshness,
                    pref_class: 0,
                };
                let abs_deadline = enqueue + spec.relative_deadline;
                let accepted = tx
                    .send(Request {
                        spec,
                        enqueue,
                        deadline: abs_deadline,
                    })
                    .is_ok();
                writer.write_all(if accepted { b"ok\n" } else { b"err closed\n" })?;
            }
            Err(reason) => {
                writer.write_all(format!("err {reason}\n").as_bytes())?;
            }
        }
    }
    Ok(())
}

/// Accept connections on `addr` and forward parsed requests into the
/// ingress channel until the channel's receiver hangs up. Each
/// connection is served on its own thread.
///
/// # Errors
/// Returns the bind error if the listener cannot be created; per-
/// connection I/O errors terminate only that connection.
pub fn listen<A: ToSocketAddrs>(
    addr: A,
    clock: &dyn Clock,
    tx: &SyncSender<Request>,
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let tx = tx.clone();
            scope.spawn(move || {
                let _ = handle_conn(stream, clock, &tx);
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_lines() {
        let (id, items, exec, dl, f) = parse_line("q 7 0,3,12 5000 250000 0.9").unwrap();
        assert_eq!(id, QueryId(7));
        assert_eq!(items, vec![DataId(0), DataId(3), DataId(12)]);
        assert_eq!((exec, dl), (5000, 250000));
        assert!((f - 0.9).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("nope").is_err());
        assert!(parse_line("q x 0 1 1 0.5").is_err());
        assert!(parse_line("q 1 a,b 1 1 0.5").is_err());
        assert!(parse_line("q 1 0 1 1").is_err());
    }
}
